#!/usr/bin/env python3
"""Validate a --trace-out Perfetto trace: the file must parse as JSON,
declare the expected schema version, and carry at least one complete
("X") span on every named track. Usage: check_trace.py TRACE.json SCHEMA."""
import json
import sys


def main() -> int:
    path, want_version = sys.argv[1], int(sys.argv[2])
    with open(path) as f:
        events = json.load(f)
    if not isinstance(events, list) or not events:
        print(f"{path}: expected a non-empty JSON array")
        return 1

    version = None
    tracks = {}  # (pid, tid) -> name
    spans = {}  # (pid, tid) -> count
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tracks[(ev["pid"], ev["tid"])] = ev["args"]["name"]
        elif ev.get("ph") == "M" and "schema_version" in ev.get("args", {}):
            version = ev["args"]["schema_version"]
        elif ev.get("ph") == "X":
            key = (ev["pid"], ev["tid"])
            spans[key] = spans.get(key, 0) + 1
            if ev["dur"] < 0 or ev["ts"] < 0:
                print(f"{path}: negative ts/dur in {ev}")
                return 1

    if version != want_version:
        print(f"{path}: schema_version {version}, want {want_version}")
        return 1
    if not tracks:
        print(f"{path}: no thread_name track metadata")
        return 1
    bad = [name for key, name in tracks.items() if spans.get(key, 0) == 0]
    if bad:
        print(f"{path}: tracks without spans: {bad}")
        return 1
    total = sum(spans.values())
    print(f"{path}: ok — {total} spans on {len(tracks)} tracks, schema v{version}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
