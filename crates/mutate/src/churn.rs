//! Deterministic synthetic churn: insert/delete batches over a live graph.
//!
//! The generator walks a working adjacency mirror of the graph so deletes
//! always name an edge that exists *at that point in the stream* —
//! including edges inserted by an earlier batch (or earlier in the same
//! batch). That makes every generated stream applicable without
//! `missing_deletes`, which keeps the bench and CI oracles sharp: a churn
//! batch that silently no-ops would understate the repair work.

use ascetic_graph::{Csr, Mutation, VertexId};

/// Deterministic xorshift64* — the same generator the serve trace and the
/// workspace determinism suites use, so churn streams are reproducible
/// across machines and thread counts.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Generate `batches` batches of `batch_size` mutations each over `g`:
/// roughly 70% inserts (weighted iff `g` is weighted, weights in 1..=9)
/// and 30% deletes of edges live at that point in the stream. Entirely
/// deterministic in `seed`.
pub fn synthetic_churn(
    g: &Csr,
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<Vec<Mutation>> {
    let n = g.num_vertices() as u64;
    assert!(n > 0, "churn needs at least one vertex");
    let weighted = g.weights().is_some();
    // Scramble before the nonzero guard: `seed | 1` alone would collapse
    // adjacent even/odd seed pairs onto the same stream.
    let mut rng = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
    // Working adjacency: destination lists only — deletes are addressed by
    // (src, dst) and remove every parallel copy, so weights never matter
    // for picking a victim.
    let mut adj: Vec<Vec<VertexId>> = (0..g.num_vertices())
        .map(|v| g.neighbors(v as VertexId).to_vec())
        .collect();
    let mut live_edges: u64 = adj.iter().map(|row| row.len() as u64).sum();
    (0..batches)
        .map(|_| {
            (0..batch_size)
                .map(|_| {
                    if xorshift(&mut rng) % 10 < 3 && live_edges > 0 {
                        // Delete: find a vertex with out-edges (linear probe
                        // from a random start keeps this deterministic).
                        let mut src = (xorshift(&mut rng) % n) as u32;
                        while adj[src as usize].is_empty() {
                            src = (src + 1) % n as u32;
                        }
                        let row = &mut adj[src as usize];
                        let dst = row[(xorshift(&mut rng) % row.len() as u64) as usize];
                        // A delete removes every parallel src → dst copy.
                        let before = row.len();
                        row.retain(|&d| d != dst);
                        live_edges -= (before - row.len()) as u64;
                        Mutation::Delete { src, dst }
                    } else {
                        let src = (xorshift(&mut rng) % n) as u32;
                        let dst = (xorshift(&mut rng) % n) as u32;
                        let weight = weighted.then(|| (xorshift(&mut rng) % 9 + 1) as u32);
                        adj[src as usize].push(dst);
                        live_edges += 1;
                        Mutation::Insert { src, dst, weight }
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_graph::datasets::weighted_variant;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_graph::PatchableCsr;

    #[test]
    fn churn_is_deterministic() {
        let g = uniform_graph(200, 1_400, false, 3);
        assert_eq!(
            synthetic_churn(&g, 3, 25, 42),
            synthetic_churn(&g, 3, 25, 42)
        );
        assert_ne!(
            synthetic_churn(&g, 3, 25, 42),
            synthetic_churn(&g, 3, 25, 43)
        );
    }

    #[test]
    fn churn_respects_weightedness_and_mixes_ops() {
        let g = weighted_variant(&uniform_graph(150, 900, false, 5));
        let batches = synthetic_churn(&g, 2, 60, 9);
        let all: Vec<_> = batches.iter().flatten().collect();
        assert!(all
            .iter()
            .all(|m| !matches!(m, Mutation::Insert { weight: None, .. })));
        assert!(all.iter().any(|m| matches!(m, Mutation::Insert { .. })));
        assert!(all.iter().any(|m| matches!(m, Mutation::Delete { .. })));
    }

    #[test]
    fn churn_deletes_always_hit_live_edges() {
        let g = uniform_graph(120, 700, false, 11);
        let mut store = PatchableCsr::with_defaults(&g, false);
        for batch in synthetic_churn(&g, 4, 40, 17) {
            let patch = store.apply(&batch).expect("churn is always applicable");
            assert_eq!(patch.missing_deletes, 0, "every delete names a live edge");
        }
    }
}
