//! JSONL mutation batches: parsing with line-accurate errors, in the same
//! format family as `ascetic-serve`'s job traces.
//!
//! One mutation per line, a flat JSON object:
//!
//! ```text
//! {"op": "insert", "src": 1, "dst": 2, "weight": 5, "batch": 0}
//! {"op": "delete", "src": 7, "dst": 3, "batch": 1}
//! ```
//!
//! `op`, `src` and `dst` are required. `weight` is required on inserts
//! into a weighted graph, rejected on inserts into an unweighted one, and
//! always rejected on deletes (a delete removes *every* parallel edge).
//! `batch` (default: the previous line's batch, starting at 0) groups
//! consecutive lines into atomic batches and must be non-decreasing — a
//! mutation stream is applied in order, so a line cannot belong to a batch
//! that was already sealed. Blank lines and `#` comments are skipped.
//! Errors carry the 1-based line number, matching the serve trace parser:
//! every variant names the offending field and value so the CLI can print
//! an actionable message and exit nonzero.

use ascetic_graph::Mutation;

/// What went wrong on a mutation line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutateErrorKind {
    /// The line is not a flat JSON object (`{"key": value, ...}`).
    Syntax(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field holds a value of the wrong type or out of range.
    BadValue {
        /// Field name.
        field: &'static str,
        /// The offending raw text.
        value: String,
    },
    /// `op` is neither `insert` nor `delete`.
    UnknownOp(String),
    /// `weight` given where the graph (or the op) takes none.
    UnexpectedWeight(&'static str),
    /// Insert into a weighted graph without a `weight`.
    MissingWeight,
    /// `batch` went backwards relative to an earlier line.
    BatchOutOfOrder {
        /// The offending batch id.
        batch: u64,
        /// The batch id already in progress.
        prev: u64,
    },
    /// An endpoint is out of range for the graph being mutated.
    EndpointOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// Vertices in the graph.
        num_vertices: usize,
    },
}

/// A malformed mutation line (1-based `line`), styled after
/// `ascetic_serve::TraceError`: one sentence naming the field, the value
/// and the rule it broke.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutateError {
    /// 1-based line number in the mutation file.
    pub line: usize,
    /// What was wrong with it.
    pub kind: MutateErrorKind,
}

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mutation line {}: ", self.line)?;
        match &self.kind {
            MutateErrorKind::Syntax(what) => {
                write!(f, "{what} (expected a flat JSON object per line)")
            }
            MutateErrorKind::MissingField(field) => {
                write!(f, "missing required field \"{field}\"")
            }
            MutateErrorKind::BadValue { field, value } => {
                write!(f, "field \"{field}\" has invalid value {value}")
            }
            MutateErrorKind::UnknownOp(op) => {
                write!(f, "unknown op \"{op}\" (expected \"insert\" or \"delete\")")
            }
            MutateErrorKind::UnexpectedWeight(why) => {
                write!(f, "\"weight\" given but {why}")
            }
            MutateErrorKind::MissingWeight => {
                write!(f, "insert into a weighted graph requires a \"weight\"")
            }
            MutateErrorKind::BatchOutOfOrder { batch, prev } => {
                write!(
                    f,
                    "batch {batch} after batch {prev} (batch ids must be non-decreasing)"
                )
            }
            MutateErrorKind::EndpointOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for a graph with {num_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for MutateError {}

/// One parsed `key: value` pair; values stay raw text until typed.
struct Field<'a> {
    key: &'a str,
    value: &'a str,
}

/// Split a flat JSON object into raw fields. No nesting, no arrays — a
/// mutation line is a record, not a document.
fn split_fields(line: &str) -> Result<Vec<Field<'_>>, MutateErrorKind> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| MutateErrorKind::Syntax("line is not a JSON object".into()))?
        .trim();
    let mut fields = Vec::new();
    if body.is_empty() {
        return Ok(fields);
    }
    // split on top-level commas; the only string is the op value, which
    // may not contain commas or escapes
    for part in body.split(',') {
        let (k, v) = part.split_once(':').ok_or_else(|| {
            MutateErrorKind::Syntax(format!("expected \"key\": value, got {part:?}"))
        })?;
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| {
                MutateErrorKind::Syntax(format!("field name {} is not quoted", k.trim()))
            })?;
        fields.push(Field {
            key,
            value: v.trim(),
        });
    }
    Ok(fields)
}

fn parse_u64(f: &Field<'_>, field: &'static str) -> Result<u64, MutateErrorKind> {
    f.value.parse().map_err(|_| MutateErrorKind::BadValue {
        field,
        value: f.value.to_string(),
    })
}

fn parse_u32(f: &Field<'_>, field: &'static str) -> Result<u32, MutateErrorKind> {
    let v = parse_u64(f, field)?;
    u32::try_from(v).map_err(|_| MutateErrorKind::BadValue {
        field,
        value: f.value.to_string(),
    })
}

fn parse_string<'a>(f: &Field<'a>, field: &'static str) -> Result<&'a str, MutateErrorKind> {
    f.value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| MutateErrorKind::BadValue {
            field,
            value: f.value.to_string(),
        })
}

/// One line, typed but not yet grouped.
struct Record {
    mutation: Mutation,
    batch: Option<u64>,
}

fn parse_line(line: &str, weighted: Option<bool>) -> Result<Record, MutateErrorKind> {
    let fields = split_fields(line)?;
    let mut op = None;
    let mut src = None;
    let mut dst = None;
    let mut weight = None;
    let mut batch = None;
    for f in &fields {
        match f.key {
            "op" => op = Some(parse_string(f, "op")?),
            "src" => src = Some(parse_u32(f, "src")?),
            "dst" => dst = Some(parse_u32(f, "dst")?),
            "weight" => weight = Some(parse_u32(f, "weight")?),
            "batch" => batch = Some(parse_u64(f, "batch")?),
            other => {
                return Err(MutateErrorKind::Syntax(format!(
                    "unknown field \"{other}\""
                )));
            }
        }
    }
    let op = op.ok_or(MutateErrorKind::MissingField("op"))?;
    let src = src.ok_or(MutateErrorKind::MissingField("src"))?;
    let dst = dst.ok_or(MutateErrorKind::MissingField("dst"))?;
    let mutation = match op {
        "insert" => {
            match weighted {
                Some(true) if weight.is_none() => return Err(MutateErrorKind::MissingWeight),
                Some(false) if weight.is_some() => {
                    return Err(MutateErrorKind::UnexpectedWeight("the graph is unweighted"))
                }
                _ => {}
            }
            Mutation::Insert { src, dst, weight }
        }
        "delete" => {
            if weight.is_some() {
                return Err(MutateErrorKind::UnexpectedWeight(
                    "a delete removes every parallel edge regardless of weight",
                ));
            }
            Mutation::Delete { src, dst }
        }
        other => return Err(MutateErrorKind::UnknownOp(other.into())),
    };
    Ok(Record { mutation, batch })
}

/// Parse a JSONL mutation stream into ordered batches. `num_vertices`,
/// when known, bounds both endpoints; `weighted`, when known, enforces the
/// weight rules at parse time (otherwise `PatchableCsr::apply` still
/// enforces them at patch time).
pub fn parse_mutations(
    text: &str,
    num_vertices: Option<usize>,
    weighted: Option<bool>,
) -> Result<Vec<Vec<Mutation>>, MutateError> {
    let mut batches: Vec<Vec<Mutation>> = Vec::new();
    let mut current_batch = 0u64;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let at = |kind| MutateError { line: lineno, kind };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let rec = parse_line(trimmed, weighted).map_err(at)?;
        let batch = rec.batch.unwrap_or(current_batch);
        if batch < current_batch {
            return Err(at(MutateErrorKind::BatchOutOfOrder {
                batch,
                prev: current_batch,
            }));
        }
        if let Some(n) = num_vertices {
            let (src, dst) = match rec.mutation {
                Mutation::Insert { src, dst, .. } => (src, dst),
                Mutation::Delete { src, dst } => (src, dst),
            };
            for v in [src, dst] {
                if v as usize >= n {
                    return Err(at(MutateErrorKind::EndpointOutOfRange {
                        vertex: v,
                        num_vertices: n,
                    }));
                }
            }
        }
        if batch > current_batch || batches.is_empty() {
            current_batch = batch;
            batches.push(Vec::new());
        }
        batches.last_mut().expect("just ensured").push(rec.mutation);
    }
    Ok(batches)
}

/// Serialize batches back to the JSONL mutation format (inverse of
/// [`parse_mutations`]; used by the bench and CI to persist generated
/// churn).
pub fn to_jsonl(batches: &[Vec<Mutation>]) -> String {
    let mut out = String::new();
    for (b, batch) in batches.iter().enumerate() {
        for m in batch {
            match *m {
                Mutation::Insert { src, dst, weight } => {
                    out.push_str(&format!(
                        "{{\"op\": \"insert\", \"src\": {src}, \"dst\": {dst}"
                    ));
                    if let Some(w) = weight {
                        out.push_str(&format!(", \"weight\": {w}"));
                    }
                }
                Mutation::Delete { src, dst } => {
                    out.push_str(&format!(
                        "{{\"op\": \"delete\", \"src\": {src}, \"dst\": {dst}"
                    ));
                }
            }
            out.push_str(&format!(", \"batch\": {b}}}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_lines_into_batches() {
        let text = "# churn\n\
                    {\"op\": \"insert\", \"src\": 1, \"dst\": 2, \"weight\": 5, \"batch\": 0}\n\
                    \n\
                    {\"op\": \"delete\", \"src\": 7, \"dst\": 3}\n\
                    {\"op\": \"insert\", \"src\": 0, \"dst\": 4, \"weight\": 1, \"batch\": 2}\n";
        let batches = parse_mutations(text, Some(10), Some(true)).unwrap();
        assert_eq!(
            batches,
            vec![
                vec![
                    Mutation::Insert {
                        src: 1,
                        dst: 2,
                        weight: Some(5)
                    },
                    Mutation::Delete { src: 7, dst: 3 },
                ],
                vec![Mutation::Insert {
                    src: 0,
                    dst: 4,
                    weight: Some(1)
                }],
            ],
            "batch 1 is empty so only two batches materialize"
        );
    }

    #[test]
    fn errors_carry_the_line_number() {
        let text = "{\"op\": \"insert\", \"src\": 0, \"dst\": 1}\nnot json\n";
        let err = parse_mutations(text, None, None).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().starts_with("mutation line 2: "));

        let err = parse_mutations("{\"op\": \"upsert\", \"src\": 0, \"dst\": 1}\n", None, None)
            .unwrap_err();
        assert_eq!(err.kind, MutateErrorKind::UnknownOp("upsert".into()));
        assert!(err.to_string().contains("unknown op"));
    }

    #[test]
    fn field_rules_are_enforced() {
        let missing =
            parse_mutations("{\"op\": \"insert\", \"dst\": 1}\n", None, None).unwrap_err();
        assert_eq!(missing.kind, MutateErrorKind::MissingField("src"));

        let unweighted = parse_mutations(
            "{\"op\": \"insert\", \"src\": 0, \"dst\": 1, \"weight\": 3}\n",
            None,
            Some(false),
        )
        .unwrap_err();
        assert!(matches!(
            unweighted.kind,
            MutateErrorKind::UnexpectedWeight(_)
        ));

        let weightless = parse_mutations(
            "{\"op\": \"insert\", \"src\": 0, \"dst\": 1}\n",
            None,
            Some(true),
        )
        .unwrap_err();
        assert_eq!(weightless.kind, MutateErrorKind::MissingWeight);

        let weighted_delete = parse_mutations(
            "{\"op\": \"delete\", \"src\": 0, \"dst\": 1, \"weight\": 3}\n",
            None,
            None,
        )
        .unwrap_err();
        assert!(matches!(
            weighted_delete.kind,
            MutateErrorKind::UnexpectedWeight(_)
        ));

        let oob = parse_mutations(
            "{\"op\": \"delete\", \"src\": 0, \"dst\": 9}\n",
            Some(5),
            None,
        )
        .unwrap_err();
        assert_eq!(
            oob.kind,
            MutateErrorKind::EndpointOutOfRange {
                vertex: 9,
                num_vertices: 5
            }
        );

        let backwards = parse_mutations(
            "{\"op\": \"delete\", \"src\": 0, \"dst\": 1, \"batch\": 3}\n\
             {\"op\": \"delete\", \"src\": 0, \"dst\": 1, \"batch\": 1}\n",
            None,
            None,
        )
        .unwrap_err();
        assert_eq!(backwards.line, 2);
        assert_eq!(
            backwards.kind,
            MutateErrorKind::BatchOutOfOrder { batch: 1, prev: 3 }
        );

        let bad = parse_mutations(
            "{\"op\": \"delete\", \"src\": -4, \"dst\": 1}\n",
            None,
            None,
        )
        .unwrap_err();
        assert!(matches!(
            bad.kind,
            MutateErrorKind::BadValue { field: "src", .. }
        ));
    }

    #[test]
    fn jsonl_round_trips() {
        let batches = vec![
            vec![
                Mutation::Insert {
                    src: 3,
                    dst: 4,
                    weight: None,
                },
                Mutation::Delete { src: 1, dst: 0 },
            ],
            vec![Mutation::Insert {
                src: 0,
                dst: 2,
                weight: None,
            }],
        ];
        let text = to_jsonl(&batches);
        let back = parse_mutations(&text, Some(5), Some(false)).unwrap();
        assert_eq!(batches, back);
    }
}
