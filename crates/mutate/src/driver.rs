//! The mutation driver: pre-materialize graph epochs, patch a live
//! session through each batch, and repair instead of recomputing.
//!
//! The session borrows the graph it runs over, so all epochs are
//! materialized up front via [`PatchableCsr`] — one [`Csr`] (plus CSC
//! mirror) per batch boundary — and the session is then walked through
//! them: `apply_patch` splices each delta into the chunked region and
//! [`repair_session`] re-converges the program state from the patch's
//! affected-vertex frontier. The optional verify mode replays every epoch
//! against the in-memory oracle and records bit-identity per batch — the
//! hard oracle behind the `mutate-smoke` CI job and the incremental bench
//! lane.

use ascetic_algos::inmemory::run_in_memory;
use ascetic_algos::VertexProgram;
use ascetic_core::{repair_session, AsceticConfig, AsceticSession, RepairMode, RunReport};
use ascetic_graph::{Csr, GraphPatch, Mutation, PatchError, PatchableCsr};

/// All graph epochs of a mutation stream, materialized up front.
pub struct Epochs {
    /// `versions[i]` is the graph after the first `i` batches
    /// (`versions[0]` is the base graph re-packed through the patch
    /// store's canonical chunking).
    pub versions: Vec<Csr>,
    /// The CSC mirror of each version (same indexing).
    pub cscs: Vec<Csr>,
    /// `patches[i]` turned `versions[i]` into `versions[i + 1]`.
    pub patches: Vec<GraphPatch>,
}

/// Apply `batches` through a [`PatchableCsr`] and keep every intermediate
/// epoch. Fails on the first malformed mutation (weight-rule violation or
/// out-of-range endpoint), identifying the batch by index.
pub fn materialize(g: &Csr, batches: &[Vec<Mutation>]) -> Result<Epochs, (usize, PatchError)> {
    let mut store = PatchableCsr::with_defaults(g, true);
    let mut versions = vec![store.to_csr()];
    let mut cscs = vec![store.to_csc().expect("mirror requested")];
    let mut patches = Vec::with_capacity(batches.len());
    for (i, batch) in batches.iter().enumerate() {
        patches.push(store.apply(batch).map_err(|e| (i, e))?);
        versions.push(store.to_csr());
        cscs.push(store.to_csc().expect("mirror requested"));
    }
    Ok(Epochs {
        versions,
        cscs,
        patches,
    })
}

/// What one batch cost and how the session recovered from it.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Batch index in the stream.
    pub index: usize,
    /// Edges inserted.
    pub inserts: u64,
    /// Parallel-edge copies removed.
    pub deletes: u64,
    /// Deletes that named no live edge (counted no-ops).
    pub missing_deletes: u64,
    /// How [`repair_session`] re-converged.
    pub mode: RepairMode,
    /// Seed-frontier size (0 unless [`RepairMode::Seeded`]).
    pub seed_count: u64,
    /// Bytes the delta patch put on the wire (splice traffic, not the
    /// repair run's on-demand transfers).
    pub patch_wire_bytes: u64,
    /// Simulated time the in-place splice took, ns.
    pub patch_ns: u64,
    /// Resident device chunks rewritten in place by the patch.
    pub refreshed_chunks: u32,
    /// Resident device chunks evicted by the patch (graph shrank past
    /// their range).
    pub evicted_chunks: u32,
    /// Simulated time of the repair run, ns (warm session: no prestore).
    pub repair_ns: u64,
    /// H2D wire bytes the repair run moved.
    pub repair_wire_bytes: u64,
    /// Iterations the repair needed.
    pub repair_iterations: u32,
    /// Active edges the repair touched, summed over its iterations.
    pub repair_active_edges: u64,
    /// Fingerprint of the program output after this batch.
    pub fingerprint: u64,
    /// `Some(true)` iff verify mode ran and the repaired output was
    /// bit-identical to a cold in-memory recompute on the mutated graph.
    pub matches_recompute: Option<bool>,
}

/// A full mutated run: base convergence plus one [`BatchOutcome`] per
/// batch.
pub struct MutationRun {
    /// The initial (pre-mutation) convergence on the base graph.
    pub base: RunReport,
    /// Per-batch patch + repair accounting, in stream order.
    pub batches: Vec<BatchOutcome>,
}

impl MutationRun {
    /// Whether every verified batch matched the recompute oracle
    /// (vacuously true when verify mode was off).
    pub fn all_verified(&self) -> bool {
        self.batches
            .iter()
            .all(|b| b.matches_recompute.unwrap_or(true))
    }

    /// Fingerprint of the final output (base fingerprint if no batches).
    pub fn final_fingerprint(&self) -> u64 {
        self.batches
            .last()
            .map(|b| b.fingerprint)
            .unwrap_or_else(|| self.base.output.fingerprint())
    }
}

/// Run `prog` over `g`, then stream `batches` through the session —
/// patching the resident chunks in place and repairing the program state
/// after each batch. With `verify`, every batch's repaired output is
/// compared bit-identically against a cold in-memory recompute on the
/// mutated graph ([`BatchOutcome::matches_recompute`]).
pub fn run_with_mutations<P: VertexProgram>(
    cfg: AsceticConfig,
    g: &Csr,
    prog: &P,
    batches: &[Vec<Mutation>],
    verify: bool,
) -> Result<MutationRun, (usize, PatchError)> {
    let epochs = materialize(g, batches)?;
    let mut sess = AsceticSession::new(cfg, &epochs.versions[0]);
    let mut state = prog.new_state(&epochs.versions[0]);
    let base = sess.run_with_state(prog, &state, prog.initial_frontier(&epochs.versions[0]));
    let mut outcomes = Vec::with_capacity(epochs.patches.len());
    for (i, patch) in epochs.patches.iter().enumerate() {
        let (g_old, g_new) = (&epochs.versions[i], &epochs.versions[i + 1]);
        let pa = sess.apply_patch(g_new, Some(&epochs.cscs[i + 1]), patch);
        let out = repair_session(&mut sess, prog, &mut state, g_old, patch);
        let matches_recompute =
            verify.then(|| out.report.output == run_in_memory(g_new, prog).output);
        outcomes.push(BatchOutcome {
            index: i,
            inserts: patch.inserts.len() as u64,
            deletes: patch.deletes.len() as u64,
            missing_deletes: patch.missing_deletes,
            mode: out.mode,
            seed_count: out.seed_count,
            patch_wire_bytes: pa.wire_bytes,
            patch_ns: pa.patch_ns,
            refreshed_chunks: pa.refreshed_chunks,
            evicted_chunks: pa.evicted_chunks,
            repair_ns: out.report.sim_time_ns,
            repair_wire_bytes: out.report.xfer.h2d_wire_bytes,
            repair_iterations: out.report.iterations,
            repair_active_edges: out.report.per_iter.iter().map(|it| it.active_edges).sum(),
            fingerprint: out.report.output.fingerprint(),
            matches_recompute,
        });
    }
    Ok(MutationRun {
        base,
        batches: outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::synthetic_churn;
    use ascetic_algos::{Bfs, LabelPropagation, Sssp};
    use ascetic_graph::datasets::weighted_variant;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_sim::DeviceConfig;

    fn cfg_for(g: &Csr) -> AsceticConfig {
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 2 / 5);
        AsceticConfig::new(dev).with_chunk_bytes(1024)
    }

    #[test]
    fn driver_repairs_and_verifies_every_batch() {
        let g = uniform_graph(700, 5_000, false, 31);
        let batches = synthetic_churn(&g, 3, 20, 8);
        let run = run_with_mutations(cfg_for(&g), &g, &Bfs::new(0), &batches, true).unwrap();
        assert_eq!(run.batches.len(), 3);
        assert!(run.all_verified());
        assert!(run
            .batches
            .iter()
            .all(|b| b.mode == RepairMode::Seeded && b.patch_wire_bytes > 0));
        assert_eq!(
            run.final_fingerprint(),
            run.batches.last().unwrap().fingerprint
        );
    }

    #[test]
    fn driver_handles_weighted_programs() {
        let g = weighted_variant(&uniform_graph(400, 2_500, false, 33));
        let batches = synthetic_churn(&g, 2, 15, 12);
        let run = run_with_mutations(cfg_for(&g), &g, &Sssp::new(0), &batches, true).unwrap();
        assert!(run.all_verified());
    }

    #[test]
    fn driver_falls_back_for_non_incremental_programs() {
        let g = uniform_graph(300, 2_000, false, 35);
        let batches = synthetic_churn(&g, 2, 10, 21);
        let run = run_with_mutations(
            cfg_for(&g),
            &g,
            &LabelPropagation::default(),
            &batches,
            true,
        )
        .unwrap();
        assert!(run.all_verified());
        assert!(run
            .batches
            .iter()
            .all(|b| b.mode == RepairMode::Fallback && b.seed_count == 0));
    }

    #[test]
    fn materialize_reports_the_failing_batch() {
        let g = uniform_graph(50, 200, false, 1);
        let batches = vec![
            vec![Mutation::Insert {
                src: 0,
                dst: 1,
                weight: None,
            }],
            vec![Mutation::Insert {
                src: 0,
                dst: 1,
                weight: Some(7),
            }],
        ];
        let Err((idx, _)) = materialize(&g, &batches) else {
            panic!("weighted insert into an unweighted graph must fail");
        };
        assert_eq!(idx, 1, "the failure is in the second batch");
    }
}
