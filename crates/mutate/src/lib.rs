#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic-mutate — streaming graph mutations with incremental recompute
//!
//! The paper's static/on-demand split assumes the graph is frozen; this
//! crate relaxes that. Edge insert/delete batches are delta-patched into
//! the live session's chunked CSR (resident device chunks rewritten in
//! place, not re-prestored) and the converged program state is *repaired*
//! — re-run from an affected-vertex frontier — instead of recomputed
//! cold. The hard oracle throughout: the patched-and-repaired result is
//! **bit-identical** to a full recompute on the mutated graph.
//!
//! Module map:
//!
//! * [`ingest`] — JSONL mutation batches with line-accurate parse errors,
//!   in the same format family as the serve job traces.
//! * [`churn`] — deterministic synthetic insert/delete streams whose
//!   deletes always name live edges (for benches, CI and proptests).
//! * [`driver`] — epoch materialization via `ascetic_graph::PatchableCsr`
//!   and the patch → repair → (optionally) verify loop over an
//!   `ascetic_core::AsceticSession`.
//!
//! The pieces underneath live where their data lives: the delta-patching
//! store in `ascetic-graph` (`patch`), the in-place device splice in
//! `ascetic-core` (`AsceticSession::apply_patch`), the repair engine in
//! `ascetic-core` (`repair`), and the per-program invalidate-then-settle
//! passes in `ascetic-algos` (`incremental` + `VertexProgram::repair`).

pub mod churn;
pub mod driver;
pub mod ingest;

pub use churn::synthetic_churn;
pub use driver::{materialize, run_with_mutations, BatchOutcome, Epochs, MutationRun};
pub use ingest::{parse_mutations, to_jsonl, MutateError, MutateErrorKind};
