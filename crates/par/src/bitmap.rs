//! Plain and concurrent bitmaps.
//!
//! The Ascetic dataflow (paper Figure 4) is bitmap algebra over vertices:
//!
//! ```text
//! StaticMap    = ActiveBitmap AND StaticBitmap      (compute in Static Region)
//! OndemandMap  = ActiveBitmap AND-NOT StaticBitmap  (fetch from CPU)
//! ```
//!
//! [`Bitmap`] is the single-owner variant used for per-iteration maps;
//! [`AtomicBitmap`] is the shared variant the "kernels" write next-iteration
//! frontiers into from many threads at once. Both store 64 bits per word and
//! expose word-level bulk combinators so the map generation step costs
//! O(|V|/64), matching the paper's cheap `GenDataMap` phase.

use std::sync::atomic::{AtomicU64, Ordering};

const WORD_BITS: usize = 64;

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// Mask selecting the valid bits of the final word of a bitmap of `len` bits.
#[inline]
fn tail_mask(len: usize) -> u64 {
    let rem = len % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// A fixed-length, single-owner bitmap.
///
/// ```
/// use ascetic_par::Bitmap;
/// let mut active = Bitmap::new(128);
/// active.set(3);
/// active.set(90);
/// let mut resident = Bitmap::new(128);
/// resident.set(3);
/// // the paper's Figure-4 split:
/// let static_map = active.and(&resident);
/// let ondemand_map = active.and_not(&resident);
/// assert_eq!(static_map.to_indices(), vec![3]);
/// assert_eq!(ondemand_map.to_indices(), vec![90]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitmap(len={}, ones={})", self.len, self.count_ones())
    }
}

impl Bitmap {
    /// An all-zero bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; word_count(len)],
            len,
        }
    }

    /// An all-one bitmap of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; word_count(len)],
            len,
        };
        if let Some(last) = b.words.last_mut() {
            *last &= tail_mask(len);
        }
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Set bit `i` to one.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Set bit `i` to `v`.
    #[inline]
    pub fn assign(&mut self, i: usize, v: bool) {
        if v {
            self.set(i)
        } else {
            self.clear(i)
        }
    }

    /// Zero every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Population count.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∧ other`, element-wise. Panics on length mismatch.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// `self ∧ ¬other`: bits set here and not in `other`.
    ///
    /// This is the paper's `OndemandMap` derivation (Active XOR
    /// (Active AND Static) ≡ Active AND-NOT Static).
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & !b)
            .collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// `self ⊕ other`, element-wise.
    pub fn xor(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a ^ b)
            .collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// `self ∨ other`, element-wise.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// Iterate over the indices of set bits, ascending.
    ///
    /// Zero words are skipped before any per-bit work: on the sparse
    /// frontiers graph traversal produces (a handful of set bits across
    /// millions of vertices), the filter turns iteration cost from
    /// O(|V|/64 · per-word setup) into a plain word scan.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .flat_map(|(wi, &w)| {
                let base = wi * WORD_BITS;
                BitIter { word: w }.map(move |b| base + b)
            })
    }

    /// Collect set-bit indices into a vector (the paper's `StaticNodes` /
    /// `OndemandNodes` arrays are exactly this, with `u32` vertex ids).
    pub fn to_indices(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.count_ones());
        v.extend(self.iter_ones().map(|i| i as u32));
        v
    }

    /// Raw word slice (read-only), for bulk hashing or serialization.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Iterator over the set-bit positions of a single word.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

/// A fixed-length bitmap that can be set concurrently from many threads.
///
/// Reads made while writers are active are racy in the usual benign way
/// (Relaxed atomics): the Ascetic kernels only ever *set* bits of the next
/// frontier during a compute phase, and the single-threaded driver snapshots
/// it between phases.
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitmap {
    /// An all-zero concurrent bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        AtomicBitmap {
            words: (0..word_count(len)).map(|_| AtomicU64::new(0)).collect(),
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Atomically set bit `i`. Returns `true` when this call flipped it
    /// (i.e. the bit was previously clear) — used to count newly activated
    /// vertices exactly once.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % WORD_BITS);
        let prev = self.words[i / WORD_BITS].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Test bit `i` (Relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS].load(Ordering::Relaxed) >> (i % WORD_BITS) & 1 == 1
    }

    /// Zero every bit (single-threaded phase only).
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Copy the current contents into a plain [`Bitmap`].
    pub fn snapshot(&self) -> Bitmap {
        Bitmap {
            words: self
                .words
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            len: self.len,
        }
    }

    /// Population count (Relaxed; exact only between phases).
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Overwrite from a plain bitmap of the same length.
    pub fn load_from(&self, src: &Bitmap) {
        assert_eq!(self.len, src.len, "bitmap length mismatch");
        for (dst, &s) in self.words.iter().zip(&src.words) {
            dst.store(s, Ordering::Relaxed);
        }
    }
}

impl From<&Bitmap> for AtomicBitmap {
    fn from(b: &Bitmap) -> Self {
        let a = AtomicBitmap::new(b.len);
        a.load_from(b);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::parallel_for;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn ones_respects_tail() {
        for len in [1, 63, 64, 65, 127, 128, 129, 1000] {
            let b = Bitmap::ones(len);
            assert_eq!(b.count_ones(), len, "len={len}");
            assert!(b.get(len - 1));
        }
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert!(b.is_all_zero());
        assert_eq!(b.to_indices(), Vec::<u32>::new());
    }

    #[test]
    fn and_xor_andnot_match_per_bit() {
        let n = 200;
        let mut a = Bitmap::new(n);
        let mut b = Bitmap::new(n);
        for i in (0..n).step_by(3) {
            a.set(i);
        }
        for i in (0..n).step_by(5) {
            b.set(i);
        }
        let and = a.and(&b);
        let xor = a.xor(&b);
        let andnot = a.and_not(&b);
        let or = a.or(&b);
        for i in 0..n {
            assert_eq!(and.get(i), a.get(i) && b.get(i));
            assert_eq!(xor.get(i), a.get(i) ^ b.get(i));
            assert_eq!(andnot.get(i), a.get(i) && !b.get(i));
            assert_eq!(or.get(i), a.get(i) || b.get(i));
        }
    }

    #[test]
    fn ondemand_map_identity() {
        // Active XOR (Active AND Static) == Active AND-NOT Static, the
        // identity Figure 4 relies on.
        let n = 500;
        let mut active = Bitmap::new(n);
        let mut stat = Bitmap::new(n);
        for i in (0..n).step_by(2) {
            active.set(i);
        }
        for i in (0..n).step_by(7) {
            stat.set(i);
        }
        let static_map = active.and(&stat);
        let od_via_xor = active.xor(&static_map);
        let od_via_andnot = active.and_not(&stat);
        assert_eq!(od_via_xor, od_via_andnot);
    }

    #[test]
    fn iter_ones_ascending_and_complete() {
        let mut b = Bitmap::new(300);
        let picks = [0usize, 1, 63, 64, 65, 128, 255, 299];
        for &i in &picks {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, picks);
        assert_eq!(
            b.to_indices(),
            picks.iter().map(|&i| i as u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn atomic_set_reports_first_setter() {
        let a = AtomicBitmap::new(100);
        assert!(a.set(42));
        assert!(!a.set(42));
        assert!(a.get(42));
        assert_eq!(a.count_ones(), 1);
    }

    #[test]
    fn concurrent_sets_all_land() {
        let n = 100_000;
        let a = AtomicBitmap::new(n);
        parallel_for(n, |i| {
            a.set(i);
        });
        assert_eq!(a.count_ones(), n);
        let snap = a.snapshot();
        assert_eq!(snap.count_ones(), n);
    }

    #[test]
    fn snapshot_and_load_roundtrip() {
        let mut b = Bitmap::new(777);
        for i in (0..777).step_by(11) {
            b.set(i);
        }
        let a = AtomicBitmap::new(777);
        a.load_from(&b);
        assert_eq!(a.snapshot(), b);
        a.clear_all();
        assert_eq!(a.count_ones(), 0);
        let a2: AtomicBitmap = (&b).into();
        assert_eq!(a2.snapshot(), b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_panics_on_mismatch() {
        let a = Bitmap::new(10);
        let b = Bitmap::new(11);
        let _ = a.and(&b);
    }
}
