//! Chunked parallel-for over an index range.
//!
//! The simulated GPU executes its "kernels" on host cores. A kernel is a loop
//! over work items (active vertices, edge chunks, bitmap words); this module
//! provides the loop. Work is handed out in fixed-size chunks through a single
//! shared atomic cursor, which gives dynamic load balancing (important for
//! power-law graphs where one vertex can own millions of edges) without any
//! per-item synchronization.
//!
//! The thread count defaults to the machine's available parallelism and can
//! be overridden globally with [`set_num_threads`] (used by tests and by the
//! deterministic benchmark harness; note that simulated *time* never depends
//! on the host thread count — only wall time does).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global override for the worker thread count. `0` means "not set".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Minimum number of items each chunk grab should cover. Small enough to
/// balance skewed work, big enough that cursor contention is negligible.
const MIN_CHUNK: usize = 64;

/// Set the number of worker threads used by [`parallel_for`].
///
/// Passing `0` restores the default (machine parallelism).
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Number of worker threads [`parallel_for`] will use right now.
pub fn current_num_threads() -> usize {
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pick a chunk size for a loop of `len` items on `threads` workers.
///
/// Aims for ~8 chunks per thread so stealing can smooth out skew, with a
/// floor of [`MIN_CHUNK`] to keep the shared cursor cold.
fn chunk_size(len: usize, threads: usize) -> usize {
    let target = len / (threads * 8).max(1);
    target.max(MIN_CHUNK).min(len.max(1))
}

/// Run `body(i)` for every `i in 0..len`, in parallel.
///
/// `body` must be safe to call concurrently from multiple threads
/// (`Sync + Send` closure over shared state — typically atomics or disjoint
/// indexed writes through interior mutability).
///
/// Degenerates to a plain serial loop when `len` is small or only one thread
/// is configured, so it is safe to use in cold paths too.
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let sum = AtomicU64::new(0);
/// ascetic_par::parallel_for(1_000, |i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 999 * 1_000 / 2);
/// ```
pub fn parallel_for<F>(len: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_with(len, |_, i| body(i));
}

/// Like [`parallel_for`] but the body also receives the worker index
/// (`0..current_num_threads()`), for per-thread scratch buffers.
pub fn parallel_for_with<F>(len: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    let threads = current_num_threads().min(len).max(1);
    if threads == 1 || len <= MIN_CHUNK {
        for i in 0..len {
            body(0, i);
        }
        return;
    }
    let chunk = chunk_size(len, threads);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let cursor = &cursor;
            let body = &body;
            scope.spawn(move || loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                for i in start..end {
                    body(worker, i);
                }
            });
        }
    });
}

/// Split `0..len` into per-worker ranges, run `body(worker, range)` on each
/// worker thread, and collect the return values in worker order.
///
/// Unlike [`parallel_for`], the split is static (one contiguous range per
/// worker); use this when the body needs to produce an owned result per
/// thread (e.g. per-thread gather buffers that are later concatenated).
pub fn parallel_ranges<T, F>(len: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    let threads = current_num_threads().min(len.max(1)).max(1);
    if threads == 1 {
        return vec![body(0, 0..len)];
    }
    let per = len.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..threads).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (worker, slot) in out.iter_mut().enumerate() {
            let body = &body;
            scope.spawn(move || {
                let start = (worker * per).min(len);
                let end = ((worker + 1) * per).min(len);
                *slot = Some(body(worker, start..end));
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker completed"))
        .collect()
}

/// Map fixed-size blocks of `0..len` to values, in parallel, returning the
/// results in block order.
///
/// Unlike [`parallel_ranges`], the work decomposition is **independent of
/// the thread count**: block `i` always covers
/// `i*block_size .. min((i+1)*block_size, len)`. Use this whenever the
/// per-block computation is seeded by its block (e.g. deterministic
/// parallel RNG streams in the graph generators) so that results are
/// reproducible on any machine.
pub fn parallel_map_fixed_blocks<T, F>(len: usize, block_size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    assert!(block_size > 0, "block size must be positive");
    let nblocks = len.div_ceil(block_size);
    let nested = parallel_ranges(nblocks, |_, brange| {
        brange
            .map(|b| f(b, b * block_size..((b + 1) * block_size).min(len)))
            .collect::<Vec<T>>()
    });
    nested.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Tests that mutate the global thread override serialize on this.
    static THREAD_OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_a_noop() {
        parallel_for(0, |_| panic!("must not be called"));
    }

    #[test]
    fn single_item() {
        let sum = AtomicU64::new(0);
        parallel_for(1, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sums_match_serial() {
        let n = 123_457;
        let sum = AtomicU64::new(0);
        parallel_for(n, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        let expect = (n as u64 - 1) * n as u64 / 2;
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn worker_ids_are_in_range() {
        let _g = THREAD_OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(4);
        let bad = AtomicUsize::new(0);
        parallel_for_with(50_000, |w, _| {
            if w >= 4 {
                bad.fetch_add(1, Ordering::Relaxed);
            }
        });
        set_num_threads(0);
        assert_eq!(bad.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn respects_thread_override() {
        let _g = THREAD_OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(1);
        assert_eq!(current_num_threads(), 1);
        // Serial path must still cover everything.
        let sum = AtomicU64::new(0);
        parallel_for(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        set_num_threads(0);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn parallel_ranges_partition_the_domain() {
        let n = 100_001;
        let parts = parallel_ranges(n, |_, r| r);
        let mut all: Vec<usize> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all.len(), n);
        assert!(all.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn parallel_ranges_empty() {
        let parts = parallel_ranges(0, |_, r| r.len());
        assert_eq!(parts.iter().sum::<usize>(), 0);
    }

    #[test]
    fn fixed_blocks_are_thread_count_independent() {
        let _g = THREAD_OVERRIDE_LOCK.lock().unwrap();
        let run = || parallel_map_fixed_blocks(1000, 64, |b, r| (b, r.start, r.end));
        set_num_threads(1);
        let serial = run();
        set_num_threads(7);
        let par = run();
        set_num_threads(0);
        assert_eq!(serial, par);
        assert_eq!(serial.len(), 16);
        assert_eq!(serial[0], (0, 0, 64));
        assert_eq!(serial[15], (15, 960, 1000));
    }

    #[test]
    fn fixed_blocks_empty_input() {
        let out = parallel_map_fixed_blocks(0, 64, |b, _| b);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_size_has_floor() {
        assert_eq!(chunk_size(10, 4), 10);
        assert!(chunk_size(1_000_000, 8) >= MIN_CHUNK);
        assert_eq!(chunk_size(0, 4), 1);
    }
}
