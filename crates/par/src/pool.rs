//! Chunked parallel-for over an index range.
//!
//! The simulated GPU executes its "kernels" on host cores. A kernel is a loop
//! over work items (active vertices, edge chunks, bitmap words); this module
//! provides the loop. Work is handed out in fixed-size chunks through a single
//! shared atomic cursor, which gives dynamic load balancing (important for
//! power-law graphs where one vertex can own millions of edges) without any
//! per-item synchronization.
//!
//! Jobs are executed by the **persistent worker pool** in [`crate::workers`]
//! (workers spawned once and parked between jobs) rather than by spawning
//! fresh scoped threads per call; the old behaviour survives as
//! [`crate::DispatchMode::Spawn`] for A/B measurement.
//!
//! The thread count defaults to the machine's available parallelism and can
//! be overridden globally with [`set_num_threads`] (used by tests and by the
//! deterministic benchmark harness; note that simulated *time* never depends
//! on the host thread count — only wall time does).
//!
//! # `set_num_threads` contract
//!
//! The override is a relaxed global: it takes effect at the **next job
//! boundary**. Every parallel primitive reads the count exactly once, at
//! dispatch, and latches it for the whole job — a concurrent
//! `set_num_threads` therefore never changes the worker-index range
//! (`0..threads`) or the decomposition of a job already in flight, and the
//! persistent pool only grows between jobs (while holding the submit lock),
//! never mid-job.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::workers::{note_inline_job, run_on_workers, CHUNKS_SERVED};

/// Global override for the worker thread count. `0` means "not set".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Minimum number of items each chunk grab should cover. Small enough to
/// balance skewed work, big enough that cursor contention is negligible.
const MIN_CHUNK: usize = 64;

/// Set the number of worker threads used by [`parallel_for`].
///
/// Passing `0` restores the default (machine parallelism). Takes effect at
/// the next job boundary; jobs already in flight keep the count they
/// latched at dispatch (see the module docs).
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Number of worker threads [`parallel_for`] will use right now.
pub fn current_num_threads() -> usize {
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pick a chunk size for a loop of `len` items on `threads` workers.
///
/// Aims for ~8 chunks per thread so stealing can smooth out skew, with a
/// floor of [`MIN_CHUNK`] to keep the shared cursor cold.
fn chunk_size(len: usize, threads: usize) -> usize {
    let target = len / (threads * 8).max(1);
    target.max(MIN_CHUNK).min(len.max(1))
}

/// Run `body(i)` for every `i in 0..len`, in parallel.
///
/// `body` must be safe to call concurrently from multiple threads
/// (`Sync + Send` closure over shared state — typically atomics or disjoint
/// indexed writes through interior mutability).
///
/// Degenerates to a plain serial loop when `len` is small or only one thread
/// is configured, so it is safe to use in cold paths too.
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let sum = AtomicU64::new(0);
/// ascetic_par::parallel_for(1_000, |i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 999 * 1_000 / 2);
/// ```
pub fn parallel_for<F>(len: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_with(len, |_, i| body(i));
}

/// Like [`parallel_for`] but the body also receives the worker index
/// (`0..current_num_threads()`), for per-thread scratch buffers.
pub fn parallel_for_with<F>(len: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    let threads = current_num_threads().min(len).max(1);
    if threads == 1 || len <= MIN_CHUNK {
        note_inline_job();
        for i in 0..len {
            body(0, i);
        }
        return;
    }
    let chunk = chunk_size(len, threads);
    let cursor = AtomicUsize::new(0);
    run_on_workers(threads, |worker| loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= len {
            break;
        }
        CHUNKS_SERVED.fetch_add(1, Ordering::Relaxed);
        let end = (start + chunk).min(len);
        for i in start..end {
            body(worker, i);
        }
    });
}

/// Split `0..len` into per-worker ranges, run `body(worker, range)` on each
/// worker thread, and collect the return values in worker order.
///
/// Unlike [`parallel_for`], the split is static (one contiguous range per
/// worker); use this when the body needs to produce an owned result per
/// thread (e.g. per-thread gather buffers that are later concatenated).
///
/// Every returned range is **non-empty**: when `len` does not divide evenly
/// across the configured threads, only as many workers as have work are
/// used — no worker is dispatched on an empty range, and `len == 0` yields
/// an empty vector.
pub fn parallel_ranges<T, F>(len: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(len).max(1);
    if threads == 1 {
        return vec![body(0, 0..len)];
    }
    let per = len.div_ceil(threads);
    // With `per = ceil(len/threads)`, the trailing workers can end up with
    // empty ranges (e.g. len=10, threads=8 → per=2 → workers 5..8 idle).
    // Dispatch only the workers that have work.
    let nranges = len.div_ceil(per);
    let slots: Vec<Mutex<Option<T>>> = (0..nranges).map(|_| Mutex::new(None)).collect();
    run_on_workers(nranges, |worker| {
        let start = worker * per;
        let end = ((worker + 1) * per).min(len);
        *slots[worker].lock().unwrap() = Some(body(worker, start..end));
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker completed"))
        .collect()
}

/// Run `body(index, part)` for every element of `parts`, one worker per
/// part, consuming the parts.
///
/// This is the primitive behind "each worker fills a disjoint `&mut`
/// window" patterns (the on-demand gather, the parallel scan's second
/// pass): split a buffer with `split_at_mut`, push the windows into a
/// `Vec`, and let each worker take exactly one. Parts run concurrently on
/// the persistent pool; a single part runs inline on the caller.
pub fn parallel_parts<T, F>(parts: Vec<T>, body: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    match parts.len() {
        0 => {}
        1 => {
            note_inline_job();
            for (i, p) in parts.into_iter().enumerate() {
                body(i, p);
            }
        }
        n => {
            let slots: Vec<Mutex<Option<T>>> =
                parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
            run_on_workers(n, |worker| {
                let part = slots[worker]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each part is taken exactly once");
                body(worker, part);
            });
        }
    }
}

/// Map fixed-size blocks of `0..len` to values, in parallel, returning the
/// results in block order.
///
/// Unlike [`parallel_ranges`], the work decomposition is **independent of
/// the thread count**: block `i` always covers
/// `i*block_size .. min((i+1)*block_size, len)`. Use this whenever the
/// per-block computation is seeded by its block (e.g. deterministic
/// parallel RNG streams in the graph generators) so that results are
/// reproducible on any machine.
pub fn parallel_map_fixed_blocks<T, F>(len: usize, block_size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    assert!(block_size > 0, "block size must be positive");
    let nblocks = len.div_ceil(block_size);
    let nested = parallel_ranges(nblocks, |_, brange| {
        brange
            .map(|b| f(b, b * block_size..((b + 1) * block_size).min(len)))
            .collect::<Vec<T>>()
    });
    nested.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Tests that mutate the global thread override serialize on this.
    static THREAD_OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_a_noop() {
        parallel_for(0, |_| panic!("must not be called"));
    }

    #[test]
    fn single_item() {
        let sum = AtomicU64::new(0);
        parallel_for(1, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sums_match_serial() {
        let n = 123_457;
        let sum = AtomicU64::new(0);
        parallel_for(n, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        let expect = (n as u64 - 1) * n as u64 / 2;
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn worker_ids_are_in_range() {
        let _g = THREAD_OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(4);
        let bad = AtomicUsize::new(0);
        parallel_for_with(50_000, |w, _| {
            if w >= 4 {
                bad.fetch_add(1, Ordering::Relaxed);
            }
        });
        set_num_threads(0);
        assert_eq!(bad.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn respects_thread_override() {
        let _g = THREAD_OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(1);
        assert_eq!(current_num_threads(), 1);
        // Serial path must still cover everything.
        let sum = AtomicU64::new(0);
        parallel_for(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        set_num_threads(0);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn thread_count_change_applies_at_the_next_job_boundary() {
        // The contract: a concurrent set_num_threads never corrupts an
        // in-flight job. Hammer the override from one thread while another
        // runs jobs; every job must still cover each index exactly once
        // and keep worker ids within the largest configured count.
        let _g = THREAD_OVERRIDE_LOCK.lock().unwrap();
        let stop = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let stop_ref = &stop;
            s.spawn(move || {
                let mut t = 1;
                while stop_ref.load(Ordering::Relaxed) == 0 {
                    set_num_threads(t);
                    t = t % 8 + 1;
                    std::hint::spin_loop();
                }
            });
            for _ in 0..50 {
                let n = 10_000;
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                let bad = AtomicUsize::new(0);
                parallel_for_with(n, |w, i| {
                    if w >= 8 {
                        bad.fetch_add(1, Ordering::Relaxed);
                    }
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(bad.load(Ordering::Relaxed), 0, "worker id beyond latch");
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            }
            stop.store(1, Ordering::Relaxed);
        });
        set_num_threads(0);
    }

    #[test]
    fn parallel_ranges_partition_the_domain() {
        let n = 100_001;
        let parts = parallel_ranges(n, |_, r| r);
        let mut all: Vec<usize> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all.len(), n);
        assert!(all.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn parallel_ranges_empty() {
        let parts = parallel_ranges(0, |_, r| r.len());
        assert_eq!(parts.iter().sum::<usize>(), 0);
        assert!(parts.is_empty(), "len == 0 dispatches no workers");
    }

    #[test]
    fn parallel_ranges_single_item() {
        let _g = THREAD_OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(8);
        let parts = parallel_ranges(1, |w, r| (w, r));
        set_num_threads(0);
        assert_eq!(parts, vec![(0, 0..1)], "one item → exactly one worker");
    }

    #[test]
    fn parallel_ranges_never_yield_empty_ranges() {
        let _g = THREAD_OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(8);
        // len=10, threads=8 → per=2 → only 5 workers have work.
        let parts = parallel_ranges(10, |_, r| r);
        set_num_threads(0);
        assert_eq!(parts.len(), 5);
        assert!(parts.iter().all(|r| !r.is_empty()));
        let covered: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_parts_consumes_each_part_once() {
        let hits: Vec<AtomicUsize> = (0..7).map(|_| AtomicUsize::new(0)).collect();
        let parts: Vec<usize> = (0..7).collect();
        parallel_parts(parts, |worker, part| {
            assert_eq!(worker, part, "part i goes to worker i");
            hits[part].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_parts_moves_mutable_borrows() {
        let mut data = vec![0u32; 100];
        let mut windows: Vec<(usize, &mut [u32])> = Vec::new();
        let mut rest: &mut [u32] = &mut data;
        for i in 0..4 {
            let (w, tail) = std::mem::take(&mut rest).split_at_mut(25);
            rest = tail;
            windows.push((i, w));
        }
        parallel_parts(windows, |_, (i, w)| {
            for x in w.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        for (i, chunk) in data.chunks(25).enumerate() {
            assert!(chunk.iter().all(|&x| x == i as u32 + 1));
        }
    }

    #[test]
    fn parallel_parts_empty_and_single() {
        parallel_parts(Vec::<u32>::new(), |_, _| panic!("no parts, no calls"));
        let seen = AtomicUsize::new(0);
        parallel_parts(vec![41u32], |w, p| {
            assert_eq!((w, p), (0, 41));
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fixed_blocks_are_thread_count_independent() {
        let _g = THREAD_OVERRIDE_LOCK.lock().unwrap();
        let run = || parallel_map_fixed_blocks(1000, 64, |b, r| (b, r.start, r.end));
        set_num_threads(1);
        let serial = run();
        set_num_threads(7);
        let par = run();
        set_num_threads(0);
        assert_eq!(serial, par);
        assert_eq!(serial.len(), 16);
        assert_eq!(serial[0], (0, 0, 64));
        assert_eq!(serial[15], (15, 960, 1000));
    }

    #[test]
    fn fixed_blocks_empty_input() {
        let out = parallel_map_fixed_blocks(0, 64, |b, _| b);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_size_has_floor() {
        assert_eq!(chunk_size(10, 4), 10);
        assert!(chunk_size(1_000_000, 8) >= MIN_CHUNK);
        assert_eq!(chunk_size(0, 4), 1);
    }
}
