//! Per-thread scratch arenas: reusable buffers that survive across jobs.
//!
//! The hot paths of the simulated device repeatedly need short-lived
//! staging buffers — the on-demand gather serializes one adjacency list at
//! a time, the static region stages one chunk per fill/swap. Allocating
//! those on every call puts the allocator on the per-iteration critical
//! path. Because the worker pool threads are persistent (see
//! [`crate::workers`]), a thread-local pool of buffers amortizes those
//! allocations across batches *and* iterations: after warm-up, the steady
//! state performs zero staging allocations.
//!
//! Usage is take/put:
//!
//! ```
//! ascetic_par::with_scratch(|s| {
//!     let mut buf = s.take_u32();
//!     buf.extend_from_slice(&[1, 2, 3]);
//!     // ... use buf ...
//!     s.put_u32(buf); // returns the capacity to this thread's pool
//! });
//! ```
//!
//! A buffer that is never `put` back is simply dropped — the pool is an
//! optimization, not an obligation. Nested `with_scratch` calls get a
//! fresh (un-pooled) arena rather than deadlocking on the thread-local.

use std::cell::RefCell;

/// Buffers retained per type per thread; beyond this, `put_*` drops.
const MAX_POOLED: usize = 8;

/// A per-thread pool of reusable `Vec` buffers.
#[derive(Debug, Default)]
pub struct Scratch {
    u8s: Vec<Vec<u8>>,
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
}

impl Scratch {
    /// A fresh, empty arena (thread-locals start here).
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Take a cleared `Vec<u32>`, reusing a pooled buffer's capacity when
    /// one is available.
    pub fn take_u32(&mut self) -> Vec<u32> {
        self.u32s.pop().unwrap_or_default()
    }

    /// Return a `Vec<u32>` to the pool (cleared; capacity retained).
    pub fn put_u32(&mut self, mut buf: Vec<u32>) {
        if self.u32s.len() < MAX_POOLED && buf.capacity() > 0 {
            buf.clear();
            self.u32s.push(buf);
        }
    }

    /// Take a cleared `Vec<u64>`, reusing pooled capacity when available.
    pub fn take_u64(&mut self) -> Vec<u64> {
        self.u64s.pop().unwrap_or_default()
    }

    /// Return a `Vec<u64>` to the pool (cleared; capacity retained).
    pub fn put_u64(&mut self, mut buf: Vec<u64>) {
        if self.u64s.len() < MAX_POOLED && buf.capacity() > 0 {
            buf.clear();
            self.u64s.push(buf);
        }
    }

    /// Take a cleared `Vec<u8>`, reusing pooled capacity when available.
    /// Byte buffers back the streaming delta–varint encoder, which stages
    /// one transfer's compressed payload per call.
    pub fn take_u8(&mut self) -> Vec<u8> {
        self.u8s.pop().unwrap_or_default()
    }

    /// Return a `Vec<u8>` to the pool (cleared; capacity retained).
    pub fn put_u8(&mut self, mut buf: Vec<u8>) {
        if self.u8s.len() < MAX_POOLED && buf.capacity() > 0 {
            buf.clear();
            self.u8s.push(buf);
        }
    }

    /// Number of pooled buffers `(u32, u64)` — for tests and telemetry.
    pub fn pooled(&self) -> (usize, usize) {
        (self.u32s.len(), self.u64s.len())
    }

    /// Number of pooled `u8` buffers.
    pub fn pooled_u8(&self) -> usize {
        self.u8s.len()
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Run `f` with this thread's scratch arena.
///
/// On persistent pool workers and on long-lived caller threads the arena —
/// and therefore every pooled buffer capacity — survives across jobs and
/// iterations. A nested call (from inside `f`) receives a temporary empty
/// arena instead of panicking on the re-borrow.
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut arena) => f(&mut arena),
        Err(_) => f(&mut Scratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_capacity() {
        let mut s = Scratch::new();
        let mut b = s.take_u32();
        b.extend_from_slice(&[1, 2, 3, 4]);
        let cap = b.capacity();
        assert!(cap >= 4);
        s.put_u32(b);
        let b2 = s.take_u32();
        assert!(b2.is_empty(), "pooled buffers come back cleared");
        assert_eq!(b2.capacity(), cap, "capacity is retained");
    }

    #[test]
    fn pool_is_bounded() {
        let mut s = Scratch::new();
        for _ in 0..(MAX_POOLED + 5) {
            s.put_u64(Vec::with_capacity(16));
        }
        assert_eq!(s.pooled().1, MAX_POOLED);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut s = Scratch::new();
        s.put_u32(Vec::new());
        assert_eq!(s.pooled().0, 0, "no point pooling zero capacity");
    }

    #[test]
    fn thread_local_arena_persists_across_calls() {
        // Run on a dedicated thread so other tests' scratch use on this
        // thread cannot interfere with the capacity check.
        std::thread::spawn(|| {
            let cap = with_scratch(|s| {
                let mut b = s.take_u32();
                b.resize(1000, 7);
                let cap = b.capacity();
                s.put_u32(b);
                cap
            });
            let cap2 = with_scratch(|s| {
                let b = s.take_u32();
                let c = b.capacity();
                s.put_u32(b);
                c
            });
            assert_eq!(cap, cap2, "second call sees the first call's buffer");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn u8_pool_reuses_capacity_and_is_bounded() {
        let mut s = Scratch::new();
        let mut b = s.take_u8();
        b.extend_from_slice(&[1, 2, 3]);
        let cap = b.capacity();
        s.put_u8(b);
        let b2 = s.take_u8();
        assert!(b2.is_empty());
        assert_eq!(b2.capacity(), cap);
        s.put_u8(b2);
        for _ in 0..(MAX_POOLED + 5) {
            s.put_u8(Vec::with_capacity(8));
        }
        assert_eq!(s.pooled_u8(), MAX_POOLED);
    }

    #[test]
    fn nested_with_scratch_does_not_panic() {
        with_scratch(|outer| {
            let b = outer.take_u32();
            with_scratch(|inner| {
                let ib = inner.take_u32();
                inner.put_u32(ib);
            });
            outer.put_u32(b);
        });
    }
}
