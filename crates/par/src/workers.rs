//! The persistent worker pool behind [`crate::parallel_for`].
//!
//! Before this module existed, every parallel loop spawned and joined fresh
//! scoped OS threads — dozens of times per simulated iteration across the
//! compute, gather, bitmap and scan paths. Thread creation costs tens of
//! microseconds, which dominates small "kernels" exactly the way real GPU
//! launch overhead dominates small grids. The pool removes that overhead:
//!
//! * workers are spawned **lazily, once**, the first time a job needs them,
//!   and grow on demand when a later job asks for more;
//! * idle workers **spin briefly, then park on a condvar**. The bounded
//!   spin catches back-to-back dispatches (the common case inside an
//!   iteration) without a futex round-trip; only a genuinely idle pool
//!   pays the park/wake cost. The submitter waits for completion the same
//!   way: spin first, sleep after;
//! * the **submitting thread is worker 0** — it runs its share of the job
//!   in place instead of parking, so a `threads`-way job wakes only
//!   `threads - 1` pool workers;
//! * job submission is serialized by a submit lock. If a second thread
//!   submits while the pool is busy (`try_lock` fails) it falls back to the
//!   scoped-spawn path, so concurrent submitters never deadlock;
//! * a pool worker that itself calls a parallel primitive (re-entrancy)
//!   runs the nested job serially inline — nested jobs can never wait on
//!   workers that are busy running their parent.
//!
//! # Dispatch modes
//!
//! [`DispatchMode::Persistent`] is the default. The pre-pool behaviour is
//! kept as [`DispatchMode::Spawn`] for A/B measurement (the `wallclock`
//! bench binary flips between them in one process); the `ASCETIC_POOL`
//! environment variable (`spawn` | `persistent`) selects the initial mode.
//! The mode is read at each job boundary, never mid-job.
//!
//! # The one unsafe block
//!
//! Handing a borrowed closure to `'static` worker threads requires erasing
//! its lifetime (`Job` stores a raw pointer plus a monomorphized
//! trampoline). This is sound because the submitting thread **always**
//! blocks until every participating worker has finished the job — including
//! when the closure panics on either side — so the closure strictly
//! outlives every dereference. Everything else in the crate is safe Rust.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// How parallel jobs reach their worker threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchMode {
    /// Spawn and join fresh scoped threads per job (the pre-pool baseline,
    /// kept for A/B measurement).
    Spawn,
    /// Dispatch to the lazily-initialized persistent pool (default).
    Persistent,
}

/// 0 = unset (read `ASCETIC_POOL` on first use), 1 = spawn, 2 = persistent.
static MODE: AtomicUsize = AtomicUsize::new(0);

/// Select the dispatch mode for subsequent jobs (applies at the next job
/// boundary; jobs already in flight are unaffected).
pub fn set_dispatch_mode(mode: DispatchMode) {
    let v = match mode {
        DispatchMode::Spawn => 1,
        DispatchMode::Persistent => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// The dispatch mode new jobs will use right now.
pub fn dispatch_mode() -> DispatchMode {
    match MODE.load(Ordering::Relaxed) {
        1 => DispatchMode::Spawn,
        2 => DispatchMode::Persistent,
        _ => {
            let from_env = match std::env::var("ASCETIC_POOL").as_deref() {
                Ok("spawn") => DispatchMode::Spawn,
                _ => DispatchMode::Persistent,
            };
            set_dispatch_mode(from_env);
            from_env
        }
    }
}

// ---------------------------------------------------------------------------
// Pool statistics (observability; see `pool_stats`).
// ---------------------------------------------------------------------------

/// Buckets in the job wall-time histogram — matches the `ascetic-obs`
/// log2-histogram layout (bucket 0 holds zeros, bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i - 1]`, bucket 64 saturates).
pub const WALL_BUCKETS: usize = 65;

static WORKERS_SPAWNED: AtomicU64 = AtomicU64::new(0);
static JOBS_PERSISTENT: AtomicU64 = AtomicU64::new(0);
static JOBS_SPAWN: AtomicU64 = AtomicU64::new(0);
static JOBS_INLINE: AtomicU64 = AtomicU64::new(0);
/// Incremented by `parallel_for_with` once per chunk grabbed off the shared
/// cursor (the dynamic load-balancing "steal" count).
pub(crate) static CHUNKS_SERVED: AtomicU64 = AtomicU64::new(0);
static JOB_WALL_COUNT: AtomicU64 = AtomicU64::new(0);
static JOB_WALL_SUM_NS: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static JOB_WALL_NS: [AtomicU64; WALL_BUCKETS] = [ZERO; WALL_BUCKETS];

pub(crate) fn note_inline_job() {
    JOBS_INLINE.fetch_add(1, Ordering::Relaxed);
}

fn observe_job_wall(ns: u64) {
    JOB_WALL_COUNT.fetch_add(1, Ordering::Relaxed);
    JOB_WALL_SUM_NS.fetch_add(ns, Ordering::Relaxed);
    let bucket = if ns == 0 {
        0
    } else {
        64 - ns.leading_zeros() as usize
    };
    JOB_WALL_NS[bucket].fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time snapshot of the pool's global counters.
///
/// Everything here is **wall-clock derived and host-dependent** — it must
/// never feed the deterministic `RunReport` metrics, only side-channel
/// telemetry (`--pool-metrics`, the `wallclock` bench).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Persistent workers currently alive (gauge; excludes submitters).
    pub workers: u64,
    /// Jobs dispatched through the persistent pool.
    pub jobs_persistent: u64,
    /// Jobs run on freshly spawned scoped threads (Spawn mode, or
    /// fallback when the pool was busy).
    pub jobs_spawn: u64,
    /// Jobs run serially inline (small loops, one-thread config, nested
    /// calls from inside a pool worker).
    pub jobs_inline: u64,
    /// Chunks handed out by the shared work-stealing cursor.
    pub chunks_served: u64,
    /// Samples in the job wall-time histogram (== parallel jobs timed).
    pub job_wall_count: u64,
    /// Sum of all timed job wall-times, ns.
    pub job_wall_sum_ns: u64,
    /// Log2-bucketed job wall-times, ns (layout of `ascetic-obs`).
    pub job_wall_ns_buckets: [u64; WALL_BUCKETS],
}

/// Snapshot the pool counters.
pub fn pool_stats() -> PoolStats {
    let mut buckets = [0u64; WALL_BUCKETS];
    for (b, a) in buckets.iter_mut().zip(JOB_WALL_NS.iter()) {
        *b = a.load(Ordering::Relaxed);
    }
    PoolStats {
        workers: WORKERS_SPAWNED.load(Ordering::Relaxed),
        jobs_persistent: JOBS_PERSISTENT.load(Ordering::Relaxed),
        jobs_spawn: JOBS_SPAWN.load(Ordering::Relaxed),
        jobs_inline: JOBS_INLINE.load(Ordering::Relaxed),
        chunks_served: CHUNKS_SERVED.load(Ordering::Relaxed),
        job_wall_count: JOB_WALL_COUNT.load(Ordering::Relaxed),
        job_wall_sum_ns: JOB_WALL_SUM_NS.load(Ordering::Relaxed),
        job_wall_ns_buckets: buckets,
    }
}

/// Zero every counter except the live-worker gauge (used by the `wallclock`
/// bench between A/B measurements).
pub fn reset_pool_stats() {
    JOBS_PERSISTENT.store(0, Ordering::Relaxed);
    JOBS_SPAWN.store(0, Ordering::Relaxed);
    JOBS_INLINE.store(0, Ordering::Relaxed);
    CHUNKS_SERVED.store(0, Ordering::Relaxed);
    JOB_WALL_COUNT.store(0, Ordering::Relaxed);
    JOB_WALL_SUM_NS.store(0, Ordering::Relaxed);
    for a in JOB_WALL_NS.iter() {
        a.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// The pool itself.
// ---------------------------------------------------------------------------

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A type-erased borrowed job closure: the pointer is the `&F` of the
/// submitter's stack frame, `call` its monomorphized trampoline.
#[derive(Clone, Copy)]
struct Job {
    func: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointer is only dereferenced between job dispatch and the
// last participant's completion, and `run_persistent` does not return (or
// resume a panic) until every participant has completed — so the referent
// outlives every use. See the module docs.
#[allow(unsafe_code)]
unsafe impl Send for Job {}

#[allow(unsafe_code)]
unsafe fn call_erased<F: Fn(usize) + Sync>(f: *const (), worker: usize) {
    // SAFETY: see `Job` — `f` points at a live `F` for the whole job.
    unsafe { (*(f as *const F))(worker) }
}

#[derive(Default)]
struct State {
    job: Option<Job>,
    /// Pool workers participating in the current job (ids `1..=participants`
    /// run it; higher ids just re-park).
    participants: usize,
    /// First panic raised by a participant (re-raised by the submitter).
    panic: Option<PanicPayload>,
}

struct Shared {
    state: Mutex<State>,
    /// Bumped once per dispatched job (after `state` is written, still under
    /// the lock); workers spin on it lock-free, latching it to claim the job
    /// exactly once.
    seq: AtomicU64,
    /// Participants that have not finished the current job yet. Decremented
    /// with release ordering after the closure returns, so the submitter's
    /// acquire spin on `0` sees every side effect of the job.
    remaining: AtomicUsize,
    /// Workers park here (after the spin budget) waiting for `seq` to move.
    work: Condvar,
    /// The submitter parks here (after its spin budget) waiting for
    /// `remaining == 0`.
    done: Condvar,
}

/// Spin iterations before yielding/parking, on both the worker (waiting
/// for work) and submitter (waiting for completion) sides — a few tens of
/// microseconds, enough to bridge the gap between the back-to-back small
/// jobs the gather/scan/bitmap paths dispatch within one iteration.
const SPIN_ITERS: u32 = 20_000;

/// `yield_now` rounds after the spin budget, before parking on the condvar.
/// On a single-CPU host a yield is what actually lets the peer thread run;
/// on multi-core it is a cheap last resort before the futex sleep.
const YIELD_ROUNDS: u32 = 64;

/// The spin budget for this host: busy-spinning is only useful when the
/// waiter and the thread it waits on can run simultaneously, so single-CPU
/// hosts get `0` and go straight to yielding.
fn spin_budget() -> u32 {
    static BUDGET: OnceLock<u32> = OnceLock::new();
    *BUDGET.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => SPIN_ITERS,
        _ => 0,
    })
}

/// Bounded wait for `ready()` without touching a condvar: spin (multi-core
/// only), then yield. Returns `true` if the condition was met in budget.
fn wait_briefly(ready: impl Fn() -> bool) -> bool {
    let budget = spin_budget();
    let mut spins = 0u32;
    while spins < budget {
        if ready() {
            return true;
        }
        spins += 1;
        std::hint::spin_loop();
    }
    let mut yields = 0u32;
    while yields < YIELD_ROUNDS {
        if ready() {
            return true;
        }
        yields += 1;
        std::thread::yield_now();
    }
    ready()
}

struct Pool {
    shared: Arc<Shared>,
    /// Held for the duration of a persistent job; the value is the number
    /// of workers spawned so far (only the lock holder may spawn more).
    submit: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set for the lifetime of a pool worker thread: nested parallel calls
    /// detect it and run serially inline.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(|f| f.get())
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    IN_POOL_WORKER.with(|f| f.set(true));
    // Latch the current sequence so a worker spawned after earlier jobs
    // completed does not mistake a stale (cleared) slot for work.
    let mut seen = {
        let st = shared.state.lock().unwrap();
        let seq = shared.seq.load(Ordering::Acquire);
        // A worker spawned *for* the in-flight job must still take it:
        // participants covers it only if the job is live.
        if st.job.is_some() && id <= st.participants {
            seq - 1
        } else {
            seq
        }
    };
    loop {
        // Lock-free bounded wait: back-to-back dispatches are caught here
        // without ever touching the condvar.
        wait_briefly(|| shared.seq.load(Ordering::Acquire) != seen);
        let job = {
            let mut st = shared.state.lock().unwrap();
            while shared.seq.load(Ordering::Acquire) == seen {
                st = shared.work.wait(st).unwrap();
            }
            seen = shared.seq.load(Ordering::Acquire);
            if id <= st.participants {
                st.job
            } else {
                None
            }
        };
        let Some(job) = job else { continue };
        // SAFETY: see `Job`.
        #[allow(unsafe_code)]
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.func, id) }));
        if let Err(p) = result {
            shared.state.lock().unwrap().panic.get_or_insert(p);
        }
        // Release pairs with the submitter's acquire spin; notify under the
        // lock so a submitter that chose to sleep cannot miss the wakeup.
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _st = shared.state.lock().unwrap();
            shared.done.notify_all();
        }
    }
}

impl Pool {
    fn new() -> Pool {
        Pool {
            shared: Arc::new(Shared {
                state: Mutex::new(State::default()),
                seq: AtomicU64::new(0),
                remaining: AtomicUsize::new(0),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            submit: Mutex::new(0),
        }
    }
}

/// Run `f` on the persistent pool: `f(0)` on the calling thread plus
/// `f(1) .. f(threads - 1)` on pool workers, concurrently. Returns `false`
/// without running anything when the pool is busy with another submitter
/// (the caller then falls back to scoped spawning).
fn run_persistent<F: Fn(usize) + Sync>(threads: usize, f: &F) -> bool {
    let pool = POOL.get_or_init(Pool::new);
    let Ok(mut spawned) = pool.submit.try_lock() else {
        return false;
    };
    // Grow the pool to cover this job (workers are never torn down; the
    // gauge only rises).
    while *spawned < threads - 1 {
        *spawned += 1;
        let shared = Arc::clone(&pool.shared);
        let id = *spawned;
        std::thread::Builder::new()
            .name(format!("ascetic-par-{id}"))
            .spawn(move || worker_loop(shared, id))
            .expect("failed to spawn pool worker");
        WORKERS_SPAWNED.fetch_add(1, Ordering::Relaxed);
    }
    {
        let mut st = pool.shared.state.lock().unwrap();
        st.job = Some(Job {
            func: f as *const F as *const (),
            call: call_erased::<F>,
        });
        st.participants = threads - 1;
        pool.shared.remaining.store(threads - 1, Ordering::Release);
        // seq moves last (still under the lock): a worker that observes the
        // new seq — via spin or condvar — sees the whole job.
        pool.shared.seq.fetch_add(1, Ordering::Release);
        pool.shared.work.notify_all();
    }
    // The submitter is worker 0. Its own panic must not unwind past the
    // wait below — pool workers may still hold the erased pointer.
    let mine = catch_unwind(AssertUnwindSafe(|| f(0)));
    // Completion wait mirrors the workers' job wait: bounded spin/yield
    // (small jobs complete within it), then sleep on the `done` condvar.
    wait_briefly(|| pool.shared.remaining.load(Ordering::Acquire) == 0);
    let pool_panic = {
        let mut st = pool.shared.state.lock().unwrap();
        while pool.shared.remaining.load(Ordering::Acquire) > 0 {
            st = pool.shared.done.wait(st).unwrap();
        }
        st.job = None;
        st.panic.take()
    };
    drop(spawned);
    if let Err(p) = mine {
        resume_unwind(p);
    }
    if let Some(p) = pool_panic {
        resume_unwind(p);
    }
    true
}

/// Spawn-and-join fallback (the pre-pool dispatch): fresh scoped threads
/// for workers `1..threads`, the caller running worker 0.
fn run_scoped<F: Fn(usize) + Sync>(threads: usize, f: &F) {
    std::thread::scope(|scope| {
        for w in 1..threads {
            scope.spawn(move || f(w));
        }
        f(0);
    });
}

/// Run `f(w)` exactly once for every `w in 0..threads`, concurrently when
/// possible. This is the dispatch primitive every parallel combinator in
/// [`crate::pool`] builds on.
pub(crate) fn run_on_workers<F: Fn(usize) + Sync>(threads: usize, f: F) {
    if threads <= 1 {
        note_inline_job();
        f(0);
        return;
    }
    if in_pool_worker() {
        // Nested parallelism inside a pool worker: run serially so the
        // nested job can never wait on workers busy running its parent.
        note_inline_job();
        for w in 0..threads {
            f(w);
        }
        return;
    }
    let start = Instant::now();
    match dispatch_mode() {
        DispatchMode::Spawn => {
            JOBS_SPAWN.fetch_add(1, Ordering::Relaxed);
            run_scoped(threads, &f);
        }
        DispatchMode::Persistent => {
            if run_persistent(threads, &f) {
                JOBS_PERSISTENT.fetch_add(1, Ordering::Relaxed);
            } else {
                JOBS_SPAWN.fetch_add(1, Ordering::Relaxed);
                run_scoped(threads, &f);
            }
        }
    }
    observe_job_wall(start.elapsed().as_nanos() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    // Dispatch-mode mutations are process-global; serialize the tests that
    // flip them (shared with pool.rs via the same pattern).
    static MODE_LOCK: Mutex<()> = Mutex::new(());

    fn sum_on(threads: usize) -> u64 {
        let total = AtomicU64::new(0);
        run_on_workers(threads, |w| {
            total.fetch_add(w as u64 + 1, Ordering::Relaxed);
        });
        total.into_inner()
    }

    #[test]
    fn every_worker_runs_exactly_once() {
        let _g = MODE_LOCK.lock().unwrap();
        set_dispatch_mode(DispatchMode::Persistent);
        for threads in [2, 3, 8] {
            let hits: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            run_on_workers(threads, |w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn modes_agree() {
        let _g = MODE_LOCK.lock().unwrap();
        set_dispatch_mode(DispatchMode::Spawn);
        let spawn = sum_on(4);
        set_dispatch_mode(DispatchMode::Persistent);
        let persistent = sum_on(4);
        assert_eq!(spawn, persistent);
        assert_eq!(spawn, 1 + 2 + 3 + 4);
    }

    #[test]
    fn pool_grows_on_demand_and_workers_persist() {
        let _g = MODE_LOCK.lock().unwrap();
        set_dispatch_mode(DispatchMode::Persistent);
        assert_eq!(sum_on(2), 3);
        let w2 = pool_stats().workers;
        assert!(w2 >= 1);
        assert_eq!(sum_on(6), 21);
        let w6 = pool_stats().workers;
        assert!(w6 >= 5, "pool must grow to cover the bigger job");
        assert_eq!(sum_on(6), 21);
        assert_eq!(pool_stats().workers, w6, "no respawn for a repeat job");
    }

    #[test]
    fn worker_panic_propagates_to_submitter() {
        let _g = MODE_LOCK.lock().unwrap();
        set_dispatch_mode(DispatchMode::Persistent);
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_on_workers(4, |w| {
                if w == 2 {
                    panic!("boom from worker 2");
                }
            });
        }));
        assert!(r.is_err(), "worker panic must reach the submitter");
        // The pool must still be usable afterwards.
        assert_eq!(sum_on(4), 10);
    }

    #[test]
    fn submitter_panic_still_joins_workers() {
        let _g = MODE_LOCK.lock().unwrap();
        set_dispatch_mode(DispatchMode::Persistent);
        let others = AtomicU64::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_on_workers(4, |w| {
                if w == 0 {
                    panic!("boom from the submitter");
                }
                others.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(r.is_err());
        assert_eq!(others.into_inner(), 3, "pool workers finished their share");
        assert_eq!(sum_on(4), 10);
    }

    #[test]
    fn nested_jobs_run_inline() {
        let _g = MODE_LOCK.lock().unwrap();
        set_dispatch_mode(DispatchMode::Persistent);
        let total = AtomicU64::new(0);
        run_on_workers(4, |_| {
            // From a pool worker this nests; from the submitter it hits the
            // busy-pool fallback. Either way it must complete.
            run_on_workers(3, |w| {
                total.fetch_add(w as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.into_inner(), 4 * (1 + 2 + 3));
    }

    #[test]
    fn stats_count_jobs_and_wall_time() {
        let _g = MODE_LOCK.lock().unwrap();
        set_dispatch_mode(DispatchMode::Persistent);
        let before = pool_stats();
        sum_on(4);
        set_dispatch_mode(DispatchMode::Spawn);
        sum_on(4);
        let after = pool_stats();
        assert!(after.jobs_persistent > before.jobs_persistent);
        assert!(after.jobs_spawn > before.jobs_spawn);
        assert!(after.job_wall_count >= before.job_wall_count + 2);
        assert!(after.job_wall_sum_ns >= before.job_wall_sum_ns);
        let bucket_total: u64 = after.job_wall_ns_buckets.iter().sum();
        assert_eq!(bucket_total, after.job_wall_count);
        set_dispatch_mode(DispatchMode::Persistent);
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let _g = MODE_LOCK.lock().unwrap();
        set_dispatch_mode(DispatchMode::Persistent);
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let total = &total;
                s.spawn(move || {
                    for _ in 0..50 {
                        run_on_workers(3, |w| {
                            total.fetch_add(w as u64 + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.into_inner(), 4 * 50 * 6);
    }
}
