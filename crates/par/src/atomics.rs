//! Atomic reduction helpers built from compare-exchange loops.
//!
//! Push-based vertex programs update destination vertex values from many
//! threads at once: SSSP/BFS need an atomic `min`, CC needs an atomic `min`
//! over labels, and delta-PageRank needs an atomic floating-point add.
//! `std::sync::atomic` provides `fetch_min` for integers but nothing for
//! floats, so both live here behind one consistent API.
//!
//! All loops use `Relaxed` ordering: vertex values are only read between
//! kernel phases (after the thread join, which synchronizes), never used to
//! publish other memory.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Atomically `dst = min(dst, val)`. Returns `true` when `val` lowered the
/// stored value (the caller then activates the destination vertex).
#[inline]
pub fn atomic_min_u32(dst: &AtomicU32, val: u32) -> bool {
    let prev = dst.fetch_min(val, Ordering::Relaxed);
    val < prev
}

/// Atomically `dst = max(dst, val)`. Returns `true` when `val` raised it.
#[inline]
pub fn atomic_max_u32(dst: &AtomicU32, val: u32) -> bool {
    let prev = dst.fetch_max(val, Ordering::Relaxed);
    val > prev
}

/// Atomically add `val` to an `f32` stored as the bits of an [`AtomicU32`].
///
/// Returns the value held *before* the addition. This mirrors CUDA's
/// `atomicAdd(float*)`, which PageRank's scatter uses.
#[inline]
pub fn atomic_add_f32(dst: &AtomicU32, val: f32) -> f32 {
    let mut cur = dst.load(Ordering::Relaxed);
    loop {
        let old = f32::from_bits(cur);
        let new = (old + val).to_bits();
        match dst.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return old,
            Err(actual) => cur = actual,
        }
    }
}

/// Atomically add `val` to an `f64` stored as the bits of an [`AtomicU64`].
#[inline]
pub fn atomic_add_f64(dst: &AtomicU64, val: f64) -> f64 {
    let mut cur = dst.load(Ordering::Relaxed);
    loop {
        let old = f64::from_bits(cur);
        let new = (old + val).to_bits();
        match dst.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return old,
            Err(actual) => cur = actual,
        }
    }
}

/// Atomically exchange an `f64` (bit-stored) with `val`, returning the old
/// value. Delta-PageRank uses this to claim a vertex's accumulated residual.
#[inline]
pub fn atomic_swap_f64(dst: &AtomicU64, val: f64) -> f64 {
    f64::from_bits(dst.swap(val.to_bits(), Ordering::Relaxed))
}

/// Load an `f64` stored as bits.
#[inline]
pub fn load_f64(src: &AtomicU64) -> f64 {
    f64::from_bits(src.load(Ordering::Relaxed))
}

/// Store an `f64` as bits.
#[inline]
pub fn store_f64(dst: &AtomicU64, val: f64) {
    dst.store(val.to_bits(), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::parallel_for;

    #[test]
    fn min_reports_improvement() {
        let a = AtomicU32::new(10);
        assert!(atomic_min_u32(&a, 5));
        assert!(!atomic_min_u32(&a, 5));
        assert!(!atomic_min_u32(&a, 7));
        assert_eq!(a.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn max_reports_improvement() {
        let a = AtomicU32::new(10);
        assert!(atomic_max_u32(&a, 20));
        assert!(!atomic_max_u32(&a, 15));
        assert_eq!(a.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn concurrent_min_finds_global_min() {
        let a = AtomicU32::new(u32::MAX);
        parallel_for(100_000, |i| {
            atomic_min_u32(&a, (i as u32).wrapping_mul(2_654_435_761) % 1_000_000);
        });
        // The minimum over i*h mod 1e6 for 100k distinct i's: recompute serially.
        let expect = (0..100_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761) % 1_000_000)
            .min()
            .unwrap();
        assert_eq!(a.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn f32_add_accumulates() {
        let a = AtomicU32::new(0f32.to_bits());
        let n = 10_000;
        parallel_for(n, |_| {
            atomic_add_f32(&a, 1.0);
        });
        assert_eq!(f32::from_bits(a.load(Ordering::Relaxed)), n as f32);
    }

    #[test]
    fn f64_add_accumulates_exactly_for_integers() {
        let a = AtomicU64::new(0f64.to_bits());
        let n = 50_000;
        parallel_for(n, |i| {
            atomic_add_f64(&a, (i % 7) as f64);
        });
        let expect: f64 = (0..n).map(|i| (i % 7) as f64).sum();
        assert_eq!(load_f64(&a), expect);
    }

    #[test]
    fn swap_returns_previous() {
        let a = AtomicU64::new(3.5f64.to_bits());
        assert_eq!(atomic_swap_f64(&a, 0.0), 3.5);
        assert_eq!(load_f64(&a), 0.0);
        store_f64(&a, -1.25);
        assert_eq!(load_f64(&a), -1.25);
    }

    #[test]
    fn f32_add_returns_old_value() {
        let a = AtomicU32::new(2.0f32.to_bits());
        let old = atomic_add_f32(&a, 3.0);
        assert_eq!(old, 2.0);
        assert_eq!(f32::from_bits(a.load(Ordering::Relaxed)), 5.0);
    }
}
