#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic-par — parallelism substrate
//!
//! Small, dependency-light building blocks used by every other crate in the
//! Ascetic workspace:
//!
//! * [`parallel_for`] / [`parallel_for_with`] — a chunked, work-stealing
//!   parallel loop over an index range built on scoped threads, used to run
//!   the "GPU kernels" of the simulated device on host cores.
//! * [`AtomicBitmap`] / [`Bitmap`] — the bitmap machinery behind the paper's
//!   `ActiveBitmap` / `StaticBitmap` / `StaticMap` / `OndemandMap` dataflow
//!   (Figure 4 of the paper): concurrent set/test plus bulk word-level
//!   AND / XOR / AND-NOT combinators.
//! * [`atomics`] — CAS-loop atomic min / max / float-add reductions used by
//!   the push-based vertex programs (SSSP relaxations, PageRank scatter).
//! * [`scan`] — exclusive prefix sums (serial and parallel) used to build
//!   compact on-demand subgraphs (`OndemandNodes` → edge offsets).
//!
//! Everything here is safe Rust; concurrency uses `std::sync::atomic` and
//! scoped threads, following the "Rust Atomics and Locks" idioms.

pub mod atomics;
pub mod bitmap;
pub mod pool;
pub mod scan;

pub use atomics::{
    atomic_add_f32, atomic_add_f64, atomic_max_u32, atomic_min_u32, atomic_swap_f64, load_f64,
    store_f64,
};
pub use bitmap::{AtomicBitmap, Bitmap};
pub use pool::{
    current_num_threads, parallel_for, parallel_for_with, parallel_map_fixed_blocks,
    parallel_ranges, set_num_threads,
};
pub use scan::{exclusive_scan_in_place, parallel_exclusive_scan};
