#![warn(missing_docs)]
#![deny(unsafe_code)]

//! # ascetic-par — parallelism substrate
//!
//! Small, dependency-light building blocks used by every other crate in the
//! Ascetic workspace:
//!
//! * [`parallel_for`] / [`parallel_for_with`] — a chunked, work-stealing
//!   parallel loop over an index range, used to run the "GPU kernels" of
//!   the simulated device on host cores. Jobs execute on a
//!   lazily-initialized **persistent worker pool** ([`workers`]): workers
//!   are spawned once, park on a condvar between jobs, and are woken per
//!   job — eliminating the per-call thread spawn/join that used to sit on
//!   the per-iteration hot path. The spawn-per-call baseline survives as
//!   [`DispatchMode::Spawn`] (`ASCETIC_POOL=spawn`) for A/B measurement.
//! * [`parallel_ranges`] / [`parallel_parts`] — static decompositions for
//!   per-worker owned results and disjoint `&mut` windows.
//! * [`with_scratch`] — per-thread scratch arenas ([`scratch`]) whose
//!   buffer capacities persist across jobs and iterations on the pool's
//!   long-lived workers.
//! * [`AtomicBitmap`] / [`Bitmap`] — the bitmap machinery behind the paper's
//!   `ActiveBitmap` / `StaticBitmap` / `StaticMap` / `OndemandMap` dataflow
//!   (Figure 4 of the paper): concurrent set/test plus bulk word-level
//!   AND / XOR / AND-NOT combinators.
//! * [`atomics`] — CAS-loop atomic min / max / float-add reductions used by
//!   the push-based vertex programs (SSSP relaxations, PageRank scatter).
//! * [`scan`] — exclusive prefix sums (serial and parallel) used to build
//!   compact on-demand subgraphs (`OndemandNodes` → edge offsets).
//!
//! Concurrency uses `std::sync::atomic`, condvars and the "Rust Atomics and
//! Locks" idioms. The crate contains exactly one audited `unsafe` block —
//! the type-erased job pointer in [`workers`] that lets persistent threads
//! borrow the submitter's closure; everything else is safe Rust
//! (`#![deny(unsafe_code)]` with a scoped allow in that module).

pub mod atomics;
pub mod bitmap;
pub mod pool;
pub mod scan;
pub mod scratch;
pub mod workers;

pub use atomics::{
    atomic_add_f32, atomic_add_f64, atomic_max_u32, atomic_min_u32, atomic_swap_f64, load_f64,
    store_f64,
};
pub use bitmap::{AtomicBitmap, Bitmap};
pub use pool::{
    current_num_threads, parallel_for, parallel_for_with, parallel_map_fixed_blocks,
    parallel_parts, parallel_ranges, set_num_threads,
};
pub use scan::{exclusive_scan_in_place, parallel_exclusive_scan};
pub use scratch::{with_scratch, Scratch};
pub use workers::{
    dispatch_mode, pool_stats, reset_pool_stats, set_dispatch_mode, DispatchMode, PoolStats,
};
