//! Exclusive prefix sums.
//!
//! Building the on-demand subgraph (paper Figure 4, "CPU gather edges")
//! requires turning per-active-vertex degrees into CSR offsets — an exclusive
//! scan. Subway does this with a GPU scan; we provide a serial version for
//! small frontiers and a two-pass parallel version for large ones.

use crate::pool::{current_num_threads, parallel_parts, parallel_ranges};

/// In-place exclusive prefix sum; returns the total.
///
/// `[3, 1, 4] → [0, 3, 4]`, returning `8`.
pub fn exclusive_scan_in_place(xs: &mut [u64]) -> u64 {
    let mut acc = 0u64;
    for x in xs.iter_mut() {
        let v = *x;
        *x = acc;
        acc += v;
    }
    acc
}

/// Parallel exclusive prefix sum of `xs` into a fresh vector; also returns
/// the total. Two passes: per-range partial sums, then per-range rewrite with
/// the carried base.
pub fn parallel_exclusive_scan(xs: &[u64]) -> (Vec<u64>, u64) {
    let n = xs.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let threads = current_num_threads();
    if threads == 1 || n < 4096 {
        let mut out = xs.to_vec();
        let total = exclusive_scan_in_place(&mut out);
        return (out, total);
    }
    // Pass 1: partial sum of each contiguous range.
    let ranges = parallel_ranges(n, |_, r| {
        let sum: u64 = xs[r.clone()].iter().sum();
        (r, sum)
    });
    // Carry bases across ranges (serial; #ranges == #threads).
    let mut bases = Vec::with_capacity(ranges.len());
    let mut acc = 0u64;
    for (_, sum) in &ranges {
        bases.push(acc);
        acc += sum;
    }
    let total = acc;
    // Pass 2: write each range with its base. The ranges from
    // `parallel_ranges` are contiguous and in order, so slicing `out` with
    // `split_at_mut` hands each worker a disjoint `&mut` window; the
    // windows are dispatched back onto the persistent pool.
    let mut out = vec![0u64; n];
    {
        let mut parts: Vec<(&mut [u64], &[u64], u64)> = Vec::with_capacity(ranges.len());
        let mut rest: &mut [u64] = &mut out;
        let mut consumed = 0usize;
        for ((r, _), base) in ranges.iter().zip(bases.iter()) {
            debug_assert_eq!(r.start, consumed);
            let (mine, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
            rest = tail;
            consumed += r.len();
            parts.push((mine, &xs[r.clone()], *base));
        }
        parallel_parts(parts, |_, (mine, src, base)| {
            let mut acc = base;
            for (o, &x) in mine.iter_mut().zip(src) {
                *o = acc;
                acc += x;
            }
        });
    }
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_scan_basic() {
        let mut xs = vec![3, 1, 4, 1, 5];
        let total = exclusive_scan_in_place(&mut xs);
        assert_eq!(xs, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn serial_scan_empty() {
        let mut xs: Vec<u64> = vec![];
        assert_eq!(exclusive_scan_in_place(&mut xs), 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let n = 100_003;
        let xs: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % 101).collect();
        let mut serial = xs.clone();
        let stotal = exclusive_scan_in_place(&mut serial);
        let (par, ptotal) = parallel_exclusive_scan(&xs);
        assert_eq!(stotal, ptotal);
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_scan_small_input() {
        let xs = vec![5u64, 0, 2];
        let (out, total) = parallel_exclusive_scan(&xs);
        assert_eq!(out, vec![0, 5, 5]);
        assert_eq!(total, 7);
    }

    #[test]
    fn parallel_scan_empty() {
        let (out, total) = parallel_exclusive_scan(&[]);
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }
}
