//! Property tests of the static region's residency invariants under random
//! operation sequences (fills, swaps, tail releases).
//!
//! Invariant under test: at every point, the vertex `StaticBitmap` is
//! exactly "every chunk covering the vertex's edge range is resident", and
//! the region's device data for a resident chunk equals the host CSR's
//! serialization of that chunk.

use proptest::prelude::*;

use ascetic_core::config::FillPolicy;
use ascetic_core::static_region::StaticRegion;
use ascetic_graph::chunks::ChunkGeometry;
use ascetic_graph::generators::uniform_graph;
use ascetic_graph::Csr;
use ascetic_sim::{DeviceConfig, Gpu};

/// Exhaustively recompute what the vertex bitmap should be.
fn expected_static(g: &Csr, geo: &ChunkGeometry, region: &StaticRegion) -> Vec<bool> {
    (0..g.num_vertices() as u32)
        .map(|v| match geo.chunks_of_vertex(g, v) {
            None => true,
            Some(chunks) => chunks.clone().all(|c| region.is_resident(c)),
        })
        .collect()
}

fn check_invariants(g: &Csr, geo: &ChunkGeometry, region: &StaticRegion, gpu: &Gpu) {
    // 1. bitmap correctness
    let expect = expected_static(g, geo, region);
    for (v, &e) in expect.iter().enumerate() {
        assert_eq!(
            region.is_vertex_static(v as u32),
            e,
            "bitmap wrong at vertex {v}"
        );
    }
    // 2. resident data correctness: every static vertex's slices match the
    // host serialization
    for v in 0..g.num_vertices() as u32 {
        if !region.is_vertex_static(v) || g.degree(v) == 0 {
            continue;
        }
        let mut words = Vec::new();
        region.for_each_vertex_slice(&gpu.mem, g, v, |w| words.extend_from_slice(w));
        let mut expect = Vec::new();
        g.write_edge_words(g.edge_range(v), &mut expect);
        assert_eq!(words, expect, "device data wrong for vertex {v}");
    }
}

#[derive(Debug, Clone)]
enum Op {
    Swap { evict_idx: usize, load_idx: usize },
    ReleaseTail { n: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(e, l)| Op::Swap {
            evict_idx: e,
            load_idx: l
        }),
        (1usize..4).prop_map(|n| Op::ReleaseTail { n }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn residency_invariants_hold_under_random_ops(
        seed in 0u64..50,
        slots in 2usize..12,
        ops in proptest::collection::vec(arb_op(), 0..20),
    ) {
        let g = uniform_graph(200, 1_500, false, seed);
        let geo = ChunkGeometry::with_chunk_bytes(&g, 64); // 16 edges per chunk
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut region = StaticRegion::new(&mut gpu, &g, geo, (slots * 64) as u64);
        let plan = region.plan_fill(FillPolicy::Random { seed }, region.slots());
        region.fill(&mut gpu, &g, &plan);
        check_invariants(&g, &geo, &region, &gpu);

        for op in ops {
            match op {
                Op::Swap { evict_idx, load_idx } => {
                    let resident = region.resident_chunk_ids();
                    if resident.is_empty() {
                        continue;
                    }
                    let evict = resident[evict_idx % resident.len()];
                    let absent: Vec<u32> = (0..geo.num_chunks() as u32)
                        .filter(|&c| !region.is_resident(c))
                        .collect();
                    if absent.is_empty() {
                        continue;
                    }
                    let load = absent[load_idx % absent.len()];
                    region.swap_chunk(&mut gpu, &g, evict, load);
                }
                Op::ReleaseTail { n } => {
                    let _ = region.release_tail_slots(&g, n.min(region.slots()));
                }
            }
            check_invariants(&g, &geo, &region, &gpu);
        }
    }

    #[test]
    fn lazy_loads_preserve_invariants(
        seed in 0u64..50,
        loads in proptest::collection::vec(any::<usize>(), 1..10),
    ) {
        let g = uniform_graph(150, 1_000, false, seed);
        let geo = ChunkGeometry::with_chunk_bytes(&g, 64);
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut region = StaticRegion::new(&mut gpu, &g, geo, 8 * 64);
        check_invariants(&g, &geo, &region, &gpu);
        for pick in loads {
            if region.free_slots() == 0 {
                break;
            }
            let absent: Vec<u32> = (0..geo.num_chunks() as u32)
                .filter(|&c| !region.is_resident(c))
                .collect();
            if absent.is_empty() {
                break;
            }
            region.load_chunk(&mut gpu, &g, absent[pick % absent.len()]);
            check_invariants(&g, &geo, &region, &gpu);
        }
    }
}
