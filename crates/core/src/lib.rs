#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic-core — the Ascetic framework
//!
//! The paper's contribution: GPU memory is split into a **Static Region**
//! that pins graph chunks across iterations (exploiting the very long reuse
//! distances of iterative graph analytics) and an **On-demand Region** that
//! receives exactly the active edges the static region does not cover,
//! gathered by the CPU-side On-demand Engine — with the static-region
//! compute overlapped against the gather + transfer (Figure 5) and a
//! hotness-driven chunk-replacement server refreshing the static region
//! during on-demand compute (Figure 6).
//!
//! Module map (paper reference in parentheses):
//!
//! * [`config`] — framework configuration: K, fill policy, overlap toggle,
//!   replacement policy, adaptive re-partitioning (§4.1 defaults).
//! * [`ratio`] — the partition-ratio math: Equations (1)–(3) (§3.3).
//! * [`maps`] — `ActiveBitmap`/`StaticBitmap` → `StaticMap`/`OndemandMap`
//!   dataflow and node-list generation (Figure 4).
//! * [`static_region`] — the chunk-slotted static region store and its
//!   vertex-residency bitmap (§3.1, §3.4).
//! * [`ondemand`] — the On-demand Engine: multi-threaded CPU gather into a
//!   compact Subway-style subgraph, batched to the region capacity (§3.1).
//! * [`pool_metrics`] — bridge from the `ascetic-par` persistent worker
//!   pool's counters to a labelled (non-deterministic, wall-clock)
//!   metrics snapshot.
//! * [`hotness`] — the per-chunk hotness table and replacement policies
//!   (Figure 6, §3.4).
//! * [`prefetch`] — the cross-iteration prefetch policy: next-frontier
//!   chunk demand, benefit ranking, speculative refresh planning for the
//!   second copy stream.
//! * [`session`] — the Manager: per-iteration orchestration with overlap
//!   (Figure 5) over the simulated device, reusable across multiple
//!   algorithm runs (the paper's prestore-amortization point, §4.3).
//! * [`fleet`] — multi-device sharded execution: owner-computes over
//!   edge-balanced shards with cross-device frontier exchange on the
//!   `ascetic-sim` interconnect, byte-identical to single-device.
//! * [`repair`] — the incremental repair engine: after a mutation batch is
//!   delta-patched into the session, re-converge program state from an
//!   affected-vertex frontier (or a warm restart) instead of recomputing
//!   cold — bit-identical to a full recompute by construction.
//! * [`engine`] — the one-shot `OutOfCoreSystem` wrapper and report
//!   assembly shared with the baselines.
//! * [`report`] — run reports: time breakdown (Tsr, Tfilling, Ttransfer,
//!   Tondemand — Figure 10), transfer volumes (Table 5), idle accounting.
//! * [`system`] — the `OutOfCoreSystem` trait shared with the baselines.

pub mod codec;
pub mod config;
pub mod engine;
pub mod fleet;
pub mod hotness;
pub mod maps;
pub mod ondemand;
pub mod pool_metrics;
pub mod prefetch;
pub mod ratio;
pub mod repair;
pub mod report;
pub mod session;
pub mod static_region;
pub mod system;

pub use config::{
    AsceticConfig, CompressionMode, ConfigError, DirectionMode, FillPolicy, ReplacementPolicy,
    MIN_CHUNK_BYTES,
};
pub use engine::AsceticSystem;
pub use fleet::{run_fleet, FleetConfig, FleetRunReport};
pub use pool_metrics::pool_metrics_snapshot;
pub use prefetch::{PrefetchMode, PrefetchOp};
pub use repair::{repair_session, RepairMode, RepairOutcome};
pub use report::{
    utilization_from_trace, Breakdown, IterReport, IterUtilization, RunReport,
    RUN_REPORT_SCHEMA_VERSION,
};
pub use session::{AsceticSession, PatchApply};
pub use system::{OutOfCoreSystem, PrepareError, Prepared};
