//! Multi-run sessions: reuse the static region across algorithm runs.
//!
//! The paper (§4.3): *"In practice, the Static Region can be reused
//! throughout the graph processing and benefits the reduction in data
//! transfer"* — the prestore is a one-time cost, not a per-algorithm one.
//! An [`AsceticSession`] owns the device, the prestored static region, the
//! on-demand buffers and the hotness state, and runs any number of
//! [`VertexProgram`]s over the same graph. The first run pays the prestore;
//! subsequent runs start with a warm region (possibly *warmer* than the
//! initial fill, if the replacement server adapted it).
//!
//! [`super::engine::AsceticSystem`] is a thin one-shot wrapper around this
//! type.

use ascetic_algos::{EdgeSlice, VertexProgram};
use ascetic_graph::chunks::ChunkGeometry;
use ascetic_graph::Csr;
use ascetic_obs::{Event, DEFAULT_EVENT_CAPACITY};
use ascetic_par::{parallel_for, AtomicBitmap};
use ascetic_sim::{DevPtr, Engine, Gpu, SimTime};

use crate::config::{AsceticConfig, FillPolicy, ReplacementPolicy};
use crate::engine::finish_report;
use crate::hotness::HotnessTable;
use crate::maps::DataMaps;
use crate::ondemand::{gather, plan_batches};
use crate::ratio::{repartition_check, static_share, Repartition};
use crate::report::{Breakdown, IterReport, RunReport};
use crate::static_region::StaticRegion;
use crate::system::{edge_budget_bytes, reserve_vertex_arrays};

/// A prepared Ascetic device bound to one graph, reusable across runs.
pub struct AsceticSession<'g> {
    cfg: AsceticConfig,
    g: &'g Csr,
    geo: ChunkGeometry,
    gpu: Gpu,
    region: StaticRegion,
    od_buffers: Vec<DevPtr>,
    hotness: HotnessTable,
    prestore_bytes: u64,
    prestore_ns: u64,
    runs: u32,
}

impl<'g> AsceticSession<'g> {
    /// Set up the device for `g`: reserve vertex arrays, size the regions
    /// per Eq (2), allocate the on-demand buffers and perform the prestore.
    pub fn new(cfg: AsceticConfig, g: &'g Csr) -> AsceticSession<'g> {
        let mut gpu = if cfg.tracing {
            Gpu::new_traced(cfg.device)
        } else {
            Gpu::new(cfg.device)
        };
        if cfg.events {
            gpu.obs.enable_events(DEFAULT_EVENT_CAPACITY);
        }
        let _vertex_slab = reserve_vertex_arrays(&mut gpu, g);
        let m_edge = edge_budget_bytes(&gpu);
        let geo = ChunkGeometry::with_chunk_bytes(g, cfg.chunk_bytes);
        let d = g.edge_bytes();
        assert!(
            m_edge >= 2 * cfg.chunk_bytes as u64,
            "edge budget ({m_edge} B) below two chunks"
        );

        // --- Region sizing: Eq (2) (or the Figure 10 override). ---
        let share = cfg
            .static_ratio_override
            .unwrap_or_else(|| static_share(cfg.k, d, m_edge));
        let full_cover = (geo.num_chunks() * cfg.chunk_bytes) as u64;
        let mut static_target = (share * m_edge as f64) as u64;
        if static_target >= d && full_cover <= m_edge {
            // The whole dataset fits: pin every chunk (round the Eq (2)
            // byte target up to whole chunks).
            static_target = full_cover;
        }
        if static_target < full_cover {
            // Data will spill on demand: leave the on-demand region at
            // least one chunk of room.
            static_target = static_target.min(m_edge - cfg.chunk_bytes as u64);
        }
        let mut region = StaticRegion::new(&mut gpu, g, geo, static_target);
        let od_words = gpu.mem.available();
        let od_slab = gpu.alloc(od_words).expect("on-demand region allocation");
        // split the on-demand slab into cfg.od_buffers equal pieces (each
        // must still hold at least one edge entry)
        let nbuf = cfg
            .od_buffers
            .max(1)
            .min((od_words / g.words_per_edge()).max(1));
        let per = od_words / nbuf / g.words_per_edge() * g.words_per_edge();
        let mut od_buffers: Vec<DevPtr> = (0..nbuf).map(|i| od_slab.slice(i * per, per)).collect();
        if nbuf == 1 {
            od_buffers[0] = od_slab; // use the whole slab when not splitting
        }

        // --- Prestore: one bulk fill of the static region. ---
        let plan = region.plan_fill(cfg.fill, region.slots());
        let prestore_bytes = region.fill(&mut gpu, g, &plan);
        let prestore_ns = gpu.config.pcie.transfer_ns(prestore_bytes);
        gpu.timeline
            .schedule_labeled(Engine::Copy, SimTime::ZERO, prestore_ns, || {
                format!("prestore {prestore_bytes}B")
            });
        gpu.obs
            .registry
            .counter_add("prestore.bytes", prestore_bytes);
        gpu.obs.record(
            0,
            Event::Prestore {
                bytes: prestore_bytes,
                dur_ns: prestore_ns,
            },
        );
        gpu.sync();

        let hotness = HotnessTable::new(geo.num_chunks(), cfg.replacement);
        AsceticSession {
            cfg,
            g,
            geo,
            gpu,
            region,
            od_buffers,
            hotness,
            prestore_bytes,
            prestore_ns,
            runs: 0,
        }
    }

    /// Number of runs executed so far.
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// Fraction of the graph's chunks currently resident in the static
    /// region.
    pub fn resident_fraction(&self) -> f64 {
        self.region.resident_chunks() as f64 / self.geo.num_chunks().max(1) as f64
    }

    /// Execute one program over the session's graph. The first run's report
    /// carries the prestore cost; later runs report zero prestore (the
    /// region is already resident — the paper's amortization point).
    pub fn run<P: VertexProgram>(&mut self, prog: &P) -> RunReport {
        let g = self.g;
        let cfg = self.cfg;
        assert_eq!(
            g.is_weighted(),
            prog.needs_weights(),
            "graph weighting must match the program"
        );
        let n = g.num_vertices();
        let geo = self.geo;

        // per-run baselines for delta accounting
        let run_start = self.gpu.sync();
        let xfer0 = self.gpu.xfer;
        let kernels0 = self.gpu.kernels;
        let compute_busy0 = self.gpu.timeline.busy_ns(Engine::Compute);
        let obs0 = self.gpu.obs.registry.snapshot();

        let state = prog.new_state(g);
        let mut active = prog.initial_frontier(g);
        let weighted = g.is_weighted();
        let bpe = g.bytes_per_edge() as u64;
        let d = g.edge_bytes();
        let mut breakdown = Breakdown::default();
        let mut per_iter: Vec<IterReport> = Vec::new();
        let mut refresh_bytes = 0u64;
        let mut repartitions = 0u32;
        let mut iter = 0u32;
        let lazy_fill = matches!(cfg.fill, FillPolicy::Lazy);
        // per-buffer "compute that last read this buffer" fences
        let mut buffer_free_at: Vec<SimTime> = vec![SimTime::ZERO; self.od_buffers.len()];

        while !active.is_all_zero() && iter < prog.max_iterations() {
            let iter_start = self.gpu.sync();
            self.gpu.obs.record(iter_start.0, Event::IterStart { iter });
            prog.begin_iteration(iter, &active, &state);

            // ➊ GenDataMap (cheap bitmap kernel over |V| bits).
            let mut maps = DataMaps::generate(g, &active, self.region.vertex_bitmap());
            let genmap = self.gpu.kernel_at(0, (n as u64).div_ceil(64), iter_start);
            breakdown.gen_map_ns += genmap.duration();

            // Eq (3): adaptive re-partition when the on-demand volume
            // overflows an under-used static region. Under lazy fill the
            // region is *supposed* to look under-used until warming
            // completes, so the check waits for a full region.
            if cfg.adaptive && !(lazy_fill && self.region.free_slots() > 0) {
                let od_capacity: u64 = self.od_buffers.iter().map(|b| b.len_bytes()).sum();
                let decision = repartition_check(
                    maps.ondemand_bytes(bpe),
                    maps.static_bytes(bpe),
                    maps.active_edges() * bpe,
                    self.region.capacity_bytes(),
                    od_capacity,
                    d,
                );
                if let Repartition::ShrinkStaticBy(bytes) = decision {
                    let slots = (bytes as usize).div_ceil(cfg.chunk_bytes).max(1);
                    if let Some(tail) = self.region.release_tail_slots(g, slots) {
                        self.od_buffers.push(tail);
                        buffer_free_at.push(SimTime::ZERO);
                        repartitions += 1;
                        self.gpu.obs.registry.counter_add("repartitions", 1);
                        self.gpu.obs.record(
                            iter_start.0,
                            Event::Repartition {
                                iter,
                                static_bytes: self.region.capacity_bytes(),
                            },
                        );
                        // bitmap changed: regenerate the data maps
                        maps = DataMaps::generate(g, &active, self.region.vertex_bitmap());
                    }
                }
            }

            let next = AtomicBitmap::new(n);

            // ➌ Static-region compute (overlaps the on-demand pipeline).
            let static_ready = genmap.end;
            let static_span = if maps.static_nodes.is_empty() {
                None
            } else {
                let span = self.gpu.kernel_at(
                    maps.static_edges,
                    maps.static_nodes.len() as u64,
                    static_ready,
                );
                breakdown.static_compute_ns += span.duration();
                Some(span)
            };
            if !maps.static_nodes.is_empty() {
                let mem = &self.gpu.mem;
                let region_ref = &self.region;
                parallel_for(maps.static_nodes.len(), |i| {
                    let v = maps.static_nodes[i];
                    region_ref.for_each_vertex_slice(mem, g, v, |words| {
                        prog.process_vertex(v, EdgeSlice::new(words, weighted), &state, &next);
                    });
                });
            }

            // ➋➍➎ On-demand pipeline: gather → transfer → compute, batched.
            let min_buffer_words = self.od_buffers.iter().map(|b| b.len).min().unwrap_or(0);
            let mut od_payload = 0u64;
            let mut od_compute_window = 0u64;
            let mut first_od_compute_start: Option<SimTime> = None;
            if !maps.ondemand_nodes.is_empty() {
                assert!(
                    min_buffer_words > 0,
                    "no on-demand buffer but on-demand data exists"
                );
                // In no-overlap mode the whole pipeline waits for the
                // static compute (the Figure 8 "Baseline" lane layout).
                let pipeline_ready = if cfg.overlap {
                    genmap.end
                } else {
                    static_span.map_or(genmap.end, |s| s.end)
                };
                let batches = plan_batches(g, &maps.ondemand_nodes, min_buffer_words);
                let mut gather_ready = pipeline_ready;
                for (bi, entries) in batches.into_iter().enumerate() {
                    let buf_idx = bi % self.od_buffers.len();
                    let buffer = self.od_buffers[buf_idx];
                    let batch = gather(g, entries);

                    // CPU gather
                    let g_span = self.gpu.gather_at(
                        batch.payload_bytes(),
                        batch.entries.len() as u64,
                        gather_ready,
                    );
                    breakdown.gather_ns += g_span.duration();
                    gather_ready = g_span.end; // CPU engine serializes anyway

                    // H2D transfer of payload + index, into this batch's buffer
                    let dst = buffer.slice(0, batch.words.len());
                    let ready = g_span.end.max(buffer_free_at[buf_idx]);
                    let t_span = self.gpu.h2d_at(dst, &batch.words, ready);
                    // account the subgraph index bytes on the same DMA op
                    self.gpu.xfer.h2d_bytes += batch.index_bytes();
                    breakdown.transfer_ns += t_span.duration();
                    od_payload += batch.payload_bytes() + batch.index_bytes();

                    // OD compute (serializes on the COMPUTE engine after the
                    // static kernel automatically)
                    let c_span =
                        self.gpu
                            .kernel_at(batch.edges, batch.entries.len() as u64, t_span.end);
                    breakdown.ondemand_compute_ns += c_span.duration();
                    od_compute_window += c_span.duration();
                    first_od_compute_start.get_or_insert(c_span.start);
                    buffer_free_at[buf_idx] = c_span.end;

                    // host execution of the batch
                    let mem = &self.gpu.mem;
                    let batch_ref = &batch;
                    parallel_for(batch_ref.entries.len(), |i| {
                        let e = &batch_ref.entries[i];
                        let words = &mem.words(dst)[batch_ref.entry_words(i)];
                        prog.process_vertex(
                            e.vertex,
                            EdgeSlice::new(words, weighted),
                            &state,
                            &next,
                        );
                    });
                }
            }

            // Hotness accounting for this iteration's touched chunks
            // (needed by both the replacement server and lazy warming).
            if lazy_fill || !matches!(cfg.replacement, ReplacementPolicy::Disabled) {
                self.hotness
                    .record_vertices(g, &geo, &maps.static_nodes, iter);
                self.hotness
                    .record_vertices(g, &geo, &maps.ondemand_nodes, iter);

                // ➎ Replacement server window: chunk DMAs issued while the
                // GPU chews the on-demand region, within its PCIe budget.
                if od_compute_window > 0 {
                    // each op is one chunk-sized DMA including its fixed
                    // latency; the server only issues what fits the window
                    let per_op_ns = self
                        .gpu
                        .config
                        .pcie
                        .transfer_ns(cfg.chunk_bytes as u64)
                        .max(1);
                    let mut ops_left = (od_compute_window / per_op_ns) as usize;
                    let ready = first_od_compute_start.unwrap_or(iter_start);

                    // lazy warming first: adopt demanded chunks into free
                    // slots (counted as steady transfer, not prestore)
                    if lazy_fill && ops_left > 0 {
                        for chunk in self.hotness.plan_loads(&self.region, iter, ops_left) {
                            let bytes = self.region.load_chunk(&mut self.gpu, g, chunk);
                            self.gpu.xfer.h2d_bytes += bytes;
                            self.gpu.xfer.h2d_ops += 1;
                            let span = self.gpu.timeline.schedule_labeled(
                                Engine::Copy,
                                ready,
                                self.gpu.config.pcie.transfer_ns(bytes),
                                || format!("lazy-load {bytes}B"),
                            );
                            self.gpu.obs.registry.counter_add("lazy.loads", 1);
                            self.gpu.obs.record(span.start.0, Event::LazyLoad { bytes });
                            breakdown.update_ns += span.duration();
                            ops_left -= 1;
                        }
                    }

                    // then stale-for-hot swaps
                    if !matches!(cfg.replacement, ReplacementPolicy::Disabled) && ops_left > 0 {
                        let swaps = self.hotness.plan_swaps(&self.region, iter, ops_left);
                        for (evict, load) in swaps {
                            let bytes = self.region.swap_chunk(&mut self.gpu, g, evict, load);
                            refresh_bytes += bytes;
                            let span = self.gpu.timeline.schedule_labeled(
                                Engine::Copy,
                                ready,
                                self.gpu.config.pcie.transfer_ns(bytes),
                                || format!("refresh {bytes}B"),
                            );
                            self.gpu.obs.registry.counter_add("hotness.swaps", 1);
                            self.gpu
                                .obs
                                .record(span.start.0, Event::HotSwap { chunks: 1, bytes });
                            breakdown.update_ns += span.duration();
                        }
                    }
                }
            }

            let iter_end = self.gpu.sync();
            self.gpu.obs.record(iter_end.0, Event::IterEnd { iter });
            per_iter.push(IterReport {
                active_vertices: maps.active_vertices(),
                active_edges: maps.active_edges(),
                payload_bytes: od_payload,
                time_ns: iter_end.since(iter_start),
                static_edges: maps.static_edges,
            });
            active = next.snapshot();
            iter += 1;
        }

        // Per-run delta accounting against the session baselines.
        let run_end = self.gpu.sync();
        let mut report = finish_report(
            "Ascetic",
            prog.name(),
            iter,
            &mut self.gpu,
            if self.runs == 0 {
                self.prestore_bytes
            } else {
                0
            },
            if self.runs == 0 { self.prestore_ns } else { 0 },
            refresh_bytes,
            breakdown,
            per_iter,
            prog.output(&state),
        );
        // the report took ownership of the event log; arm a fresh one so
        // later runs over this session keep recording
        if cfg.events {
            self.gpu.obs.enable_events(DEFAULT_EVENT_CAPACITY);
        }
        report.repartitions = repartitions;
        // convert cumulative device counters into this run's share
        report.xfer.h2d_bytes -= xfer0.h2d_bytes;
        report.xfer.d2h_bytes -= xfer0.d2h_bytes;
        report.xfer.h2d_ops -= xfer0.h2d_ops;
        report.xfer.d2h_ops -= xfer0.d2h_ops;
        report.kernels.launches -= kernels0.launches;
        report.kernels.edges -= kernels0.edges;
        report.kernels.vertices -= kernels0.vertices;
        report.kernels.time_ns -= kernels0.time_ns;
        let run_ns = run_end.since(run_start) + if self.runs == 0 { run_start.0 } else { 0 }; // first run owns the prestore time
        report.sim_time_ns = run_ns;
        let busy_delta = self.gpu.timeline.busy_ns(Engine::Compute) - compute_busy0;
        report.gpu_idle_ns = run_ns.saturating_sub(busy_delta);
        // metrics: subtract the session baseline (histograms, subsystem
        // counters), then re-pin the canonical counters to this run's
        // delta-corrected fields
        report.metrics = report.metrics.diff(&obs0);
        report.sync_metrics();
        self.runs += 1;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_algos::inmemory::run_in_memory;
    use ascetic_algos::{Bfs, Cc, PageRank};
    use ascetic_graph::generators::uniform_graph;
    use ascetic_sim::DeviceConfig;

    fn cfg_for(g: &Csr) -> AsceticConfig {
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 2 / 5);
        AsceticConfig::new(dev).with_chunk_bytes(1024)
    }

    #[test]
    fn session_amortizes_the_prestore() {
        let g = uniform_graph(2_500, 20_000, false, 31);
        let mut session = AsceticSession::new(cfg_for(&g), &g);
        let first = session.run(&Bfs::new(0));
        let second = session.run(&Cc::new());
        let third = session.run(&PageRank::new());
        assert!(first.prestore_bytes > 0, "first run pays the prestore");
        assert_eq!(second.prestore_bytes, 0, "later runs reuse the region");
        assert_eq!(third.prestore_bytes, 0);
        assert_eq!(session.runs(), 3);
        assert!(session.resident_fraction() > 0.0);
    }

    #[test]
    fn session_runs_match_oracles() {
        let g = uniform_graph(2_000, 16_000, false, 32);
        let mut session = AsceticSession::new(cfg_for(&g), &g);
        let bfs = session.run(&Bfs::new(0));
        assert_eq!(bfs.output, run_in_memory(&g, &Bfs::new(0)).output);
        let cc = session.run(&Cc::new());
        assert_eq!(cc.output, run_in_memory(&g, &Cc::new()).output);
        let pr = session.run(&PageRank::new());
        assert_eq!(pr.output, run_in_memory(&g, &PageRank::new()).output);
    }

    #[test]
    fn per_run_counters_are_deltas() {
        let g = uniform_graph(2_000, 16_000, false, 33);
        let mut session = AsceticSession::new(cfg_for(&g), &g);
        let a = session.run(&Bfs::new(0));
        let b = session.run(&Bfs::new(0));
        // identical workloads with a warm region: the second run's counters
        // must be its own, not cumulative
        assert!(b.xfer.h2d_bytes <= a.xfer.h2d_bytes + g.edge_bytes() / 10);
        assert!(b.kernels.launches <= a.kernels.launches * 2);
        // and it runs at least as fast (no prestore time)
        assert!(b.sim_time_ns <= a.sim_time_ns);
    }

    #[test]
    fn metrics_and_events_are_per_run() {
        let g = uniform_graph(2_000, 16_000, false, 35);
        let mut session = AsceticSession::new(cfg_for(&g).with_events(true), &g);
        let a = session.run(&Bfs::new(0));
        // canonical counters agree exactly with the trusted report fields
        assert_eq!(a.metrics.counter("xfer.h2d_bytes"), Some(a.xfer.h2d_bytes));
        assert_eq!(a.metrics.counter("xfer.h2d_ops"), Some(a.xfer.h2d_ops));
        assert_eq!(
            a.metrics.counter("kernel.launches"),
            Some(a.kernels.launches)
        );
        assert_eq!(a.metrics.counter("prestore.bytes"), Some(a.prestore_bytes));
        assert_eq!(a.metrics.label("system"), Some("Ascetic"));
        let kinds: Vec<&str> = a
            .events
            .as_ref()
            .expect("events enabled")
            .iter()
            .map(|e| e.event.kind())
            .collect();
        assert!(kinds.contains(&"prestore"), "first run owns the prestore");
        assert!(kinds.contains(&"iter_start"));
        assert!(kinds.contains(&"iter_end"));
        assert!(kinds.contains(&"dma"));

        let b = session.run(&Cc::new());
        assert_eq!(b.metrics.counter("xfer.h2d_bytes"), Some(b.xfer.h2d_bytes));
        assert_eq!(b.metrics.counter("prestore.bytes"), Some(0));
        let b_events = b.events.as_ref().expect("log re-armed per run");
        assert!(b_events.iter().all(|e| e.event.kind() != "prestore"));
        assert!(b_events.iter().any(|e| e.event.kind() == "iter_start"));
    }

    #[test]
    fn session_matches_one_shot_system() {
        use crate::engine::AsceticSystem;
        use crate::system::OutOfCoreSystem;
        let g = uniform_graph(1_500, 12_000, false, 34);
        let one_shot = AsceticSystem::new(cfg_for(&g)).run(&g, &PageRank::new());
        let mut session = AsceticSession::new(cfg_for(&g), &g);
        let first = session.run(&PageRank::new());
        assert_eq!(one_shot.output, first.output);
        assert_eq!(one_shot.xfer, first.xfer);
        assert_eq!(one_shot.sim_time_ns, first.sim_time_ns);
        assert_eq!(one_shot.prestore_bytes, first.prestore_bytes);
    }
}
