//! Multi-run sessions: reuse the static region across algorithm runs.
//!
//! The paper (§4.3): *"In practice, the Static Region can be reused
//! throughout the graph processing and benefits the reduction in data
//! transfer"* — the prestore is a one-time cost, not a per-algorithm one.
//! An [`AsceticSession`] owns the device, the prestored static region, the
//! on-demand buffers and the hotness state, and runs any number of
//! [`VertexProgram`]s over the same graph. The first run pays the prestore;
//! subsequent runs start with a warm region (possibly *warmer* than the
//! initial fill, if the replacement server adapted it).
//!
//! Execution is factored into three steps — `AsceticSession::begin_run`,
//! `AsceticSession::step_iteration` and `AsceticSession::finish_run` —
//! so two drivers can share one engine: [`AsceticSession::run`] composes
//! them into the classic single-device loop, while `crate::fleet`
//! interleaves the steps of N shard sessions with cross-device frontier
//! exchanges between rounds.
//!
//! [`super::engine::AsceticSystem`] is a thin one-shot wrapper around this
//! type.

use std::sync::atomic::{AtomicU64, Ordering};

use ascetic_algos::{ops, EdgeSlice, TraversalDirection, VertexProgram};
use ascetic_graph::chunks::{ChunkGeometry, ChunkId};
use ascetic_graph::compress::{encode_ranges, EncodeEntry};
use ascetic_graph::{Csr, GraphChunks, GraphPatch, VertexId};
use ascetic_obs::{Event, MetricsSnapshot, DEFAULT_EVENT_CAPACITY};
use ascetic_par::{parallel_for, AtomicBitmap, Bitmap};
use ascetic_sim::{DevPtr, Engine, Gpu, KernelStats, SimTime, XferStats};

use crate::codec::{chunk_wire_bytes, compress_wins, estimate_batch_wire};
use crate::config::{AsceticConfig, CompressionMode, DirectionMode, FillPolicy, ReplacementPolicy};
use crate::engine::finish_report;
use crate::hotness::HotnessTable;
use crate::maps::DataMaps;
use crate::ondemand::{gather, plan_batches};
use crate::prefetch::{chunk_demand_bytes, plan_prefetch, PrefetchMode, PrefetchOp};
use crate::ratio::{repartition_check, static_share, Repartition};
use crate::report::{Breakdown, IterReport, RunReport};
use crate::static_region::StaticRegion;
use crate::system::{edge_budget_bytes, reserve_vertex_arrays};

/// How many planned prefetch ops may be carried into the next iteration
/// to wait for link gaps in its on-demand pipeline (on top of whatever
/// fits the end-of-iteration slack). Purely a planning bound: deferred
/// ops that never find a gap are dropped at no cost.
const GAP_PLAN_OPS: usize = 256;

/// Span-trace track carrying the session phases: static staging, then one
/// span per iteration with `GenDataMap`/static-compute children.
pub const SESSION_TRACK: &str = "session";
/// Span-trace track for the on-demand pipeline window of each iteration
/// (overlaps the static compute in time, hence its own track).
pub const ONDEMAND_TRACK: &str = "on-demand pipeline";
/// Span-trace track for the replacement server's refresh windows.
pub const REFRESH_TRACK: &str = "replacement server";
/// Span-trace track for the cross-iteration prefetch windows.
pub const PREFETCH_WINDOW_TRACK: &str = "prefetch window";
/// Span-trace track for mutation batches: delta patching and the repair
/// re-runs they trigger (its own track — patches land *between* runs, so
/// they must not nest into the session track's iteration spans).
pub const MUTATE_TRACK: &str = "mutation";
/// Category stamped on session-level phase spans.
const CAT_PHASE: &str = "phase";

/// Wire overhead per refreshed device chunk in the mutation delta stream:
/// a chunk header naming the slot, valid edge count and patch range.
const PATCH_CHUNK_HEADER_BYTES: u64 = 32;

/// Widen a `(start, end)` window to include `[start_ns, end_ns]`.
fn widen(w: &mut Option<(u64, u64)>, start_ns: u64, end_ns: u64) {
    *w = Some(match *w {
        None => (start_ns, end_ns),
        Some((a, b)) => (a.min(start_ns), b.max(end_ns)),
    });
}

/// A prepared Ascetic device bound to one graph, reusable across runs.
pub struct AsceticSession<'g> {
    cfg: AsceticConfig,
    g: &'g Csr,
    geo: ChunkGeometry,
    gpu: Gpu,
    region: StaticRegion,
    od_buffers: Vec<DevPtr>,
    hotness: HotnessTable,
    // the chunked CSC mirror for pull-direction iterations; built once
    // per session (only when the config can ever pull) and shared by
    // every run
    mirror: Option<GraphChunks>,
    prestore_bytes: u64,
    prestore_wire_bytes: u64,
    prestore_ns: u64,
    runs: u32,
}

/// Per-run bookkeeping threaded through the stepping API: the delta
/// baselines captured by `AsceticSession::begin_run` plus every piece
/// of loop state one iteration hands the next (breakdown, per-iteration
/// reports, prefetch pipeline state, buffer fences). Opaque outside the
/// core crate: drivers create it, pass it to each step, and surrender it
/// to `AsceticSession::finish_run`.
pub struct RunCtx {
    run_start: SimTime,
    xfer0: XferStats,
    kernels0: KernelStats,
    compute_busy0: u64,
    obs0: MetricsSnapshot,
    breakdown: Breakdown,
    per_iter: Vec<IterReport>,
    iter_windows: Vec<(u64, u64)>,
    refresh_bytes: u64,
    refresh_wire_bytes: u64,
    repartitions: u32,
    // reused across batches by the compressed path: the encoded stream
    // and the entry list handed to the encoder (zero steady-state
    // allocation once they reach their high-water capacity)
    enc_buf: Vec<u8>,
    enc_entries: Vec<EncodeEntry>,
    iter: u32,
    // per-buffer "compute that last read this buffer" fences
    buffer_free_at: Vec<SimTime>,
    // --- Cross-iteration prefetch pipeline state. ---
    // speculative refreshes in flight: scored for hit/waste one
    // iteration later, once the demand they predicted materializes
    prefetch_pending: Vec<(ChunkId, u64)>,
    // the event the next iteration's static kernel waits on (the
    // prefetch stream's last completion) instead of a blocking miss
    prefetch_ready: SimTime,
    prefetch_bytes: u64,
    prefetch_ops: u64,
    prefetch_hits: u64,
    prefetch_waste: u64,
    // planned ops that did not fit the end-of-iteration slack: they
    // wait for link gaps in the next iteration's on-demand pipeline
    prefetch_deferred: std::collections::VecDeque<PrefetchOp>,
    // gap-issued transfers whose region mutation is deferred to the
    // iteration boundary (kernels may still be reading the region)
    prefetch_inflight: Vec<(PrefetchOp, u64)>,
    // --- Direction-optimizing traversal state. ---
    // the direction iteration k decided for k+1 (computed after k's
    // refreshes so the estimate sees the residency k+1 will); None on
    // iteration 0, which decides on the spot
    next_pull: Option<TraversalDirection>,
    // the direction the previous iteration ran in (hysteresis input)
    last_dir: TraversalDirection,
    pull_iters: u32,
}

impl RunCtx {
    /// Iterations stepped so far in this run.
    pub fn iterations(&self) -> u32 {
        self.iter
    }
}

/// Whether `cfg` allows the compressed transfer path for `g` at all.
/// Weighted payloads interleave 4-byte weights with targets and always
/// ship raw — the delta–varint codec covers unweighted adjacency only.
fn compression_eligible(cfg: &AsceticConfig, g: &Csr) -> bool {
    cfg.compression != CompressionMode::Off && !g.is_weighted()
}

/// Chain-aware adaptive decision for an on-demand payload: compare when
/// the consuming kernel could start on each path, given the current engine
/// frontiers. When the transfer is the bottleneck this reduces to the pure
/// link crossover (`wire/bw + decompress < raw/bw`); when the compute
/// engine is, it declines — a decompression launch there would push the
/// kernel later no matter how many link bytes it saves.
fn chain_wins(gpu: &Gpu, ready: SimTime, raw: u64, wire: u64) -> bool {
    let pcie = gpu.config.pcie;
    let decomp = gpu.config.decompress;
    let copy_start = ready.max(gpu.timeline.engine_free_at(Engine::Copy)).0;
    let compute_free = gpu.timeline.engine_free_at(Engine::Compute).0;
    let raw_kernel_at = (copy_start + pcie.transfer_ns(raw)).max(compute_free);
    let comp_kernel_at =
        (copy_start + pcie.transfer_ns(wire)).max(compute_free) + decomp.decompress_ns(raw);
    comp_kernel_at < raw_kernel_at
}

impl<'g> AsceticSession<'g> {
    /// Set up the device for `g`: reserve vertex arrays, size the regions
    /// per Eq (2), allocate the on-demand buffers and perform the prestore.
    pub fn new(cfg: AsceticConfig, g: &'g Csr) -> AsceticSession<'g> {
        let geo = ChunkGeometry::with_chunk_bytes(g, cfg.chunk_bytes);
        Self::with_geometry(cfg, g, geo)
    }

    /// Like [`AsceticSession::new`] but reusing the chunking cached by
    /// [`crate::system::OutOfCoreSystem::prepare`], so layers that run many
    /// jobs against one prepared system (the serve scheduler) do not
    /// re-derive config state per session.
    pub fn with_prepared(
        cfg: AsceticConfig,
        g: &'g Csr,
        prepared: &crate::system::Prepared,
    ) -> AsceticSession<'g> {
        let geo = prepared
            .geometry
            .unwrap_or_else(|| ChunkGeometry::with_chunk_bytes(g, cfg.chunk_bytes));
        debug_assert_eq!(geo.num_edges, g.num_edges(), "prepared for another graph");
        Self::with_geometry(cfg, g, geo)
    }

    fn with_geometry(cfg: AsceticConfig, g: &'g Csr, geo: ChunkGeometry) -> AsceticSession<'g> {
        let mut gpu = if cfg.tracing {
            Gpu::new_traced(cfg.device)
        } else {
            Gpu::new(cfg.device)
        };
        if cfg.events {
            gpu.obs.enable_events(DEFAULT_EVENT_CAPACITY);
        }
        let _vertex_slab = reserve_vertex_arrays(&mut gpu, g);
        let m_edge = edge_budget_bytes(&gpu);
        let d = g.edge_bytes();
        assert!(
            m_edge >= 2 * cfg.chunk_bytes as u64,
            "edge budget ({m_edge} B) below two chunks"
        );

        // --- Region sizing: Eq (2) (or the Figure 10 override). ---
        let share = cfg
            .static_ratio_override
            .unwrap_or_else(|| static_share(cfg.k, d, m_edge));
        let full_cover = (geo.num_chunks() * cfg.chunk_bytes) as u64;
        let mut static_target = (share * m_edge as f64) as u64;
        if static_target >= d && full_cover <= m_edge {
            // The whole dataset fits: pin every chunk (round the Eq (2)
            // byte target up to whole chunks).
            static_target = full_cover;
        }
        if static_target < full_cover {
            // Data will spill on demand: leave the on-demand region at
            // least one chunk of room.
            static_target = static_target.min(m_edge - cfg.chunk_bytes as u64);
        }
        let mut region = StaticRegion::new(&mut gpu, g, geo, static_target);
        let od_words = gpu.mem.available();
        let od_slab = gpu.alloc(od_words).expect("on-demand region allocation");
        // split the on-demand slab into cfg.od_buffers equal pieces (each
        // must still hold at least one edge entry)
        let nbuf = cfg
            .od_buffers
            .max(1)
            .min((od_words / g.words_per_edge()).max(1));
        let per = od_words / nbuf / g.words_per_edge() * g.words_per_edge();
        let mut od_buffers: Vec<DevPtr> = (0..nbuf).map(|i| od_slab.slice(i * per, per)).collect();
        if nbuf == 1 {
            od_buffers[0] = od_slab; // use the whole slab when not splitting
        }

        // The hotness table exists before the prestore: its per-chunk
        // encoded-size cache prices the fill's compression crossover, and
        // the measurements stay warm for every later transfer decision.
        let mut hotness = HotnessTable::new(geo.num_chunks(), cfg.replacement);

        // --- Prestore: one bulk fill of the static region. ---
        let plan = region.plan_fill(cfg.fill, region.slots());
        let prestore_bytes = region.fill(&mut gpu, g, &plan);
        // Compression crossover for the fill: price the planned chunks'
        // encoded payloads (measuring + caching each) and ship encoded
        // only when the link savings beat the decompression cost.
        let mut prestore_wire_bytes = prestore_bytes;
        let mut prestore_ns = gpu.config.pcie.transfer_ns(prestore_bytes);
        let mut prestore_compressed = false;
        if compression_eligible(&cfg, g) && prestore_bytes > 0 {
            let wire: u64 = plan
                .iter()
                .map(|&c| chunk_wire_bytes(g, &geo, c, &mut hotness))
                .sum();
            let ship = match cfg.compression {
                CompressionMode::Always => true,
                CompressionMode::Adaptive => compress_wins(
                    &gpu.config.pcie,
                    &gpu.config.decompress,
                    prestore_bytes,
                    wire,
                ),
                CompressionMode::Off => unreachable!(),
            };
            if ship {
                prestore_compressed = true;
                prestore_wire_bytes = wire;
                let copy_ns = gpu.config.pcie.transfer_ns(wire);
                let dec_ns = gpu.config.decompress.decompress_ns(prestore_bytes);
                let copy =
                    gpu.timeline
                        .schedule_labeled(Engine::Copy, SimTime::ZERO, copy_ns, || {
                            format!("prestore {wire}B (compressed, {prestore_bytes}B raw)")
                        });
                gpu.timeline
                    .schedule_labeled(Engine::Compute, copy.end, dec_ns, || {
                        format!("prestore decompress {prestore_bytes}B")
                    });
                prestore_ns = copy_ns + dec_ns;
                gpu.obs.record(
                    0,
                    Event::CompressedDma {
                        raw_bytes: prestore_bytes,
                        wire_bytes: wire,
                        dur_ns: copy_ns,
                        decompress_ns: dec_ns,
                    },
                );
            }
        }
        if !prestore_compressed {
            gpu.timeline
                .schedule_labeled(Engine::Copy, SimTime::ZERO, prestore_ns, || {
                    format!("prestore {prestore_bytes}B")
                });
        }
        gpu.obs
            .registry
            .counter_add("prestore.bytes", prestore_bytes);
        gpu.obs
            .registry
            .counter_add("prestore.wire_bytes", prestore_wire_bytes);
        gpu.obs.record(
            0,
            Event::Prestore {
                bytes: prestore_bytes,
                dur_ns: prestore_ns,
            },
        );
        let staged = gpu.sync();
        if staged.0 > 0 {
            if let Some(tr) = gpu.timeline.tracer_mut() {
                let t = tr.track(SESSION_TRACK);
                tr.complete(t, 0, staged.0, "static staging", CAT_PHASE)
                    .expect("staging is the first session span");
            }
        }

        // The CSC mirror is host-side state (the on-demand pipeline ships
        // its rows exactly like CSR rows), built eagerly so every run —
        // and every fleet shard — amortizes one transpose.
        let mirror = if cfg.direction != DirectionMode::Push {
            Some(GraphChunks::build(g, cfg.chunk_bytes))
        } else {
            None
        };

        AsceticSession {
            cfg,
            g,
            geo,
            gpu,
            region,
            od_buffers,
            hotness,
            mirror,
            prestore_bytes,
            prestore_wire_bytes,
            prestore_ns,
            runs: 0,
        }
    }

    /// Number of runs executed so far.
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// The graph this session is bound to.
    pub fn graph(&self) -> &'g Csr {
        self.g
    }

    /// Schedule the DMA for one chunk-sized region transfer (lazy load or
    /// refresh): raw, or — when the crossover favors it — the encoded
    /// payload on the copy engine plus a decompression launch on the
    /// compute engine. Returns `(wire_bytes, total_ns)`. Chunk transfers
    /// are small, so the decompression launch overhead usually keeps them
    /// raw under `Adaptive`; `Always` forces the encoded path.
    fn chunk_dma(
        &mut self,
        chunk: ChunkId,
        bytes: u64,
        ready: SimTime,
        label: &'static str,
    ) -> (u64, u64) {
        let pcie = self.gpu.config.pcie;
        let decomp = self.gpu.config.decompress;
        if compression_eligible(&self.cfg, self.g) && bytes > 0 {
            let wire = chunk_wire_bytes(self.g, &self.geo, chunk, &mut self.hotness);
            let ship = match self.cfg.compression {
                CompressionMode::Always => true,
                CompressionMode::Adaptive => {
                    // Nothing waits on a refresh, so the crossover alone is
                    // not enough: the encoded chain — including queueing on
                    // the busy compute engine — must finish before the raw
                    // copy would, or the decompression launch could grow
                    // the iteration's critical path for no latency gain.
                    let copy_start = ready.max(self.gpu.timeline.engine_free_at(Engine::Copy)).0;
                    let compute_free = self.gpu.timeline.engine_free_at(Engine::Compute).0;
                    let raw_copy_end = copy_start + pcie.transfer_ns(bytes);
                    let dec_end = (copy_start + pcie.transfer_ns(wire)).max(compute_free)
                        + decomp.decompress_ns(bytes);
                    compress_wins(&pcie, &decomp, bytes, wire) && dec_end < raw_copy_end
                }
                CompressionMode::Off => unreachable!(),
            };
            if ship {
                let copy = self.gpu.timeline.schedule_labeled(
                    Engine::Copy,
                    ready,
                    pcie.transfer_ns(wire),
                    || format!("{label} {wire}B (compressed, {bytes}B raw)"),
                );
                let dec = self.gpu.timeline.schedule_labeled(
                    Engine::Compute,
                    copy.end,
                    decomp.decompress_ns(bytes),
                    || format!("{label} decompress {bytes}B"),
                );
                let reg = &mut self.gpu.obs.registry;
                reg.counter_add("compress.transfers", 1);
                reg.counter_add("compress.raw_bytes", bytes);
                reg.counter_add("compress.wire_bytes", wire);
                reg.observe("compress.ratio_x100", bytes * 100 / wire.max(1));
                self.gpu.obs.record(
                    copy.start.0,
                    Event::CompressedDma {
                        raw_bytes: bytes,
                        wire_bytes: wire,
                        dur_ns: copy.duration(),
                        decompress_ns: dec.duration(),
                    },
                );
                return (wire, copy.duration() + dec.duration());
            }
            self.gpu.obs.registry.counter_add("compress.declined", 1);
        }
        let span = self.gpu.timeline.schedule_labeled(
            Engine::Copy,
            ready,
            pcie.transfer_ns(bytes),
            || format!("{label} {bytes}B"),
        );
        (bytes, span.duration())
    }

    /// Fraction of the graph's chunks currently resident in the static
    /// region.
    pub fn resident_fraction(&self) -> f64 {
        self.region.resident_chunks() as f64 / self.geo.num_chunks().max(1) as f64
    }

    /// The session's edge-chunk geometry.
    pub fn geometry(&self) -> ChunkGeometry {
        self.geo
    }

    /// Bytes of edge data currently resident in the static region
    /// (actual chunk payload, short last chunk included).
    pub fn resident_bytes(&self) -> u64 {
        self.region
            .resident_chunk_ids()
            .iter()
            .map(|&c| self.geo.chunk_len_bytes(c) as u64)
            .sum()
    }

    /// Bytes of the prestore payload as shipped (encoded when the fill
    /// crossed over) — what a device-to-device replica of this session's
    /// static region would put on a fleet link.
    pub fn prestore_wire_bytes(&self) -> u64 {
        self.prestore_wire_bytes
    }

    /// Snapshot of the device arena's occupancy, for serve-layer admission
    /// control against what this session has pinned.
    pub fn occupancy(&self) -> ascetic_sim::ArenaOccupancy {
        self.gpu.occupancy()
    }

    /// Next-demand estimate for a prospective frontier: how many bytes of
    /// the chunk demand `frontier` would generate are already resident in
    /// the static region, and the total demand. Residency-affinity
    /// scheduling ranks waiting jobs by the first component — it is exactly
    /// the traffic a cold session would have to ship on demand but a warm
    /// one serves from device memory.
    pub fn demand_overlap(&self, frontier: &Bitmap) -> (u64, u64) {
        let demand = chunk_demand_bytes(self.g, &self.geo, frontier);
        let mut resident = 0u64;
        let mut total = 0u64;
        for (c, &b) in demand.iter().enumerate() {
            total += b;
            if self.region.is_resident(c as ChunkId) {
                resident += b;
            }
        }
        (resident, total)
    }

    /// Synchronize every engine and return the device clock, ns. The
    /// fleet driver reads this after each shard's step to find the
    /// round's frontier-exchange start.
    pub(crate) fn clock_ns(&mut self) -> u64 {
        self.gpu.sync().0
    }

    /// Fleet hook: stamp this round's cross-device frontier exchange on
    /// the device timeline — a labeled copy-engine span over the window
    /// the interconnect computed for this device's sends — then
    /// fast-forward every engine to the fleet-wide barrier so the next
    /// round starts aligned.
    pub(crate) fn fleet_exchange(
        &mut self,
        round: u32,
        send_bytes: u64,
        window: (u64, u64),
        barrier_ns: u64,
    ) {
        if send_bytes > 0 && window.1 > window.0 {
            self.gpu.timeline.schedule_labeled(
                Engine::Copy,
                SimTime(window.0),
                window.1 - window.0,
                || format!("frontier exchange {send_bytes}B (round {round})"),
            );
        }
        self.gpu.timeline.barrier(SimTime(barrier_ns));
    }

    /// Beamer-style density heuristic on *transfer* demand: compare the
    /// on-demand wire bytes each direction would ship for `frontier`.
    /// Push ships the non-resident frontier vertices' out-edge rows plus
    /// their subgraph index; pull bypasses the (CSR-chunked) static region
    /// entirely, so it ships every candidate target's full in-edge row.
    /// Switching *into* pull demands a 25 % margin; staying only a tie —
    /// the hysteresis that keeps near-equal iterations from flapping.
    fn pull_wins<P: VertexProgram>(
        &self,
        prog: &P,
        frontier: &Bitmap,
        state: &P::State,
        prev_pull: bool,
    ) -> bool {
        let g = self.g;
        let bpe = g.bytes_per_edge() as u64;
        let resident = self.region.vertex_bitmap();
        let mut push_edges = 0u64;
        let mut push_nodes = 0u64;
        for v in frontier.iter_ones() {
            if !resident.get(v) {
                push_edges += g.degree(v as VertexId);
                push_nodes += 1;
            }
        }
        let push_est = push_edges * bpe + push_nodes * 8;
        let csc = &self
            .mirror
            .as_ref()
            .expect("adaptive direction without a CSC mirror")
            .csc;
        let targets = ops::pull_frontier(prog, g, frontier, state);
        let mut pull_edges = 0u64;
        let mut pull_nodes = 0u64;
        for v in targets.iter_ones() {
            let d = csc.degree(v as VertexId);
            if d > 0 {
                pull_edges += d;
                pull_nodes += 1;
            }
        }
        let pull_est = pull_edges * bpe + pull_nodes * 8;
        if prev_pull {
            pull_est <= push_est
        } else {
            pull_est * 4 < push_est * 3
        }
    }

    /// Resolve the traversal direction for an iteration whose frontier is
    /// `frontier`, honoring the config policy and the program's pull
    /// capability. A push-only program always runs push: forcing
    /// `--direction pull` onto one is rejected at configuration build /
    /// admission time ([`AsceticConfig::validate_algo`]), never here.
    fn direction_for<P: VertexProgram>(
        &self,
        prog: &P,
        frontier: &Bitmap,
        state: &P::State,
        prev: TraversalDirection,
    ) -> TraversalDirection {
        if !prog.capabilities().pull {
            return TraversalDirection::Push;
        }
        match self.cfg.direction {
            DirectionMode::Push => TraversalDirection::Push,
            DirectionMode::Pull => TraversalDirection::Pull,
            DirectionMode::Adaptive => {
                if self.pull_wins(prog, frontier, state, prev == TraversalDirection::Pull) {
                    TraversalDirection::Pull
                } else {
                    TraversalDirection::Push
                }
            }
        }
    }

    /// Capture the per-run delta baselines and fresh loop state. Drivers
    /// call this once, then `AsceticSession::step_iteration` per
    /// iteration, then `AsceticSession::finish_run`.
    pub(crate) fn begin_run(&mut self) -> RunCtx {
        let run_start = self.gpu.sync();
        RunCtx {
            run_start,
            xfer0: self.gpu.xfer,
            kernels0: self.gpu.kernels,
            compute_busy0: self.gpu.timeline.busy_ns(Engine::Compute),
            obs0: self.gpu.obs.registry.snapshot(),
            breakdown: Breakdown::default(),
            per_iter: Vec::new(),
            iter_windows: Vec::new(),
            refresh_bytes: 0,
            refresh_wire_bytes: 0,
            repartitions: 0,
            enc_buf: Vec::new(),
            enc_entries: Vec::new(),
            iter: 0,
            buffer_free_at: vec![SimTime::ZERO; self.od_buffers.len()],
            prefetch_pending: Vec::new(),
            prefetch_ready: SimTime::ZERO,
            prefetch_bytes: 0,
            prefetch_ops: 0,
            prefetch_hits: 0,
            prefetch_waste: 0,
            prefetch_deferred: std::collections::VecDeque::new(),
            prefetch_inflight: Vec::new(),
            next_pull: None,
            last_dir: TraversalDirection::Push,
            pull_iters: 0,
        }
    }

    /// Execute one iteration of `prog` over this session's graph: data
    /// maps, adaptive re-partition, static-region compute overlapped with
    /// the on-demand pipeline, replacement-server window and the
    /// cross-iteration prefetch commit/plan. The driver owns the frontier
    /// dance: it runs the compute operator first, passes the (already
    /// ownership-masked, in the fleet case) `active` bitmap, and snapshots
    /// `next` after the step (after *all* shards' steps, in the fleet
    /// case) to build the next round's frontier.
    pub(crate) fn step_iteration<P: VertexProgram>(
        &mut self,
        prog: &P,
        ctx: &mut RunCtx,
        active: &Bitmap,
        state: &P::State,
        next: &AtomicBitmap,
    ) {
        let g = self.g;
        let cfg = self.cfg;
        let n = g.num_vertices();
        let geo = self.geo;
        let weighted = g.is_weighted();
        let bpe = g.bytes_per_edge() as u64;
        let d = g.edge_bytes();
        let compressible = compression_eligible(&cfg, g);
        let lazy_fill = matches!(cfg.fill, FillPolicy::Lazy);
        let prefetch_on = cfg.prefetch.is_on();
        let iter = ctx.iter;

        // Direction dispatch: the previous iteration pre-committed a
        // direction for this frontier (after its prefetch window, so the
        // residency estimate matches what this iteration's data maps will
        // see); iteration 0 decides on the spot. Default `Push` policy
        // takes none of these branches and stays byte-identical.
        if cfg.direction != DirectionMode::Push {
            let dir = match ctx.next_pull.take() {
                Some(d) => d,
                None => self.direction_for(prog, active, state, ctx.last_dir),
            };
            ctx.last_dir = dir;
            if dir == TraversalDirection::Pull {
                return self.step_pull_iteration(prog, ctx, active, state, next);
            }
        }

        let iter_start = self.gpu.sync();
        self.gpu.obs.record(iter_start.0, Event::IterStart { iter });
        if let Some(tr) = self.gpu.timeline.tracer_mut() {
            let t = tr.track(SESSION_TRACK);
            tr.begin(t, iter_start.0, &format!("iteration {iter}"), CAT_PHASE)
                .expect("iterations are sequential on the session track");
        }

        // ➊ GenDataMap (cheap bitmap kernel over |V| bits).
        let mut maps = DataMaps::generate(g, active, self.region.vertex_bitmap());
        let genmap = self.gpu.kernel_at(0, (n as u64).div_ceil(64), iter_start);
        ctx.breakdown.gen_map_ns += genmap.duration();
        if let Some(tr) = self.gpu.timeline.tracer_mut() {
            let t = tr.track(SESSION_TRACK);
            tr.complete(t, genmap.start.0, genmap.end.0, "GenDataMap", CAT_PHASE)
                .expect("GenDataMap opens the iteration");
        }

        // Eq (3): adaptive re-partition when the on-demand volume
        // overflows an under-used static region. Under lazy fill the
        // region is *supposed* to look under-used until warming
        // completes, so the check waits for a full region.
        if cfg.adaptive && !(lazy_fill && self.region.free_slots() > 0) {
            let od_capacity: u64 = self.od_buffers.iter().map(|b| b.len_bytes()).sum();
            let decision = repartition_check(
                maps.ondemand_bytes(bpe),
                maps.static_bytes(bpe),
                maps.active_edges() * bpe,
                self.region.capacity_bytes(),
                od_capacity,
                d,
            );
            if let Repartition::ShrinkStaticBy(bytes) = decision {
                let slots = (bytes as usize).div_ceil(cfg.chunk_bytes).max(1);
                if let Some(tail) = self.region.release_tail_slots(g, slots) {
                    self.od_buffers.push(tail);
                    ctx.buffer_free_at.push(SimTime::ZERO);
                    ctx.repartitions += 1;
                    self.gpu.obs.registry.counter_add("repartitions", 1);
                    self.gpu.obs.record(
                        iter_start.0,
                        Event::Repartition {
                            iter,
                            static_bytes: self.region.capacity_bytes(),
                        },
                    );
                    // bitmap changed: regenerate the data maps
                    maps = DataMaps::generate(g, active, self.region.vertex_bitmap());
                }
            }
        }

        // ➌ Static-region compute (overlaps the on-demand pipeline).
        // The kernel event-waits on the prefetch stream's last
        // completion instead of faulting on a half-refreshed region;
        // prefetches are budgeted to land inside the previous
        // iteration's link slack, so the wait never actually stalls.
        let static_ready = genmap.end.max(ctx.prefetch_ready);
        let static_span = if maps.static_nodes.is_empty() {
            None
        } else {
            let span = self.gpu.kernel_at(
                maps.static_edges,
                maps.static_nodes.len() as u64,
                static_ready,
            );
            ctx.breakdown.static_compute_ns += span.duration();
            Some(span)
        };
        if let Some(span) = static_span {
            if let Some(tr) = self.gpu.timeline.tracer_mut() {
                let t = tr.track(SESSION_TRACK);
                tr.complete(
                    t,
                    span.start.0,
                    span.end.0,
                    "static-region compute",
                    CAT_PHASE,
                )
                .expect("static compute follows GenDataMap");
            }
        }
        if !maps.static_nodes.is_empty() {
            let mem = &self.gpu.mem;
            let region_ref = &self.region;
            parallel_for(maps.static_nodes.len(), |i| {
                let v = maps.static_nodes[i];
                region_ref.for_each_vertex_slice(mem, g, v, |words| {
                    ops::advance(prog, v, EdgeSlice::new(words, weighted), state, next);
                });
            });
        }

        // ➋➍➎ On-demand pipeline: gather → transfer → compute, batched.
        let min_buffer_words = self.od_buffers.iter().map(|b| b.len).min().unwrap_or(0);
        let mut od_payload = 0u64;
        let mut od_compute_window = 0u64;
        let mut first_od_compute_start: Option<SimTime> = None;
        // prefetch DMAs issued this iteration (gap fills + the tail),
        // for the iteration's window span on the prefetch track
        let mut pf_window: Option<(u64, u64)> = None;
        if !maps.ondemand_nodes.is_empty() {
            assert!(
                min_buffer_words > 0,
                "no on-demand buffer but on-demand data exists"
            );
            // In no-overlap mode the whole pipeline waits for the
            // static compute (the Figure 8 "Baseline" lane layout).
            let pipeline_ready = if cfg.overlap {
                genmap.end
            } else {
                static_span.map_or(genmap.end, |s| s.end)
            };
            let batches = plan_batches(g, &maps.ondemand_nodes, min_buffer_words);
            // Issue every batch's CPU gather up front. The spans are
            // identical to in-loop issue (gathers serialize on the CPU
            // engine and depend on nothing downstream of themselves),
            // but knowing when batch k's gather completes tells the
            // prefetch stream exactly how long the link stays idle
            // before batch k's transfer can possibly start.
            let batch_bpe = g.bytes_per_edge() as u64;
            let mut gather_ready = pipeline_ready;
            let gather_spans: Vec<_> = batches
                .iter()
                .map(|entries| {
                    let edges: u64 = entries.iter().map(|e| e.num_edges()).sum();
                    let span =
                        self.gpu
                            .gather_at(edges * batch_bpe, entries.len() as u64, gather_ready);
                    ctx.breakdown.gather_ns += span.duration();
                    gather_ready = span.end; // CPU engine serializes anyway
                    span
                })
                .collect();
            let gather_first = gather_spans.first().map(|s| s.start);
            let gather_last = gather_ready;
            let mut od_window_end = gather_last;
            for (bi, (entries, g_span)) in batches.into_iter().zip(gather_spans).enumerate() {
                let buf_idx = bi % self.od_buffers.len();
                let buffer = self.od_buffers[buf_idx];

                // Prefetch gap fill: the link is provably idle until
                // this batch's gather completes, so deferred
                // speculative refreshes ride the second copy stream in
                // that window — an op is issued only when it finishes
                // before the gather does, so no on-demand transfer
                // moves by a nanosecond.
                while let Some(&op) = ctx.prefetch_deferred.front() {
                    let bytes = geo.chunk_len_bytes(op.chunk()) as u64;
                    let dur = self.gpu.config.pcie.transfer_ns(bytes);
                    let link_free = self.gpu.timeline.engine_free_at(Engine::Copy);
                    if link_free.0 + dur > g_span.end.0 {
                        break; // would push this batch's transfer later
                    }
                    ctx.prefetch_deferred.pop_front();
                    let span = self
                        .gpu
                        .prefetch_dma_at(op.chunk() as u64, bytes, link_free);
                    widen(&mut pf_window, span.start.0, span.end.0);
                    ctx.prefetch_bytes += bytes;
                    ctx.prefetch_ops += 1;
                    ctx.prefetch_inflight.push((op, bytes));
                }

                let batch = gather(g, entries);

                // H2D transfer of payload + index, into this batch's buffer
                let dst = buffer.slice(0, batch.words.len());
                let ready = g_span.end.max(ctx.buffer_free_at[buf_idx]);
                let raw_bytes = batch.payload_bytes();
                // Compression crossover: estimate from the per-chunk
                // cache, then (if promising) really encode and re-check
                // against the actual byte count before shipping — a bad
                // estimate falls back to the raw path.
                let mut compressed: Option<(u64, SimTime)> = None;
                if compressible && raw_bytes > 0 {
                    let promising = match cfg.compression {
                        CompressionMode::Always => true,
                        CompressionMode::Adaptive => {
                            let est =
                                estimate_batch_wire(g, &geo, &mut self.hotness, &batch.entries);
                            chain_wins(&self.gpu, ready, raw_bytes, est)
                        }
                        CompressionMode::Off => unreachable!(),
                    };
                    if promising {
                        ctx.enc_entries.clear();
                        ctx.enc_entries
                            .extend(batch.entries.iter().map(|e| (e.vertex, e.edges.clone())));
                        ctx.enc_buf.clear();
                        let wire = encode_ranges(g, &ctx.enc_entries, &mut ctx.enc_buf) as u64;
                        // re-check with the actual encoded size: a bad
                        // chunk-ratio estimate must not ship a loser
                        let ship = matches!(cfg.compression, CompressionMode::Always)
                            || chain_wins(&self.gpu, ready, raw_bytes, wire);
                        if ship {
                            let (copy, dec) =
                                self.gpu
                                    .h2d_compressed_at(dst, &batch.words, &ctx.enc_buf, ready);
                            let reg = &mut self.gpu.obs.registry;
                            reg.counter_add("compress.transfers", 1);
                            reg.counter_add("compress.raw_bytes", raw_bytes);
                            reg.counter_add("compress.wire_bytes", wire);
                            reg.observe("compress.ratio_x100", raw_bytes * 100 / wire.max(1));
                            compressed = Some((copy.duration() + dec.duration(), dec.end));
                        }
                    }
                    if compressed.is_none() {
                        self.gpu.obs.registry.counter_add("compress.declined", 1);
                    }
                }
                let (t_ns, payload_at) = compressed.unwrap_or_else(|| {
                    let t_span = self.gpu.h2d_at(dst, &batch.words, ready);
                    (t_span.duration(), t_span.end)
                });
                // account the subgraph index bytes on the same DMA op
                // (the index always ships raw, compressed payload or not)
                self.gpu.xfer.h2d_bytes += batch.index_bytes();
                self.gpu.xfer.h2d_wire_bytes += batch.index_bytes();
                ctx.breakdown.transfer_ns += t_ns;
                od_payload += batch.payload_bytes() + batch.index_bytes();

                // OD compute (serializes on the COMPUTE engine after the
                // static kernel automatically)
                let c_span =
                    self.gpu
                        .kernel_at(batch.edges, batch.entries.len() as u64, payload_at);
                ctx.breakdown.ondemand_compute_ns += c_span.duration();
                od_compute_window += c_span.duration();
                first_od_compute_start.get_or_insert(c_span.start);
                ctx.buffer_free_at[buf_idx] = c_span.end;
                od_window_end = od_window_end.max(c_span.end);

                // host execution of the batch
                let mem = &self.gpu.mem;
                let batch_ref = &batch;
                parallel_for(batch_ref.entries.len(), |i| {
                    let e = &batch_ref.entries[i];
                    let words = &mem.words(dst)[batch_ref.entry_words(i)];
                    ops::advance(prog, e.vertex, EdgeSlice::new(words, weighted), state, next);
                });
            }
            if let Some(first) = gather_first {
                if let Some(tr) = self.gpu.timeline.tracer_mut() {
                    let t = tr.track(ONDEMAND_TRACK);
                    tr.begin(t, first.0, &format!("on-demand iter {iter}"), CAT_PHASE)
                        .expect("on-demand windows are sequential");
                    tr.complete(t, first.0, gather_last.0, "gather", CAT_PHASE)
                        .expect("gather nests in the on-demand window");
                    tr.end(t, od_window_end.0)
                        .expect("the window closes after its last batch");
                }
            }
        }

        // Hotness accounting for this iteration's touched chunks
        // (needed by the replacement server, lazy warming and the
        // prefetch pipeline's demand scoring).
        if lazy_fill || !matches!(cfg.replacement, ReplacementPolicy::Disabled) || prefetch_on {
            self.hotness
                .record_vertices(g, &geo, &maps.static_nodes, iter);
            self.hotness
                .record_vertices(g, &geo, &maps.ondemand_nodes, iter);

            // Score the previous iteration's speculative refreshes now
            // that the demand they predicted has materialized: a hit iff
            // the chunk is still resident and this iteration touched it.
            for (c, bytes) in ctx.prefetch_pending.drain(..) {
                if self.region.is_resident(c) && self.hotness.demanded_at(c, iter) {
                    ctx.prefetch_hits += 1;
                } else {
                    ctx.prefetch_waste += bytes;
                }
            }

            // ➎ Replacement server window: chunk DMAs issued while the
            // GPU chews the on-demand region, within its PCIe budget.
            if od_compute_window > 0 {
                // each op is one chunk-sized DMA including its fixed
                // latency; the server only issues what fits the window
                let per_op_ns = self
                    .gpu
                    .config
                    .pcie
                    .transfer_ns(cfg.chunk_bytes as u64)
                    .max(1);
                let mut ops_left = (od_compute_window / per_op_ns) as usize;
                let ready = first_od_compute_start.unwrap_or(iter_start);
                let copy_free0 = self.gpu.timeline.engine_free_at(Engine::Copy);
                let mut window_ops = 0u32;

                // lazy warming first: adopt demanded chunks into free
                // slots (counted as steady transfer, not prestore)
                if lazy_fill && ops_left > 0 {
                    for chunk in self.hotness.plan_loads(&self.region, iter, ops_left) {
                        let bytes = self.region.load_chunk(&mut self.gpu, g, chunk);
                        let (wire, dur) = self.chunk_dma(chunk, bytes, ready, "lazy-load");
                        self.gpu.xfer.h2d_bytes += bytes;
                        self.gpu.xfer.h2d_wire_bytes += wire;
                        self.gpu.xfer.h2d_ops += 1;
                        self.gpu.obs.registry.counter_add("lazy.loads", 1);
                        self.gpu.obs.record(ready.0, Event::LazyLoad { bytes });
                        ctx.breakdown.update_ns += dur;
                        ops_left -= 1;
                        window_ops += 1;
                    }
                }

                // then stale-for-hot swaps — unless the prefetch
                // pipeline is on, which subsumes them: it refreshes the
                // region from *exact* next-frontier demand on the
                // second copy stream (inside link slack) instead of
                // spending synchronous link time inside the iteration
                // on hotness guesses
                if !matches!(cfg.replacement, ReplacementPolicy::Disabled)
                    && ops_left > 0
                    && !prefetch_on
                {
                    let swaps = self.hotness.plan_swaps(&self.region, iter, ops_left);
                    for (evict, load) in swaps {
                        let bytes = self.region.swap_chunk(&mut self.gpu, g, evict, load);
                        let (wire, dur) = self.chunk_dma(load, bytes, ready, "refresh");
                        ctx.refresh_bytes += bytes;
                        ctx.refresh_wire_bytes += wire;
                        self.gpu.obs.registry.counter_add("hotness.swaps", 1);
                        self.gpu
                            .obs
                            .record(ready.0, Event::HotSwap { chunks: 1, bytes });
                        ctx.breakdown.update_ns += dur;
                        window_ops += 1;
                    }
                }
                if window_ops > 0 {
                    let start = copy_free0.max(ready).0;
                    let end = self.gpu.timeline.engine_free_at(Engine::Copy).0;
                    if let Some(tr) = self.gpu.timeline.tracer_mut() {
                        let t = tr.track(REFRESH_TRACK);
                        tr.complete(t, start, end, &format!("refresh iter {iter}"), CAT_PHASE)
                            .expect("refresh windows are sequential");
                    }
                }
            }
        }

        // ➏ Cross-iteration prefetch: the kernels just wrote the next
        // frontier, so its chunk demand is already known. Speculatively
        // refresh the static region on the second copy stream, budgeted
        // to the link slack left before this iteration's barrier — the
        // transfers hide entirely under work already on the clock, so
        // the iteration's makespan is untouched whether they pay off
        // or not.
        let next_frontier = next.snapshot();
        ctx.prefetch_ready = SimTime::ZERO;
        // whatever of last iteration's plan never found a gap dies
        // here, un-issued and free of charge
        ctx.prefetch_deferred.clear();
        if prefetch_on {
            let more = iter + 1 < prog.max_iterations() && !next_frontier.is_all_zero();
            // Commit the gap-issued transfers now that every kernel of
            // this iteration is done reading the region. The plan was
            // one iteration old when its wire time was bought, so each
            // commit is re-validated against the *fresh* frontier: a
            // stale op is dropped — its link time was idle slack, its
            // bytes become waste — rather than applied.
            if more {
                let demand = chunk_demand_bytes(g, &geo, &next_frontier);
                for (op, bytes) in ctx.prefetch_inflight.drain(..) {
                    let apply = match op {
                        PrefetchOp::Load(c) => {
                            !self.region.is_resident(c)
                                && self.region.free_slots() > 0
                                && demand[c as usize] > 0
                        }
                        PrefetchOp::Swap { evict, load } => {
                            self.region.is_resident(evict)
                                && !self.region.is_resident(load)
                                && match cfg.prefetch {
                                    PrefetchMode::NextFrontier => {
                                        demand[load as usize] > demand[evict as usize]
                                    }
                                    // the speculative mode commits on
                                    // residency alone; hit scoring
                                    // charges any misprediction
                                    _ => true,
                                }
                        }
                    };
                    if apply {
                        match op {
                            PrefetchOp::Load(c) => {
                                self.region.load_chunk(&mut self.gpu, g, c);
                            }
                            PrefetchOp::Swap { evict, load } => {
                                self.region.swap_chunk(&mut self.gpu, g, evict, load);
                            }
                        }
                        ctx.prefetch_pending.push((op.chunk(), bytes));
                    } else {
                        ctx.prefetch_waste += bytes;
                    }
                }
            } else {
                for (_op, bytes) in ctx.prefetch_inflight.drain(..) {
                    ctx.prefetch_waste += bytes;
                }
            }
            if more {
                let per_op_ns = self
                    .gpu
                    .config
                    .pcie
                    .transfer_ns(cfg.chunk_bytes as u64)
                    .max(1);
                let link_free = self.gpu.timeline.engine_free_at(Engine::Copy);
                let slack = self.gpu.timeline.now().0.saturating_sub(link_free.0);
                let budget = (slack / per_op_ns) as usize;
                let plan = plan_prefetch(
                    cfg.prefetch,
                    g,
                    &geo,
                    &self.region,
                    &mut self.hotness,
                    &next_frontier,
                    iter,
                    compressible,
                    budget + GAP_PLAN_OPS,
                );
                let mut plan = plan.into_iter();
                // what fits the tail slack ships (and applies) now ...
                for op in plan.by_ref().take(budget) {
                    let chunk = op.chunk();
                    let bytes = match op {
                        PrefetchOp::Load(c) => self.region.load_chunk(&mut self.gpu, g, c),
                        PrefetchOp::Swap { evict, load } => {
                            self.region.swap_chunk(&mut self.gpu, g, evict, load)
                        }
                    };
                    // prefetches ship raw: the decompression launch
                    // would land on the busy compute engine and could
                    // push the very kernel they are hiding under
                    let span = self.gpu.prefetch_dma_at(chunk as u64, bytes, link_free);
                    widen(&mut pf_window, span.start.0, span.end.0);
                    ctx.prefetch_ready = ctx.prefetch_ready.max(span.end);
                    ctx.prefetch_bytes += bytes;
                    ctx.prefetch_ops += 1;
                    ctx.prefetch_pending.push((chunk, bytes));
                }
                // ... the remainder waits for link gaps in the next
                // iteration's on-demand pipeline
                ctx.prefetch_deferred.extend(plan);
            }
        }

        // Pre-commit the next iteration's direction *after* the prefetch
        // commits above, so the push-vs-pull transfer estimate sees the
        // exact static-region residency the next data maps will see.
        if cfg.direction != DirectionMode::Push
            && prog.capabilities().pull
            && !next_frontier.is_all_zero()
        {
            ctx.next_pull =
                Some(self.direction_for(prog, &next_frontier, state, TraversalDirection::Push));
        }

        if let Some((start, end)) = pf_window.take() {
            if let Some(tr) = self.gpu.timeline.tracer_mut() {
                let t = tr.track(PREFETCH_WINDOW_TRACK);
                tr.complete(t, start, end, &format!("prefetch iter {iter}"), CAT_PHASE)
                    .expect("the prefetch stream serializes its windows");
            }
        }
        let iter_end = self.gpu.sync();
        self.gpu.obs.record(iter_end.0, Event::IterEnd { iter });
        if let Some(tr) = self.gpu.timeline.tracer_mut() {
            let t = tr.track(SESSION_TRACK);
            tr.end(t, iter_end.0)
                .expect("the iteration span closes at the barrier");
        }
        ctx.iter_windows.push((iter_start.0, iter_end.0));
        ctx.per_iter.push(IterReport {
            active_vertices: maps.active_vertices(),
            active_edges: maps.active_edges(),
            payload_bytes: od_payload,
            time_ns: iter_end.since(iter_start),
            static_edges: maps.static_edges,
            pull: false,
        });
        ctx.iter += 1;
    }

    /// One pull-direction iteration: ship every live target's in-edge row
    /// from the chunked CSC mirror through the on-demand pipeline and run
    /// the pull kernel over it. The CSR-chunked static region holds
    /// out-edges, so pull bypasses it entirely — no static compute, no
    /// hotness updates, no replacement, and any in-flight prefetch plan is
    /// written off as waste rather than committed against a region nothing
    /// will read this iteration.
    fn step_pull_iteration<P: VertexProgram>(
        &mut self,
        prog: &P,
        ctx: &mut RunCtx,
        active: &Bitmap,
        state: &P::State,
        next: &AtomicBitmap,
    ) {
        let g = self.g;
        let cfg = self.cfg;
        let n = g.num_vertices();
        let weighted = g.is_weighted();
        let compressible = compression_eligible(&cfg, g);
        let iter = ctx.iter;

        let iter_start = self.gpu.sync();
        self.gpu.obs.record(iter_start.0, Event::IterStart { iter });
        if let Some(tr) = self.gpu.timeline.tracer_mut() {
            let t = tr.track(SESSION_TRACK);
            tr.begin(
                t,
                iter_start.0,
                &format!("iteration {iter} (pull)"),
                CAT_PHASE,
            )
            .expect("iterations are sequential on the session track");
        }

        // ➊ GenDataMap over the *target* set (unvisited candidates), same
        // bitmap-kernel charge as the push direction.
        let targets = ops::pull_frontier(prog, g, active, state);
        let genmap = self.gpu.kernel_at(0, (n as u64).div_ceil(64), iter_start);
        ctx.breakdown.gen_map_ns += genmap.duration();
        if let Some(tr) = self.gpu.timeline.tracer_mut() {
            let t = tr.track(SESSION_TRACK);
            tr.complete(t, genmap.start.0, genmap.end.0, "GenDataMap", CAT_PHASE)
                .expect("GenDataMap opens the iteration");
        }

        // A pull iteration never reads the static region, so a stale
        // prefetch plan has nothing to validate against: drain it as
        // waste instead of mutating residency on signals one push
        // iteration old.
        for (_op, bytes) in ctx.prefetch_inflight.drain(..) {
            ctx.prefetch_waste += bytes;
        }
        for (_chunk, bytes) in ctx.prefetch_pending.drain(..) {
            ctx.prefetch_waste += bytes;
        }
        ctx.prefetch_deferred.clear();
        ctx.prefetch_ready = SimTime::ZERO;

        let mirror = self
            .mirror
            .as_ref()
            .expect("pull iteration without a CSC mirror");
        let csc = &mirror.csc;
        let target_nodes: Vec<VertexId> = targets
            .iter_ones()
            .map(|v| v as VertexId)
            .filter(|&v| csc.degree(v) > 0)
            .collect();

        let mut od_payload = 0u64;
        let mut scanned_edges = 0u64;
        if !target_nodes.is_empty() {
            let min_buffer_words = self.od_buffers.iter().map(|b| b.len).min().unwrap_or(0);
            assert!(
                min_buffer_words > 0,
                "no on-demand buffer but pull targets exist"
            );
            let batches = plan_batches(csc, &target_nodes, min_buffer_words);
            let batch_bpe = csc.bytes_per_edge() as u64;
            // CPU gather spans up front, same as push: gathers serialize
            // on the CPU engine and overlap downstream wire + kernels.
            let mut gather_ready = genmap.end;
            let gather_spans: Vec<_> = batches
                .iter()
                .map(|entries| {
                    let edges: u64 = entries.iter().map(|e| e.num_edges()).sum();
                    let span =
                        self.gpu
                            .gather_at(edges * batch_bpe, entries.len() as u64, gather_ready);
                    ctx.breakdown.gather_ns += span.duration();
                    gather_ready = span.end;
                    span
                })
                .collect();
            let gather_first = gather_spans.first().map(|s| s.start);
            let gather_last = gather_ready;
            let mut od_window_end = gather_last;
            for (bi, (entries, g_span)) in batches.into_iter().zip(gather_spans).enumerate() {
                let buf_idx = bi % self.od_buffers.len();
                let buffer = self.od_buffers[buf_idx];
                let batch = gather(csc, entries);
                let dst = buffer.slice(0, batch.words.len());
                let ready = g_span.end.max(ctx.buffer_free_at[buf_idx]);
                let raw_bytes = batch.payload_bytes();
                // Compression crossover. The hotness wire cache is keyed
                // by CSR chunks, so no estimate is available for CSC
                // rows: encode outright and decide on the actual size.
                let mut compressed: Option<(u64, SimTime)> = None;
                if compressible && raw_bytes > 0 {
                    ctx.enc_entries.clear();
                    ctx.enc_entries
                        .extend(batch.entries.iter().map(|e| (e.vertex, e.edges.clone())));
                    ctx.enc_buf.clear();
                    let wire = encode_ranges(csc, &ctx.enc_entries, &mut ctx.enc_buf) as u64;
                    let ship = matches!(cfg.compression, CompressionMode::Always)
                        || chain_wins(&self.gpu, ready, raw_bytes, wire);
                    if ship {
                        let (copy, dec) =
                            self.gpu
                                .h2d_compressed_at(dst, &batch.words, &ctx.enc_buf, ready);
                        let reg = &mut self.gpu.obs.registry;
                        reg.counter_add("compress.transfers", 1);
                        reg.counter_add("compress.raw_bytes", raw_bytes);
                        reg.counter_add("compress.wire_bytes", wire);
                        reg.observe("compress.ratio_x100", raw_bytes * 100 / wire.max(1));
                        compressed = Some((copy.duration() + dec.duration(), dec.end));
                    } else {
                        self.gpu.obs.registry.counter_add("compress.declined", 1);
                    }
                }
                let (t_ns, payload_at) = compressed.unwrap_or_else(|| {
                    let t_span = self.gpu.h2d_at(dst, &batch.words, ready);
                    (t_span.duration(), t_span.end)
                });
                self.gpu.xfer.h2d_bytes += batch.index_bytes();
                self.gpu.xfer.h2d_wire_bytes += batch.index_bytes();
                ctx.breakdown.transfer_ns += t_ns;
                od_payload += batch.payload_bytes() + batch.index_bytes();

                // Host execution runs before the kernel charge: the
                // simulated pull kernel's edge count is the exact number
                // of in-edges the operator scanned (CC's zero-label early
                // exit makes that data-dependent), so the scan result is
                // needed first. The virtual clock makes the ordering
                // unobservable.
                let batch_scanned = {
                    let mem = &self.gpu.mem;
                    let batch_ref = &batch;
                    let scanned = AtomicU64::new(0);
                    parallel_for(batch_ref.entries.len(), |i| {
                        let e = &batch_ref.entries[i];
                        let words = &mem.words(dst)[batch_ref.entry_words(i)];
                        let s = ops::advance_pull(
                            prog,
                            e.vertex,
                            EdgeSlice::new(words, weighted),
                            active,
                            state,
                            next,
                        );
                        scanned.fetch_add(s, Ordering::Relaxed);
                    });
                    scanned.into_inner()
                };
                scanned_edges += batch_scanned;
                let c_span =
                    self.gpu
                        .pull_kernel_at(batch_scanned, batch.entries.len() as u64, payload_at);
                ctx.breakdown.ondemand_compute_ns += c_span.duration();
                ctx.buffer_free_at[buf_idx] = c_span.end;
                od_window_end = od_window_end.max(c_span.end);
            }
            if let Some(first) = gather_first {
                if let Some(tr) = self.gpu.timeline.tracer_mut() {
                    let t = tr.track(ONDEMAND_TRACK);
                    tr.begin(
                        t,
                        first.0,
                        &format!("on-demand iter {iter} (pull)"),
                        CAT_PHASE,
                    )
                    .expect("on-demand windows are sequential");
                    tr.complete(t, first.0, gather_last.0, "gather", CAT_PHASE)
                        .expect("gather nests in the on-demand window");
                    tr.end(t, od_window_end.0)
                        .expect("the window closes after its last batch");
                }
            }
        }
        self.gpu.obs.registry.counter_add("direction.pull_iters", 1);
        ctx.pull_iters += 1;

        // Pre-commit the next iteration's direction. Pull never mutates
        // static residency, so deciding here sees exactly what the next
        // iteration's estimate would.
        let next_frontier = next.snapshot();
        if !next_frontier.is_all_zero() {
            ctx.next_pull =
                Some(self.direction_for(prog, &next_frontier, state, TraversalDirection::Pull));
        }

        let iter_end = self.gpu.sync();
        self.gpu.obs.record(iter_end.0, Event::IterEnd { iter });
        if let Some(tr) = self.gpu.timeline.tracer_mut() {
            let t = tr.track(SESSION_TRACK);
            tr.end(t, iter_end.0)
                .expect("the iteration span closes at the barrier");
        }
        ctx.iter_windows.push((iter_start.0, iter_end.0));
        ctx.per_iter.push(IterReport {
            active_vertices: active.count_ones() as u64,
            active_edges: scanned_edges,
            payload_bytes: od_payload,
            time_ns: iter_end.since(iter_start),
            static_edges: 0,
            pull: true,
        });
        ctx.iter += 1;
    }

    /// Close out a run started by `AsceticSession::begin_run`: assemble
    /// the report, convert cumulative device counters into this run's
    /// deltas and re-arm the event log / tracer for the next run.
    pub(crate) fn finish_run<P: VertexProgram>(
        &mut self,
        prog: &P,
        state: &P::State,
        mut ctx: RunCtx,
    ) -> RunReport {
        let cfg = self.cfg;
        // Per-run delta accounting against the session baselines.
        let run_end = self.gpu.sync();
        let mut report = finish_report(
            "Ascetic",
            prog.name(),
            ctx.iter,
            &mut self.gpu,
            if self.runs == 0 {
                self.prestore_bytes
            } else {
                0
            },
            if self.runs == 0 { self.prestore_ns } else { 0 },
            ctx.refresh_bytes,
            ctx.breakdown,
            ctx.per_iter,
            ctx.iter_windows,
            prog.output(state),
        );
        // the report took ownership of the event log; arm a fresh one so
        // later runs over this session keep recording
        if cfg.events {
            self.gpu.obs.enable_events(DEFAULT_EVENT_CAPACITY);
        }
        // likewise the span tracer: re-arm so warm runs keep tracing
        if cfg.tracing {
            self.gpu.timeline.enable_tracing();
        }
        report.repartitions = ctx.repartitions;
        // speculative refreshes still in flight when the frontier drained
        // never got their demand scored: charge them as waste
        for (_c, bytes) in ctx.prefetch_pending.drain(..) {
            ctx.prefetch_waste += bytes;
        }
        report.prefetch_bytes = ctx.prefetch_bytes;
        report.prefetch_ops = ctx.prefetch_ops;
        report.prefetch_hits = ctx.prefetch_hits;
        report.prefetch_wasted_bytes = ctx.prefetch_waste;
        // convert cumulative device counters into this run's share
        report.xfer.h2d_bytes -= ctx.xfer0.h2d_bytes;
        report.xfer.h2d_wire_bytes -= ctx.xfer0.h2d_wire_bytes;
        report.xfer.h2d_prefetch_bytes -= ctx.xfer0.h2d_prefetch_bytes;
        report.xfer.d2h_bytes -= ctx.xfer0.d2h_bytes;
        report.xfer.h2d_ops -= ctx.xfer0.h2d_ops;
        report.xfer.d2h_ops -= ctx.xfer0.d2h_ops;
        report.kernels.launches -= ctx.kernels0.launches;
        report.kernels.edges -= ctx.kernels0.edges;
        report.kernels.vertices -= ctx.kernels0.vertices;
        report.kernels.time_ns -= ctx.kernels0.time_ns;
        let run_ns =
            run_end.since(ctx.run_start) + if self.runs == 0 { ctx.run_start.0 } else { 0 }; // first run owns the prestore time
        report.sim_time_ns = run_ns;
        let busy_delta = self.gpu.timeline.busy_ns(Engine::Compute) - ctx.compute_busy0;
        report.gpu_idle_ns = run_ns.saturating_sub(busy_delta);
        // wire bytes: the first run owns the prestore's (possibly encoded)
        // payload, every run owns its own refresh traffic
        report.prestore_wire_bytes = if self.runs == 0 {
            self.prestore_wire_bytes
        } else {
            0
        };
        report.refresh_wire_bytes = ctx.refresh_wire_bytes;
        // metrics: subtract the session baseline (histograms, subsystem
        // counters), then re-pin the canonical counters to this run's
        // delta-corrected fields
        report.metrics = report.metrics.diff(&ctx.obs0);
        report.sync_metrics();
        self.runs += 1;
        report
    }

    /// Execute one program over the session's graph. The first run's report
    /// carries the prestore cost; later runs report zero prestore (the
    /// region is already resident — the paper's amortization point).
    ///
    /// The loop is the canonical operator composition: compute → advance
    /// (one `AsceticSession::step_iteration`) → filter, with the
    /// multi-phase handshake ([`ops::phase_transition`]) when the frontier
    /// drains. Multi-phase programs (betweenness) therefore inherit
    /// prefetch, compression and direction choice with no session changes.
    pub fn run<P: VertexProgram>(&mut self, prog: &P) -> RunReport {
        let state = prog.new_state(self.g);
        let active = prog.initial_frontier(self.g);
        self.run_with_state(prog, &state, active)
    }

    /// Execute one program from caller-owned `state` and a caller-chosen
    /// starting frontier — the engine half of incremental repair: the
    /// repair seeds an affected-vertex frontier into converged state and
    /// this re-runs the operator core over it to the new fixed point.
    /// [`AsceticSession::run`] is this with fresh state and the program's
    /// initial frontier.
    pub fn run_with_state<P: VertexProgram>(
        &mut self,
        prog: &P,
        state: &P::State,
        mut active: Bitmap,
    ) -> RunReport {
        assert_eq!(
            self.g.is_weighted(),
            prog.capabilities().weights,
            "graph weighting must match the program"
        );
        let mut ctx = self.begin_run();
        let mut phase = 0u32;
        while ctx.iter < prog.max_iterations() {
            if active.is_all_zero() {
                match ops::phase_transition(prog, phase, self.g, state) {
                    Some(f) => {
                        active = f;
                        phase += 1;
                    }
                    None => break,
                }
            }
            ops::compute(prog, ctx.iter, &active, state);
            let next = AtomicBitmap::new(self.g.num_vertices());
            self.step_iteration(prog, &mut ctx, &active, state, &next);
            active = ops::filter(prog, next.snapshot(), state);
        }
        self.finish_run(prog, state, ctx)
    }

    /// Re-bind the session to a mutated version of its graph *in place*:
    /// no arena teardown, no re-prestore. The caller (the `ascetic-mutate`
    /// driver) owns both graph versions; `g_new` must have the same vertex
    /// count and weightedness (edge mutations, not schema changes).
    ///
    /// What happens on the device, per the delta-shipping model:
    /// * resident chunks at or after the patch's first dirty edge are
    ///   rewritten in their slots; chunks past a shrunken edge array are
    ///   evicted (their slots return to the free pool);
    /// * the wire cost is the mutation delta — one record per inserted or
    ///   removed edge plus a header per refreshed chunk — not the refreshed
    ///   chunks' full payload: the device applies the delta with a
    ///   compaction kernel over the resident copies;
    /// * the hotness table keeps its access history (chunk boundaries are
    ///   stable under patching) but drops cached encoded sizes for dirty
    ///   chunks; the CSC mirror, when built, is swapped for the patched
    ///   transpose (`csc_new`, or re-transposed here when absent).
    pub fn apply_patch(
        &mut self,
        g_new: &'g Csr,
        csc_new: Option<&Csr>,
        patch: &GraphPatch,
    ) -> PatchApply {
        assert_eq!(
            g_new.num_vertices(),
            self.g.num_vertices(),
            "patch must preserve the vertex set"
        );
        assert_eq!(
            g_new.is_weighted(),
            self.g.is_weighted(),
            "patch must preserve weightedness"
        );
        let start = self.gpu.sync();
        let new_geo = ChunkGeometry::with_chunk_bytes(g_new, self.cfg.chunk_bytes);
        let epc = self.geo.edges_per_chunk;
        let first_dirty_chunk =
            ((patch.first_dirty_edge / epc) as ChunkId).min(new_geo.num_chunks() as ChunkId);
        let rp = self
            .region
            .patch(&mut self.gpu, g_new, new_geo, first_dirty_chunk);
        self.hotness.resize(new_geo.num_chunks());
        self.hotness.invalidate_wire_from(first_dirty_chunk);
        if self.mirror.is_some() {
            self.mirror = Some(match csc_new {
                Some(csc) => GraphChunks {
                    csr_geo: new_geo,
                    csc_geo: ChunkGeometry::with_chunk_bytes(csc, self.cfg.chunk_bytes),
                    csc: csc.clone(),
                },
                None => GraphChunks::build(g_new, self.cfg.chunk_bytes),
            });
        }
        self.g = g_new;
        self.geo = new_geo;

        // Delta shipping: endpoints-and-weight records for every changed
        // edge, plus a per-refreshed-chunk header. The compaction kernel
        // re-packs the refreshed chunks' resident edges around the delta.
        let wire_bytes = patch.delta_edges() * (self.geo.bytes_per_edge as u64 + 4)
            + rp.refreshed.len() as u64 * PATCH_CHUNK_HEADER_BYTES;
        let mut end = start;
        if wire_bytes > 0 {
            let copy = self.gpu.timeline.schedule_labeled(
                Engine::Copy,
                start,
                self.gpu.config.pcie.transfer_ns(wire_bytes),
                || format!("mutation delta {wire_bytes}B"),
            );
            self.gpu.xfer.h2d_bytes += wire_bytes;
            self.gpu.xfer.h2d_wire_bytes += wire_bytes;
            self.gpu.xfer.h2d_ops += 1;
            let refreshed_edges = rp.bytes / self.geo.bytes_per_edge as u64;
            if refreshed_edges > 0 {
                let k = self
                    .gpu
                    .kernel_at(refreshed_edges, patch.touched.len() as u64, copy.end);
                end = k.end;
            } else {
                end = copy.end;
            }
        }
        let end = self.gpu.sync().max(end);

        let reg = &mut self.gpu.obs.registry;
        reg.counter_add("mutate.batches", 1);
        reg.counter_add("mutate.inserts", patch.inserts.len() as u64);
        reg.counter_add("mutate.deletes", patch.deletes.len() as u64);
        reg.counter_add("mutate.wire_bytes", wire_bytes);
        reg.counter_add("mutate.refreshed_chunks", rp.refreshed.len() as u64);
        reg.counter_add("mutate.evicted_chunks", rp.evicted.len() as u64);
        self.mutate_span(start.0, end.0, "mutation patch");
        PatchApply {
            wire_bytes,
            refreshed_chunks: rp.refreshed.len() as u32,
            evicted_chunks: rp.evicted.len() as u32,
            patch_ns: end.since(start),
        }
    }

    /// The patched transpose the session's pull path would read — what
    /// [`ascetic_algos::VertexProgram::repair`] wants for its in-boundary
    /// walk (`None` on push-only sessions: repair falls back to a CSR scan).
    pub(crate) fn mirror_csc(&self) -> Option<&Csr> {
        self.mirror.as_ref().map(|m| &m.csc)
    }

    /// Bump a metrics counter (repair-engine hook; the registry itself is
    /// session-private).
    pub(crate) fn obs_counter_add(&mut self, key: &'static str, v: u64) {
        self.gpu.obs.registry.counter_add(key, v);
    }

    /// Stamp a `[start_ns, end_ns]` span on the mutation track. Zero-length
    /// spans (an empty-seed repair) are skipped rather than risk tracer
    /// ordering errors.
    pub(crate) fn mutate_span(&mut self, start_ns: u64, end_ns: u64, label: &str) {
        if end_ns <= start_ns {
            return;
        }
        if let Some(tr) = self.gpu.timeline.tracer_mut() {
            let t = tr.track(MUTATE_TRACK);
            tr.complete(t, start_ns, end_ns, label, CAT_PHASE)
                .expect("mutation spans are sequential");
        }
    }
}

/// What [`AsceticSession::apply_patch`] shipped and touched.
pub struct PatchApply {
    /// Bytes the mutation delta put on the link (records + chunk headers).
    pub wire_bytes: u64,
    /// Resident chunks rewritten in place.
    pub refreshed_chunks: u32,
    /// Resident chunks evicted (edge array shrank past them).
    pub evicted_chunks: u32,
    /// Simulated time the patch occupied the device, ns.
    pub patch_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_algos::inmemory::run_in_memory;
    use ascetic_algos::{Bfs, Cc, PageRank, Sssp};
    use ascetic_graph::generators::{uniform_graph, web_graph, WebConfig};
    use ascetic_sim::{DecompressModel, DeviceConfig};

    fn cfg_for(g: &Csr) -> AsceticConfig {
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 2 / 5);
        AsceticConfig::new(dev).with_chunk_bytes(1024)
    }

    /// A device whose decompressor is fast enough for the small test
    /// payloads to cross over (the p100 calibration needs near-MB
    /// transfers), but whose launch overhead still declines chunk-sized
    /// refreshes under `Adaptive`.
    fn compress_cfg(g: &Csr, mode: CompressionMode) -> AsceticConfig {
        let mut dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 3 / 5);
        dev.decompress = DecompressModel {
            bandwidth_bps: 200_000_000_000,
            launch_ns: 1_000,
        };
        AsceticConfig::new(dev)
            .with_chunk_bytes(2048)
            .with_compression(mode)
    }

    #[test]
    fn session_amortizes_the_prestore() {
        let g = uniform_graph(2_500, 20_000, false, 31);
        let mut session = AsceticSession::new(cfg_for(&g), &g);
        let first = session.run(&Bfs::new(0));
        let second = session.run(&Cc::new());
        let third = session.run(&PageRank::new());
        assert!(first.prestore_bytes > 0, "first run pays the prestore");
        assert_eq!(second.prestore_bytes, 0, "later runs reuse the region");
        assert_eq!(third.prestore_bytes, 0);
        assert_eq!(session.runs(), 3);
        assert!(session.resident_fraction() > 0.0);
    }

    #[test]
    fn session_runs_match_oracles() {
        let g = uniform_graph(2_000, 16_000, false, 32);
        let mut session = AsceticSession::new(cfg_for(&g), &g);
        let bfs = session.run(&Bfs::new(0));
        assert_eq!(bfs.output, run_in_memory(&g, &Bfs::new(0)).output);
        let cc = session.run(&Cc::new());
        assert_eq!(cc.output, run_in_memory(&g, &Cc::new()).output);
        let pr = session.run(&PageRank::new());
        assert_eq!(pr.output, run_in_memory(&g, &PageRank::new()).output);
    }

    #[test]
    fn per_run_counters_are_deltas() {
        let g = uniform_graph(2_000, 16_000, false, 33);
        let mut session = AsceticSession::new(cfg_for(&g), &g);
        let a = session.run(&Bfs::new(0));
        let b = session.run(&Bfs::new(0));
        // identical workloads with a warm region: the second run's counters
        // must be its own, not cumulative
        assert!(b.xfer.h2d_bytes <= a.xfer.h2d_bytes + g.edge_bytes() / 10);
        assert!(b.kernels.launches <= a.kernels.launches * 2);
        // and it runs at least as fast (no prestore time)
        assert!(b.sim_time_ns <= a.sim_time_ns);
    }

    #[test]
    fn metrics_and_events_are_per_run() {
        let g = uniform_graph(2_000, 16_000, false, 35);
        let mut session = AsceticSession::new(cfg_for(&g).with_events(true), &g);
        let a = session.run(&Bfs::new(0));
        // canonical counters agree exactly with the trusted report fields
        assert_eq!(a.metrics.counter("xfer.h2d_bytes"), Some(a.xfer.h2d_bytes));
        assert_eq!(a.metrics.counter("xfer.h2d_ops"), Some(a.xfer.h2d_ops));
        assert_eq!(
            a.metrics.counter("kernel.launches"),
            Some(a.kernels.launches)
        );
        assert_eq!(a.metrics.counter("prestore.bytes"), Some(a.prestore_bytes));
        assert_eq!(a.metrics.label("system"), Some("Ascetic"));
        let kinds: Vec<&str> = a
            .events
            .as_ref()
            .expect("events enabled")
            .iter()
            .map(|e| e.event.kind())
            .collect();
        assert!(kinds.contains(&"prestore"), "first run owns the prestore");
        assert!(kinds.contains(&"iter_start"));
        assert!(kinds.contains(&"iter_end"));
        assert!(kinds.contains(&"dma"));

        let b = session.run(&Cc::new());
        assert_eq!(b.metrics.counter("xfer.h2d_bytes"), Some(b.xfer.h2d_bytes));
        assert_eq!(b.metrics.counter("prestore.bytes"), Some(0));
        let b_events = b.events.as_ref().expect("log re-armed per run");
        assert!(b_events.iter().all(|e| e.event.kind() != "prestore"));
        assert!(b_events.iter().any(|e| e.event.kind() == "iter_start"));
    }

    #[test]
    fn compressed_runs_match_oracles_and_save_wire_bytes() {
        let g = web_graph(&WebConfig::new(4_000, 60_000, 3));
        for mode in [CompressionMode::Always, CompressionMode::Adaptive] {
            let mut s = AsceticSession::new(compress_cfg(&g, mode), &g);
            let r = s.run(&Bfs::new(0));
            assert_eq!(
                r.output,
                run_in_memory(&g, &Bfs::new(0)).output,
                "{mode:?} output"
            );
            assert!(
                r.total_wire_bytes_with_prestore() < r.total_bytes_with_prestore(),
                "{mode:?} must put fewer bytes on the wire"
            );
            assert!(
                r.prestore_wire_bytes < r.prestore_bytes,
                "{mode:?} must ship the bulk prestore encoded"
            );
            if mode == CompressionMode::Always {
                assert!(
                    r.metrics.counter("compress.transfers").unwrap_or(0) > 0,
                    "Always must ship the on-demand payloads encoded too"
                );
            }
            // the logical payload accounting is mode-independent
            assert_eq!(r.metrics.counter("xfer.h2d_bytes"), Some(r.xfer.h2d_bytes));
            assert_eq!(
                r.metrics.counter("xfer.h2d_wire_bytes"),
                Some(r.xfer.h2d_wire_bytes)
            );
        }
    }

    #[test]
    fn adaptive_compression_never_slows_a_run() {
        let g = web_graph(&WebConfig::new(4_000, 60_000, 3));
        let off =
            AsceticSession::new(compress_cfg(&g, CompressionMode::Off), &g).run(&PageRank::new());
        let ad = AsceticSession::new(compress_cfg(&g, CompressionMode::Adaptive), &g)
            .run(&PageRank::new());
        assert_eq!(off.output, ad.output);
        assert!(
            ad.sim_time_ns <= off.sim_time_ns,
            "adaptive ({}) must not lose to raw ({})",
            ad.sim_time_ns,
            off.sim_time_ns
        );
        assert!(ad.total_wire_bytes_with_prestore() <= off.total_wire_bytes_with_prestore());
        // decoded-payload accounting is identical across modes
        assert_eq!(off.xfer.h2d_bytes, ad.xfer.h2d_bytes);
        assert_eq!(off.prestore_bytes, ad.prestore_bytes);
    }

    #[test]
    fn weighted_payloads_always_ship_raw() {
        use ascetic_graph::datasets::{Dataset, DatasetId};
        let g = Dataset::build(DatasetId::Fk, 10_000).weighted();
        let mut s = AsceticSession::new(compress_cfg(&g, CompressionMode::Always), &g);
        let r = s.run(&Sssp::new(0));
        assert_eq!(r.output, run_in_memory(&g, &Sssp::new(0)).output);
        assert_eq!(r.xfer.h2d_wire_bytes, r.xfer.h2d_bytes);
        assert_eq!(r.prestore_wire_bytes, r.prestore_bytes);
        assert_eq!(r.metrics.counter("compress.transfers").unwrap_or(0), 0);
    }

    #[test]
    fn prefetch_never_changes_results_and_accounts_its_bytes() {
        use crate::prefetch::PrefetchMode;
        let g = web_graph(&WebConfig::new(4_000, 60_000, 3));
        let oracle = run_in_memory(&g, &Bfs::new(0)).output;
        let off = AsceticSession::new(cfg_for(&g), &g).run(&Bfs::new(0));
        assert_eq!(off.prefetch_ops, 0, "off mode never speculates");
        assert_eq!(off.xfer.h2d_prefetch_bytes, 0);
        for mode in [PrefetchMode::NextFrontier, PrefetchMode::Hotness] {
            let r = AsceticSession::new(cfg_for(&g).with_prefetch(mode), &g).run(&Bfs::new(0));
            assert_eq!(r.output, oracle, "{mode}: prefetch must not change results");
            // Only the exact-demand policy promises never to lose: its
            // transfers hide in link slack AND it never evicts chunks the
            // next iteration needs. Hotness is genuinely speculative — a
            // misprediction can worsen residency, which waste accounting
            // (not the makespan contract) captures.
            if mode == PrefetchMode::NextFrontier {
                assert!(
                    r.sim_time_ns <= off.sim_time_ns,
                    "{mode}: prefetch ({}) must not lose to off ({})",
                    r.sim_time_ns,
                    off.sim_time_ns
                );
            }
            // speculative traffic is accounted exactly, as a subset of H2D
            assert_eq!(r.xfer.h2d_prefetch_bytes, r.prefetch_bytes, "{mode}");
            assert!(r.prefetch_hits <= r.prefetch_ops, "{mode}");
            assert!(r.prefetch_wasted_bytes <= r.prefetch_bytes, "{mode}");
            assert_eq!(
                r.metrics.counter("prefetch.bytes"),
                Some(r.prefetch_bytes),
                "{mode}"
            );
        }
    }

    #[test]
    fn next_frontier_prefetch_fires_and_hits() {
        use crate::prefetch::PrefetchMode;
        let g = web_graph(&WebConfig::new(4_000, 60_000, 3));
        let cfg = cfg_for(&g).with_prefetch(PrefetchMode::NextFrontier);
        let r = AsceticSession::new(cfg, &g).run(&Bfs::new(0));
        assert!(r.prefetch_ops > 0, "oversubscribed BFS must prefetch");
        assert!(
            r.prefetch_hit_rate() > 0.5,
            "next-frontier demand is near-exact, got {:.2} over {} ops",
            r.prefetch_hit_rate(),
            r.prefetch_ops
        );
        let cfg = cfg_for(&g)
            .with_prefetch(PrefetchMode::NextFrontier)
            .with_events(true);
        let r = AsceticSession::new(cfg, &g).run(&Bfs::new(0));
        let has_prefetch_event = r
            .events
            .as_ref()
            .expect("events enabled")
            .iter()
            .any(|e| e.event.kind() == "prefetch_dma");
        assert!(has_prefetch_event, "events record the prefetch stream");
    }

    #[test]
    fn span_trace_idle_agrees_with_fig8_counters() {
        let g = uniform_graph(2_000, 16_000, false, 36);
        let mut s = AsceticSession::new(cfg_for(&g).with_tracing(true), &g);
        let r = s.run(&Bfs::new(0));
        let trace = r.span_trace.as_ref().expect("tracing armed");
        // the compute track's busy time over the run window must equal the
        // timeline's Fig-8 accounting exactly: idle = makespan - busy
        let gpu_track = trace
            .track_index(Engine::Compute.name())
            .expect("compute track exists");
        let busy = trace.busy_ns(gpu_track, 0, r.sim_time_ns);
        assert_eq!(r.sim_time_ns - r.gpu_idle_ns, busy);
        // every iteration got a utilization window, consistent within itself
        assert_eq!(r.utilization.len(), r.per_iter.len());
        for u in &r.utilization {
            assert!(u.end_ns > u.start_ns);
            assert!(u.link_busy_ns <= u.window_ns());
            assert!(u.compute_busy_ns <= u.window_ns());
            assert!(u.overlap_ns <= u.link_busy_ns.min(u.compute_busy_ns));
        }
        // the session phase tracks carry spans
        let session_track = trace.track_index(SESSION_TRACK).expect("session track");
        assert!(trace.track_spans(session_track).count() > r.per_iter.len());
        // warm runs re-arm the tracer and window on the warm clock
        let warm = s.run(&Cc::new());
        let wt = warm.span_trace.as_ref().expect("tracer re-armed");
        assert!(wt.spans().iter().all(|sp| sp.name != "static staging"));
        assert_eq!(warm.utilization.len(), warm.per_iter.len());
        let w0 = warm.utilization.first().expect("warm run iterates");
        let gpu_track = wt.track_index(Engine::Compute.name()).unwrap();
        assert!(wt.busy_ns(gpu_track, w0.start_ns, w0.end_ns) == w0.compute_busy_ns);
    }

    #[test]
    fn session_matches_one_shot_system() {
        use crate::engine::AsceticSystem;
        use crate::system::OutOfCoreSystem;
        let g = uniform_graph(1_500, 12_000, false, 34);
        let one_shot = AsceticSystem::new(cfg_for(&g)).run(&g, &PageRank::new());
        let mut session = AsceticSession::new(cfg_for(&g), &g);
        let first = session.run(&PageRank::new());
        assert_eq!(one_shot.output, first.output);
        assert_eq!(one_shot.xfer, first.xfer);
        assert_eq!(one_shot.sim_time_ns, first.sim_time_ns);
        assert_eq!(one_shot.prestore_bytes, first.prestore_bytes);
    }

    #[test]
    fn forced_pull_runs_match_oracles() {
        let g = uniform_graph(2_000, 16_000, false, 37);
        let cfg = cfg_for(&g).with_direction(DirectionMode::Pull);
        let mut s = AsceticSession::new(cfg, &g);
        let bfs = s.run(&Bfs::new(0));
        assert_eq!(bfs.output, run_in_memory(&g, &Bfs::new(0)).output);
        assert!(bfs.per_iter.iter().all(|i| i.pull), "every iteration pulls");
        let cc = s.run(&Cc::new());
        assert_eq!(cc.output, run_in_memory(&g, &Cc::new()).output);
        let pr = s.run(&PageRank::new());
        assert_eq!(pr.output, run_in_memory(&g, &PageRank::new()).output);
    }

    /// A source feeding a dense hub clique with a tiny tail hanging off
    /// one hub: after the clique level is visited, the frontier's out-edge
    /// volume is enormous while the unvisited tail's in-edge volume is
    /// tiny — exactly the dense mid-phase where pull must win.
    fn clique_tail_graph() -> Csr {
        use ascetic_graph::GraphBuilder;
        let m = 100usize;
        let tails = 10usize;
        let mut b = GraphBuilder::new(1 + m + tails);
        for h in 1..=m {
            b.add_edge(0, h as VertexId);
        }
        for u in 1..=m {
            for v in 1..=m {
                if u != v {
                    b.add_edge(u as VertexId, v as VertexId);
                }
            }
        }
        for t in 0..tails {
            b.add_edge(1, (1 + m + t) as VertexId);
        }
        b.build()
    }

    #[test]
    fn adaptive_matches_push_outputs_and_ships_fewer_wire_bytes_on_bfs() {
        let g = clique_tail_graph();
        let push = AsceticSession::new(cfg_for(&g), &g).run(&Bfs::new(0));
        let cfg = cfg_for(&g).with_direction(DirectionMode::Adaptive);
        let adaptive = AsceticSession::new(cfg, &g).run(&Bfs::new(0));
        assert_eq!(
            adaptive.output, push.output,
            "direction never changes results"
        );
        assert!(
            adaptive.per_iter.iter().any(|i| i.pull),
            "the dense mid-phase must pull"
        );
        assert_eq!(
            adaptive.metrics.counter("direction.pull_iters"),
            Some(adaptive.per_iter.iter().filter(|i| i.pull).count() as u64)
        );
        assert!(
            adaptive.xfer.h2d_wire_bytes < push.xfer.h2d_wire_bytes,
            "adaptive must reduce on-demand wire traffic: {} vs {}",
            adaptive.xfer.h2d_wire_bytes,
            push.xfer.h2d_wire_bytes
        );
    }

    #[test]
    fn adaptive_matches_oracles_for_cc_and_pr() {
        let g = web_graph(&WebConfig::new(3_000, 40_000, 5));
        let cfg = cfg_for(&g).with_direction(DirectionMode::Adaptive);
        let mut s = AsceticSession::new(cfg, &g);
        let cc = s.run(&Cc::new());
        assert_eq!(cc.output, run_in_memory(&g, &Cc::new()).output);
        let pr = s.run(&PageRank::new());
        assert_eq!(pr.output, run_in_memory(&g, &PageRank::new()).output);
    }

    #[test]
    fn adaptive_never_chooses_pull_for_push_only_programs() {
        use ascetic_graph::datasets::weighted_variant;
        let g = weighted_variant(&uniform_graph(1_500, 12_000, false, 38));
        let cfg = cfg_for(&g).with_direction(DirectionMode::Adaptive);
        let r = AsceticSession::new(cfg, &g).run(&Sssp::new(0));
        assert_eq!(r.output, run_in_memory(&g, &Sssp::new(0)).output);
        assert!(r.per_iter.iter().all(|i| !i.pull), "SSSP stays push");
    }

    #[test]
    fn forced_pull_on_push_only_program_is_rejected_at_build_time() {
        use crate::config::ConfigError;
        use ascetic_algos::AlgoError;
        use ascetic_graph::datasets::weighted_variant;
        let g = weighted_variant(&uniform_graph(1_000, 8_000, false, 39));
        let cfg = cfg_for(&g).with_direction(DirectionMode::Pull);
        // validation rejects the combination with a typed error...
        let prog = Sssp::new(0);
        let err = cfg
            .validate_algo(prog.capabilities(), prog.name())
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::Algo(AlgoError::PullUnsupported { algo: "SSSP" })
        );
        assert!(err.to_string().contains("push-only"), "{err}");
        // ...and a session handed the invalid config anyway degrades to
        // push instead of panicking mid-run
        let r = AsceticSession::new(cfg, &g).run(&prog);
        assert!(r.per_iter.iter().all(|i| !i.pull));
        assert_eq!(r.output, run_in_memory(&g, &Sssp::new(0)).output);
    }

    #[test]
    fn pull_runs_with_compression_match_oracles() {
        let g = web_graph(&WebConfig::new(4_000, 60_000, 3));
        for mode in [CompressionMode::Always, CompressionMode::Adaptive] {
            let cfg = compress_cfg(&g, mode).with_direction(DirectionMode::Pull);
            let r = AsceticSession::new(cfg, &g).run(&Bfs::new(0));
            assert_eq!(
                r.output,
                run_in_memory(&g, &Bfs::new(0)).output,
                "{mode:?} pull output"
            );
        }
    }

    #[test]
    fn adaptive_with_prefetch_matches_push_outputs() {
        let g = web_graph(&WebConfig::new(3_000, 40_000, 4));
        let base = cfg_for(&g).with_prefetch(PrefetchMode::NextFrontier);
        let push = AsceticSession::new(base, &g).run(&Bfs::new(0));
        let cfg = cfg_for(&g)
            .with_prefetch(PrefetchMode::NextFrontier)
            .with_direction(DirectionMode::Adaptive);
        let adaptive = AsceticSession::new(cfg, &g).run(&Bfs::new(0));
        assert_eq!(adaptive.output, push.output);
    }
}
