//! The compressed transfer path's crossover logic.
//!
//! Every eligible H2D edge payload — on-demand gather batches, the
//! prestore fill, refreshes and lazy loads — can ship either raw 4-byte
//! targets or the delta–varint stream from
//! [`ascetic_graph::compress::encode_ranges`]. Encoding pays a
//! decompression kernel on the compute engine, so it only wins when the
//! link savings exceed that cost:
//!
//! ```text
//! wire_bytes / link_bw + decompress_cost  <  raw_bytes / link_bw
//! ```
//!
//! Deciding needs the encoded size *before* encoding. The estimate comes
//! from per-chunk encoded sizes cached across iterations in the
//! [`HotnessTable`]: the first time a chunk is priced, its clipped vertex
//! ranges are really encoded (into a scratch-arena buffer) and the size is
//! cached; afterwards a transfer touching the chunk is priced at the
//! cached ratio. Everything here is integer math over deterministic
//! encodes, so the decisions — and hence the simulated timeline — are
//! bit-identical at every host thread count.

use ascetic_graph::chunks::{ChunkGeometry, ChunkId};
use ascetic_graph::compress::{encode_ranges, EncodeEntry};
use ascetic_graph::Csr;
use ascetic_par::with_scratch;
use ascetic_sim::{DecompressModel, PcieModel};

use crate::hotness::HotnessTable;
use crate::ondemand::GatherEntry;

/// The crossover rule: ship encoded iff copying the encoded bytes plus
/// decoding them beats copying raw.
#[inline]
pub fn compress_wins(pcie: &PcieModel, dec: &DecompressModel, raw: u64, wire: u64) -> bool {
    pcie.transfer_ns(wire) + dec.decompress_ns(raw) < pcie.transfer_ns(raw)
}

/// The `(vertex, clipped edge range)` entries covering chunk `c` — the
/// same clipping the static region applies when it classifies vertices
/// against chunk boundaries.
pub fn chunk_entries(g: &Csr, geo: &ChunkGeometry, c: ChunkId) -> Vec<EncodeEntry> {
    let cr = geo.edge_range(c);
    let n = g.num_vertices();
    let offsets = g.offsets();
    let mut entries = Vec::new();
    // first vertex whose edge range extends past cr.start
    let mut v = offsets[1..=n].partition_point(|&o| o <= cr.start);
    while v < n && offsets[v] < cr.end {
        let r = offsets[v].max(cr.start)..offsets[v + 1].min(cr.end);
        if !r.is_empty() {
            entries.push((v as u32, r));
        }
        v += 1;
    }
    entries
}

/// Encoded size of chunk `c`'s payload: cached in the hotness table, or
/// measured now by really encoding the chunk (and then cached).
pub fn chunk_wire_bytes(g: &Csr, geo: &ChunkGeometry, c: ChunkId, hot: &mut HotnessTable) -> u64 {
    if let Some(b) = hot.cached_wire_bytes(c) {
        return b;
    }
    let entries = chunk_entries(g, geo, c);
    let bytes = with_scratch(|s| {
        let mut buf = s.take_u8();
        let n = encode_ranges(g, &entries, &mut buf) as u64;
        s.put_u8(buf);
        n
    })
    .max(1);
    hot.cache_wire_bytes(c, bytes);
    bytes
}

/// Estimate the encoded size of a gather batch by pricing each entry's
/// edge-range pieces at the cached ratio of the chunk containing them.
/// Chunks not yet priced are measured (and cached) on the spot.
pub fn estimate_batch_wire(
    g: &Csr,
    geo: &ChunkGeometry,
    hot: &mut HotnessTable,
    entries: &[GatherEntry],
) -> u64 {
    let mut est: u128 = 0;
    for e in entries {
        let mut r = e.edges.clone();
        while !r.is_empty() {
            let c = geo.chunk_of_edge(r.start);
            let cr = geo.edge_range(c);
            let piece_end = r.end.min(cr.end);
            let piece_raw = (piece_end - r.start) * 4;
            let chunk_raw = (cr.end - cr.start) * 4;
            let chunk_wire = chunk_wire_bytes(g, geo, c, hot);
            est += (piece_raw as u128 * chunk_wire as u128).div_ceil(chunk_raw.max(1) as u128);
            r.start = piece_end;
        }
    }
    (est as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplacementPolicy;
    use ascetic_graph::compress::encoded_len;
    use ascetic_graph::generators::{uniform_graph, web_graph, WebConfig};
    use ascetic_sim::DeviceConfig;

    #[test]
    fn crossover_favors_big_well_compressed_transfers() {
        let cfg = DeviceConfig::p100(1 << 30);
        // bulk at 3x ratio: wins
        assert!(compress_wins(
            &cfg.pcie,
            &cfg.decompress,
            64 << 20,
            (64 << 20) / 3
        ));
        // bulk at 1.2x ratio: loses (social-graph territory)
        assert!(!compress_wins(
            &cfg.pcie,
            &cfg.decompress,
            64 << 20,
            (64 << 20) * 5 / 6
        ));
        // a 16 KiB chunk refresh loses even at 3x — launch overhead
        assert!(!compress_wins(
            &cfg.pcie,
            &cfg.decompress,
            16 << 10,
            (16 << 10) / 3
        ));
        // equal sizes must never "win"
        assert!(!compress_wins(&cfg.pcie, &cfg.decompress, 1 << 20, 1 << 20));
    }

    #[test]
    fn chunk_entries_cover_each_chunk_exactly() {
        let g = uniform_graph(300, 3_000, false, 5);
        let geo = ChunkGeometry::with_chunk_bytes(&g, 256);
        let mut covered = 0u64;
        for c in 0..geo.num_chunks() as ChunkId {
            let cr = geo.edge_range(c);
            let entries = chunk_entries(&g, &geo, c);
            let sum: u64 = entries.iter().map(|e| e.1.end - e.1.start).sum();
            assert_eq!(sum, cr.end - cr.start, "chunk {c}");
            for e in &entries {
                assert!(e.1.start >= cr.start && e.1.end <= cr.end);
                assert!(g.edge_range(e.0).start <= e.1.start);
                assert!(g.edge_range(e.0).end >= e.1.end);
            }
            covered += sum;
        }
        assert_eq!(covered, g.num_edges());
    }

    #[test]
    fn chunk_wire_bytes_is_cached_and_matches_encode() {
        let g = uniform_graph(200, 2_000, false, 9);
        let geo = ChunkGeometry::with_chunk_bytes(&g, 512);
        let mut hot = HotnessTable::new(geo.num_chunks(), ReplacementPolicy::LastIteration);
        let w0 = chunk_wire_bytes(&g, &geo, 0, &mut hot);
        assert_eq!(hot.cached_wire_bytes(0), Some(w0));
        // second call must come from the cache and agree
        assert_eq!(chunk_wire_bytes(&g, &geo, 0, &mut hot), w0);
        // against a direct per-entry length computation
        let expect: u64 = chunk_entries(&g, &geo, 0)
            .iter()
            .map(|e| encoded_len(e.0, &g.targets()[e.1.start as usize..e.1.end as usize]) as u64)
            .sum();
        assert_eq!(w0, expect.max(1));
    }

    #[test]
    fn batch_estimate_tracks_actual_encoding_on_web_locality() {
        let g = web_graph(&WebConfig::new(5_000, 50_000, 3));
        let geo = ChunkGeometry::with_chunk_bytes(&g, 1024);
        let mut hot = HotnessTable::new(geo.num_chunks(), ReplacementPolicy::LastIteration);
        let entries: Vec<GatherEntry> = (0..2_000u32)
            .filter(|&v| !g.edge_range(v).is_empty())
            .map(|v| GatherEntry {
                vertex: v,
                edges: g.edge_range(v),
            })
            .collect();
        let est = estimate_batch_wire(&g, &geo, &mut hot, &entries);
        let enc: Vec<EncodeEntry> = entries
            .iter()
            .map(|e| (e.vertex, e.edges.clone()))
            .collect();
        let mut buf = Vec::new();
        let actual = encode_ranges(&g, &enc, &mut buf) as u64;
        let raw: u64 = entries.iter().map(|e| e.num_edges() * 4).sum();
        assert!(actual < raw, "web locality must compress");
        // the chunk-ratio estimate should land within 2x of the truth
        assert!(
            est >= actual / 2 && est <= actual * 2,
            "est {est} vs {actual}"
        );
    }
}
