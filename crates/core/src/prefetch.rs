//! Cross-iteration prefetch policy (the push half of the pull+push loop).
//!
//! At the end of iteration *i* the next frontier is already known — the
//! kernels just wrote it. Instead of letting iteration *i+1* discover its
//! misses reactively, the session derives the next iteration's chunk
//! demand from that frontier bitmap, ranks candidate chunks by predicted
//! benefit (demand bytes × wire cost, the latter from the per-chunk
//! encoded-size cache when the compressed path is eligible), and issues
//! speculative refreshes on a dedicated second copy stream
//! ([`ascetic_sim::CopyStream`]) in two windows where the link is
//! provably idle:
//!
//! * the **tail slack** between the link's last transfer and the
//!   iteration barrier (these ops apply immediately; the next static
//!   kernel event-waits on their completion), and
//! * the **gather gaps** of the *next* iteration's on-demand pipeline —
//!   a transfer can never start before its own CPU gather ends, so every
//!   nanosecond the link waits on a gather is free wire time. Ops issued
//!   there mutate the region only at the following iteration boundary,
//!   re-validated against the then-current frontier.
//!
//! Either way the iteration's makespan is untouched by construction. A
//! mispredicted prefetch (the chunk goes cold or is evicted before use)
//! is charged as *waste*, never as corruption: the data plane stays exact
//! either way.
//!
//! Everything here is integer math over deterministic inputs (the frontier
//! bitmap, the hotness table, cached encode sizes), planned from the
//! single orchestration thread — so plans are bit-identical at every host
//! thread count.

use ascetic_graph::chunks::{ChunkGeometry, ChunkId};
use ascetic_graph::Csr;
use ascetic_par::Bitmap;

use crate::codec::chunk_wire_bytes;
use crate::hotness::HotnessTable;
use crate::static_region::StaticRegion;

/// What (if anything) the cross-iteration pipeline speculates on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrefetchMode {
    /// No speculation — every miss is serviced reactively (the paper's
    /// behavior, and the default).
    #[default]
    Off,
    /// Exact next-iteration demand: prefetch chunks the next frontier will
    /// touch, evicting only residents with *strictly lower* next-frontier
    /// demand (so every swap reduces the next iteration's on-demand
    /// volume).
    NextFrontier,
    /// Cumulative-hotness prediction: prefetch historically hot
    /// non-residents, evicting residents cold in the current iteration.
    /// Genuinely speculative — can produce waste the `NextFrontier` oracle
    /// cannot.
    Hotness,
}

impl PrefetchMode {
    /// Whether this mode issues any speculative work.
    pub fn is_on(self) -> bool {
        self != PrefetchMode::Off
    }

    /// CLI / env spelling of the mode.
    pub fn as_str(self) -> &'static str {
        match self {
            PrefetchMode::Off => "off",
            PrefetchMode::NextFrontier => "next-frontier",
            PrefetchMode::Hotness => "hotness",
        }
    }

    /// Parse a CLI / env spelling (`off`, `next-frontier`, `hotness`).
    pub fn parse(s: &str) -> Option<PrefetchMode> {
        match s {
            "off" => Some(PrefetchMode::Off),
            "next-frontier" | "next_frontier" | "frontier" => Some(PrefetchMode::NextFrontier),
            "hotness" => Some(PrefetchMode::Hotness),
            _ => None,
        }
    }
}

impl std::fmt::Display for PrefetchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One planned speculative transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchOp {
    /// Adopt a chunk into a free static-region slot.
    Load(ChunkId),
    /// Replace a cold resident with a predicted-hot chunk.
    Swap {
        /// Resident chunk to evict.
        evict: ChunkId,
        /// Chunk to bring in.
        load: ChunkId,
    },
}

impl PrefetchOp {
    /// The chunk this operation ships.
    pub fn chunk(self) -> ChunkId {
        match self {
            PrefetchOp::Load(c) => c,
            PrefetchOp::Swap { load, .. } => load,
        }
    }
}

/// Per-chunk demand, in bytes, the `frontier` will place on each chunk
/// next iteration: for every frontier vertex, its CSR edge range clipped
/// to each chunk it overlaps (the same clipping the static region applies
/// when classifying vertices).
pub fn chunk_demand_bytes(g: &Csr, geo: &ChunkGeometry, frontier: &Bitmap) -> Vec<u64> {
    let bpe = geo.bytes_per_edge as u64;
    let mut demand = vec![0u64; geo.num_chunks()];
    for v in frontier.iter_ones() {
        let v = v as u32;
        let er = g.edge_range(v);
        if let Some(chunks) = geo.chunks_of_vertex(g, v) {
            for c in chunks {
                let cr = geo.edge_range(c);
                let overlap = er.end.min(cr.end).saturating_sub(er.start.max(cr.start));
                demand[c as usize] += overlap * bpe;
            }
        }
    }
    demand
}

/// Plan up to `max_ops` speculative chunk transfers for the iteration
/// *after* `iteration`, judged at the end of `iteration`.
///
/// Candidates are non-resident chunks the policy predicts hot, ranked by
/// `predicted demand × wire cost` descending (prefetching an
/// expensive-to-ship chunk hides more stall), ties broken by ascending
/// chunk id. Free slots are consumed first ([`PrefetchOp::Load`]); after
/// that each candidate pairs with the cheapest evictable resident
/// ([`PrefetchOp::Swap`]).
///
/// Eviction order matters twice over:
///
/// * `NextFrontier` pairs a load only with a resident of *strictly lower*
///   next-frontier demand, so every swap is a net reduction of the next
///   iteration's on-demand volume — the policy can keep adapting under
///   dense frontiers (where no resident has zero demand) without ever
///   making the next iteration worse.
/// * Among equally-cheap residents, chunks that have *been accessed* and
///   gone stale are evicted before chunks that have *never* been accessed:
///   in a traversal, never-touched chunks are precisely the unexplored
///   future (the frontier will reach them), while long-stale chunks are
///   the swept past.
#[allow(clippy::too_many_arguments)]
pub fn plan_prefetch(
    mode: PrefetchMode,
    g: &Csr,
    geo: &ChunkGeometry,
    region: &StaticRegion,
    hot: &mut HotnessTable,
    next_frontier: &Bitmap,
    iteration: u32,
    compressible: bool,
    max_ops: usize,
) -> Vec<PrefetchOp> {
    if !mode.is_on() || max_ops == 0 || geo.num_chunks() == 0 {
        return Vec::new();
    }
    let demand = chunk_demand_bytes(g, geo, next_frontier);

    // Wire cost of shipping chunk `c` on demand: the cached encoded size
    // when the compressed path could apply, the raw size otherwise.
    let wire = |c: ChunkId, hot: &mut HotnessTable| -> u64 {
        if compressible {
            chunk_wire_bytes(g, geo, c, hot)
        } else {
            geo.chunk_len_bytes(c) as u64
        }
    };

    // --- Candidates: non-resident chunks, ranked by predicted benefit. ---
    let mut candidates: Vec<(u128, ChunkId)> = Vec::new();
    for c in 0..geo.num_chunks() as ChunkId {
        if region.is_resident(c) {
            continue;
        }
        let activity = match mode {
            PrefetchMode::NextFrontier => demand[c as usize],
            PrefetchMode::Hotness => hot.access_count(c) as u64,
            PrefetchMode::Off => unreachable!(),
        };
        if activity == 0 {
            continue;
        }
        candidates.push((activity as u128 * wire(c, hot) as u128, c));
    }
    // benefit descending, chunk id ascending on ties — deterministic
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    candidates.truncate(max_ops);

    // --- Evictables: residents ranked cheapest-to-lose first. The key is
    //     (next-frontier demand, never-accessed flag, last-access stamp,
    //     id): lowest demand goes first; among equals, accessed-and-stale
    //     residents beat never-accessed ones (the unexplored future of a
    //     traversal), oldest stamp first, then ascending id. ---
    let mut evictable: Vec<(u64, u8, u32, ChunkId)> = region
        .resident_chunk_ids()
        .into_iter()
        .filter(|&c| match mode {
            PrefetchMode::NextFrontier => true,
            PrefetchMode::Hotness => !hot.demanded_at(c, iteration),
            PrefetchMode::Off => unreachable!(),
        })
        .map(|c| {
            let never = u8::from(hot.access_count(c) == 0);
            (demand[c as usize], never, hot.last_access_stamp(c), c)
        })
        .collect();
    evictable.sort();
    let mut evictable = evictable.into_iter().peekable();

    let mut free = region.free_slots();
    let mut plan = Vec::new();
    for (_, load) in candidates {
        if free > 0 {
            free -= 1;
            plan.push(PrefetchOp::Load(load));
        } else if let Some(&(evict_demand, _, _, evict)) = evictable.peek() {
            // NextFrontier: a swap must strictly reduce the next
            // iteration's on-demand bytes, or it is churn, not progress.
            // (Skip rather than stop: candidates are ranked by
            // demand × wire, so a later one can still out-demand the
            // cheapest resident.)
            if mode == PrefetchMode::NextFrontier && demand[load as usize] <= evict_demand {
                continue;
            }
            evictable.next();
            plan.push(PrefetchOp::Swap { evict, load });
        } else {
            break; // region full of data the mode refuses to evict
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FillPolicy, ReplacementPolicy};
    use ascetic_graph::GraphBuilder;
    use ascetic_sim::{DeviceConfig, Gpu};

    fn line_graph(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v as u32, v as u32 + 1);
        }
        b.build()
    }

    /// line_graph(33): 32 edges, 16-byte chunks of 4 edges → 8 chunks;
    /// vertex v owns edge v, so chunk c covers vertices 4c..4c+3.
    fn fixture() -> (Csr, ChunkGeometry) {
        let g = line_graph(33);
        let geo = ChunkGeometry::with_chunk_bytes(&g, 16);
        (g, geo)
    }

    #[test]
    fn mode_parsing_round_trips() {
        for m in [
            PrefetchMode::Off,
            PrefetchMode::NextFrontier,
            PrefetchMode::Hotness,
        ] {
            assert_eq!(PrefetchMode::parse(m.as_str()), Some(m));
        }
        assert_eq!(
            PrefetchMode::parse("frontier"),
            Some(PrefetchMode::NextFrontier)
        );
        assert_eq!(PrefetchMode::parse("bogus"), None);
        assert!(!PrefetchMode::Off.is_on());
        assert!(PrefetchMode::Hotness.is_on());
    }

    #[test]
    fn demand_clips_edge_ranges_to_chunks() {
        let (g, geo) = fixture();
        let mut f = Bitmap::new(33);
        f.set(9); // edge 9 → chunk 2
        f.set(10);
        let d = chunk_demand_bytes(&g, &geo, &f);
        assert_eq!(d[2], 8, "two 4-byte edges in chunk 2");
        assert_eq!(d.iter().sum::<u64>(), 8, "no other chunk touched");
    }

    #[test]
    fn off_mode_plans_nothing() {
        let (g, geo) = fixture();
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 2 * 16);
        let plan = sr.plan_fill(FillPolicy::Front, 2);
        sr.fill(&mut gpu, &g, &plan);
        let mut hot = HotnessTable::new(8, ReplacementPolicy::LastIteration);
        let f = Bitmap::ones(33);
        let ops = plan_prefetch(PrefetchMode::Off, &g, &geo, &sr, &mut hot, &f, 0, false, 8);
        assert!(ops.is_empty());
    }

    #[test]
    fn next_frontier_swaps_in_demanded_chunks_and_spares_demanded_residents() {
        let (g, geo) = fixture();
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 2 * 16);
        sr.fill(&mut gpu, &g, &[0, 1]); // residents 0, 1
        let mut hot = HotnessTable::new(8, ReplacementPolicy::LastIteration);
        // next frontier: vertices 5 (chunk 1, resident) and 21 (chunk 5)
        let mut f = Bitmap::new(33);
        f.set(5);
        f.set(21);
        let ops = plan_prefetch(
            PrefetchMode::NextFrontier,
            &g,
            &geo,
            &sr,
            &mut hot,
            &f,
            3,
            false,
            8,
        );
        // chunk 5 comes in; chunk 1 is demanded next iteration so only
        // chunk 0 may be evicted
        assert_eq!(ops, vec![PrefetchOp::Swap { evict: 0, load: 5 }]);
        assert_eq!(ops[0].chunk(), 5);
    }

    #[test]
    fn next_frontier_with_all_residents_demanded_is_a_no_op() {
        let (g, geo) = fixture();
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 2 * 16);
        sr.fill(&mut gpu, &g, &[0, 1]);
        let mut hot = HotnessTable::new(8, ReplacementPolicy::LastIteration);
        let f = Bitmap::ones(33); // everything active (PageRank-style)
        let ops = plan_prefetch(
            PrefetchMode::NextFrontier,
            &g,
            &geo,
            &sr,
            &mut hot,
            &f,
            0,
            false,
            8,
        );
        assert!(
            ops.is_empty(),
            "nothing evictable when every resident has next-iteration demand"
        );
    }

    #[test]
    fn free_slots_become_loads_before_swaps() {
        let (g, geo) = fixture();
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        // 3 slots, only 1 filled → 2 free
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 3 * 16);
        sr.fill(&mut gpu, &g, &[0]);
        let mut hot = HotnessTable::new(8, ReplacementPolicy::LastIteration);
        let mut f = Bitmap::new(33);
        f.set(9); // chunk 2
        f.set(13); // chunk 3
        f.set(17); // chunk 4
        let ops = plan_prefetch(
            PrefetchMode::NextFrontier,
            &g,
            &geo,
            &sr,
            &mut hot,
            &f,
            0,
            false,
            8,
        );
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], PrefetchOp::Load(_)));
        assert!(matches!(ops[1], PrefetchOp::Load(_)));
        assert!(matches!(ops[2], PrefetchOp::Swap { evict: 0, .. }));
        // equal per-chunk demand → benefit ties broken by ascending id
        assert_eq!(
            ops.iter().map(|o| o.chunk()).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn budget_caps_the_plan() {
        let (g, geo) = fixture();
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 4 * 16);
        sr.fill(&mut gpu, &g, &[0]);
        let mut hot = HotnessTable::new(8, ReplacementPolicy::LastIteration);
        let f = Bitmap::ones(33);
        let ops = plan_prefetch(
            PrefetchMode::NextFrontier,
            &g,
            &geo,
            &sr,
            &mut hot,
            &f,
            0,
            false,
            2,
        );
        assert_eq!(ops.len(), 2, "max_ops bounds the plan");
    }

    #[test]
    fn next_frontier_evicts_only_strictly_lower_demand() {
        let (g, geo) = fixture();
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 2 * 16);
        sr.fill(&mut gpu, &g, &[0, 1]);
        let mut hot = HotnessTable::new(8, ReplacementPolicy::LastIteration);
        // demand: chunk 0 (resident) 4 B, chunk 1 (resident) 16 B,
        // chunk 2 (candidate) 16 B, chunk 3 (candidate) 4 B
        let mut f = Bitmap::new(33);
        f.set(1);
        for v in 4..12 {
            f.set(v);
        }
        f.set(12);
        let ops = plan_prefetch(
            PrefetchMode::NextFrontier,
            &g,
            &geo,
            &sr,
            &mut hot,
            &f,
            0,
            false,
            8,
        );
        // chunk 2 (16 B) may displace chunk 0 (4 B): net −12 B of
        // next-iteration on-demand volume. Chunk 3 (4 B) must NOT displace
        // chunk 1 (16 B): that swap would be churn.
        assert_eq!(ops, vec![PrefetchOp::Swap { evict: 0, load: 2 }]);
    }

    #[test]
    fn never_accessed_residents_are_evicted_last() {
        let (g, geo) = fixture();
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 2 * 16);
        sr.fill(&mut gpu, &g, &[0, 1]);
        let mut hot = HotnessTable::new(8, ReplacementPolicy::LastIteration);
        hot.record(0, 0); // chunk 0 was touched once, long ago; chunk 1 never
        let mut f = Bitmap::new(33);
        for v in 8..12 {
            f.set(v); // chunk 2 demanded, both residents at zero demand
        }
        let ops = plan_prefetch(
            PrefetchMode::NextFrontier,
            &g,
            &geo,
            &sr,
            &mut hot,
            &f,
            5,
            false,
            8,
        );
        // In a traversal the never-touched chunk is the unexplored future:
        // evict the swept past (accessed, stale) first, even though its
        // stamp makes it look "warmer" than the never-accessed resident.
        assert_eq!(ops, vec![PrefetchOp::Swap { evict: 0, load: 2 }]);
    }

    #[test]
    fn hotness_mode_ranks_by_cumulative_counts() {
        let (g, geo) = fixture();
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 2 * 16);
        sr.fill(&mut gpu, &g, &[0, 1]);
        let mut hot = HotnessTable::new(8, ReplacementPolicy::LastIteration);
        // chunk 6 touched three times, chunk 4 once; residents idle at iter 2
        hot.record(6, 0);
        hot.record(6, 1);
        hot.record(6, 2);
        hot.record(4, 1);
        let f = Bitmap::new(33); // empty next frontier: hotness ignores it
        let ops = plan_prefetch(
            PrefetchMode::Hotness,
            &g,
            &geo,
            &sr,
            &mut hot,
            &f,
            2,
            false,
            1,
        );
        assert_eq!(ops, vec![PrefetchOp::Swap { evict: 0, load: 6 }]);
    }
}
