//! Run reports.
//!
//! Every system (Ascetic and the baselines) returns a [`RunReport`]; the
//! benchmark harness derives each table/figure from these fields:
//!
//! * Table 4 — [`RunReport::sim_time_ns`] ratios,
//! * Table 5 / Figs 7 & 9 — [`RunReport::xfer`] volumes (with the static
//!   prestore separated out, since Fig 7 excludes it),
//! * Fig 8 — overlap-on vs overlap-off time deltas,
//! * Fig 10 — the [`Breakdown`] components (Tsr, Tfilling, Ttransfer,
//!   Tondemand),
//! * §2.2 motivation — [`RunReport::gpu_idle_ns`] (Subway: "68 % of GPU
//!   time is idle"), Table 2 — [`RunReport::peak_iteration_payload_bytes`].

use ascetic_algos::AlgoOutput;
use ascetic_sim::{KernelStats, TraceSpan, XferStats};

/// Per-iteration record.
#[derive(Clone, Copy, Debug, Default)]
pub struct IterReport {
    /// Active vertices at the start of the iteration.
    pub active_vertices: u64,
    /// Active (traversed) edges.
    pub active_edges: u64,
    /// Edge payload bytes shipped to the device this iteration.
    pub payload_bytes: u64,
    /// Iteration wall time on the simulated clock, ns.
    pub time_ns: u64,
    /// Of the active edges, how many were served from the static region
    /// (always 0 for baselines).
    pub static_edges: u64,
}

/// Time breakdown across the run (Figure 10 components), ns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Data-map generation (`GenDataMap`).
    pub gen_map_ns: u64,
    /// Static-region compute (`Tsr`).
    pub static_compute_ns: u64,
    /// CPU gather / on-demand fill (`Tfilling`).
    pub gather_ns: u64,
    /// On-demand H2D transfer (`Ttransfer`).
    pub transfer_ns: u64,
    /// On-demand compute (`Tondemand`).
    pub ondemand_compute_ns: u64,
    /// Static-region refresh transfers (replacement server).
    pub update_ns: u64,
}

impl Breakdown {
    /// Sum of all components (engine-busy view; the run's wall time is
    /// shorter when phases overlap).
    pub fn total_ns(&self) -> u64 {
        self.gen_map_ns
            + self.static_compute_ns
            + self.gather_ns
            + self.transfer_ns
            + self.ondemand_compute_ns
            + self.update_ns
    }
}

/// Result and metrics of one out-of-core run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// System name ("Ascetic", "Subway", "PT", "UVM").
    pub system: &'static str,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Iterations until convergence.
    pub iterations: u32,
    /// Total simulated run time, ns (excluding one-time prestore when
    /// `prestore_overlapped` — see `prestore_ns`).
    pub sim_time_ns: u64,
    /// Steady-state transfers (excludes the static-region prestore).
    pub xfer: XferStats,
    /// Bytes moved filling the static region before iteration 0
    /// (Table 5 *includes* this; Figure 7 excludes it).
    pub prestore_bytes: u64,
    /// Time spent on the initial fill, ns (included in `sim_time_ns`).
    pub prestore_ns: u64,
    /// Bytes moved by the replacement server (static refresh).
    pub refresh_bytes: u64,
    /// Kernel counters.
    pub kernels: KernelStats,
    /// Time breakdown.
    pub breakdown: Breakdown,
    /// Compute-engine idle time relative to the makespan, ns.
    pub gpu_idle_ns: u64,
    /// Number of Eq (3) adaptive re-partitions performed.
    pub repartitions: u32,
    /// Largest per-iteration device edge-payload footprint, bytes
    /// (Table 2's "memory usage per iteration" for Subway).
    pub peak_iteration_payload_bytes: u64,
    /// Mean per-iteration device edge-payload footprint, bytes.
    pub avg_iteration_payload_bytes: u64,
    /// Recorded engine spans, when the system ran with tracing enabled
    /// (export with [`ascetic_sim::chrome_trace_json`]).
    pub trace: Option<Vec<TraceSpan>>,
    /// Final algorithm output (validated against the in-memory oracle).
    pub output: AlgoOutput,
    /// Per-iteration details.
    pub per_iter: Vec<IterReport>,
}

impl RunReport {
    /// Total bytes transferred including the prestore — the Table 5 notion
    /// ("Note that they include data transferred during the initial data
    /// filling to the Static Region").
    pub fn total_bytes_with_prestore(&self) -> u64 {
        self.xfer.total_bytes() + self.prestore_bytes + self.refresh_bytes
    }

    /// Steady-state bytes (Figure 7's notion: "The data transfer is not
    /// contain the static prestore data").
    pub fn steady_bytes(&self) -> u64 {
        self.xfer.total_bytes() + self.refresh_bytes
    }

    /// Simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.sim_time_ns as f64 / 1e9
    }

    /// GPU idle fraction of the makespan (paper §2.2: 68 % for Subway BFS
    /// on friendster-konect).
    pub fn gpu_idle_fraction(&self) -> f64 {
        if self.sim_time_ns == 0 {
            return 0.0;
        }
        self.gpu_idle_ns as f64 / self.sim_time_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunReport {
        RunReport {
            system: "X",
            algorithm: "BFS",
            iterations: 3,
            sim_time_ns: 1_000,
            xfer: XferStats {
                h2d_bytes: 500,
                d2h_bytes: 100,
                h2d_ops: 5,
                d2h_ops: 1,
            },
            prestore_bytes: 200,
            prestore_ns: 50,
            refresh_bytes: 30,
            kernels: KernelStats::default(),
            breakdown: Breakdown {
                gen_map_ns: 1,
                static_compute_ns: 2,
                gather_ns: 3,
                transfer_ns: 4,
                ondemand_compute_ns: 5,
                update_ns: 6,
            },
            gpu_idle_ns: 400,
            repartitions: 0,
            peak_iteration_payload_bytes: 64,
            avg_iteration_payload_bytes: 32,
            trace: None,
            output: AlgoOutput::Distances(vec![]),
            per_iter: vec![],
        }
    }

    #[test]
    fn byte_accounting_views() {
        let r = dummy();
        assert_eq!(r.steady_bytes(), 630);
        assert_eq!(r.total_bytes_with_prestore(), 830);
    }

    #[test]
    fn breakdown_total() {
        assert_eq!(dummy().breakdown.total_ns(), 21);
    }

    #[test]
    fn idle_fraction() {
        let r = dummy();
        assert!((r.gpu_idle_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(r.seconds(), 1e-6);
    }
}
