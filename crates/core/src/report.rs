//! Run reports.
//!
//! Every system (Ascetic and the baselines) returns a [`RunReport`]; the
//! benchmark harness derives each table/figure from these fields:
//!
//! * Table 4 — [`RunReport::sim_time_ns`] ratios,
//! * Table 5 / Figs 7 & 9 — [`RunReport::xfer`] volumes (with the static
//!   prestore separated out, since Fig 7 excludes it),
//! * Fig 8 — overlap-on vs overlap-off time deltas,
//! * Fig 10 — the [`Breakdown`] components (Tsr, Tfilling, Ttransfer,
//!   Tondemand),
//! * §2.2 motivation — [`RunReport::gpu_idle_ns`] (Subway: "68 % of GPU
//!   time is idle"), Table 2 — [`RunReport::peak_iteration_payload_bytes`].

use ascetic_algos::AlgoOutput;
use ascetic_obs::{json, EventLog, MetricsSnapshot, Trace};
use ascetic_sim::{KernelStats, TraceSpan, XferStats};

/// Version stamped into every machine-readable report this workspace
/// emits ([`RunReport::summary_json`], the CLI's metrics JSONL, the bench
/// BENCH_*.json files, the serve reports and the exported span traces).
/// Bump it whenever a field is renamed, removed or re-interpreted so
/// downstream trace parsers can branch instead of silently misreading.
/// History: 1 = the PR 1–4 layout (no explicit version); 2 = the version
/// field itself plus the serve layer's report family; 3 = span-trace /
/// utilization / drop-accounting fields and the serve latency
/// decomposition (`events_dropped`, `first_drop_at`, per-job
/// queue/admission/H2D/compute components and latency percentiles).
pub const RUN_REPORT_SCHEMA_VERSION: u32 = 3;

/// Per-iteration record.
#[derive(Clone, Copy, Debug, Default)]
pub struct IterReport {
    /// Active vertices at the start of the iteration.
    pub active_vertices: u64,
    /// Active (traversed) edges.
    pub active_edges: u64,
    /// Edge payload bytes shipped to the device this iteration.
    pub payload_bytes: u64,
    /// Iteration wall time on the simulated clock, ns.
    pub time_ns: u64,
    /// Of the active edges, how many were served from the static region
    /// (always 0 for baselines).
    pub static_edges: u64,
    /// Whether this iteration ran in pull (gather) direction — always
    /// `false` for push-only configurations and all baselines.
    pub pull: bool,
}

/// Link/compute utilization over one iteration window, derived from the
/// hierarchical span trace (see [`RunReport::utilization`]).
///
/// `link_busy_ns` is the union of DMA spans across every copy stream, so
/// two streams driving the link concurrently count the covered time once;
/// `overlap_ns` is the time both the link (any stream) and the compute
/// engine were busy — the Fig-8 "overlap" the paper's pipeline exists to
/// maximize.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterUtilization {
    /// Window start on the virtual clock, ns.
    pub start_ns: u64,
    /// Window end on the virtual clock, ns.
    pub end_ns: u64,
    /// Time at least one copy stream was moving data, ns.
    pub link_busy_ns: u64,
    /// Time the compute engine was running a kernel or decode, ns.
    pub compute_busy_ns: u64,
    /// Time link and compute were busy simultaneously, ns.
    pub overlap_ns: u64,
}

impl IterUtilization {
    /// Window length, ns.
    pub fn window_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Time the link carried nothing, ns.
    pub fn link_idle_ns(&self) -> u64 {
        self.window_ns().saturating_sub(self.link_busy_ns)
    }

    /// Time the compute engine sat idle, ns (the per-iteration slice of
    /// the Fig-8 / §2.2 GPU-idle accounting).
    pub fn compute_idle_ns(&self) -> u64 {
        self.window_ns().saturating_sub(self.compute_busy_ns)
    }

    /// Fraction of the window the link was busy, in `[0, 1]`.
    pub fn link_busy_fraction(&self) -> f64 {
        frac(self.link_busy_ns, self.window_ns())
    }

    /// Fraction of the window the compute engine was busy, in `[0, 1]`.
    pub fn compute_busy_fraction(&self) -> f64 {
        frac(self.compute_busy_ns, self.window_ns())
    }

    /// Fraction of the window link and compute overlapped, in `[0, 1]`.
    pub fn overlap_fraction(&self) -> f64 {
        frac(self.overlap_ns, self.window_ns())
    }
}

fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Time breakdown across the run (Figure 10 components), ns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Data-map generation (`GenDataMap`).
    pub gen_map_ns: u64,
    /// Static-region compute (`Tsr`).
    pub static_compute_ns: u64,
    /// CPU gather / on-demand fill (`Tfilling`).
    pub gather_ns: u64,
    /// On-demand H2D transfer (`Ttransfer`).
    pub transfer_ns: u64,
    /// On-demand compute (`Tondemand`).
    pub ondemand_compute_ns: u64,
    /// Static-region refresh transfers (replacement server).
    pub update_ns: u64,
}

impl Breakdown {
    /// Sum of all components (engine-busy view; the run's wall time is
    /// shorter when phases overlap).
    pub fn total_ns(&self) -> u64 {
        self.gen_map_ns
            + self.static_compute_ns
            + self.gather_ns
            + self.transfer_ns
            + self.ondemand_compute_ns
            + self.update_ns
    }
}

/// Result and metrics of one out-of-core run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// System name ("Ascetic", "Subway", "PT", "UVM").
    pub system: &'static str,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Iterations until convergence.
    pub iterations: u32,
    /// Total simulated run time, ns. On a session's first run this
    /// includes the one-time static prestore (see `prestore_ns`); later
    /// runs over the same session start from a warm region and exclude it.
    pub sim_time_ns: u64,
    /// Steady-state transfers (excludes the static-region prestore).
    pub xfer: XferStats,
    /// Bytes moved filling the static region before iteration 0
    /// (Table 5 *includes* this; Figure 7 excludes it).
    pub prestore_bytes: u64,
    /// Prestore bytes actually on the link (equal to `prestore_bytes`
    /// unless the fill shipped compressed).
    pub prestore_wire_bytes: u64,
    /// Time spent on the initial fill, ns (included in `sim_time_ns`).
    pub prestore_ns: u64,
    /// Bytes moved by the replacement server (static refresh).
    pub refresh_bytes: u64,
    /// Refresh bytes actually on the link.
    pub refresh_wire_bytes: u64,
    /// Bytes speculatively shipped by the cross-iteration prefetch
    /// pipeline (a subset of `xfer.h2d_bytes`; 0 when prefetch is off).
    pub prefetch_bytes: u64,
    /// Chunk refreshes issued on the prefetch stream.
    pub prefetch_ops: u64,
    /// Prefetched chunks the next iteration actually demanded.
    pub prefetch_hits: u64,
    /// Bytes prefetched for chunks the next iteration never touched
    /// (mispredictions — charged as waste, never corruption).
    pub prefetch_wasted_bytes: u64,
    /// Kernel counters.
    pub kernels: KernelStats,
    /// Time breakdown.
    pub breakdown: Breakdown,
    /// Compute-engine idle time relative to the makespan, ns.
    pub gpu_idle_ns: u64,
    /// Number of Eq (3) adaptive re-partitions performed.
    pub repartitions: u32,
    /// Largest per-iteration device edge-payload footprint, bytes
    /// (Table 2's "memory usage per iteration" for Subway).
    pub peak_iteration_payload_bytes: u64,
    /// Mean per-iteration device edge-payload footprint, bytes.
    pub avg_iteration_payload_bytes: u64,
    /// Recorded engine spans, when the system ran with tracing enabled
    /// (export with [`ascetic_sim::chrome_trace_json`]).
    pub trace: Option<Vec<TraceSpan>>,
    /// Hierarchical span trace (one track per copy stream, one per
    /// engine, plus session phase tracks), when the system ran with
    /// tracing enabled. Export with [`ascetic_obs::Trace::to_perfetto_json`]
    /// or [`ascetic_obs::Trace::to_jsonl`].
    pub span_trace: Option<Trace>,
    /// Per-iteration link/compute utilization derived from the span
    /// trace. Empty when tracing was off.
    pub utilization: Vec<IterUtilization>,
    /// Events the bounded log discarded after filling up (0 when event
    /// logging was off or nothing was dropped).
    pub events_dropped: u64,
    /// Virtual-clock timestamp of the first dropped event, when any were
    /// dropped — everything before this time is complete.
    pub first_drop_at: Option<u64>,
    /// Metrics snapshot for this run. Canonical counters (`xfer.*`,
    /// `kernel.*`, `prestore.bytes`, …) are synced from the report fields
    /// by [`RunReport::sync_metrics`], so they agree exactly with
    /// [`RunReport::xfer`]/[`RunReport::kernels`]; histograms and
    /// subsystem counters come from the live device registry.
    pub metrics: MetricsSnapshot,
    /// Structured event log, when the system ran with event logging
    /// enabled (`AsceticConfig::with_events` / baseline `with_events`).
    pub events: Option<EventLog>,
    /// Final algorithm output (validated against the in-memory oracle).
    pub output: AlgoOutput,
    /// Per-iteration details.
    pub per_iter: Vec<IterReport>,
}

impl RunReport {
    /// Total bytes transferred including the prestore — the Table 5 notion
    /// ("Note that they include data transferred during the initial data
    /// filling to the Static Region").
    pub fn total_bytes_with_prestore(&self) -> u64 {
        self.xfer.total_bytes() + self.prestore_bytes + self.refresh_bytes
    }

    /// Steady-state bytes (Figure 7's notion: "The data transfer is not
    /// contain the static prestore data").
    pub fn steady_bytes(&self) -> u64 {
        self.xfer.total_bytes() + self.refresh_bytes
    }

    /// Total bytes on the link including the prestore — what PCIe really
    /// carried. Equal to [`RunReport::total_bytes_with_prestore`] when the
    /// compressed transfer path is off.
    pub fn total_wire_bytes_with_prestore(&self) -> u64 {
        self.xfer.total_wire_bytes() + self.prestore_wire_bytes + self.refresh_wire_bytes
    }

    /// Steady-state bytes on the link (excludes the prestore).
    pub fn steady_wire_bytes(&self) -> u64 {
        self.xfer.total_wire_bytes() + self.refresh_wire_bytes
    }

    /// The run's makespan in simulated seconds (`sim_time_ns / 1e9`; the
    /// virtual clock, not host wall time).
    pub fn seconds(&self) -> f64 {
        self.sim_time_ns as f64 / 1e9
    }

    /// Fraction of prefetched chunk refreshes the next iteration actually
    /// consumed, in `[0, 1]`. Returns 0.0 when nothing was prefetched.
    pub fn prefetch_hit_rate(&self) -> f64 {
        if self.prefetch_ops == 0 {
            return 0.0;
        }
        self.prefetch_hits as f64 / self.prefetch_ops as f64
    }

    /// Fraction of the makespan the COMPUTE engine sat idle, in `[0, 1]`
    /// (paper §2.2: 68 % for Subway BFS on friendster-konect). Returns 0.0
    /// for a zero-length run.
    pub fn gpu_idle_fraction(&self) -> f64 {
        if self.sim_time_ns == 0 {
            return 0.0;
        }
        self.gpu_idle_ns as f64 / self.sim_time_ns as f64
    }

    /// Of the traversed edges, the fraction served from the static region
    /// (always 0.0 for baselines, which have no static region).
    pub fn static_edge_fraction(&self) -> f64 {
        let total: u64 = self.per_iter.iter().map(|i| i.active_edges).sum();
        if total == 0 {
            return 0.0;
        }
        let stat: u64 = self.per_iter.iter().map(|i| i.static_edges).sum();
        stat as f64 / total as f64
    }

    /// Overwrite the snapshot's canonical metrics with this report's
    /// authoritative fields and stamp the `system`/`algo` labels.
    ///
    /// The live registry counts every DMA the device issues, but systems
    /// also adjust `XferStats` directly (index bytes ride along on payload
    /// DMAs; sessions subtract earlier runs' traffic), so the report
    /// fields — not the registry — are the source of truth. Calling this
    /// pins the exported snapshot to them exactly.
    pub fn sync_metrics(&mut self) {
        self.metrics.set_label("system", self.system);
        self.metrics.set_label("algo", self.algorithm);
        self.metrics
            .set_counter("xfer.h2d_bytes", self.xfer.h2d_bytes);
        self.metrics
            .set_counter("xfer.h2d_wire_bytes", self.xfer.h2d_wire_bytes);
        self.metrics
            .set_counter("xfer.d2h_bytes", self.xfer.d2h_bytes);
        self.metrics.set_counter("xfer.h2d_ops", self.xfer.h2d_ops);
        self.metrics.set_counter("xfer.d2h_ops", self.xfer.d2h_ops);
        self.metrics
            .set_counter("kernel.launches", self.kernels.launches);
        self.metrics.set_counter("kernel.edges", self.kernels.edges);
        self.metrics
            .set_counter("kernel.vertices", self.kernels.vertices);
        self.metrics
            .set_counter("kernel.time_ns", self.kernels.time_ns);
        self.metrics
            .set_counter("prestore.bytes", self.prestore_bytes);
        self.metrics
            .set_counter("prestore.wire_bytes", self.prestore_wire_bytes);
        self.metrics
            .set_counter("refresh.bytes", self.refresh_bytes);
        self.metrics
            .set_counter("refresh.wire_bytes", self.refresh_wire_bytes);
        self.metrics
            .set_counter("prefetch.bytes", self.prefetch_bytes);
        self.metrics.set_counter("prefetch.ops", self.prefetch_ops);
        self.metrics
            .set_counter("prefetch.hits", self.prefetch_hits);
        self.metrics
            .set_counter("prefetch.waste_bytes", self.prefetch_wasted_bytes);
        self.metrics
            .set_counter("events.dropped", self.events_dropped);
        self.metrics
            .set_counter("iterations", self.iterations as u64);
        self.metrics
            .set_counter("repartitions", self.repartitions as u64);
        self.metrics.set_gauge("sim_time_ns", self.sim_time_ns);
        self.metrics.set_gauge("gpu.idle_ns", self.gpu_idle_ns);
        self.metrics
            .set_gauge("payload.peak_bytes", self.peak_iteration_payload_bytes);
        self.metrics
            .set_gauge("payload.avg_bytes", self.avg_iteration_payload_bytes);
    }

    /// Header line matching [`RunReport::summary_csv_row`].
    pub fn summary_csv_header() -> &'static str {
        "system,algorithm,iterations,sim_time_ns,h2d_bytes,d2h_bytes,h2d_ops,d2h_ops,\
         prestore_bytes,refresh_bytes,kernel_launches,kernel_edges,gpu_idle_ns,\
         repartitions,peak_payload_bytes,h2d_wire_bytes,prestore_wire_bytes,\
         refresh_wire_bytes,prefetch_bytes,prefetch_ops,prefetch_hits,\
         prefetch_wasted_bytes"
    }

    /// One CSV row of the headline scalars (no trailing newline).
    pub fn summary_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.system,
            self.algorithm,
            self.iterations,
            self.sim_time_ns,
            self.xfer.h2d_bytes,
            self.xfer.d2h_bytes,
            self.xfer.h2d_ops,
            self.xfer.d2h_ops,
            self.prestore_bytes,
            self.refresh_bytes,
            self.kernels.launches,
            self.kernels.edges,
            self.gpu_idle_ns,
            self.repartitions,
            self.peak_iteration_payload_bytes,
            self.xfer.h2d_wire_bytes,
            self.prestore_wire_bytes,
            self.refresh_wire_bytes,
            self.prefetch_bytes,
            self.prefetch_ops,
            self.prefetch_hits,
            self.prefetch_wasted_bytes,
        )
    }

    /// Header + row CSV document.
    pub fn summary_csv(&self) -> String {
        format!(
            "{}\n{}\n",
            Self::summary_csv_header(),
            self.summary_csv_row()
        )
    }

    /// Two-column markdown table of the headline numbers.
    pub fn summary_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} / {}\n\n", self.system, self.algorithm));
        out.push_str("| metric | value |\n|---|---|\n");
        let mut rows: Vec<(&str, String)> = vec![
            ("iterations", self.iterations.to_string()),
            (
                "simulated time",
                format!("{:.3} ms", self.sim_time_ns as f64 / 1e6),
            ),
            (
                "steady transfer",
                format!("{:.2} MB", self.steady_bytes() as f64 / 1e6),
            ),
            (
                "prestore",
                format!("{:.2} MB", self.prestore_bytes as f64 / 1e6),
            ),
            (
                "DMA ops",
                (self.xfer.h2d_ops + self.xfer.d2h_ops).to_string(),
            ),
            ("kernel launches", self.kernels.launches.to_string()),
            (
                "GPU idle",
                format!("{:.1} %", self.gpu_idle_fraction() * 100.0),
            ),
            ("repartitions", self.repartitions.to_string()),
            (
                "static-region hit",
                format!("{:.1} %", self.static_edge_fraction() * 100.0),
            ),
        ];
        if self.total_wire_bytes_with_prestore() != self.total_bytes_with_prestore() {
            rows.insert(
                3,
                (
                    "wire transfer",
                    format!(
                        "{:.2} MB steady + {:.2} MB prestore",
                        self.steady_wire_bytes() as f64 / 1e6,
                        self.prestore_wire_bytes as f64 / 1e6
                    ),
                ),
            );
        }
        for (k, v) in rows {
            out.push_str(&format!("| {k} | {v} |\n"));
        }
        out
    }

    /// One JSON object: headline scalars plus the full metrics snapshot.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{");
        json::key_into("schema_version", &mut out);
        out.push_str(&RUN_REPORT_SCHEMA_VERSION.to_string());
        out.push(',');
        json::key_into("system", &mut out);
        json::string_into(self.system, &mut out);
        out.push(',');
        json::key_into("algorithm", &mut out);
        json::string_into(self.algorithm, &mut out);
        for (k, v) in [
            ("iterations", self.iterations as u64),
            ("sim_time_ns", self.sim_time_ns),
            ("prestore_bytes", self.prestore_bytes),
            ("refresh_bytes", self.refresh_bytes),
            ("steady_bytes", self.steady_bytes()),
            (
                "total_bytes_with_prestore",
                self.total_bytes_with_prestore(),
            ),
            ("steady_wire_bytes", self.steady_wire_bytes()),
            (
                "total_wire_bytes_with_prestore",
                self.total_wire_bytes_with_prestore(),
            ),
            ("gpu_idle_ns", self.gpu_idle_ns),
            ("repartitions", self.repartitions as u64),
            ("prefetch_bytes", self.prefetch_bytes),
            ("prefetch_ops", self.prefetch_ops),
            ("prefetch_hits", self.prefetch_hits),
            ("prefetch_wasted_bytes", self.prefetch_wasted_bytes),
        ] {
            out.push(',');
            json::key_into(k, &mut out);
            out.push_str(&v.to_string());
        }
        out.push(',');
        json::key_into("pull_iterations", &mut out);
        out.push_str(&self.per_iter.iter().filter(|i| i.pull).count().to_string());
        out.push(',');
        json::key_into("output_fp", &mut out);
        out.push_str(&format!("\"{:016x}\"", self.output.fingerprint()));
        out.push(',');
        json::key_into("events_dropped", &mut out);
        out.push_str(&self.events_dropped.to_string());
        out.push(',');
        json::key_into("first_drop_at", &mut out);
        match self.first_drop_at {
            Some(t) => out.push_str(&t.to_string()),
            None => out.push_str("null"),
        }
        out.push(',');
        json::key_into("metrics", &mut out);
        out.push_str(&self.metrics.to_json());
        out.push('}');
        out
    }
}

/// Derive per-window link/compute utilization from a finished span trace.
///
/// Link tracks are every track named with
/// [`ascetic_sim::COPY_STREAM_TRACK_PREFIX`] (their busy time is unioned,
/// so concurrent streams count covered time once); the compute track is
/// the one named [`ascetic_sim::Engine::Compute`]`.name()`. Wait spans
/// (arbitration stalls) never count as busy. Windows are
/// `(start_ns, end_ns)` pairs on the virtual clock, typically one per
/// iteration.
pub fn utilization_from_trace(trace: &Trace, windows: &[(u64, u64)]) -> Vec<IterUtilization> {
    let link: Vec<usize> = trace
        .tracks()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.starts_with(ascetic_sim::COPY_STREAM_TRACK_PREFIX))
        .map(|(i, _)| i)
        .collect();
    let compute = trace.track_index(ascetic_sim::Engine::Compute.name());
    windows
        .iter()
        .map(|&(start_ns, end_ns)| {
            let link_busy_ns = trace.busy_union_ns(&link, start_ns, end_ns);
            let compute_busy_ns = compute.map_or(0, |c| trace.busy_ns(c, start_ns, end_ns));
            let both: Vec<usize> = link.iter().copied().chain(compute).collect();
            let either = trace.busy_union_ns(&both, start_ns, end_ns);
            IterUtilization {
                start_ns,
                end_ns,
                link_busy_ns,
                compute_busy_ns,
                // |A ∩ B| = |A| + |B| − |A ∪ B|
                overlap_ns: (link_busy_ns + compute_busy_ns).saturating_sub(either),
            }
        })
        .collect()
}

impl std::fmt::Display for RunReport {
    /// The human-readable summary the CLI prints by default.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "system:            {}", self.system)?;
        writeln!(f, "algorithm:         {}", self.algorithm)?;
        writeln!(f, "iterations:        {}", self.iterations)?;
        writeln!(
            f,
            "simulated time:    {:.3} ms",
            self.sim_time_ns as f64 / 1e6
        )?;
        writeln!(
            f,
            "transferred:       {:.2} MB steady + {:.2} MB prestore",
            self.steady_bytes() as f64 / 1e6,
            self.prestore_bytes as f64 / 1e6
        )?;
        if self.total_wire_bytes_with_prestore() != self.total_bytes_with_prestore() {
            writeln!(
                f,
                "on the wire:       {:.2} MB steady + {:.2} MB prestore (compressed)",
                self.steady_wire_bytes() as f64 / 1e6,
                self.prestore_wire_bytes as f64 / 1e6
            )?;
        }
        if self.prefetch_ops > 0 {
            writeln!(
                f,
                "prefetch:          {} chunk refreshes, {:.1} % hit, {:.2} MB wasted",
                self.prefetch_ops,
                self.prefetch_hit_rate() * 100.0,
                self.prefetch_wasted_bytes as f64 / 1e6
            )?;
        }
        writeln!(
            f,
            "kernels:           {} launches, {} edges",
            self.kernels.launches, self.kernels.edges
        )?;
        writeln!(
            f,
            "GPU idle:          {:.1} %",
            self.gpu_idle_fraction() * 100.0
        )?;
        let total: u64 = self.per_iter.iter().map(|i| i.active_edges).sum();
        if total > 0 {
            writeln!(
                f,
                "static region hit: {:.1} % of traversed edges",
                self.static_edge_fraction() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunReport {
        RunReport {
            system: "X",
            algorithm: "BFS",
            iterations: 3,
            sim_time_ns: 1_000,
            xfer: XferStats {
                h2d_bytes: 500,
                h2d_wire_bytes: 500,
                h2d_prefetch_bytes: 0,
                d2h_bytes: 100,
                h2d_ops: 5,
                d2h_ops: 1,
            },
            prestore_bytes: 200,
            prestore_wire_bytes: 200,
            prestore_ns: 50,
            refresh_bytes: 30,
            refresh_wire_bytes: 30,
            prefetch_bytes: 0,
            prefetch_ops: 0,
            prefetch_hits: 0,
            prefetch_wasted_bytes: 0,
            kernels: KernelStats::default(),
            breakdown: Breakdown {
                gen_map_ns: 1,
                static_compute_ns: 2,
                gather_ns: 3,
                transfer_ns: 4,
                ondemand_compute_ns: 5,
                update_ns: 6,
            },
            gpu_idle_ns: 400,
            repartitions: 0,
            peak_iteration_payload_bytes: 64,
            avg_iteration_payload_bytes: 32,
            trace: None,
            span_trace: None,
            utilization: vec![],
            events_dropped: 0,
            first_drop_at: None,
            metrics: MetricsSnapshot::new(),
            events: None,
            output: AlgoOutput::Distances(vec![]),
            per_iter: vec![],
        }
    }

    #[test]
    fn byte_accounting_views() {
        let r = dummy();
        assert_eq!(r.steady_bytes(), 630);
        assert_eq!(r.total_bytes_with_prestore(), 830);
        // raw path: wire equals payload everywhere
        assert_eq!(r.steady_wire_bytes(), 630);
        assert_eq!(r.total_wire_bytes_with_prestore(), 830);
    }

    #[test]
    fn wire_byte_views_track_compressed_transfers() {
        let mut r = dummy();
        r.xfer.h2d_wire_bytes = 200; // 500 payload shipped as 200
        r.prestore_wire_bytes = 80;
        r.refresh_wire_bytes = 10;
        assert_eq!(r.steady_wire_bytes(), 200 + 100 + 10);
        assert_eq!(r.total_wire_bytes_with_prestore(), 200 + 100 + 10 + 80);
        // payload views are untouched by the wire numbers
        assert_eq!(r.total_bytes_with_prestore(), 830);
        r.sync_metrics();
        assert_eq!(r.metrics.counter("xfer.h2d_wire_bytes"), Some(200));
        assert_eq!(r.metrics.counter("prestore.wire_bytes"), Some(80));
        assert_eq!(r.metrics.counter("refresh.wire_bytes"), Some(10));
        let text = r.to_string();
        assert!(text.contains("on the wire:"), "{text}");
        assert!(r.summary_markdown().contains("wire transfer"));
    }

    #[test]
    fn breakdown_total() {
        assert_eq!(dummy().breakdown.total_ns(), 21);
    }

    #[test]
    fn idle_fraction() {
        let r = dummy();
        assert!((r.gpu_idle_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(r.seconds(), 1e-6);
    }

    #[test]
    fn sync_metrics_pins_canonical_counters() {
        let mut r = dummy();
        r.metrics.set_counter("xfer.h2d_bytes", 999_999); // stale registry value
        r.sync_metrics();
        assert_eq!(r.metrics.counter("xfer.h2d_bytes"), Some(r.xfer.h2d_bytes));
        assert_eq!(r.metrics.counter("xfer.d2h_ops"), Some(r.xfer.d2h_ops));
        assert_eq!(r.metrics.counter("prestore.bytes"), Some(200));
        assert_eq!(r.metrics.counter("iterations"), Some(3));
        assert_eq!(r.metrics.gauge("sim_time_ns"), Some(1_000));
        assert_eq!(r.metrics.gauge("gpu.idle_ns"), Some(400));
        assert_eq!(r.metrics.label("system"), Some("X"));
        assert_eq!(r.metrics.label("algo"), Some("BFS"));
    }

    #[test]
    fn display_and_summaries_are_well_formed() {
        let mut r = dummy();
        r.sync_metrics();
        let text = r.to_string();
        assert!(text.contains("system:            X"));
        assert!(text.contains("iterations:        3"));
        let md = r.summary_markdown();
        assert!(md.contains("| iterations | 3 |"));
        assert!(md.contains("### X / BFS"));
        let csv = r.summary_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert_eq!(header.split(',').count(), row.split(',').count());
        assert!(row.starts_with("X,BFS,3,1000,500,100,5,1,200,30,"));
        ascetic_obs::json::validate(&r.summary_json()).expect("summary JSON validates");
    }

    #[test]
    fn prefetch_accounting_views() {
        let mut r = dummy();
        assert_eq!(r.prefetch_hit_rate(), 0.0, "nothing prefetched yet");
        let text = r.to_string();
        assert!(!text.contains("prefetch:"), "silent when off: {text}");
        r.prefetch_bytes = 96;
        r.prefetch_ops = 3;
        r.prefetch_hits = 2;
        r.prefetch_wasted_bytes = 32;
        r.xfer.h2d_prefetch_bytes = 96;
        assert!((r.prefetch_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.xfer.h2d_ondemand_bytes(), 500 - 96);
        r.sync_metrics();
        assert_eq!(r.metrics.counter("prefetch.bytes"), Some(96));
        assert_eq!(r.metrics.counter("prefetch.ops"), Some(3));
        assert_eq!(r.metrics.counter("prefetch.hits"), Some(2));
        assert_eq!(r.metrics.counter("prefetch.waste_bytes"), Some(32));
        let text = r.to_string();
        assert!(text.contains("prefetch:"), "{text}");
        let row = r.summary_csv_row();
        assert!(row.ends_with(",96,3,2,32"), "{row}");
        ascetic_obs::json::validate(&r.summary_json()).expect("summary JSON validates");
    }

    #[test]
    fn drop_accounting_surfaces_in_summaries() {
        let mut r = dummy();
        let json = r.summary_json();
        assert!(json.contains("\"schema_version\":3"), "{json}");
        assert!(json.contains("\"events_dropped\":0"), "{json}");
        assert!(json.contains("\"first_drop_at\":null"), "{json}");
        r.events_dropped = 7;
        r.first_drop_at = Some(123);
        r.sync_metrics();
        assert_eq!(r.metrics.counter("events.dropped"), Some(7));
        let json = r.summary_json();
        assert!(json.contains("\"events_dropped\":7"), "{json}");
        assert!(json.contains("\"first_drop_at\":123"), "{json}");
        ascetic_obs::json::validate(&json).expect("summary JSON validates");
    }

    #[test]
    fn utilization_from_trace_unions_streams_and_intersects_compute() {
        use ascetic_obs::SpanTracer;
        use ascetic_sim::{copy_stream_track_name, Engine};
        let mut tr = SpanTracer::new();
        let s0 = tr.track(&copy_stream_track_name(0));
        let s1 = tr.track(&copy_stream_track_name(1));
        let gpu = tr.track(Engine::Compute.name());
        // stream 0 busy [0,100), stream 1 busy [50,150) -> union 150
        tr.complete(s0, 0, 100, "H2D", "dma").unwrap();
        tr.complete(s1, 50, 150, "H2D", "dma").unwrap();
        // compute busy [80,200) -> overlap with link union = [80,150) = 70
        tr.complete(gpu, 80, 200, "kernel", "kernel").unwrap();
        let trace = tr.finish().unwrap();
        let u = utilization_from_trace(&trace, &[(0, 200), (0, 100)]);
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].link_busy_ns, 150);
        assert_eq!(u[0].compute_busy_ns, 120);
        assert_eq!(u[0].overlap_ns, 70);
        assert_eq!(u[0].window_ns(), 200);
        assert_eq!(u[0].link_idle_ns(), 50);
        assert_eq!(u[0].compute_idle_ns(), 80);
        assert!((u[0].overlap_fraction() - 0.35).abs() < 1e-12);
        // clipped window
        assert_eq!(u[1].link_busy_ns, 100);
        assert_eq!(u[1].compute_busy_ns, 20);
        assert_eq!(u[1].overlap_ns, 20);
    }

    #[test]
    fn static_edge_fraction_counts_per_iter() {
        let mut r = dummy();
        assert_eq!(r.static_edge_fraction(), 0.0, "no iterations yet");
        r.per_iter.push(IterReport {
            active_edges: 100,
            static_edges: 75,
            ..IterReport::default()
        });
        assert!((r.static_edge_fraction() - 0.75).abs() < 1e-12);
    }
}
