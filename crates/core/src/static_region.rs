//! The Static Region (paper §3.1, §3.4).
//!
//! A device-memory slab divided into chunk-sized slots (16 KiB, the paper's
//! replacement/transfer granularity). Residency is tracked two ways:
//!
//! * per **chunk** — which slot (if any) holds each edge chunk; this is the
//!   granularity of initial fill and hotness replacement;
//! * per **vertex** — the paper's `StaticBitmap`: a vertex is *static* iff
//!   every chunk covering its CSR edge range is resident (zero-degree
//!   vertices are trivially static). The bitmap is maintained
//!   incrementally as chunks swap.
//!
//! The Eq (3) adaptive re-partition is supported by `release_tail_slots`,
//! which evicts and donates the trailing slots of the slab to the
//! on-demand engine as an extra batch buffer (shrinking the static region
//! without relocating the arena).

use ascetic_graph::chunks::{ChunkGeometry, ChunkId};
use ascetic_graph::{Csr, VertexId};
use ascetic_par::{with_scratch, Bitmap};
use ascetic_sim::{DevPtr, DeviceMemory, Gpu};

use crate::config::FillPolicy;

/// Sentinel for "chunk not resident".
const NO_SLOT: u32 = u32::MAX;

/// What [`StaticRegion::patch`] did to reconcile the region with a mutated
/// graph: which resident chunks were rewritten in place, which fell off the
/// (shrunken) end of the chunked CSR, and the device bytes rewritten.
pub struct RegionPatch {
    /// Resident chunks whose device copy was refreshed in place.
    pub refreshed: Vec<ChunkId>,
    /// Chunks evicted because the patched graph has fewer chunks.
    pub evicted: Vec<ChunkId>,
    /// Device bytes rewritten (the in-place refresh volume).
    pub bytes: u64,
}

/// The static region store.
pub struct StaticRegion {
    /// Device slab backing all slots.
    slab: DevPtr,
    /// Chunk geometry of the graph.
    geo: ChunkGeometry,
    /// Words per (full) chunk.
    words_per_chunk: usize,
    /// Usable slots (may shrink via Eq (3)).
    slot_count: usize,
    /// slot → resident chunk.
    chunk_of_slot: Vec<Option<ChunkId>>,
    /// chunk → slot (NO_SLOT when absent).
    slot_of_chunk: Vec<u32>,
    /// The paper's `StaticBitmap` (vertex granularity).
    vertex_static: Bitmap,
}

/// SplitMix64 — tiny deterministic generator for the random fill policy
/// (keeps `ascetic-core` free of an RNG dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StaticRegion {
    /// Allocate a static region of at most `capacity_bytes` on `gpu` for
    /// graph `g` chunked by `geo`. The region holds
    /// `capacity_bytes / chunk_bytes` slots (zero slots is legal — the
    /// R = 0 end of the Figure 10 sweep).
    pub fn new(gpu: &mut Gpu, g: &Csr, geo: ChunkGeometry, capacity_bytes: u64) -> StaticRegion {
        let words_per_chunk = geo.chunk_bytes / 4;
        let max_useful = geo.num_chunks();
        let slot_count = ((capacity_bytes as usize) / geo.chunk_bytes).min(max_useful);
        let slab = gpu
            .alloc(slot_count * words_per_chunk)
            .expect("static region must fit the device (checked by ratio math)");
        let mut region = StaticRegion {
            slab,
            geo,
            words_per_chunk,
            slot_count,
            chunk_of_slot: vec![None; slot_count],
            slot_of_chunk: vec![NO_SLOT; max_useful],
            vertex_static: Bitmap::new(g.num_vertices()),
        };
        region.rebuild_vertex_bitmap(g);
        region
    }

    /// Number of usable slots.
    pub fn slots(&self) -> usize {
        self.slot_count
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.slot_count * self.geo.chunk_bytes) as u64
    }

    /// Number of chunks currently resident.
    pub fn resident_chunks(&self) -> usize {
        self.chunk_of_slot
            .iter()
            .take(self.slot_count)
            .filter(|c| c.is_some())
            .count()
    }

    /// Whether `chunk` is resident.
    pub fn is_resident(&self, chunk: ChunkId) -> bool {
        self.slot_of_chunk[chunk as usize] != NO_SLOT
    }

    /// The `StaticBitmap`.
    pub fn vertex_bitmap(&self) -> &Bitmap {
        &self.vertex_static
    }

    /// Whether all of `v`'s edges are resident.
    pub fn is_vertex_static(&self, v: VertexId) -> bool {
        self.vertex_static.get(v as usize)
    }

    /// Number of slots with no resident chunk.
    pub fn free_slots(&self) -> usize {
        self.slot_count - self.resident_chunks()
    }

    /// Load non-resident `chunk` into a free slot (the lazy-fill adoption
    /// path). Returns the loaded bytes; panics if no slot is free or the
    /// chunk is already resident.
    pub fn load_chunk(&mut self, gpu: &mut Gpu, g: &Csr, chunk: ChunkId) -> u64 {
        assert!(!self.is_resident(chunk), "chunk already resident");
        let slot = self
            .chunk_of_slot
            .iter()
            .position(|c| c.is_none())
            .expect("no free slot for lazy load");
        let bytes = with_scratch(|scratch| {
            let mut staging = scratch.take_u32();
            g.write_edge_words(self.geo.edge_range(chunk), &mut staging);
            let dst = self.slot_ptr(slot).slice(0, staging.len());
            gpu.mem.write(dst, &staging);
            let bytes = (staging.len() * 4) as u64;
            scratch.put_u32(staging);
            bytes
        });
        self.chunk_of_slot[slot] = Some(chunk);
        self.slot_of_chunk[chunk as usize] = slot as u32;
        self.update_vertices_overlapping(g, chunk);
        bytes
    }

    /// Chunk ids chosen by `policy` for an initial fill of `n` chunks.
    pub fn plan_fill(&self, policy: FillPolicy, n: usize) -> Vec<ChunkId> {
        let total = self.geo.num_chunks();
        let n = n.min(total);
        match policy {
            FillPolicy::Lazy => Vec::new(),
            FillPolicy::Front => (0..n as ChunkId).collect(),
            FillPolicy::Rear => ((total - n) as ChunkId..total as ChunkId).collect(),
            FillPolicy::Random { seed } => {
                // partial Fisher-Yates over 0..total
                let mut ids: Vec<ChunkId> = (0..total as ChunkId).collect();
                let mut st = seed ^ 0xA076_1D64_78BD_642F;
                for i in 0..n {
                    let j = i + (splitmix64(&mut st) as usize) % (total - i);
                    ids.swap(i, j);
                }
                ids.truncate(n);
                ids
            }
        }
    }

    /// Fill the region with `chunks` (one per free slot, in order), staging
    /// each chunk's edge words from the host CSR. Returns the bytes loaded;
    /// the caller charges the transfer time (prestore is a single bulk
    /// operation in the paper's accounting).
    pub fn fill(&mut self, gpu: &mut Gpu, g: &Csr, chunks: &[ChunkId]) -> u64 {
        assert!(chunks.len() <= self.slot_count, "more chunks than slots");
        // The staging buffer comes from the thread-local scratch arena so
        // repeated fills (sessions, lazy adoption, Eq (3) re-partitions)
        // reuse one allocation instead of re-growing a fresh Vec each time.
        let bytes = with_scratch(|scratch| {
            let mut staging = scratch.take_u32();
            staging.reserve(self.words_per_chunk);
            let mut bytes = 0u64;
            for (slot, &c) in chunks.iter().enumerate() {
                assert!(
                    self.chunk_of_slot[slot].is_none(),
                    "fill into occupied slot"
                );
                staging.clear();
                g.write_edge_words(self.geo.edge_range(c), &mut staging);
                let dst = self.slot_ptr(slot).slice(0, staging.len());
                gpu.mem.write(dst, &staging);
                self.chunk_of_slot[slot] = Some(c);
                self.slot_of_chunk[c as usize] = slot as u32;
                bytes += (staging.len() * 4) as u64;
            }
            scratch.put_u32(staging);
            bytes
        });
        self.rebuild_vertex_bitmap(g);
        bytes
    }

    /// Device pointer of slot `slot` (full chunk width).
    fn slot_ptr(&self, slot: usize) -> DevPtr {
        self.slab
            .slice(slot * self.words_per_chunk, self.words_per_chunk)
    }

    /// Replace resident `evict` with non-resident `load` (the Figure 6
    /// swap, data plane). Returns the loaded bytes; the caller accounts the
    /// transfer on the copy engine within the overlap window.
    pub fn swap_chunk(&mut self, gpu: &mut Gpu, g: &Csr, evict: ChunkId, load: ChunkId) -> u64 {
        let slot = self.slot_of_chunk[evict as usize];
        assert_ne!(slot, NO_SLOT, "evicted chunk must be resident");
        assert!(!self.is_resident(load), "loaded chunk must not be resident");
        self.slot_of_chunk[evict as usize] = NO_SLOT;
        self.update_vertices_overlapping(g, evict);

        // Hotness replacement swaps one chunk per iteration — the scratch
        // arena makes the steady state allocation-free.
        let bytes = with_scratch(|scratch| {
            let mut staging = scratch.take_u32();
            g.write_edge_words(self.geo.edge_range(load), &mut staging);
            let dst = self.slot_ptr(slot as usize).slice(0, staging.len());
            gpu.mem.write(dst, &staging);
            let bytes = (staging.len() * 4) as u64;
            scratch.put_u32(staging);
            bytes
        });
        self.chunk_of_slot[slot as usize] = Some(load);
        self.slot_of_chunk[load as usize] = slot;
        self.update_vertices_overlapping(g, load);
        bytes
    }

    /// Shrink by releasing the trailing `n` slots (evicting their chunks),
    /// donating them to the caller as a contiguous device buffer (Eq (3)).
    /// Returns `None` when `n` is zero or exceeds the current slot count.
    pub fn release_tail_slots(&mut self, g: &Csr, n: usize) -> Option<DevPtr> {
        if n == 0 || n > self.slot_count {
            return None;
        }
        let new_count = self.slot_count - n;
        for slot in new_count..self.slot_count {
            if let Some(c) = self.chunk_of_slot[slot].take() {
                self.slot_of_chunk[c as usize] = NO_SLOT;
                self.update_vertices_overlapping(g, c);
            }
        }
        let tail = self
            .slab
            .slice(new_count * self.words_per_chunk, n * self.words_per_chunk);
        self.slot_count = new_count;
        self.chunk_of_slot.truncate(new_count);
        Some(tail)
    }

    /// Iterate the word slices of `v`'s resident edge data, in edge order.
    /// Must only be called for static vertices (every chunk resident); a
    /// vertex's data may span several chunks and therefore yield several
    /// slices.
    pub fn for_each_vertex_slice<'m>(
        &self,
        mem: &'m DeviceMemory,
        g: &Csr,
        v: VertexId,
        mut f: impl FnMut(&'m [u32]),
    ) {
        let Some(chunks) = self.geo.chunks_of_vertex(g, v) else {
            return; // zero-degree
        };
        let er = g.edge_range(v);
        let wpe = self.geo.bytes_per_edge / 4;
        for c in chunks {
            let slot = self.slot_of_chunk[c as usize];
            debug_assert_ne!(slot, NO_SLOT, "static vertex with non-resident chunk");
            let cr = self.geo.edge_range(c);
            let lo = er.start.max(cr.start);
            let hi = er.end.min(cr.end);
            debug_assert!(lo < hi);
            let off = (lo - cr.start) as usize * wpe;
            let len = (hi - lo) as usize * wpe;
            let ptr = self.slot_ptr(slot as usize).slice(off, len);
            f(mem.words(ptr));
        }
    }

    /// Recompute the whole `StaticBitmap` (used after bulk changes).
    pub fn rebuild_vertex_bitmap(&mut self, g: &Csr) {
        for v in 0..g.num_vertices() as VertexId {
            let is_static = match self.geo.chunks_of_vertex(g, v) {
                None => true, // zero-degree: nothing to load
                Some(chunks) => chunks
                    .clone()
                    .all(|c| self.slot_of_chunk[c as usize] != NO_SLOT),
            };
            self.vertex_static.assign(v as usize, is_static);
        }
    }

    /// Recompute the bitmap for vertices whose edge ranges intersect
    /// `chunk` (after a single-chunk residency change).
    fn update_vertices_overlapping(&mut self, g: &Csr, chunk: ChunkId) {
        let cr = self.geo.edge_range(chunk);
        let offsets = g.offsets();
        let n = g.num_vertices();
        // first vertex with edge_range.end > cr.start  ⇔ offsets[v+1] > cr.start
        let first = offsets[1..=n].partition_point(|&o| o <= cr.start);
        // vertices with offsets[v] < cr.end
        let mut v = first;
        while v < n && offsets[v] < cr.end {
            let is_static = match self.geo.chunks_of_vertex(g, v as VertexId) {
                None => true,
                Some(chunks) => chunks
                    .clone()
                    .all(|c| self.slot_of_chunk[c as usize] != NO_SLOT),
            };
            self.vertex_static.assign(v, is_static);
            v += 1;
        }
    }

    /// The chunk resident in each slot (for tests/inspection).
    pub fn resident_chunk_ids(&self) -> Vec<ChunkId> {
        self.chunk_of_slot.iter().flatten().copied().collect()
    }

    /// Reconcile the region with an in-place graph patch, *without*
    /// tearing the arena down: chunks past the patched graph's end are
    /// evicted, resident chunks at or after `first_dirty_chunk` have their
    /// device copies rewritten from `g_new` in their existing slots
    /// (chunk boundaries are stable — geometry depends only on chunk and
    /// edge byte sizes, which must not change), and the `StaticBitmap` is
    /// rebuilt. The caller accounts the returned transfer volume.
    pub fn patch(
        &mut self,
        gpu: &mut Gpu,
        g_new: &Csr,
        new_geo: ChunkGeometry,
        first_dirty_chunk: ChunkId,
    ) -> RegionPatch {
        assert_eq!(
            new_geo.chunk_bytes, self.geo.chunk_bytes,
            "patch must not change chunk size"
        );
        assert_eq!(
            new_geo.bytes_per_edge, self.geo.bytes_per_edge,
            "patch must not change edge width"
        );
        let new_chunks = new_geo.num_chunks();
        let mut evicted = Vec::new();
        for c in new_chunks..self.slot_of_chunk.len() {
            let slot = self.slot_of_chunk[c];
            if slot != NO_SLOT {
                self.chunk_of_slot[slot as usize] = None;
                evicted.push(c as ChunkId);
            }
        }
        self.slot_of_chunk.resize(new_chunks, NO_SLOT);
        self.geo = new_geo;

        let mut refreshed = Vec::new();
        let bytes = with_scratch(|scratch| {
            let mut staging = scratch.take_u32();
            let mut bytes = 0u64;
            for c in (first_dirty_chunk as usize)..new_chunks {
                let slot = self.slot_of_chunk[c];
                if slot == NO_SLOT {
                    continue;
                }
                staging.clear();
                g_new.write_edge_words(self.geo.edge_range(c as ChunkId), &mut staging);
                let dst = self.slot_ptr(slot as usize).slice(0, staging.len());
                gpu.mem.write(dst, &staging);
                bytes += (staging.len() * 4) as u64;
                refreshed.push(c as ChunkId);
            }
            scratch.put_u32(staging);
            bytes
        });
        self.rebuild_vertex_bitmap(g_new);
        RegionPatch {
            refreshed,
            evicted,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_graph::GraphBuilder;
    use ascetic_sim::DeviceConfig;

    /// Line graph: vertex v has exactly one out-edge (v -> v+1), so edge
    /// index == vertex id; with 4-edge chunks, chunk c covers vertices
    /// 4c..4c+4.
    fn setup(n: usize, chunk_bytes: usize) -> (Csr, ChunkGeometry, Gpu) {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v as VertexId, v as VertexId + 1);
        }
        let g = b.build();
        let geo = ChunkGeometry::with_chunk_bytes(&g, chunk_bytes);
        let gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        (g, geo, gpu)
    }

    #[test]
    fn fill_front_makes_prefix_vertices_static() {
        let (g, geo, mut gpu) = setup(33, 16); // 32 edges, 4 edges/chunk, 8 chunks
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 3 * 16); // 3 slots
        let plan = sr.plan_fill(FillPolicy::Front, 3);
        assert_eq!(plan, vec![0, 1, 2]);
        let bytes = sr.fill(&mut gpu, &g, &plan);
        assert_eq!(bytes, 3 * 16);
        // vertices 0..12 have their single edge in chunks 0..3
        for v in 0..12u32 {
            assert!(sr.is_vertex_static(v), "v{v}");
        }
        assert!(!sr.is_vertex_static(12));
        // last vertex has no out-edges -> trivially static
        assert!(sr.is_vertex_static(32));
        assert_eq!(sr.resident_chunks(), 3);
    }

    #[test]
    fn fill_rear_and_random_policies() {
        let (g, geo, mut gpu) = setup(33, 16);
        let sr = StaticRegion::new(&mut gpu, &g, geo, 3 * 16);
        assert_eq!(sr.plan_fill(FillPolicy::Rear, 3), vec![5, 6, 7]);
        let r1 = sr.plan_fill(FillPolicy::Random { seed: 1 }, 3);
        let r2 = sr.plan_fill(FillPolicy::Random { seed: 1 }, 3);
        assert_eq!(r1, r2, "random plan must be deterministic");
        assert_eq!(r1.len(), 3);
        let mut sorted = r1.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "random plan must not repeat chunks");
    }

    #[test]
    fn slices_deliver_the_right_edge_words() {
        let (g, geo, mut gpu) = setup(33, 16);
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 8 * 16);
        let plan = sr.plan_fill(FillPolicy::Front, 8);
        sr.fill(&mut gpu, &g, &plan);
        // vertex 5's single edge points at 6
        let mut seen = Vec::new();
        sr.for_each_vertex_slice(&gpu.mem, &g, 5, |words| seen.extend_from_slice(words));
        assert_eq!(seen, vec![6]);
        // zero-degree vertex yields nothing
        let mut count = 0;
        sr.for_each_vertex_slice(&gpu.mem, &g, 32, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn multi_chunk_vertex_spans_slices() {
        // star: vertex 0 has 12 out-edges -> spans 3 chunks of 4 edges
        let mut b = GraphBuilder::new(13);
        for t in 1..13u32 {
            b.add_edge(0, t);
        }
        let g = b.build();
        let geo = ChunkGeometry::with_chunk_bytes(&g, 16);
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 3 * 16);
        sr.fill(&mut gpu, &g, &[0, 1, 2]);
        assert!(sr.is_vertex_static(0));
        let mut pieces = 0;
        let mut all = Vec::new();
        sr.for_each_vertex_slice(&gpu.mem, &g, 0, |w| {
            pieces += 1;
            all.extend_from_slice(w);
        });
        assert_eq!(pieces, 3);
        assert_eq!(all, (1..13u32).collect::<Vec<_>>());
    }

    #[test]
    fn partially_resident_vertex_is_not_static() {
        let mut b = GraphBuilder::new(13);
        for t in 1..13u32 {
            b.add_edge(0, t);
        }
        let g = b.build();
        let geo = ChunkGeometry::with_chunk_bytes(&g, 16);
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 2 * 16);
        sr.fill(&mut gpu, &g, &[0, 1]); // chunk 2 missing
        assert!(!sr.is_vertex_static(0));
    }

    #[test]
    fn swap_chunk_updates_residency_and_bitmap() {
        let (g, geo, mut gpu) = setup(33, 16);
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 2 * 16);
        sr.fill(&mut gpu, &g, &[0, 1]);
        assert!(sr.is_vertex_static(0) && sr.is_vertex_static(7));
        let bytes = sr.swap_chunk(&mut gpu, &g, 0, 5);
        assert_eq!(bytes, 16);
        assert!(!sr.is_resident(0));
        assert!(sr.is_resident(5));
        assert!(!sr.is_vertex_static(0), "chunk 0 evicted");
        assert!(sr.is_vertex_static(20), "chunk 5 covers vertices 20..24");
        // slice from the newly loaded chunk reads the right data
        let mut seen = Vec::new();
        sr.for_each_vertex_slice(&gpu.mem, &g, 21, |w| seen.extend_from_slice(w));
        assert_eq!(seen, vec![22]);
    }

    #[test]
    fn release_tail_slots_donates_contiguous_buffer() {
        let (g, geo, mut gpu) = setup(33, 16);
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 4 * 16);
        sr.fill(&mut gpu, &g, &[0, 1, 2, 3]);
        let tail = sr.release_tail_slots(&g, 2).unwrap();
        assert_eq!(tail.len, 2 * 4); // 2 slots * 4 words
        assert_eq!(sr.slots(), 2);
        assert!(!sr.is_resident(2) && !sr.is_resident(3));
        assert!(sr.is_resident(0) && sr.is_resident(1));
        assert!(!sr.is_vertex_static(9), "evicted chunk 2 covered vertex 9");
        assert!(sr.release_tail_slots(&g, 5).is_none());
        assert!(sr.release_tail_slots(&g, 0).is_none());
    }

    #[test]
    fn zero_capacity_region() {
        let (g, geo, mut gpu) = setup(33, 16);
        let sr = StaticRegion::new(&mut gpu, &g, geo, 0);
        assert_eq!(sr.slots(), 0);
        assert_eq!(sr.capacity_bytes(), 0);
        // only the zero-degree tail vertex is static
        assert!(sr.is_vertex_static(32));
        assert!(!sr.is_vertex_static(0));
    }

    #[test]
    fn patch_refreshes_resident_dirty_chunks_in_place() {
        let (g, geo, mut gpu) = setup(33, 16); // 32 edges, 8 chunks
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 4 * 16);
        sr.fill(&mut gpu, &g, &[0, 1, 5, 7]);
        // mutate: vertex 4 now points at 0 instead of 5 (same edge count)
        let mut b = GraphBuilder::new(33);
        for v in 0..32u32 {
            b.add_edge(v, if v == 4 { 0 } else { v + 1 });
        }
        let g2 = b.build();
        let geo2 = ChunkGeometry::with_chunk_bytes(&g2, 16);
        // edge 4 lives in chunk 1 → first dirty chunk is 1
        let rp = sr.patch(&mut gpu, &g2, geo2, 1);
        assert_eq!(rp.refreshed, vec![1, 5, 7], "resident chunks >= 1");
        assert!(rp.evicted.is_empty());
        assert_eq!(rp.bytes, 3 * 16);
        let mut seen = Vec::new();
        sr.for_each_vertex_slice(&gpu.mem, &g2, 4, |w| seen.extend_from_slice(w));
        assert_eq!(seen, vec![0], "device copy reflects the patched edge");
        // clean chunk 0 untouched
        let mut seen0 = Vec::new();
        sr.for_each_vertex_slice(&gpu.mem, &g2, 2, |w| seen0.extend_from_slice(w));
        assert_eq!(seen0, vec![3]);
    }

    #[test]
    fn patch_evicts_chunks_past_shrunken_end() {
        let (g, geo, mut gpu) = setup(33, 16); // 8 chunks
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 3 * 16);
        sr.fill(&mut gpu, &g, &[0, 6, 7]);
        // drop the last 8 edges → 24 edges, 6 chunks
        let mut b = GraphBuilder::new(33);
        for v in 0..24u32 {
            b.add_edge(v, v + 1);
        }
        let g2 = b.build();
        let geo2 = ChunkGeometry::with_chunk_bytes(&g2, 16);
        let rp = sr.patch(&mut gpu, &g2, geo2, 6);
        assert_eq!(rp.evicted, vec![6, 7]);
        assert!(rp.refreshed.is_empty(), "no resident chunks in 6..6");
        assert_eq!(sr.resident_chunk_ids(), vec![0]);
        assert_eq!(sr.free_slots(), 2, "slots of evicted chunks are reusable");
    }

    #[test]
    fn capacity_capped_at_dataset() {
        let (g, geo, mut gpu) = setup(33, 16); // 8 chunks total
        let sr = StaticRegion::new(&mut gpu, &g, geo, 100 * 16);
        assert_eq!(sr.slots(), 8, "no point allocating beyond the dataset");
    }
}
