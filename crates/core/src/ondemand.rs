//! The On-demand Engine (paper §3.1, Figure 4 steps ➋–➍).
//!
//! CPU-side machinery that turns `OndemandNodes` into a compact subgraph —
//! the Subway-style scheme the paper adopts ("Such requests are sent to
//! On-demand Engine, which is similar to the scheme used in Subway"):
//!
//! 1. **plan** — split the node list into batches whose edge payload fits
//!    the on-demand region (the paper's "divide the on-demand data into
//!    many smaller fragments ... and then transfer and process them in
//!    turn"); a vertex whose adjacency list alone exceeds the region is
//!    split across batches (partial delivery is part of the
//!    `VertexProgram` contract);
//! 2. **gather** — multi-threaded copy of the requested edge ranges from
//!    the host CSR into a staging buffer, in device word format, with a
//!    per-entry index (`OndemandNodes` + offsets) for the kernel.
//!
//! The engine is pure data-plane; the [`crate::engine`] Manager charges the
//! gather/transfer costs and moves staging into device memory.

use ascetic_graph::{Csr, VertexId};
use ascetic_par::{
    exclusive_scan_in_place, parallel_exclusive_scan, parallel_parts, parallel_ranges, with_scratch,
};

/// One gather request: a vertex and the sub-range of its edges to deliver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GatherEntry {
    /// Source vertex.
    pub vertex: VertexId,
    /// Edge-index range (absolute, into the CSR edge array).
    pub edges: std::ops::Range<u64>,
}

impl GatherEntry {
    /// Edges requested.
    pub fn num_edges(&self) -> u64 {
        self.edges.end - self.edges.start
    }
}

/// A gathered batch: staging payload plus the per-entry index.
#[derive(Clone, Debug)]
pub struct GatherBatch {
    /// Requests in this batch.
    pub entries: Vec<GatherEntry>,
    /// Word offset of each entry's payload within `words`
    /// (length `entries.len() + 1`).
    pub offsets: Vec<u64>,
    /// Staged edge payload (device word format).
    pub words: Vec<u32>,
    /// Total edges in the batch.
    pub edges: u64,
}

impl GatherBatch {
    /// Payload bytes of the batch.
    pub fn payload_bytes(&self) -> u64 {
        (self.words.len() * 4) as u64
    }

    /// Bytes of the subgraph index shipped alongside the payload
    /// (vertex id + offset per entry, as in Subway's `OndemandNodes`).
    pub fn index_bytes(&self) -> u64 {
        (self.entries.len() * 8) as u64
    }

    /// The word range of entry `i` within the staged payload.
    pub fn entry_words(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }
}

/// Split `nodes` into batches whose payload fits `capacity_words`.
///
/// # Panics
/// Panics if `capacity_words` cannot hold a single edge entry.
pub fn plan_batches(g: &Csr, nodes: &[VertexId], capacity_words: usize) -> Vec<Vec<GatherEntry>> {
    let wpe = g.words_per_edge() as u64;
    assert!(
        capacity_words as u64 >= wpe,
        "on-demand region below one edge"
    );
    let cap_edges = capacity_words as u64 / wpe;

    let mut batches = Vec::new();
    let mut cur: Vec<GatherEntry> = Vec::new();
    let mut cur_edges = 0u64;
    for &v in nodes {
        let mut r = g.edge_range(v);
        while !r.is_empty() {
            let room = cap_edges - cur_edges;
            if room == 0 {
                batches.push(std::mem::take(&mut cur));
                cur_edges = 0;
                continue;
            }
            let take = (r.end - r.start).min(room);
            cur.push(GatherEntry {
                vertex: v,
                edges: r.start..r.start + take,
            });
            cur_edges += take;
            r.start += take;
        }
    }
    if !cur.is_empty() {
        batches.push(cur);
    }
    batches
}

/// Gather one batch's payload from the host CSR (multi-threaded).
pub fn gather(g: &Csr, entries: Vec<GatherEntry>) -> GatherBatch {
    let wpe = g.words_per_edge() as u64;
    let mut lens: Vec<u64> = entries.iter().map(|e| e.num_edges() * wpe).collect();
    lens.push(0);
    // large frontiers get the two-pass parallel scan; small ones stay serial
    let (offsets, total_words) = if lens.len() > 8_192 {
        parallel_exclusive_scan(&lens)
    } else {
        let total = exclusive_scan_in_place(&mut lens);
        (lens, total)
    };
    let edges = total_words / wpe;

    let mut words = vec![0u32; total_words as usize];
    // Static split of entries over workers; each worker fills a disjoint,
    // contiguous window of `words` (entry payloads are contiguous). The
    // windows are dispatched on the persistent pool, and each worker's
    // per-entry serialization buffer comes from its thread-local scratch
    // arena — reused across batches and iterations instead of re-allocated.
    let ranges = parallel_ranges(entries.len(), |_, r| r);
    {
        let mut parts: Vec<(&mut [u32], &[GatherEntry])> = Vec::with_capacity(ranges.len());
        let mut rest: &mut [u32] = &mut words;
        let mut consumed = 0usize;
        for er in &ranges {
            let start_w = offsets[er.start] as usize;
            let end_w = offsets[er.end] as usize;
            debug_assert_eq!(start_w, consumed);
            let (mine, tail) = std::mem::take(&mut rest).split_at_mut(end_w - start_w);
            rest = tail;
            consumed = end_w;
            parts.push((mine, &entries[er.clone()]));
        }
        parallel_parts(parts, |_, (mine, entries)| {
            with_scratch(|scratch| {
                let mut buf = scratch.take_u32();
                let mut w = 0usize;
                for e in entries {
                    buf.clear();
                    g.write_edge_words(e.edges.clone(), &mut buf);
                    mine[w..w + buf.len()].copy_from_slice(&buf);
                    w += buf.len();
                }
                scratch.put_u32(buf);
            });
        });
    }
    GatherBatch {
        entries,
        offsets,
        words,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_graph::datasets::weighted_variant;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_graph::GraphBuilder;

    fn graph() -> Csr {
        // degrees: v0=3, v1=1, v2=2
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        b.add_edge(2, 0);
        b.add_edge(2, 1);
        b.build()
    }

    #[test]
    fn single_batch_when_everything_fits() {
        let g = graph();
        let batches = plan_batches(&g, &[0, 1, 2], 100);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 3);
        let total: u64 = batches[0].iter().map(|e| e.num_edges()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn splits_batches_at_capacity() {
        let g = graph();
        // capacity = 2 edges (2 words unweighted)
        let batches = plan_batches(&g, &[0, 1, 2], 2);
        let sizes: Vec<u64> = batches
            .iter()
            .map(|b| b.iter().map(|e| e.num_edges()).sum())
            .collect();
        assert!(sizes.iter().all(|&s| s <= 2), "sizes {sizes:?}");
        let total: u64 = sizes.iter().sum();
        assert_eq!(total, 6);
        // vertex 0 (deg 3) must be split across batches
        let v0_entries: Vec<_> = batches.iter().flatten().filter(|e| e.vertex == 0).collect();
        assert!(v0_entries.len() >= 2);
    }

    #[test]
    fn empty_nodes_yield_no_batches() {
        let g = graph();
        assert!(plan_batches(&g, &[], 100).is_empty());
    }

    #[test]
    fn zero_degree_vertices_are_skipped() {
        let g = graph();
        let batches = plan_batches(&g, &[3], 100);
        assert!(batches.is_empty(), "vertex 3 has no edges");
    }

    #[test]
    fn gather_stages_correct_words_unweighted() {
        let g = graph();
        let batch = gather(&g, plan_batches(&g, &[0, 2], 100).remove(0));
        assert_eq!(batch.edges, 5);
        assert_eq!(batch.words, vec![1, 2, 3, 0, 1]);
        assert_eq!(batch.entry_words(0), 0..3);
        assert_eq!(batch.entry_words(1), 3..5);
        assert_eq!(batch.payload_bytes(), 20);
        assert_eq!(batch.index_bytes(), 16);
    }

    #[test]
    fn gather_stages_correct_words_weighted() {
        let g = weighted_variant(&graph());
        let batch = gather(&g, plan_batches(&g, &[1], 100).remove(0));
        assert_eq!(batch.edges, 1);
        assert_eq!(batch.words.len(), 2);
        assert_eq!(batch.words[0], 3); // target
        assert_eq!(batch.words[1], g.edge_weights(1)[0]); // weight
    }

    #[test]
    fn gather_matches_direct_serialization_on_random_graph() {
        let g = uniform_graph(500, 4_000, false, 3);
        let nodes: Vec<u32> = (0..500).step_by(3).collect();
        for entries in plan_batches(&g, &nodes, 512) {
            let batch = gather(&g, entries.clone());
            for (i, e) in entries.iter().enumerate() {
                let mut expect = Vec::new();
                g.write_edge_words(e.edges.clone(), &mut expect);
                assert_eq!(&batch.words[batch.entry_words(i)], &expect[..]);
            }
        }
    }

    #[test]
    fn offsets_cover_payload_exactly() {
        let g = uniform_graph(200, 2_000, false, 7);
        let nodes: Vec<u32> = (0..200).collect();
        for entries in plan_batches(&g, &nodes, 1024) {
            let batch = gather(&g, entries);
            assert_eq!(*batch.offsets.last().unwrap() as usize, batch.words.len());
            assert!(batch.offsets.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "below one edge")]
    fn rejects_tiny_capacity() {
        let g = weighted_variant(&graph());
        plan_batches(&g, &[0], 1);
    }
}
