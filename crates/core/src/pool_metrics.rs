//! Bridge from the `ascetic-par` worker-pool counters to an observability
//! snapshot.
//!
//! The pool's numbers are **host wall-clock telemetry** — worker counts,
//! dispatch counts, job wall-times. They vary with the machine and the
//! thread count, so they must never be merged into the deterministic
//! [`crate::RunReport`] metrics (which are bit-identical across thread
//! counts by contract). Instead they travel as a separate labelled
//! snapshot: the CLI appends it to the `--metrics-out` JSONL as its own
//! line when `--pool-metrics` is passed, and the `wallclock` bench embeds
//! it in `BENCH_wallclock.json`.

use ascetic_obs::{Histogram, MetricsSnapshot, NUM_BUCKETS};

/// Snapshot the process-global worker-pool counters as a metrics snapshot
/// (labels: `stream=pool`).
pub fn pool_metrics_snapshot() -> MetricsSnapshot {
    // The pool's wall-time buckets use the obs log2 histogram layout.
    const _: () = assert!(ascetic_par::workers::WALL_BUCKETS == NUM_BUCKETS);
    let s = ascetic_par::pool_stats();
    let mut m = MetricsSnapshot::new();
    m.set_label("stream", "pool");
    m.set_gauge("pool.workers", s.workers);
    m.set_counter("pool.jobs_persistent", s.jobs_persistent);
    m.set_counter("pool.jobs_spawn", s.jobs_spawn);
    m.set_counter("pool.jobs_inline", s.jobs_inline);
    m.set_counter("pool.chunks_served", s.chunks_served);
    m.set_histogram(
        "pool.job_wall_ns",
        Histogram::from_parts(s.job_wall_count, s.job_wall_sum_ns, s.job_wall_ns_buckets),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_pool_activity() {
        // Drive at least one parallel job through the pool, then check the
        // snapshot carries the counters and validates as JSON.
        ascetic_par::parallel_for(100_000, |i| {
            std::hint::black_box(i);
        });
        let m = pool_metrics_snapshot();
        assert_eq!(m.label("stream"), Some("pool"));
        assert!(m.gauge("pool.workers").is_some());
        let jobs = m.counter("pool.jobs_persistent").unwrap_or(0)
            + m.counter("pool.jobs_spawn").unwrap_or(0)
            + m.counter("pool.jobs_inline").unwrap_or(0);
        assert!(jobs > 0, "at least one job was recorded");
        let h = m.histogram("pool.job_wall_ns").unwrap();
        assert_eq!(
            h.buckets().iter().sum::<u64>(),
            h.count(),
            "bucket totals line up"
        );
        ascetic_obs::json::validate(&m.to_json()).expect("pool snapshot JSON validates");
    }
}
