//! The common system interface and shared device-budget helpers.
//!
//! Ascetic and all three baselines implement [`OutOfCoreSystem`], so the
//! benchmark harness, the integration tests and the examples drive them
//! uniformly and compare like-for-like.

use ascetic_algos::traits::DEVICE_BYTES_PER_VERTEX;
use ascetic_algos::VertexProgram;
use ascetic_graph::Csr;
use ascetic_sim::{DevPtr, Gpu};

use crate::report::RunReport;

/// An out-of-GPU-memory graph-processing system.
pub trait OutOfCoreSystem {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Execute `prog` over `g`, returning the full report. The graph must
    /// be weighted iff the program needs weights.
    fn run<P: VertexProgram>(&self, g: &Csr, prog: &P) -> RunReport;
}

/// Reserve the device-resident vertex arrays (values, offsets/degrees and
/// the two bitmaps — the paper keeps "all vertices in the GPU memory") and
/// return the reservation. The remaining arena capacity is the *edge
/// budget* every system partitions.
///
/// # Panics
/// Panics if the vertex arrays alone exceed device memory — the paper's
/// setting assumes vertices always fit.
pub fn reserve_vertex_arrays(gpu: &mut Gpu, g: &Csr) -> DevPtr {
    let words = (g.num_vertices() as u64 * DEVICE_BYTES_PER_VERTEX / 4) as usize;
    match gpu.alloc(words) {
        Ok(p) => p,
        Err(e) => panic!(
            "vertex arrays ({} words) do not fit in device memory: {e}",
            words
        ),
    }
}

/// The edge budget in bytes left after the vertex reservation.
pub fn edge_budget_bytes(gpu: &Gpu) -> u64 {
    gpu.mem.available() as u64 * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_sim::DeviceConfig;

    #[test]
    fn vertex_reservation_shrinks_edge_budget() {
        let g = uniform_graph(1_000, 5_000, false, 1);
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20)); // 1 MiB
        let before = edge_budget_bytes(&gpu);
        let p = reserve_vertex_arrays(&mut gpu, &g);
        let after = edge_budget_bytes(&gpu);
        assert_eq!(before - after, p.len_bytes());
        assert_eq!(p.len_bytes(), 1_000 * DEVICE_BYTES_PER_VERTEX);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn oversized_vertex_set_panics() {
        let g = uniform_graph(100_000, 10, false, 1);
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 10));
        reserve_vertex_arrays(&mut gpu, &g);
    }
}
