//! The common system interface and shared device-budget helpers.
//!
//! Ascetic and all three baselines implement [`OutOfCoreSystem`], so the
//! benchmark harness, the integration tests and the examples drive them
//! uniformly and compare like-for-like.

use ascetic_algos::traits::DEVICE_BYTES_PER_VERTEX;
use ascetic_algos::VertexProgram;
use ascetic_graph::Csr;
use ascetic_sim::{DevPtr, Gpu};

use ascetic_graph::chunks::ChunkGeometry;

use crate::config::ConfigError;
use crate::report::RunReport;

/// Why a system refused to run a graph during [`OutOfCoreSystem::prepare`].
#[derive(Clone, Debug, PartialEq)]
pub enum PrepareError {
    /// The device-resident vertex arrays alone exceed device memory; every
    /// system here assumes vertices fit (the paper's setting).
    VerticesDontFit {
        /// Bytes the vertex arrays need.
        need: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The system's configuration is invalid for this graph.
    Config(ConfigError),
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepareError::VerticesDontFit { need, capacity } => write!(
                f,
                "vertex arrays need {need} B but the device holds {capacity} B"
            ),
            PrepareError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for PrepareError {}

impl From<ConfigError> for PrepareError {
    fn from(e: ConfigError) -> Self {
        PrepareError::Config(e)
    }
}

/// Check the paper's standing assumption that the vertex arrays fit on
/// the device with `capacity_bytes` of memory (shared by every system's
/// [`OutOfCoreSystem::prepare`]).
pub fn check_vertex_fit(g: &Csr, capacity_bytes: u64) -> Result<(), PrepareError> {
    let need = g.num_vertices() as u64 * DEVICE_BYTES_PER_VERTEX;
    if need > capacity_bytes {
        return Err(PrepareError::VerticesDontFit {
            need,
            capacity: capacity_bytes,
        });
    }
    Ok(())
}

/// State computed once by [`OutOfCoreSystem::prepare`] and reusable across
/// runs of the same graph on the same system. Callers that run many jobs
/// back-to-back (the serve layer, the bench grid) prepare once and pass the
/// result down instead of re-deriving the config-dependent chunking per run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prepared {
    /// Config-derived edge chunking, for systems that chunk the edge array
    /// (Ascetic). Chunkless baselines leave this `None`.
    pub geometry: Option<ChunkGeometry>,
    /// Bytes the device-resident vertex arrays will occupy.
    pub vertex_bytes: u64,
    /// Edge budget in bytes left on the device after the vertex arrays.
    pub edge_budget_bytes: u64,
}

impl Prepared {
    /// Prepared state for `g` on a device with `capacity_bytes`, after the
    /// shared vertices-fit check. Systems add their geometry on top.
    pub fn for_device(g: &Csr, capacity_bytes: u64) -> Result<Self, PrepareError> {
        check_vertex_fit(g, capacity_bytes)?;
        let vertex_bytes = g.num_vertices() as u64 * DEVICE_BYTES_PER_VERTEX;
        Ok(Prepared {
            geometry: None,
            vertex_bytes,
            edge_budget_bytes: capacity_bytes - vertex_bytes,
        })
    }

    /// Same prepared state with the chunk geometry filled in.
    pub fn with_geometry(mut self, geo: ChunkGeometry) -> Self {
        self.geometry = Some(geo);
        self
    }
}

/// An out-of-GPU-memory graph-processing system.
pub trait OutOfCoreSystem {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Validate that this system can run `g` at all — configuration sanity
    /// plus the vertices-fit-on-device assumption — *before* committing to
    /// device allocation, and return the reusable [`Prepared`] state
    /// (vertex/edge budgets plus any config-derived chunking) so repeated
    /// runs do not pay the derivation again. Callers (the CLI, the bench
    /// harness, the serve layer) surface the error cleanly instead of
    /// panicking mid-run. The default accepts everything and claims no
    /// budget.
    fn prepare(&self, g: &Csr) -> Result<Prepared, PrepareError> {
        let _ = g;
        Ok(Prepared {
            geometry: None,
            vertex_bytes: 0,
            edge_budget_bytes: 0,
        })
    }

    /// Execute `prog` over `g`, returning the full report. The graph must
    /// be weighted iff the program needs weights.
    fn run<P: VertexProgram>(&self, g: &Csr, prog: &P) -> RunReport;
}

/// Reserve the device-resident vertex arrays (values, offsets/degrees and
/// the two bitmaps — the paper keeps "all vertices in the GPU memory") and
/// return the reservation. The remaining arena capacity is the *edge
/// budget* every system partitions.
///
/// # Panics
/// Panics if the vertex arrays alone exceed device memory — the paper's
/// setting assumes vertices always fit.
pub fn reserve_vertex_arrays(gpu: &mut Gpu, g: &Csr) -> DevPtr {
    let words = (g.num_vertices() as u64 * DEVICE_BYTES_PER_VERTEX / 4) as usize;
    match gpu.alloc(words) {
        Ok(p) => p,
        Err(e) => panic!(
            "vertex arrays ({} words) do not fit in device memory: {e}",
            words
        ),
    }
}

/// The edge budget in bytes left after the vertex reservation.
pub fn edge_budget_bytes(gpu: &Gpu) -> u64 {
    gpu.mem.available() as u64 * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_sim::DeviceConfig;

    #[test]
    fn vertex_reservation_shrinks_edge_budget() {
        let g = uniform_graph(1_000, 5_000, false, 1);
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20)); // 1 MiB
        let before = edge_budget_bytes(&gpu);
        let p = reserve_vertex_arrays(&mut gpu, &g);
        let after = edge_budget_bytes(&gpu);
        assert_eq!(before - after, p.len_bytes());
        assert_eq!(p.len_bytes(), 1_000 * DEVICE_BYTES_PER_VERTEX);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn oversized_vertex_set_panics() {
        let g = uniform_graph(100_000, 10, false, 1);
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 10));
        reserve_vertex_arrays(&mut gpu, &g);
    }

    #[test]
    fn check_vertex_fit_mirrors_the_reservation_panic() {
        let g = uniform_graph(1_000, 5_000, false, 1);
        assert!(check_vertex_fit(&g, 1 << 20).is_ok());
        let err = check_vertex_fit(&g, 1 << 10).unwrap_err();
        assert!(matches!(err, PrepareError::VerticesDontFit { .. }));
        assert!(err.to_string().contains("vertex arrays"));
    }

    #[test]
    fn ascetic_prepare_validates_config_for_the_graph() {
        use crate::config::{AsceticConfig, CompressionMode, ConfigError};
        use crate::engine::AsceticSystem;
        use ascetic_graph::datasets::weighted_variant;
        let g = uniform_graph(1_000, 5_000, false, 1);
        let dev = DeviceConfig::p100(1 << 20);
        let sys = AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(1024));
        let prepared = sys.prepare(&g).expect("valid config");
        // prepare caches the config-derived chunking and the device budgets
        let geo = prepared.geometry.expect("Ascetic chunks the edge array");
        assert_eq!(geo, ChunkGeometry::with_chunk_bytes(&g, 1024));
        assert_eq!(prepared.vertex_bytes, 1_000 * DEVICE_BYTES_PER_VERTEX);
        assert_eq!(
            prepared.edge_budget_bytes,
            (1u64 << 20) - prepared.vertex_bytes
        );
        // graph-dependent rule: weighted + Always is rejected up front
        let wg = weighted_variant(&g);
        let always = AsceticSystem::new(
            AsceticConfig::new(dev)
                .with_chunk_bytes(1024)
                .with_compression(CompressionMode::Always),
        );
        assert!(always.prepare(&g).is_ok());
        assert_eq!(
            always.prepare(&wg).unwrap_err(),
            PrepareError::Config(ConfigError::CompressedWeightedGraph)
        );
        // graph-independent knob errors surface here too
        let bad = AsceticSystem::new(AsceticConfig::new(dev).with_od_buffers(0));
        assert_eq!(
            bad.prepare(&g).unwrap_err(),
            PrepareError::Config(ConfigError::ZeroOdBuffers)
        );
    }
}
