//! Per-chunk hotness tracking and replacement planning (paper §3.4, Fig 6).
//!
//! "For each chunk, a counter is assigned to record the number of accesses
//! in the earlier iterations. If the counter exceeds a threshold, it means
//! the chunk is stale." The paper sketches two policy flavors — cumulative
//! counting for one-shot traversals (BFS) and last-iteration recency for
//! iterative ranking (PageRank) — both implemented here behind
//! [`ReplacementPolicy`]. A server thread in the On-demand Engine performs
//! the swaps while the GPU processes the on-demand region; the Manager
//! bounds the swap volume by that overlap window's transfer budget
//! (§5: "only about 2% of the total data transfer can be completed during
//! that time").

use ascetic_graph::chunks::{ChunkGeometry, ChunkId};
use ascetic_graph::{Csr, VertexId};

use crate::config::ReplacementPolicy;
use crate::static_region::StaticRegion;

/// Per-chunk access statistics, plus per-chunk metadata reused across
/// iterations by the compressed transfer path.
pub struct HotnessTable {
    policy: ReplacementPolicy,
    /// Cumulative access count per chunk.
    counts: Vec<u32>,
    /// Last iteration (1-based; 0 = never) each chunk was accessed.
    last_access: Vec<u32>,
    /// Cached delta–varint encoded size of each chunk's edge payload
    /// (0 = not yet measured; a real chunk never encodes to zero bytes).
    /// The adaptive crossover prices a transfer from these instead of
    /// re-encoding candidate payloads every iteration.
    wire_bytes: Vec<u32>,
}

impl HotnessTable {
    /// A table over `num_chunks` chunks.
    pub fn new(num_chunks: usize, policy: ReplacementPolicy) -> Self {
        HotnessTable {
            policy,
            counts: vec![0; num_chunks],
            last_access: vec![0; num_chunks],
            wire_bytes: vec![0; num_chunks],
        }
    }

    /// Cached encoded size of `chunk`'s payload, if measured.
    pub fn cached_wire_bytes(&self, chunk: ChunkId) -> Option<u64> {
        match self.wire_bytes[chunk as usize] {
            0 => None,
            b => Some(b as u64),
        }
    }

    /// Cache the measured encoded size of `chunk`'s payload.
    pub fn cache_wire_bytes(&mut self, chunk: ChunkId, bytes: u64) {
        debug_assert!(bytes > 0, "a chunk never encodes to zero bytes");
        self.wire_bytes[chunk as usize] = bytes.min(u32::MAX as u64) as u32;
    }

    /// Resize the table to a patched graph's chunk count. New chunks start
    /// cold and unmeasured; shrinking drops the tail stats. Access history
    /// for surviving chunks is kept — chunk boundaries are stable under
    /// patching (geometry depends only on chunk/edge byte sizes), so a
    /// surviving chunk still covers the same edge range.
    pub fn resize(&mut self, num_chunks: usize) {
        self.counts.resize(num_chunks, 0);
        self.last_access.resize(num_chunks, 0);
        self.wire_bytes.resize(num_chunks, 0);
    }

    /// Drop cached wire sizes for every chunk at or after `first_dirty`:
    /// a patch changed their payload (or shifted it), so the encoded sizes
    /// must be re-measured before the compressed path may price them.
    pub fn invalidate_wire_from(&mut self, first_dirty: ChunkId) {
        for b in self.wire_bytes.iter_mut().skip(first_dirty as usize) {
            *b = 0;
        }
    }

    /// Record that `chunk` was accessed during `iteration` (0-based).
    pub fn record(&mut self, chunk: ChunkId, iteration: u32) {
        self.counts[chunk as usize] = self.counts[chunk as usize].saturating_add(1);
        self.last_access[chunk as usize] = iteration + 1;
    }

    /// Record accesses for every chunk covering the edges of `nodes`.
    pub fn record_vertices(
        &mut self,
        g: &Csr,
        geo: &ChunkGeometry,
        nodes: &[VertexId],
        iteration: u32,
    ) {
        for &v in nodes {
            if let Some(chunks) = geo.chunks_of_vertex(g, v) {
                for c in chunks {
                    self.record(c, iteration);
                }
            }
        }
    }

    /// Whether `chunk` was accessed during `iteration` (0-based) — its
    /// most recent touch is that very iteration. The prefetch pipeline's
    /// hit test: a prefetched chunk counts as a hit iff the next iteration
    /// really demanded it.
    pub fn demanded_at(&self, chunk: ChunkId, iteration: u32) -> bool {
        self.last_access[chunk as usize] == iteration + 1
    }

    /// Cumulative access count of `chunk` (the Hotness prefetch ranking).
    pub fn access_count(&self, chunk: ChunkId) -> u32 {
        self.counts[chunk as usize]
    }

    /// Raw recency stamp of `chunk`: 1-based last-access iteration, 0 =
    /// never touched. Orders eviction candidates coldest-first.
    pub fn last_access_stamp(&self, chunk: ChunkId) -> u32 {
        self.last_access[chunk as usize]
    }

    /// Whether `chunk` is stale per the policy, judged at `iteration`.
    pub fn is_stale(&self, chunk: ChunkId, iteration: u32) -> bool {
        match self.policy {
            ReplacementPolicy::Disabled => false,
            ReplacementPolicy::Cumulative { stale_threshold } => {
                self.counts[chunk as usize] >= stale_threshold
            }
            ReplacementPolicy::LastIteration => !self.demanded_at(chunk, iteration),
        }
    }

    /// Whether `chunk` is hot (worth loading) at `iteration`: it was
    /// demanded this iteration and is not itself stale.
    pub fn is_hot(&self, chunk: ChunkId, iteration: u32) -> bool {
        self.demanded_at(chunk, iteration) && !self.is_stale(chunk, iteration)
    }

    /// Plan up to `max_loads` chunk adoptions into free slots (lazy fill):
    /// non-resident chunks that were demanded at `iteration`, ascending.
    pub fn plan_loads(
        &self,
        region: &StaticRegion,
        iteration: u32,
        max_loads: usize,
    ) -> Vec<ChunkId> {
        let max_loads = max_loads.min(region.free_slots());
        if max_loads == 0 {
            return Vec::new();
        }
        (0..self.counts.len() as ChunkId)
            .filter(|&c| !region.is_resident(c) && self.last_access[c as usize] == iteration + 1)
            .take(max_loads)
            .collect()
    }

    /// Plan up to `max_swaps` (evict, load) pairs: stale resident chunks
    /// replaced by hot non-resident ones, both in ascending chunk order
    /// (deterministic).
    pub fn plan_swaps(
        &self,
        region: &StaticRegion,
        iteration: u32,
        max_swaps: usize,
    ) -> Vec<(ChunkId, ChunkId)> {
        if matches!(self.policy, ReplacementPolicy::Disabled) || max_swaps == 0 {
            return Vec::new();
        }
        let mut evictable = region
            .resident_chunk_ids()
            .into_iter()
            .filter(|&c| self.is_stale(c, iteration));
        let loadable = (0..self.counts.len() as ChunkId)
            .filter(|&c| !region.is_resident(c) && self.is_hot(c, iteration));
        let mut plan = Vec::new();
        for load in loadable {
            let Some(evict) = evictable.next() else { break };
            plan.push((evict, load));
            if plan.len() >= max_swaps {
                break;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FillPolicy;
    use ascetic_graph::GraphBuilder;
    use ascetic_sim::{DeviceConfig, Gpu};

    fn line_graph(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v as u32, v as u32 + 1);
        }
        b.build()
    }

    #[test]
    fn cumulative_policy_marks_consumed_chunks_stale() {
        let mut t = HotnessTable::new(4, ReplacementPolicy::Cumulative { stale_threshold: 2 });
        t.record(0, 0);
        assert!(!t.is_stale(0, 0));
        t.record(0, 1);
        assert!(t.is_stale(0, 1));
        assert!(!t.is_stale(1, 1), "untouched chunk is fresh");
    }

    #[test]
    fn last_iteration_policy_tracks_recency() {
        let mut t = HotnessTable::new(2, ReplacementPolicy::LastIteration);
        t.record(0, 3);
        assert!(!t.is_stale(0, 3));
        assert!(t.is_stale(0, 4), "not touched in iteration 4");
        assert!(t.is_hot(0, 3));
        assert!(!t.is_hot(0, 4));
    }

    #[test]
    fn disabled_policy_never_plans() {
        let g = line_graph(33);
        let geo = ChunkGeometry::with_chunk_bytes(&g, 16);
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 2 * 16);
        let plan = sr.plan_fill(FillPolicy::Front, 2);
        sr.fill(&mut gpu, &g, &plan);
        let mut t = HotnessTable::new(geo.num_chunks(), ReplacementPolicy::Disabled);
        t.record(5, 0);
        assert!(t.plan_swaps(&sr, 0, 10).is_empty());
        assert!(!t.is_stale(0, 9));
    }

    #[test]
    fn record_vertices_touches_their_chunks() {
        let g = line_graph(33); // 32 edges; 4-edge chunks
        let geo = ChunkGeometry::with_chunk_bytes(&g, 16);
        let mut t = HotnessTable::new(geo.num_chunks(), ReplacementPolicy::LastIteration);
        // vertex 9's edge index is 9 -> chunk 2
        t.record_vertices(&g, &geo, &[9], 0);
        assert!(t.is_hot(2, 0));
        assert!(!t.is_hot(1, 0));
        // zero-degree tail vertex touches nothing
        t.record_vertices(&g, &geo, &[32], 0);
    }

    #[test]
    fn wire_byte_cache_round_trips() {
        let mut t = HotnessTable::new(4, ReplacementPolicy::LastIteration);
        assert_eq!(t.cached_wire_bytes(2), None);
        t.cache_wire_bytes(2, 1234);
        assert_eq!(t.cached_wire_bytes(2), Some(1234));
        assert_eq!(t.cached_wire_bytes(3), None, "other chunks unaffected");
    }

    #[test]
    fn plan_swaps_pairs_stale_with_hot() {
        let g = line_graph(33);
        let geo = ChunkGeometry::with_chunk_bytes(&g, 16); // 8 chunks
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 2 * 16);
        sr.fill(&mut gpu, &g, &[0, 1]); // resident: 0, 1
        let mut t = HotnessTable::new(8, ReplacementPolicy::LastIteration);
        // iteration 5: chunks 4 and 5 demanded (on-demand), residents idle
        t.record(4, 5);
        t.record(5, 5);
        let plan = t.plan_swaps(&sr, 5, 10);
        assert_eq!(plan, vec![(0, 4), (1, 5)]);
        // budget of one swap
        let plan1 = t.plan_swaps(&sr, 5, 1);
        assert_eq!(plan1, vec![(0, 4)]);
    }

    #[test]
    fn plan_swaps_keeps_fresh_residents() {
        let g = line_graph(33);
        let geo = ChunkGeometry::with_chunk_bytes(&g, 16);
        let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
        let mut sr = StaticRegion::new(&mut gpu, &g, geo, 2 * 16);
        sr.fill(&mut gpu, &g, &[0, 1]);
        let mut t = HotnessTable::new(8, ReplacementPolicy::LastIteration);
        t.record(0, 2); // resident 0 is fresh at iter 2
        t.record(6, 2); // chunk 6 demanded
        let plan = t.plan_swaps(&sr, 2, 10);
        // only chunk 1 (stale) may be evicted
        assert_eq!(plan, vec![(1, 6)]);
    }
}
