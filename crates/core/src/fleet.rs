//! Multi-device sharded execution.
//!
//! One [`AsceticSession`] drives one simulated device. This module runs a
//! single algorithm across N devices: the graph is edge-balanced into
//! shards ([`ascetic_graph::partition::partition_even_edges`]), each device
//! owns one shard as a masked CSR in the *global* vertex-id space, and the
//! round loop interleaves every shard's
//! `AsceticSession::step_iteration` with a cross-device **frontier
//! exchange** arbitrated by the [`Interconnect`]:
//!
//! * **owner-computes** — a vertex's full out-edge list lives in exactly
//!   one shard, so each device processes `active ∧ owned` and the union of
//!   shard steps performs exactly the single-device iteration's updates.
//!   Vertex state (distances, labels, residuals) is replicated; because
//!   every push update is commutative, the final output is byte-identical
//!   to the single-device run, regardless of device count or host
//!   threading.
//! * **frontier exchange** — at the iteration boundary device `i` ships
//!   its owned slice of the freshly-written next frontier to every peer
//!   ([`ascetic_algos::Capabilities::payload_bytes`] per vertex), over NVLink
//!   peer links when the fabric has them or staged through host memory
//!   otherwise. The round then closes with a BSP barrier at the last
//!   transfer's end, stamped onto every device timeline so per-device
//!   traces stay aligned.
//!
//! Everything the paper gives one device — static region, hotness table,
//! compression crossover, cross-iteration prefetch — runs per-device,
//! unchanged, over that device's shard.

use ascetic_algos::{ops, AlgoOutput, VertexProgram};
use ascetic_graph::partition::{partition_even_edges, shard_csr};
use ascetic_graph::Csr;
use ascetic_obs::Trace;
use ascetic_par::{AtomicBitmap, Bitmap};
use ascetic_sim::{Interconnect, InterconnectConfig, InterconnectStats};

use crate::config::AsceticConfig;
use crate::report::RunReport;
use crate::session::AsceticSession;

/// How a [`run_fleet`] call maps onto devices and wires.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Devices requested. The partitioner may produce fewer shards than
    /// this on tiny graphs; surplus devices then idle.
    pub devices: usize,
    /// Fabric joining the devices.
    pub interconnect: InterconnectConfig,
}

impl FleetConfig {
    /// `devices` devices on the default (PCIe-staged) fabric.
    pub fn pcie(devices: usize) -> Self {
        FleetConfig {
            devices,
            interconnect: InterconnectConfig::pcie(),
        }
    }

    /// `devices` devices joined by NVLink-class peer links.
    pub fn nvlink(devices: usize) -> Self {
        FleetConfig {
            devices,
            interconnect: InterconnectConfig::nvlink(),
        }
    }
}

/// Result of a sharded run: the single-device-identical output plus the
/// fleet-level timing and exchange accounting, and every device's own
/// [`RunReport`].
#[derive(Clone, Debug)]
pub struct FleetRunReport {
    /// Devices that actually held a shard (≤ the requested count).
    pub devices: usize,
    /// Rounds until the global frontier drained.
    pub iterations: u32,
    /// Fleet makespan: the last device's clock when its report closed,
    /// ns. All devices share the BSP barrier, so this is also every
    /// active device's final clock.
    pub makespan_ns: u64,
    /// Frontier-exchange payload shipped between devices, bytes.
    pub exchange_bytes: u64,
    /// Interconnect counters (peer vs host-staged split).
    pub interconnect: InterconnectStats,
    /// Final output — byte-identical to the single-device run.
    pub output: AlgoOutput,
    /// Per-device run reports (prestore, transfers, prefetch, breakdown).
    pub per_device: Vec<RunReport>,
    /// Merged span trace with per-device `dev{i}/…` tracks, when the
    /// config had tracing enabled.
    pub span_trace: Option<Trace>,
}

impl FleetRunReport {
    fn from_single(report: RunReport) -> FleetRunReport {
        FleetRunReport {
            devices: 1,
            iterations: report.iterations,
            makespan_ns: report.sim_time_ns,
            exchange_bytes: 0,
            interconnect: InterconnectStats::default(),
            output: report.output.clone(),
            span_trace: report.span_trace.clone(),
            per_device: vec![report],
        }
    }
}

/// Run `prog` over `g` sharded across `fleet.devices` devices, each
/// configured by `cfg`. With one device this is exactly
/// [`AsceticSession::run`] — same clocks, same counters — and with N it
/// is the owner-computes round loop described at the module level.
pub fn run_fleet<P: VertexProgram>(
    cfg: AsceticConfig,
    fleet: FleetConfig,
    g: &Csr,
    prog: &P,
) -> FleetRunReport {
    assert!(fleet.devices > 0, "a fleet needs at least one device");
    assert_eq!(
        g.is_weighted(),
        prog.capabilities().weights,
        "graph weighting must match the program"
    );
    let shards = partition_even_edges(g, fleet.devices);
    if fleet.devices == 1 || shards.len() == 1 {
        let report = AsceticSession::new(cfg, g).run(prog);
        return FleetRunReport::from_single(report);
    }

    let n = g.num_vertices();
    let shard_graphs: Vec<Csr> = shards.iter().map(|p| shard_csr(g, p)).collect();
    let owned: Vec<Bitmap> = shards
        .iter()
        .map(|p| {
            let mut b = Bitmap::new(n);
            for v in p.vertices.clone() {
                b.set(v as usize);
            }
            b
        })
        .collect();
    let mut sessions: Vec<AsceticSession> = shard_graphs
        .iter()
        .map(|sg| AsceticSession::new(cfg, sg))
        .collect();
    let mut ctxs: Vec<_> = sessions.iter_mut().map(|s| s.begin_run()).collect();
    let mut ic = Interconnect::new(fleet.interconnect, sessions.len());
    let payload = prog.capabilities().payload_bytes;

    // Shared replicated vertex state, initialized from the full graph so
    // global facts (PR degrees, initial residuals) are correct on every
    // device.
    let state = prog.new_state(g);
    let mut active = prog.initial_frontier(g);
    let mut exchange_bytes = 0u64;
    let mut round = 0u32;
    let mut phase = 0u32;
    while round < prog.max_iterations() {
        if active.is_all_zero() {
            // multi-phase handshake: state is replicated, so the
            // transition runs once on the global view and the next
            // phase's frontier shards exactly like the initial one
            match ops::phase_transition(prog, phase, g, &state) {
                Some(f) => {
                    active = f;
                    phase += 1;
                }
                None => break,
            }
        }
        ops::compute(prog, round, &active, &state);
        let next = AtomicBitmap::new(n);
        // Owner-computes: every shard steps every round (a device with an
        // empty local frontier still opens/closes its iteration span) so
        // per-device iteration counts and the BSP barrier stay aligned.
        for (s, session) in sessions.iter_mut().enumerate() {
            let local = active.and(&owned[s]);
            session.step_iteration(prog, &mut ctxs[s], &local, &state, &next);
        }
        let frontier = ops::filter(prog, next.snapshot(), &state);

        // Frontier exchange: device i broadcasts its owned slice of the
        // next frontier to every peer. Sends issue in (src, dst) order on
        // the fabric; the round closes at the last delivery.
        let ready: Vec<u64> = sessions.iter_mut().map(|s| s.clock_ns()).collect();
        let bytes: Vec<u64> = owned
            .iter()
            .map(|o| frontier.and(o).count_ones() as u64 * payload)
            .collect();
        let mut windows: Vec<Option<(u64, u64)>> = vec![None; sessions.len()];
        let mut barrier = ready.iter().copied().max().unwrap_or(0);
        for src in 0..sessions.len() {
            for dst in 0..sessions.len() {
                if src == dst || bytes[src] == 0 {
                    continue;
                }
                let (start, end) = ic.transfer(src, dst, bytes[src], ready[src]);
                let w = windows[src].get_or_insert((start, end));
                w.0 = w.0.min(start);
                w.1 = w.1.max(end);
                barrier = barrier.max(end);
            }
        }
        for (s, session) in sessions.iter_mut().enumerate() {
            let sent = bytes[s] * (windows.len() as u64 - 1);
            let window = windows[s].unwrap_or((ready[s], ready[s]));
            session.fleet_exchange(round, sent, window, barrier);
            exchange_bytes += sent;
        }

        active = frontier;
        round += 1;
    }

    let per_device: Vec<RunReport> = sessions
        .iter_mut()
        .zip(ctxs)
        .map(|(s, ctx)| s.finish_run(prog, &state, ctx))
        .collect();
    let makespan_ns = per_device.iter().map(|r| r.sim_time_ns).max().unwrap_or(0);
    let span_trace = if cfg.tracing {
        let mut merged = Trace::default();
        for (i, r) in per_device.iter().enumerate() {
            if let Some(t) = &r.span_trace {
                merged.merge_prefixed(t, &format!("dev{i}/"));
            }
        }
        Some(merged)
    } else {
        None
    };
    FleetRunReport {
        devices: per_device.len(),
        iterations: round,
        makespan_ns,
        exchange_bytes,
        interconnect: ic.stats(),
        output: prog.output(&state),
        per_device,
        span_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_algos::inmemory::run_in_memory;
    use ascetic_algos::{Bfs, Cc, PageRank, Sssp};
    use ascetic_graph::generators::{uniform_graph, web_graph, WebConfig};
    use ascetic_sim::DeviceConfig;

    fn cfg_for(g: &Csr) -> AsceticConfig {
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 2 / 5);
        AsceticConfig::new(dev).with_chunk_bytes(1024)
    }

    #[test]
    fn fleet_outputs_match_single_device_for_every_algorithm() {
        let g = web_graph(&WebConfig::new(3_000, 40_000, 7));
        let wg = {
            use ascetic_graph::datasets::{Dataset, DatasetId};
            Dataset::build(DatasetId::Fk, 6_000).weighted()
        };
        for devices in [2, 4] {
            for fleet in [FleetConfig::pcie(devices), FleetConfig::nvlink(devices)] {
                let solo = AsceticSession::new(cfg_for(&g), &g).run(&Bfs::new(0));
                let r = run_fleet(cfg_for(&g), fleet, &g, &Bfs::new(0));
                assert_eq!(r.output, solo.output, "BFS @ {devices} devices");
                assert_eq!(r.output, run_in_memory(&g, &Bfs::new(0)).output);
                assert_eq!(r.devices, devices);
                assert!(r.exchange_bytes > 0, "multi-hop BFS must exchange");
                assert_eq!(r.interconnect.total_bytes(), r.exchange_bytes);

                let cc = run_fleet(cfg_for(&g), fleet, &g, &Cc::new());
                assert_eq!(cc.output, run_in_memory(&g, &Cc::new()).output);
                let pr = run_fleet(cfg_for(&g), fleet, &g, &PageRank::new());
                assert_eq!(pr.output, run_in_memory(&g, &PageRank::new()).output);
                let sssp = run_fleet(cfg_for(&wg), fleet, &wg, &Sssp::new(0));
                assert_eq!(sssp.output, run_in_memory(&wg, &Sssp::new(0)).output);
            }
        }
    }

    #[test]
    fn one_device_fleet_is_exactly_the_session_run() {
        let g = uniform_graph(2_000, 16_000, false, 40);
        let solo = AsceticSession::new(cfg_for(&g), &g).run(&PageRank::new());
        let r = run_fleet(cfg_for(&g), FleetConfig::pcie(1), &g, &PageRank::new());
        assert_eq!(r.devices, 1);
        assert_eq!(r.output, solo.output);
        assert_eq!(r.makespan_ns, solo.sim_time_ns);
        assert_eq!(r.per_device[0].xfer, solo.xfer);
        assert_eq!(r.exchange_bytes, 0);
    }

    #[test]
    fn fleet_runs_are_deterministic_and_barrier_aligned() {
        let g = web_graph(&WebConfig::new(3_000, 40_000, 7));
        let run = || run_fleet(cfg_for(&g), FleetConfig::nvlink(4), &g, &Bfs::new(0));
        let a = run();
        let b = run();
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.exchange_bytes, b.exchange_bytes);
        assert_eq!(a.output, b.output);
        // the BSP barrier aligns every active device's final clock
        for r in &a.per_device {
            assert_eq!(r.sim_time_ns, a.makespan_ns);
            assert_eq!(r.iterations, a.iterations);
        }
    }

    #[test]
    fn nvlink_never_loses_to_staging() {
        let g = web_graph(&WebConfig::new(3_000, 40_000, 7));
        let staged = run_fleet(cfg_for(&g), FleetConfig::pcie(4), &g, &Bfs::new(0));
        let peer = run_fleet(cfg_for(&g), FleetConfig::nvlink(4), &g, &Bfs::new(0));
        assert_eq!(staged.output, peer.output);
        assert!(peer.makespan_ns <= staged.makespan_ns);
        assert_eq!(staged.interconnect.peer_bytes, 0);
        assert_eq!(peer.interconnect.staged_bytes, 0);
    }

    #[test]
    fn fleet_trace_has_per_device_tracks() {
        let g = web_graph(&WebConfig::new(3_000, 40_000, 7));
        let cfg = cfg_for(&g).with_tracing(true);
        let r = run_fleet(cfg, FleetConfig::nvlink(2), &g, &Bfs::new(0));
        let trace = r.span_trace.as_ref().expect("tracing armed");
        for d in 0..2 {
            let t = trace
                .track_index(&format!("dev{d}/{}", crate::session::SESSION_TRACK))
                .unwrap_or_else(|| panic!("dev{d} session track missing"));
            assert!(trace.track_spans(t).count() > 0);
            assert!(
                trace
                    .track_spans(t)
                    .any(|s| s.name.starts_with("frontier exchange"))
                    || trace
                        .tracks()
                        .iter()
                        .any(|n| n.starts_with(&format!("dev{d}/"))),
            );
        }
        // exchange spans are stamped on each sending device's copy track
        assert!(
            trace
                .spans()
                .iter()
                .any(|s| s.name.starts_with("frontier exchange")),
            "exchange windows must appear in the merged trace"
        );
        assert!(trace.horizon_ns() <= r.makespan_ns);
    }
}
