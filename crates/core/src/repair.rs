//! The incremental repair engine: re-converge a session after a mutation.
//!
//! [`repair_session`] is the differential-dataflow-flavored half of
//! `ascetic-mutate`: the caller has already delta-patched the session with
//! [`AsceticSession::apply_patch`]; this decides *how little* recompute the
//! patched graph needs and drives the existing operator core to do it.
//!
//! Three modes, ranked by how much converged work survives:
//!
//! * **Seeded** — the program declares [`Capabilities::incremental`] and
//!   its [`VertexProgram::repair`] adjusted state in place (the monotone
//!   invalidate-then-settle passes of BFS/SSSP/CC): the engine re-runs
//!   from the returned affected-vertex frontier, typically a tiny fraction
//!   of the graph.
//! * **Restart** — the program keeps its warm-session benefits (patched
//!   resident chunks, no re-prestore) but re-converges from fresh state
//!   (PR's residual re-convergence: bit-identicality rules out warm
//!   residuals, and the patch changed its cached out-degrees).
//! * **Fallback** — the program never declared `incremental`: fresh state,
//!   initial frontier, warm session. Correctness by construction.
//!
//! All three end at the program's unique fixed point on the mutated graph,
//! so every mode satisfies the hard oracle: *bit-identical to a full
//! recompute* (pinned across thread counts and device counts by the
//! workspace determinism suites).
//!
//! [`Capabilities::incremental`]: ascetic_algos::Capabilities

use ascetic_algos::{RepairPlan, VertexProgram};
use ascetic_graph::{Csr, GraphPatch};

use crate::report::RunReport;
use crate::session::AsceticSession;

/// How [`repair_session`] re-converged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairMode {
    /// In-place state repair, re-run from an affected-vertex frontier.
    Seeded,
    /// Fresh state in the warm session, by the program's own choice.
    Restart,
    /// Fresh state in the warm session — the program does not implement
    /// incremental repair.
    Fallback,
}

/// Result of one [`repair_session`] call.
pub struct RepairOutcome {
    /// Which repair path ran.
    pub mode: RepairMode,
    /// Seed-frontier size (0 unless [`RepairMode::Seeded`]).
    pub seed_count: u64,
    /// The re-convergence run's report (warm-session accounting: no
    /// prestore, only the iterations the repair actually needed).
    pub report: RunReport,
}

/// Re-converge `state` on `sess`'s (already patched) graph. `g_old` is the
/// pre-patch graph the state converged over — the invalidation closures
/// judge dependencies on its edges. The caller keeps ownership of both
/// graph versions and of the program state across batches.
pub fn repair_session<P: VertexProgram>(
    sess: &mut AsceticSession<'_>,
    prog: &P,
    state: &mut P::State,
    g_old: &Csr,
    patch: &GraphPatch,
) -> RepairOutcome {
    let g_new = sess.graph();
    let start_ns = sess.clock_ns();
    if !prog.capabilities().incremental {
        *state = prog.new_state(g_new);
        let report = sess.run_with_state(prog, state, prog.initial_frontier(g_new));
        sess.obs_counter_add("mutate.repair_fallback", 1);
        let end_ns = sess.clock_ns();
        sess.mutate_span(start_ns, end_ns, "repair (fallback recompute)");
        return RepairOutcome {
            mode: RepairMode::Fallback,
            seed_count: 0,
            report,
        };
    }
    let plan = prog.repair(g_old, g_new, sess.mirror_csc(), patch, state);
    match plan {
        RepairPlan::Seeded(seeds) => {
            let seed_count = seeds.count_ones() as u64;
            let report = sess.run_with_state(prog, state, seeds);
            sess.obs_counter_add("mutate.repair_seeded", 1);
            sess.obs_counter_add("mutate.repair_seeds", seed_count);
            let end_ns = sess.clock_ns();
            sess.mutate_span(start_ns, end_ns, "repair (seeded settle)");
            RepairOutcome {
                mode: RepairMode::Seeded,
                seed_count,
                report,
            }
        }
        RepairPlan::Restart => {
            *state = prog.new_state(g_new);
            let report = sess.run_with_state(prog, state, prog.initial_frontier(g_new));
            sess.obs_counter_add("mutate.repair_restart", 1);
            let end_ns = sess.clock_ns();
            sess.mutate_span(start_ns, end_ns, "repair (warm restart)");
            RepairOutcome {
                mode: RepairMode::Restart,
                seed_count: 0,
                report,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_algos::inmemory::run_in_memory;
    use ascetic_algos::{Bfs, Cc, LabelPropagation, PageRank, Sssp};
    use ascetic_graph::datasets::weighted_variant;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_graph::{Mutation, PatchableCsr};
    use ascetic_sim::DeviceConfig;

    use crate::config::AsceticConfig;

    fn cfg_for(g: &Csr) -> AsceticConfig {
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 2 / 5);
        AsceticConfig::new(dev).with_chunk_bytes(1024)
    }

    /// Deterministic small churn batch over the current graph.
    fn churn(g: &Csr, weighted: bool, count: usize, seed: u64) -> Vec<Mutation> {
        let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let n = g.num_vertices() as u64;
        (0..count)
            .map(|_| {
                if rng() % 3 == 0 && g.num_edges() > 0 {
                    let mut src = (rng() % n) as u32;
                    while g.degree(src) == 0 {
                        src = (src + 1) % n as u32;
                    }
                    let row = g.neighbors(src);
                    Mutation::Delete {
                        src,
                        dst: row[(rng() % row.len() as u64) as usize],
                    }
                } else {
                    Mutation::Insert {
                        src: (rng() % n) as u32,
                        dst: (rng() % n) as u32,
                        weight: weighted.then(|| (rng() % 9 + 1) as u32),
                    }
                }
            })
            .collect()
    }

    /// The engine-level oracle: session-run base, patch + repair per batch,
    /// compare bit-identically against a cold full recompute each time.
    fn assert_session_repair_matches<P: VertexProgram>(prog: &P, weighted: bool, seed: u64) {
        let base = uniform_graph(900, 7_000, false, seed);
        let base = if weighted {
            weighted_variant(&base)
        } else {
            base
        };
        let mut store = PatchableCsr::with_defaults(&base, true);
        // Pre-materialize every graph version: the session borrows each
        // version for the lifetime of the epoch it is bound to.
        let mut versions = vec![store.to_csr()];
        let mut cscs = vec![store.to_csc().expect("mirror requested")];
        let mut patches = Vec::new();
        for round in 0..3u64 {
            let batch = churn(versions.last().unwrap(), weighted, 30, seed * 31 + round);
            patches.push(store.apply(&batch).expect("valid churn"));
            versions.push(store.to_csr());
            cscs.push(store.to_csc().expect("mirror requested"));
        }

        let mut sess = AsceticSession::new(cfg_for(&versions[0]), &versions[0]);
        let mut state = prog.new_state(&versions[0]);
        sess.run_with_state(prog, &state, prog.initial_frontier(&versions[0]));
        for (i, patch) in patches.iter().enumerate() {
            let (g_old, g_new) = (&versions[i], &versions[i + 1]);
            sess.apply_patch(g_new, Some(&cscs[i + 1]), patch);
            let out = repair_session(&mut sess, prog, &mut state, g_old, patch);
            assert_eq!(
                out.report.output,
                run_in_memory(g_new, prog).output,
                "round {i} diverged from full recompute"
            );
        }
    }

    #[test]
    fn bfs_session_repair_matches_recompute() {
        assert_session_repair_matches(&Bfs::new(0), false, 11);
    }

    #[test]
    fn sssp_session_repair_matches_recompute() {
        assert_session_repair_matches(&Sssp::new(0), true, 12);
    }

    #[test]
    fn cc_session_repair_matches_recompute() {
        assert_session_repair_matches(&Cc::new(), false, 13);
    }

    #[test]
    fn pr_session_restart_matches_recompute() {
        assert_session_repair_matches(&PageRank::new(), false, 14);
    }

    #[test]
    fn lp_falls_back_to_full_recompute() {
        let g = uniform_graph(500, 3_500, false, 15);
        let mut store = PatchableCsr::with_defaults(&g, true);
        let g0 = store.to_csr();
        let batch = churn(&g0, false, 12, 99);
        let patch = store.apply(&batch).expect("valid churn");
        let g1 = store.to_csr();
        let csc1 = store.to_csc();

        let prog = LabelPropagation::default();
        let mut sess = AsceticSession::new(cfg_for(&g0), &g0);
        let mut state = prog.new_state(&g0);
        sess.run_with_state(&prog, &state, prog.initial_frontier(&g0));
        sess.apply_patch(&g1, csc1.as_ref(), &patch);
        let out = repair_session(&mut sess, &prog, &mut state, &g0, &patch);
        assert_eq!(out.mode, RepairMode::Fallback);
        assert_eq!(out.seed_count, 0);
        assert_eq!(out.report.output, run_in_memory(&g1, &prog).output);
    }

    #[test]
    fn seeded_repair_moves_less_than_recompute() {
        // A small batch on a converged BFS session must re-touch far fewer
        // edges than a cold recompute — the paper-side claim behind the
        // incremental bench lane.
        let g = uniform_graph(1_500, 12_000, false, 21);
        let mut store = PatchableCsr::with_defaults(&g, true);
        let g0 = store.to_csr();
        let batch = churn(&g0, false, 8, 7);
        let patch = store.apply(&batch).expect("valid churn");
        let g1 = store.to_csr();
        let csc1 = store.to_csc();

        let prog = Bfs::new(0);
        let mut sess = AsceticSession::new(cfg_for(&g0), &g0);
        let mut state = prog.new_state(&g0);
        sess.run_with_state(&prog, &state, prog.initial_frontier(&g0));
        let pa = sess.apply_patch(&g1, csc1.as_ref(), &patch);
        assert!(pa.wire_bytes > 0, "delta must be accounted on the wire");
        let out = repair_session(&mut sess, &prog, &mut state, &g0, &patch);
        assert_eq!(out.mode, RepairMode::Seeded);

        let mut cold = AsceticSession::new(cfg_for(&g1), &g1);
        let cold_report = cold.run(&prog);
        assert_eq!(out.report.output, cold_report.output);
        let repaired_edges: u64 = out.report.per_iter.iter().map(|i| i.active_edges).sum();
        let cold_edges: u64 = cold_report.per_iter.iter().map(|i| i.active_edges).sum();
        assert!(
            repaired_edges < cold_edges / 2,
            "repair touched {repaired_edges} edges vs {cold_edges} cold"
        );
    }
}
