//! Data-map generation (paper Figure 4, step ➊).
//!
//! Each iteration starts by splitting the active set against static-region
//! residency:
//!
//! ```text
//! StaticMap    = ActiveBitmap AND StaticBitmap
//! OndemandMap  = ActiveBitmap XOR StaticMap      (≡ AND-NOT StaticBitmap)
//! ```
//!
//! from which the `StaticNodes` and `OndemandNodes` arrays are produced,
//! along with the edge/byte volumes the partition-ratio check (Eq (3)) and
//! the cost models need.

use ascetic_graph::{Csr, VertexId};
use ascetic_par::Bitmap;

/// The per-iteration data maps and their measured volumes.
#[derive(Clone, Debug)]
pub struct DataMaps {
    /// Active vertices served by the static region.
    pub static_nodes: Vec<VertexId>,
    /// Active vertices needing on-demand delivery.
    pub ondemand_nodes: Vec<VertexId>,
    /// Σ out-degree of `static_nodes`.
    pub static_edges: u64,
    /// Σ out-degree of `ondemand_nodes`.
    pub ondemand_edges: u64,
}

impl DataMaps {
    /// Build the maps for one iteration.
    ///
    /// `active` and `static_bitmap` are vertex bitmaps of equal length
    /// (`static_bitmap` true ⇔ all of the vertex's edges are resident in
    /// the static region).
    pub fn generate(g: &Csr, active: &Bitmap, static_bitmap: &Bitmap) -> DataMaps {
        let static_map = active.and(static_bitmap);
        let ondemand_map = active.and_not(static_bitmap);
        let static_nodes = static_map.to_indices();
        let ondemand_nodes = ondemand_map.to_indices();
        let static_edges = static_nodes.iter().map(|&v| g.degree(v)).sum();
        let ondemand_edges = ondemand_nodes.iter().map(|&v| g.degree(v)).sum();
        DataMaps {
            static_nodes,
            ondemand_nodes,
            static_edges,
            ondemand_edges,
        }
    }

    /// Total active vertices.
    pub fn active_vertices(&self) -> u64 {
        (self.static_nodes.len() + self.ondemand_nodes.len()) as u64
    }

    /// Total active edges.
    pub fn active_edges(&self) -> u64 {
        self.static_edges + self.ondemand_edges
    }

    /// Bytes the on-demand region must receive (`V_ondemand` in Eq (3)).
    pub fn ondemand_bytes(&self, bytes_per_edge: u64) -> u64 {
        self.ondemand_edges * bytes_per_edge
    }

    /// Bytes of static-region data touched (`V_static` in Eq (3)).
    pub fn static_bytes(&self, bytes_per_edge: u64) -> u64 {
        self.static_edges * bytes_per_edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_graph::GraphBuilder;

    /// degrees: v0=2, v1=1, v2=3, v3=0
    fn graph() -> Csr {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 0);
        b.add_edge(2, 0);
        b.add_edge(2, 1);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn splits_active_set_by_residency() {
        let g = graph();
        let mut active = Bitmap::new(4);
        active.set(0);
        active.set(2);
        active.set(3);
        let mut stat = Bitmap::new(4);
        stat.set(0);
        stat.set(1); // resident but inactive
        let m = DataMaps::generate(&g, &active, &stat);
        assert_eq!(m.static_nodes, vec![0]);
        assert_eq!(m.ondemand_nodes, vec![2, 3]);
        assert_eq!(m.static_edges, 2);
        assert_eq!(m.ondemand_edges, 3);
        assert_eq!(m.active_vertices(), 3);
        assert_eq!(m.active_edges(), 5);
        assert_eq!(m.ondemand_bytes(4), 12);
        assert_eq!(m.static_bytes(8), 16);
    }

    #[test]
    fn empty_active_set() {
        let g = graph();
        let m = DataMaps::generate(&g, &Bitmap::new(4), &Bitmap::ones(4));
        assert!(m.static_nodes.is_empty());
        assert!(m.ondemand_nodes.is_empty());
        assert_eq!(m.active_edges(), 0);
    }

    #[test]
    fn all_static_when_everything_resident() {
        let g = graph();
        let m = DataMaps::generate(&g, &Bitmap::ones(4), &Bitmap::ones(4));
        assert_eq!(m.static_nodes.len(), 4);
        assert!(m.ondemand_nodes.is_empty());
        assert_eq!(m.static_edges, g.num_edges());
    }

    #[test]
    fn all_ondemand_when_nothing_resident() {
        let g = graph();
        let m = DataMaps::generate(&g, &Bitmap::ones(4), &Bitmap::new(4));
        assert!(m.static_nodes.is_empty());
        assert_eq!(m.ondemand_edges, g.num_edges());
    }
}
