//! The Ascetic Manager: per-iteration orchestration (paper Figures 3–6).
//!
//! Iteration structure (overlap enabled, the default):
//!
//! ```text
//! GPU compute :  [GenDataMap][ Static Region compute ][ OD compute b0 ][ b1 ]...
//! GPU copy    :                 [ H2D b0 ][ H2D b1 ]...        [refresh swaps]
//! CPU         :                 [ gather b0 ][ gather b1 ]...
//! ```
//!
//! * `GenDataMap` splits the frontier against the `StaticBitmap`
//!   ([`crate::maps::DataMaps`]), optionally re-partitioning per Eq (3) first.
//! * Static-region compute runs on the COMPUTE engine while the On-demand
//!   Engine gathers and the COPY engine ships batches (Figure 5's
//!   "Overlapping savings"); with `overlap = false` every phase chains
//!   after the previous one (the Figure 8 ablation).
//! * On-demand batches cycle through the available region buffers; a batch
//!   can transfer while the previous one computes.
//! * While the GPU chews on-demand batches, the replacement server swaps
//!   stale static chunks for hot ones within that window's PCIe budget
//!   (Figure 6).
//!
//! All kernel *work* really executes on host threads against device-arena
//! data; all *times* come from the virtual clock, so reports are exact and
//! reproducible.

use ascetic_algos::{AlgoOutput, VertexProgram};
use ascetic_graph::Csr;
use ascetic_sim::{Engine, Gpu};

use crate::config::AsceticConfig;
use crate::report::{utilization_from_trace, Breakdown, IterReport, RunReport};
use crate::session::AsceticSession;
use crate::system::{OutOfCoreSystem, PrepareError, Prepared};
use ascetic_graph::chunks::ChunkGeometry;

/// The Ascetic out-of-core system.
///
/// ```
/// use ascetic_core::{AsceticConfig, AsceticSystem, OutOfCoreSystem};
/// use ascetic_algos::Bfs;
/// use ascetic_graph::generators::uniform_graph;
/// use ascetic_sim::DeviceConfig;
///
/// let g = uniform_graph(2_000, 16_000, false, 7);
/// // a device holding ~40% of the edge data (plus vertex arrays)
/// let dev = DeviceConfig::p100(2_000 * 24 + g.edge_bytes() * 2 / 5);
/// let sys = AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(1024));
/// let report = sys.run(&g, &Bfs::new(0));
/// assert!(report.iterations > 0);
/// assert!(report.prestore_bytes > 0); // static region was pre-filled
/// ```
pub struct AsceticSystem {
    /// Configuration (device, K, policies).
    pub cfg: AsceticConfig,
}

impl AsceticSystem {
    /// An Ascetic instance with the given configuration.
    pub fn new(cfg: AsceticConfig) -> Self {
        AsceticSystem { cfg }
    }
}

impl OutOfCoreSystem for AsceticSystem {
    fn name(&self) -> &'static str {
        "Ascetic"
    }

    fn prepare(&self, g: &Csr) -> Result<Prepared, PrepareError> {
        let prepared = Prepared::for_device(g, self.cfg.device.mem_bytes)?;
        self.cfg.validate_for(g)?;
        Ok(prepared.with_geometry(ChunkGeometry::with_chunk_bytes(g, self.cfg.chunk_bytes)))
    }

    fn run<P: VertexProgram>(&self, g: &Csr, prog: &P) -> RunReport {
        // One-shot = a single-run session (see `crate::session` for the
        // multi-run amortization API).
        AsceticSession::new(self.cfg, g).run(prog)
    }
}

/// Assemble a [`RunReport`] from the final device state (shared with the
/// baselines crate).
///
/// `iter_windows` are the per-iteration `(start_ns, end_ns)` windows on
/// the virtual clock; when tracing was enabled they drive the
/// [`RunReport::utilization`] timeline (pass an empty slice when the
/// caller did not record them).
#[allow(clippy::too_many_arguments)]
pub fn finish_report(
    system: &'static str,
    algorithm: &'static str,
    iterations: u32,
    gpu: &mut Gpu,
    prestore_bytes: u64,
    prestore_ns: u64,
    refresh_bytes: u64,
    breakdown: Breakdown,
    per_iter: Vec<IterReport>,
    iter_windows: Vec<(u64, u64)>,
    output: AlgoOutput,
) -> RunReport {
    let peak = per_iter.iter().map(|i| i.payload_bytes).max().unwrap_or(0);
    let avg = if per_iter.is_empty() {
        0
    } else {
        per_iter.iter().map(|i| i.payload_bytes).sum::<u64>() / per_iter.len() as u64
    };
    // The timeline's FIFO discipline guarantees every span was closed.
    let span_trace = gpu
        .timeline
        .take_tracer()
        .map(|t| t.finish().expect("timeline spans are complete"));
    let utilization = span_trace
        .as_ref()
        .map(|t| utilization_from_trace(t, &iter_windows))
        .unwrap_or_default();
    let events = gpu.obs.take_events();
    let events_dropped = events.as_ref().map_or(0, |e| e.dropped());
    let first_drop_at = events.as_ref().and_then(|e| e.first_drop_at());
    let mut report = RunReport {
        system,
        algorithm,
        iterations,
        sim_time_ns: gpu.elapsed().0,
        xfer: gpu.xfer,
        prestore_bytes,
        // Wire defaults to raw; the session overwrites these (and re-syncs)
        // when the compressed transfer path shipped encoded payloads.
        prestore_wire_bytes: prestore_bytes,
        prestore_ns,
        refresh_bytes,
        refresh_wire_bytes: refresh_bytes,
        // Prefetch counters default to zero; the session overwrites them
        // (and re-syncs) when the prefetch pipeline ran.
        prefetch_bytes: 0,
        prefetch_ops: 0,
        prefetch_hits: 0,
        prefetch_wasted_bytes: 0,
        kernels: gpu.kernels,
        breakdown,
        gpu_idle_ns: gpu.timeline.idle_ns(Engine::Compute),
        repartitions: 0,
        trace: gpu.timeline.take_trace(),
        span_trace,
        utilization,
        events_dropped,
        first_drop_at,
        metrics: gpu.obs.registry.snapshot(),
        events,
        peak_iteration_payload_bytes: peak,
        avg_iteration_payload_bytes: avg,
        output,
        per_iter,
    };
    report.sync_metrics();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FillPolicy, ReplacementPolicy};
    use ascetic_algos::inmemory::run_in_memory;
    use ascetic_algos::{Bfs, Cc, PageRank, Sssp};
    use ascetic_graph::datasets::weighted_variant;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};
    use ascetic_sim::DeviceConfig;

    /// A device sized so the test graph heavily oversubscribes it.
    fn small_device_for(g: &Csr) -> DeviceConfig {
        // vertex arrays + ~40% of the edge bytes
        let vertex = g.num_vertices() as u64 * 24;
        DeviceConfig::p100(vertex + g.edge_bytes() * 2 / 5)
    }

    fn cfg_for(g: &Csr) -> AsceticConfig {
        // test graphs are ~100 KB, so scale the chunk down with them
        AsceticConfig::new(small_device_for(g))
            .with_k(0.10)
            .with_chunk_bytes(1024)
    }

    #[test]
    fn bfs_matches_oracle_under_oversubscription() {
        let g = rmat_graph(&RmatConfig::new(11, 30_000, 5).undirected(true));
        let sys = AsceticSystem::new(cfg_for(&g));
        let rep = sys.run(&g, &Bfs::new(0));
        let oracle = run_in_memory(&g, &Bfs::new(0));
        assert_eq!(rep.output, oracle.output);
        assert_eq!(rep.iterations, oracle.iterations);
    }

    #[test]
    fn cc_matches_oracle() {
        let g = uniform_graph(3_000, 20_000, true, 2);
        let sys = AsceticSystem::new(cfg_for(&g));
        let rep = sys.run(&g, &Cc::new());
        assert_eq!(rep.output, run_in_memory(&g, &Cc::new()).output);
    }

    #[test]
    fn sssp_matches_oracle() {
        let g = weighted_variant(&uniform_graph(2_000, 14_000, false, 3));
        let sys = AsceticSystem::new(cfg_for(&g));
        let rep = sys.run(&g, &Sssp::new(0));
        assert_eq!(rep.output, run_in_memory(&g, &Sssp::new(0)).output);
    }

    #[test]
    fn pr_matches_oracle_exactly() {
        // fixed-point PR is bit-deterministic: out-of-core == in-memory
        let g = uniform_graph(2_000, 16_000, false, 4);
        let sys = AsceticSystem::new(cfg_for(&g));
        let rep = sys.run(&g, &PageRank::new());
        assert_eq!(rep.output, run_in_memory(&g, &PageRank::new()).output);
    }

    #[test]
    fn static_region_serves_most_bfs_edges() {
        let g = rmat_graph(&RmatConfig::new(11, 30_000, 7).undirected(true));
        let sys = AsceticSystem::new(cfg_for(&g));
        let rep = sys.run(&g, &Bfs::new(0));
        let static_edges: u64 = rep.per_iter.iter().map(|i| i.static_edges).sum();
        let total: u64 = rep.per_iter.iter().map(|i| i.active_edges).sum();
        assert!(total > 0);
        assert!(
            static_edges * 100 / total > 20,
            "static region should serve a solid share: {static_edges}/{total}"
        );
        // steady transfers must undercut shipping every active edge
        assert!(rep.xfer.h2d_bytes < total * g.bytes_per_edge() as u64);
    }

    #[test]
    fn overlap_speeds_up_the_run() {
        let g = uniform_graph(4_000, 40_000, false, 6);
        let on = AsceticSystem::new(cfg_for(&g).with_overlap(true)).run(&g, &PageRank::new());
        let off = AsceticSystem::new(cfg_for(&g).with_overlap(false)).run(&g, &PageRank::new());
        assert_eq!(on.output, off.output, "overlap must not change results");
        assert!(
            on.sim_time_ns < off.sim_time_ns,
            "overlap on: {} ns, off: {} ns",
            on.sim_time_ns,
            off.sim_time_ns
        );
    }

    #[test]
    fn fill_policies_do_not_change_results() {
        let g = uniform_graph(2_000, 15_000, true, 8);
        let base = cfg_for(&g);
        let front = AsceticSystem::new(base.with_fill(FillPolicy::Front)).run(&g, &Cc::new());
        let rear = AsceticSystem::new(base.with_fill(FillPolicy::Rear)).run(&g, &Cc::new());
        let rand =
            AsceticSystem::new(base.with_fill(FillPolicy::Random { seed: 3 })).run(&g, &Cc::new());
        assert_eq!(front.output, rear.output);
        assert_eq!(front.output, rand.output);
    }

    #[test]
    fn replacement_policies_preserve_results() {
        let g = uniform_graph(2_000, 15_000, false, 9);
        let base = cfg_for(&g);
        let off = AsceticSystem::new(base.with_replacement(ReplacementPolicy::Disabled))
            .run(&g, &PageRank::new());
        let last = AsceticSystem::new(base.with_replacement(ReplacementPolicy::LastIteration))
            .run(&g, &PageRank::new());
        let cum = AsceticSystem::new(
            base.with_replacement(ReplacementPolicy::Cumulative { stale_threshold: 2 }),
        )
        .run(&g, &PageRank::new());
        assert_eq!(off.output, last.output);
        assert_eq!(off.output, cum.output);
        assert_eq!(off.refresh_bytes, 0);
    }

    #[test]
    fn lazy_fill_ships_no_prestore_and_warms_up() {
        use crate::config::FillPolicy;
        let g = uniform_graph(2_500, 20_000, false, 21);
        let cfg = cfg_for(&g).with_fill(FillPolicy::Lazy);
        let rep = AsceticSystem::new(cfg).run(&g, &PageRank::new());
        assert_eq!(rep.output, run_in_memory(&g, &PageRank::new()).output);
        assert_eq!(rep.prestore_bytes, 0, "lazy fill has no prestore");
        // warming must eventually serve edges from the static region
        let static_edges: u64 = rep.per_iter.iter().map(|i| i.static_edges).sum();
        assert!(
            static_edges > 0,
            "adopted chunks must serve later iterations"
        );
        // and total traffic must stay at or below the eager variant's
        let eager = AsceticSystem::new(cfg_for(&g)).run(&g, &PageRank::new());
        assert_eq!(rep.output, eager.output);
        assert!(
            rep.total_bytes_with_prestore() <= eager.total_bytes_with_prestore() + g.edge_bytes(),
            "lazy {} vs eager {}",
            rep.total_bytes_with_prestore(),
            eager.total_bytes_with_prestore()
        );
    }

    #[test]
    fn prestore_accounted_separately() {
        let g = uniform_graph(2_000, 15_000, false, 10);
        let rep = AsceticSystem::new(cfg_for(&g)).run(&g, &Bfs::new(0));
        assert!(rep.prestore_bytes > 0, "static region must be prefilled");
        assert!(rep.total_bytes_with_prestore() >= rep.steady_bytes() + rep.prestore_bytes);
    }

    #[test]
    fn deterministic_runs() {
        let g = uniform_graph(1_500, 12_000, false, 11);
        let a = AsceticSystem::new(cfg_for(&g)).run(&g, &PageRank::new());
        let b = AsceticSystem::new(cfg_for(&g)).run(&g, &PageRank::new());
        assert_eq!(a.sim_time_ns, b.sim_time_ns);
        assert_eq!(a.xfer, b.xfer);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn whole_dataset_fits_means_no_ondemand_traffic() {
        let g = uniform_graph(500, 3_000, false, 12);
        // device holds everything comfortably
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 4);
        let rep = AsceticSystem::new(AsceticConfig::new(dev)).run(&g, &Bfs::new(0));
        assert_eq!(rep.output, run_in_memory(&g, &Bfs::new(0)).output);
        assert_eq!(rep.xfer.h2d_bytes, 0, "everything is static");
        assert_eq!(rep.prestore_bytes, g.edge_bytes());
    }

    #[test]
    fn forced_tiny_static_ratio_still_correct() {
        let g = uniform_graph(1_000, 8_000, false, 13);
        let rep = AsceticSystem::new(cfg_for(&g).with_static_ratio(0.0)).run(&g, &Bfs::new(0));
        assert_eq!(rep.output, run_in_memory(&g, &Bfs::new(0)).output);
        assert_eq!(rep.prestore_bytes, 0);
        let static_edges: u64 = rep.per_iter.iter().map(|i| i.static_edges).sum();
        assert_eq!(static_edges, 0, "R=0 must serve everything on demand");
    }
}
