//! Ascetic configuration.

use ascetic_algos::{AlgoError, Capabilities};
use ascetic_graph::Csr;
use ascetic_sim::DeviceConfig;

use crate::prefetch::PrefetchMode;

/// Smallest allowed edge-chunk size: the simulated device's page
/// granularity. Chunks below this would make chunk bookkeeping dominate
/// the data they manage (the CLI clamps auto-scaled chunks to this floor).
pub const MIN_CHUNK_BYTES: usize = 64;

/// Why a configuration failed [`AsceticConfig::build`] /
/// [`AsceticConfig::validate_for`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// `od_buffers == 0`: the on-demand region needs at least one buffer.
    ZeroOdBuffers,
    /// A static-ratio override outside `[0, 1]`.
    StaticRatioOutOfRange(f64),
    /// K (the Eq (2) active-edge fraction) outside `[0, 1)`.
    KOutOfRange(f64),
    /// Chunk size below the device's page granularity.
    ChunkBelowPageGranularity {
        /// The rejected chunk size.
        chunk: usize,
        /// The [`MIN_CHUNK_BYTES`] floor.
        min: usize,
    },
    /// Weighted graphs cannot use [`CompressionMode::Always`]: weights
    /// always ship raw, so forcing encoding would inflate every transfer.
    CompressedWeightedGraph,
    /// The configuration asks for something the program's
    /// [`Capabilities`] rule out (forced pull on a push-only program,
    /// graph-weighting mismatch). Raised by
    /// [`AsceticConfig::validate_algo`] at build/admission time — engines
    /// never check this mid-run.
    Algo(AlgoError),
}

impl From<AlgoError> for ConfigError {
    fn from(e: AlgoError) -> Self {
        ConfigError::Algo(e)
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroOdBuffers => {
                write!(
                    f,
                    "od_buffers must be >= 1 (the on-demand region needs at least one buffer)"
                )
            }
            ConfigError::StaticRatioOutOfRange(r) => {
                write!(f, "static ratio {r} is outside [0, 1]")
            }
            ConfigError::KOutOfRange(k) => write!(f, "K = {k} is outside [0, 1)"),
            ConfigError::ChunkBelowPageGranularity { chunk, min } => {
                write!(
                    f,
                    "chunk size {chunk} B is below the {min} B page granularity"
                )
            }
            ConfigError::CompressedWeightedGraph => {
                write!(
                    f,
                    "weighted graphs cannot run with compression=always (weights ship raw)"
                )
            }
            ConfigError::Algo(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How the static region is filled before iteration 0 (paper §5 studies
/// front / rear / random and finds < 5 % spread).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillPolicy {
    /// Chunks from the front of the edge array (default).
    Front,
    /// Chunks from the rear of the edge array.
    Rear,
    /// Uniformly random chunks (deterministic given `seed`).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// No prestore: the region starts empty and *adopts* chunks that show
    /// on-demand activity, loading them into free slots during the
    /// on-demand compute window (the replacement server's transfer budget).
    /// Only chunks the run actually demands are ever loaded — a win when
    /// the touched working set is a small fraction of the dataset (short
    /// traversals, selective queries). When most chunks end up touched,
    /// the eager bulk prestore is cheaper: warming is rationed by the
    /// overlap window, so early iterations keep re-shipping data the
    /// region has not adopted yet (measured in `disc_fill_policy`).
    Lazy,
}

/// Whether H2D edge payloads are delta–varint encoded before crossing the
/// link (on-demand batches, prestore fills, refreshes and lazy loads).
/// Weighted payloads always ship raw — weights would ride along
/// uncompressed and dilute the ratio below usefulness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompressionMode {
    /// Ship raw 4-byte targets (the paper's systems all do).
    #[default]
    Off,
    /// Encode every eligible transfer, even where encoding loses time.
    Always,
    /// Per-transfer crossover: encode only when
    /// `wire_bytes/link_bw + decompress_cost < raw_bytes/link_bw`,
    /// estimated from per-chunk ratios cached in the hotness table.
    Adaptive,
}

/// Which direction the session traverses edges in each iteration.
///
/// Push scatters over the frontier's out-edges (CSR rows, the paper's
/// model); pull gathers over candidate targets' in-edges (CSC rows of the
/// transposed mirror). `Adaptive` compares the two directions' estimated
/// on-demand wire bytes every iteration and picks the cheaper one, with
/// hysteresis so the choice does not flap on near-ties.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DirectionMode {
    /// Always push (the paper's systems all do).
    #[default]
    Push,
    /// Force pull every iteration. Rejected for programs without a pull
    /// implementation.
    Pull,
    /// Per-iteration Beamer-style density switch between push and pull.
    /// Programs without a pull implementation silently run push.
    Adaptive,
}

impl DirectionMode {
    /// Parse a CLI value (`push` / `pull` / `adaptive`).
    pub fn parse(s: &str) -> Option<DirectionMode> {
        match s {
            "push" => Some(DirectionMode::Push),
            "pull" => Some(DirectionMode::Pull),
            "adaptive" => Some(DirectionMode::Adaptive),
            _ => None,
        }
    }

    /// The CLI name of the mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            DirectionMode::Push => "push",
            DirectionMode::Pull => "pull",
            DirectionMode::Adaptive => "adaptive",
        }
    }
}

impl std::fmt::Display for DirectionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Static-region chunk replacement policy (paper §3.4, Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Never replace (initial fill persists for the whole run).
    Disabled,
    /// A chunk is stale once its cumulative access count exceeds the
    /// threshold — the paper's suggestion for one-shot traversals like BFS
    /// ("the counter in BFS can record the number of accesses in all of the
    /// past iterations to determine if the chunk is stale").
    Cumulative {
        /// Accesses after which a resident chunk is considered consumed.
        stale_threshold: u32,
    },
    /// A chunk is stale if it was not accessed in the previous iteration —
    /// the paper's suggestion for PageRank ("determines the status of chunk
    /// by the number of accesses in the last iteration").
    LastIteration,
}

/// Full Ascetic configuration.
#[derive(Clone, Copy, Debug)]
pub struct AsceticConfig {
    /// Simulated device (capacity + cost models).
    pub device: DeviceConfig,
    /// Expected per-iteration active-edge fraction K (Eq (2) input).
    /// Paper default: 0.10.
    pub k: f64,
    /// Override the Eq (2) static share with a fixed ratio in `[0, 1]`
    /// (used by the Figure 10 sweep).
    pub static_ratio_override: Option<f64>,
    /// Overlap static-region compute with on-demand gather/transfer
    /// (Figure 5). Disabled for the Figure 8 ablation.
    pub overlap: bool,
    /// Initial fill policy.
    pub fill: FillPolicy,
    /// Static-region replacement policy.
    pub replacement: ReplacementPolicy,
    /// Enable the Eq (3) adaptive re-partition check.
    pub adaptive: bool,
    /// Edge-chunk size in bytes (paper: 16 KiB).
    pub chunk_bytes: usize,
    /// Record every engine span for Chrome-trace export
    /// ([`ascetic_sim::chrome_trace_json`] on the report's `trace`).
    pub tracing: bool,
    /// Record a structured [`ascetic_obs::EventLog`] (iteration boundaries,
    /// DMAs, kernels, repartitions, …) on the report's `events`. Off by
    /// default; enabling costs one `Vec` push per event.
    pub events: bool,
    /// Number of buffers the on-demand region is split into (≥ 1). With
    /// more than one, batch `i+1`'s H2D transfer can run while batch `i`
    /// computes — classic double buffering. The paper's design has a
    /// single region (its overlap is static-compute vs gather/transfer),
    /// so 1 is the default; higher values are an extension studied in
    /// `ablation_double_buffer`.
    pub od_buffers: usize,
    /// Compressed transfer path mode (default [`CompressionMode::Off`]).
    pub compression: CompressionMode,
    /// Cross-iteration prefetch policy (default [`PrefetchMode::Off`]).
    pub prefetch: PrefetchMode,
    /// Traversal direction policy (default [`DirectionMode::Push`]).
    pub direction: DirectionMode,
}

impl AsceticConfig {
    /// Paper-default configuration on the given device.
    pub fn new(device: DeviceConfig) -> Self {
        AsceticConfig {
            device,
            k: 0.10,
            static_ratio_override: None,
            overlap: true,
            fill: FillPolicy::Front,
            replacement: ReplacementPolicy::LastIteration,
            adaptive: true,
            chunk_bytes: 16 * 1024,
            tracing: false,
            events: false,
            od_buffers: 1,
            compression: CompressionMode::Off,
            prefetch: PrefetchMode::Off,
            direction: DirectionMode::Push,
        }
    }

    /// Builder: set K. Validated by [`AsceticConfig::build`].
    pub fn with_k(mut self, k: f64) -> Self {
        self.k = k;
        self
    }

    /// Builder: force a fixed static share. Validated by
    /// [`AsceticConfig::build`].
    pub fn with_static_ratio(mut self, r: f64) -> Self {
        self.static_ratio_override = Some(r);
        self
    }

    /// Builder: toggle overlap.
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Builder: set the fill policy.
    pub fn with_fill(mut self, fill: FillPolicy) -> Self {
        self.fill = fill;
        self
    }

    /// Builder: set the replacement policy.
    pub fn with_replacement(mut self, r: ReplacementPolicy) -> Self {
        self.replacement = r;
        self
    }

    /// Builder: toggle Eq (3) adaptivity.
    pub fn with_adaptive(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Builder: toggle span tracing.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Builder: toggle structured event logging.
    pub fn with_events(mut self, on: bool) -> Self {
        self.events = on;
        self
    }

    /// Builder: split the on-demand region into `n` buffers (double
    /// buffering and beyond). Validated by [`AsceticConfig::build`].
    pub fn with_od_buffers(mut self, n: usize) -> Self {
        self.od_buffers = n;
        self
    }

    /// Builder: set the compressed transfer path mode.
    pub fn with_compression(mut self, mode: CompressionMode) -> Self {
        self.compression = mode;
        self
    }

    /// Builder: set the cross-iteration prefetch policy.
    pub fn with_prefetch(mut self, mode: PrefetchMode) -> Self {
        self.prefetch = mode;
        self
    }

    /// Builder: set the traversal direction policy.
    pub fn with_direction(mut self, mode: DirectionMode) -> Self {
        self.direction = mode;
        self
    }

    /// Builder: override the chunk size (tests and heavily-scaled runs use
    /// chunks smaller than the paper's 16 KiB so that chunk counts stay
    /// proportionate). Validated by [`AsceticConfig::build`].
    pub fn with_chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes;
        self
    }

    /// Validate the graph-independent knobs, returning the config for
    /// chaining. The `with_*` setters store values verbatim; call this (or
    /// let `OutOfCoreSystem::prepare` call [`AsceticConfig::validate_for`])
    /// before running to reject invalid combinations with a
    /// [`ConfigError`] instead of a panic deep in the session.
    pub fn build(self) -> Result<AsceticConfig, ConfigError> {
        if self.od_buffers == 0 {
            return Err(ConfigError::ZeroOdBuffers);
        }
        if !(0.0..1.0).contains(&self.k) {
            return Err(ConfigError::KOutOfRange(self.k));
        }
        if let Some(r) = self.static_ratio_override {
            if !(0.0..=1.0).contains(&r) {
                return Err(ConfigError::StaticRatioOutOfRange(r));
            }
        }
        if self.chunk_bytes < MIN_CHUNK_BYTES {
            return Err(ConfigError::ChunkBelowPageGranularity {
                chunk: self.chunk_bytes,
                min: MIN_CHUNK_BYTES,
            });
        }
        Ok(self)
    }

    /// [`AsceticConfig::build`] plus the graph-dependent checks: weighted
    /// payloads always ship raw, so `CompressionMode::Always` on a
    /// weighted graph is a contradiction rather than a silent no-op.
    pub fn validate_for(&self, g: &Csr) -> Result<(), ConfigError> {
        (*self).build()?;
        if g.is_weighted() && self.compression == CompressionMode::Always {
            return Err(ConfigError::CompressedWeightedGraph);
        }
        Ok(())
    }

    /// Check this configuration against a program's capability
    /// descriptor: forcing `--direction pull` onto a push-only program is
    /// rejected *here*, at build/admission time, with a typed
    /// [`AlgoError`] — not by a panic mid-run. (`Adaptive` is a
    /// preference, not a demand: push-only programs simply stay push.)
    /// `name` is the program's display name, used in the error message.
    pub fn validate_algo(&self, caps: Capabilities, name: &'static str) -> Result<(), ConfigError> {
        if self.direction == DirectionMode::Pull && !caps.pull {
            return Err(AlgoError::PullUnsupported { algo: name }.into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 30));
        assert_eq!(c.k, 0.10);
        assert!(c.overlap);
        assert_eq!(c.chunk_bytes, 16 * 1024);
        assert_eq!(c.fill, FillPolicy::Front);
        assert!(c.static_ratio_override.is_none());
        assert_eq!(c.od_buffers, 1);
        assert!(!c.events, "event logging is opt-in");
        assert_eq!(c.compression, CompressionMode::Off);
    }

    #[test]
    fn compression_builder() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 20))
            .with_compression(CompressionMode::Adaptive);
        assert_eq!(c.compression, CompressionMode::Adaptive);
    }

    #[test]
    fn events_builder() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 20)).with_events(true);
        assert!(c.events);
    }

    #[test]
    fn od_buffer_builder() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 20)).with_od_buffers(2);
        assert_eq!(c.od_buffers, 2);
    }

    #[test]
    fn rejects_zero_buffers() {
        let err = AsceticConfig::new(DeviceConfig::p100(1 << 20))
            .with_od_buffers(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroOdBuffers);
        assert!(err.to_string().contains("at least one"));
    }

    #[test]
    fn builders_compose() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 20))
            .with_k(0.25)
            .with_static_ratio(0.5)
            .with_overlap(false)
            .with_fill(FillPolicy::Random { seed: 9 })
            .with_replacement(ReplacementPolicy::Cumulative { stale_threshold: 3 })
            .with_adaptive(false);
        assert_eq!(c.k, 0.25);
        assert_eq!(c.static_ratio_override, Some(0.5));
        assert!(!c.overlap);
        assert_eq!(c.fill, FillPolicy::Random { seed: 9 });
        assert!(!c.adaptive);
    }

    #[test]
    fn rejects_ratio_above_one() {
        let err = AsceticConfig::new(DeviceConfig::p100(1 << 20))
            .with_static_ratio(1.5)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::StaticRatioOutOfRange(1.5));
        assert!(err.to_string().contains("outside [0, 1]"));
    }

    #[test]
    fn rejects_k_out_of_range_and_tiny_chunks() {
        let base = AsceticConfig::new(DeviceConfig::p100(1 << 20));
        assert_eq!(
            base.with_k(1.0).build().unwrap_err(),
            ConfigError::KOutOfRange(1.0)
        );
        assert_eq!(
            base.with_chunk_bytes(8).build().unwrap_err(),
            ConfigError::ChunkBelowPageGranularity {
                chunk: 8,
                min: MIN_CHUNK_BYTES
            }
        );
        // the floor itself is fine
        assert!(base.with_chunk_bytes(MIN_CHUNK_BYTES).build().is_ok());
    }

    #[test]
    fn build_accepts_defaults_and_validate_for_rejects_weighted_always() {
        use ascetic_graph::datasets::weighted_variant;
        use ascetic_graph::generators::uniform_graph;
        let base = AsceticConfig::new(DeviceConfig::p100(1 << 20));
        assert!(base.build().is_ok());
        let unweighted = uniform_graph(100, 500, false, 1);
        let weighted = weighted_variant(&unweighted);
        let always = base.with_compression(CompressionMode::Always);
        assert!(always.validate_for(&unweighted).is_ok());
        assert_eq!(
            always.validate_for(&weighted).unwrap_err(),
            ConfigError::CompressedWeightedGraph
        );
        // Adaptive quietly falls back to raw on weighted graphs: allowed.
        assert!(base
            .with_compression(CompressionMode::Adaptive)
            .validate_for(&weighted)
            .is_ok());
    }

    #[test]
    fn direction_builder_and_parse() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 20));
        assert_eq!(c.direction, DirectionMode::Push, "push is the default");
        let c = c.with_direction(DirectionMode::Adaptive);
        assert_eq!(c.direction, DirectionMode::Adaptive);
        for m in [
            DirectionMode::Push,
            DirectionMode::Pull,
            DirectionMode::Adaptive,
        ] {
            assert_eq!(DirectionMode::parse(m.as_str()), Some(m));
            assert_eq!(m.to_string(), m.as_str());
        }
        assert_eq!(DirectionMode::parse("sideways"), None);
    }

    #[test]
    fn prefetch_builder() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 20))
            .with_prefetch(PrefetchMode::NextFrontier);
        assert_eq!(c.prefetch, PrefetchMode::NextFrontier);
        let d = AsceticConfig::new(DeviceConfig::p100(1 << 20));
        assert_eq!(d.prefetch, PrefetchMode::Off, "prefetch is opt-in");
    }
}
