//! Ascetic configuration.

use ascetic_sim::DeviceConfig;

/// How the static region is filled before iteration 0 (paper §5 studies
/// front / rear / random and finds < 5 % spread).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillPolicy {
    /// Chunks from the front of the edge array (default).
    Front,
    /// Chunks from the rear of the edge array.
    Rear,
    /// Uniformly random chunks (deterministic given `seed`).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// No prestore: the region starts empty and *adopts* chunks that show
    /// on-demand activity, loading them into free slots during the
    /// on-demand compute window (the replacement server's transfer budget).
    /// Only chunks the run actually demands are ever loaded — a win when
    /// the touched working set is a small fraction of the dataset (short
    /// traversals, selective queries). When most chunks end up touched,
    /// the eager bulk prestore is cheaper: warming is rationed by the
    /// overlap window, so early iterations keep re-shipping data the
    /// region has not adopted yet (measured in `disc_fill_policy`).
    Lazy,
}

/// Whether H2D edge payloads are delta–varint encoded before crossing the
/// link (on-demand batches, prestore fills, refreshes and lazy loads).
/// Weighted payloads always ship raw — weights would ride along
/// uncompressed and dilute the ratio below usefulness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompressionMode {
    /// Ship raw 4-byte targets (the paper's systems all do).
    #[default]
    Off,
    /// Encode every eligible transfer, even where encoding loses time.
    Always,
    /// Per-transfer crossover: encode only when
    /// `wire_bytes/link_bw + decompress_cost < raw_bytes/link_bw`,
    /// estimated from per-chunk ratios cached in the hotness table.
    Adaptive,
}

/// Static-region chunk replacement policy (paper §3.4, Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Never replace (initial fill persists for the whole run).
    Disabled,
    /// A chunk is stale once its cumulative access count exceeds the
    /// threshold — the paper's suggestion for one-shot traversals like BFS
    /// ("the counter in BFS can record the number of accesses in all of the
    /// past iterations to determine if the chunk is stale").
    Cumulative {
        /// Accesses after which a resident chunk is considered consumed.
        stale_threshold: u32,
    },
    /// A chunk is stale if it was not accessed in the previous iteration —
    /// the paper's suggestion for PageRank ("determines the status of chunk
    /// by the number of accesses in the last iteration").
    LastIteration,
}

/// Full Ascetic configuration.
#[derive(Clone, Copy, Debug)]
pub struct AsceticConfig {
    /// Simulated device (capacity + cost models).
    pub device: DeviceConfig,
    /// Expected per-iteration active-edge fraction K (Eq (2) input).
    /// Paper default: 0.10.
    pub k: f64,
    /// Override the Eq (2) static share with a fixed ratio in `[0, 1]`
    /// (used by the Figure 10 sweep).
    pub static_ratio_override: Option<f64>,
    /// Overlap static-region compute with on-demand gather/transfer
    /// (Figure 5). Disabled for the Figure 8 ablation.
    pub overlap: bool,
    /// Initial fill policy.
    pub fill: FillPolicy,
    /// Static-region replacement policy.
    pub replacement: ReplacementPolicy,
    /// Enable the Eq (3) adaptive re-partition check.
    pub adaptive: bool,
    /// Edge-chunk size in bytes (paper: 16 KiB).
    pub chunk_bytes: usize,
    /// Record every engine span for Chrome-trace export
    /// ([`ascetic_sim::chrome_trace_json`] on the report's `trace`).
    pub tracing: bool,
    /// Record a structured [`ascetic_obs::EventLog`] (iteration boundaries,
    /// DMAs, kernels, repartitions, …) on the report's `events`. Off by
    /// default; enabling costs one `Vec` push per event.
    pub events: bool,
    /// Number of buffers the on-demand region is split into (≥ 1). With
    /// more than one, batch `i+1`'s H2D transfer can run while batch `i`
    /// computes — classic double buffering. The paper's design has a
    /// single region (its overlap is static-compute vs gather/transfer),
    /// so 1 is the default; higher values are an extension studied in
    /// `ablation_double_buffer`.
    pub od_buffers: usize,
    /// Compressed transfer path mode (default [`CompressionMode::Off`]).
    pub compression: CompressionMode,
}

impl AsceticConfig {
    /// Paper-default configuration on the given device.
    pub fn new(device: DeviceConfig) -> Self {
        AsceticConfig {
            device,
            k: 0.10,
            static_ratio_override: None,
            overlap: true,
            fill: FillPolicy::Front,
            replacement: ReplacementPolicy::LastIteration,
            adaptive: true,
            chunk_bytes: 16 * 1024,
            tracing: false,
            events: false,
            od_buffers: 1,
            compression: CompressionMode::Off,
        }
    }

    /// Builder: set K.
    pub fn with_k(mut self, k: f64) -> Self {
        assert!((0.0..1.0).contains(&k), "K must be in [0, 1)");
        self.k = k;
        self
    }

    /// Builder: force a fixed static share.
    pub fn with_static_ratio(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r), "ratio must be in [0, 1]");
        self.static_ratio_override = Some(r);
        self
    }

    /// Builder: toggle overlap.
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Builder: set the fill policy.
    pub fn with_fill(mut self, fill: FillPolicy) -> Self {
        self.fill = fill;
        self
    }

    /// Builder: set the replacement policy.
    pub fn with_replacement(mut self, r: ReplacementPolicy) -> Self {
        self.replacement = r;
        self
    }

    /// Builder: toggle Eq (3) adaptivity.
    pub fn with_adaptive(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Builder: toggle span tracing.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Builder: toggle structured event logging.
    pub fn with_events(mut self, on: bool) -> Self {
        self.events = on;
        self
    }

    /// Builder: split the on-demand region into `n` buffers (double
    /// buffering and beyond).
    pub fn with_od_buffers(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one on-demand buffer");
        self.od_buffers = n;
        self
    }

    /// Builder: set the compressed transfer path mode.
    pub fn with_compression(mut self, mode: CompressionMode) -> Self {
        self.compression = mode;
        self
    }

    /// Builder: override the chunk size (must hold at least one edge; tests
    /// and heavily-scaled runs use chunks smaller than the paper's 16 KiB
    /// so that chunk counts stay proportionate).
    pub fn with_chunk_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes >= 8, "chunk must hold at least one weighted edge");
        self.chunk_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 30));
        assert_eq!(c.k, 0.10);
        assert!(c.overlap);
        assert_eq!(c.chunk_bytes, 16 * 1024);
        assert_eq!(c.fill, FillPolicy::Front);
        assert!(c.static_ratio_override.is_none());
        assert_eq!(c.od_buffers, 1);
        assert!(!c.events, "event logging is opt-in");
        assert_eq!(c.compression, CompressionMode::Off);
    }

    #[test]
    fn compression_builder() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 20))
            .with_compression(CompressionMode::Adaptive);
        assert_eq!(c.compression, CompressionMode::Adaptive);
    }

    #[test]
    fn events_builder() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 20)).with_events(true);
        assert!(c.events);
    }

    #[test]
    fn od_buffer_builder() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 20)).with_od_buffers(2);
        assert_eq!(c.od_buffers, 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_buffers() {
        AsceticConfig::new(DeviceConfig::p100(1 << 20)).with_od_buffers(0);
    }

    #[test]
    fn builders_compose() {
        let c = AsceticConfig::new(DeviceConfig::p100(1 << 20))
            .with_k(0.25)
            .with_static_ratio(0.5)
            .with_overlap(false)
            .with_fill(FillPolicy::Random { seed: 9 })
            .with_replacement(ReplacementPolicy::Cumulative { stale_threshold: 3 })
            .with_adaptive(false);
        assert_eq!(c.k, 0.25);
        assert_eq!(c.static_ratio_override, Some(0.5));
        assert!(!c.overlap);
        assert_eq!(c.fill, FillPolicy::Random { seed: 9 });
        assert!(!c.adaptive);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn rejects_ratio_above_one() {
        AsceticConfig::new(DeviceConfig::p100(1 << 20)).with_static_ratio(1.5);
    }
}
