//! GPU-memory partition-ratio math (paper §3.3, Equations (1)–(3)).
//!
//! Let `K` be the fraction of edges active per iteration, `M` the edge
//! budget of GPU memory, `D` the dataset size, `M_static` the static-region
//! size. To avoid fragmenting the on-demand data, Eq (1) requires
//!
//! ```text
//! (D − M_static) · K + M_static ≤ M                                   (1)
//! ```
//!
//! which, maximized for the static share `R = M_static / M`, gives
//!
//! ```text
//! R = (1 − K·D/M) / (1 − K)                                           (2)
//! ```
//!
//! At runtime, after the data map is generated, if the on-demand volume
//! `V_ondemand` overflows the on-demand region while the static region is
//! under-used (`V_static/M_static < 0.5 · V/D`), the static region shrinks
//! by `M_static · V/D` (Eq (3)) and the maps are regenerated.

/// Static-region share per Eq (2), clamped to `[0, 1]`.
///
/// * `k` — expected active-edge fraction (paper default 0.10),
/// * `dataset_bytes` — `D`,
/// * `mem_bytes` — `M` (edge budget after vertex arrays).
///
/// When the dataset fits entirely (`D ≤ M`) the share is capped so that
/// `M_static = D` (pinning more than the dataset is pointless).
pub fn static_share(k: f64, dataset_bytes: u64, mem_bytes: u64) -> f64 {
    assert!((0.0..1.0).contains(&k), "K must be in [0, 1)");
    assert!(mem_bytes > 0, "empty memory budget");
    let d = dataset_bytes as f64;
    let m = mem_bytes as f64;
    if d <= m {
        return (d / m).min(1.0);
    }
    let r = (1.0 - k * d / m) / (1.0 - k);
    r.clamp(0.0, 1.0)
}

/// Eq (1) feasibility check: does a static region of `m_static` bytes leave
/// enough on-demand room for `k · (D − M_static)` without fragmenting?
pub fn satisfies_eq1(k: f64, dataset_bytes: u64, mem_bytes: u64, m_static: u64) -> bool {
    let spill = (dataset_bytes.saturating_sub(m_static)) as f64 * k;
    spill + m_static as f64 <= mem_bytes as f64 + 0.5
}

/// Decision of the Eq (3) adaptive re-partitioning check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Repartition {
    /// Keep the current split.
    Keep,
    /// Shrink the static region by this many bytes (grow on-demand).
    ShrinkStaticBy(u64),
}

/// Eq (3): evaluate the re-partition rule for one iteration.
///
/// * `v_ondemand` — bytes the on-demand region must receive this iteration,
/// * `v_static` — bytes of static-region data accessed this iteration,
/// * `v_total` — all bytes accessed this iteration (`V`),
/// * `m_static` / `m_ondemand` — current region sizes,
/// * `dataset_bytes` — `D`.
pub fn repartition_check(
    v_ondemand: u64,
    v_static: u64,
    v_total: u64,
    m_static: u64,
    m_ondemand: u64,
    dataset_bytes: u64,
) -> Repartition {
    if m_static == 0 || dataset_bytes == 0 {
        return Repartition::Keep;
    }
    let overflow = v_ondemand > m_ondemand;
    // "Vstatic/Mstatic < 0.5 × V/D" — static region significantly
    // under-utilized relative to the overall touch rate.
    let static_util = v_static as f64 / m_static as f64;
    let touch_rate = v_total as f64 / dataset_bytes as f64;
    if overflow && static_util < 0.5 * touch_rate {
        // Shrink by Mstatic × V/D (Eq (3)), at least one byte, at most all.
        let shrink = ((m_static as f64 * touch_rate) as u64).clamp(1, m_static);
        Repartition::ShrinkStaticBy(shrink)
    } else {
        Repartition::Keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_configuration() {
        // K=10%, D twice the memory: R = (1 - 0.1*2) / 0.9 = 0.888...
        let r = static_share(0.10, 2_000, 1_000);
        assert!((r - 0.888_888).abs() < 1e-3, "r={r}");
        // the chosen split satisfies Eq (1)
        let m_static = (r * 1_000.0) as u64;
        assert!(satisfies_eq1(0.10, 2_000, 1_000, m_static));
        // but a slightly bigger static region violates it
        assert!(!satisfies_eq1(0.10, 2_000, 1_000, m_static + 30));
    }

    #[test]
    fn dataset_fits_entirely() {
        // D=800, M=1000: pin exactly the dataset (share 0.8).
        let r = static_share(0.10, 800, 1_000);
        assert!((r - 0.8).abs() < 1e-9);
    }

    #[test]
    fn huge_dataset_forces_zero_static() {
        // K·D/M >= 1 → no static region can satisfy Eq (1).
        let r = static_share(0.10, 20_000, 1_000);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn k_zero_pins_everything() {
        let r = static_share(0.0, 5_000, 1_000);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn share_monotone_decreasing_in_k() {
        let d = 3_000;
        let m = 1_000;
        let mut last = f64::INFINITY;
        for k in [0.01, 0.05, 0.1, 0.2, 0.3] {
            let r = static_share(k, d, m);
            assert!(r <= last, "share must shrink as K grows");
            last = r;
        }
    }

    #[test]
    fn repartition_triggers_only_on_overflow_and_underuse() {
        // overflow + underused static -> shrink
        let r = repartition_check(600, 10, 1_000, 800, 500, 10_000);
        assert_eq!(r, Repartition::ShrinkStaticBy(80)); // 800 * 0.1
                                                        // overflow but static well-used -> keep
        let r = repartition_check(600, 700, 1_000, 800, 500, 10_000);
        assert_eq!(r, Repartition::Keep);
        // no overflow -> keep
        let r = repartition_check(100, 10, 1_000, 800, 500, 10_000);
        assert_eq!(r, Repartition::Keep);
    }

    #[test]
    fn repartition_shrink_is_bounded() {
        // touch rate ~ 1.0: shrink everything but never more than m_static
        let r = repartition_check(600, 0, 10_000, 800, 500, 10_000);
        match r {
            Repartition::ShrinkStaticBy(s) => assert!((1..=800).contains(&s)),
            _ => panic!("expected shrink"),
        }
    }

    #[test]
    fn repartition_degenerate_inputs() {
        assert_eq!(repartition_check(1, 0, 1, 0, 0, 100), Repartition::Keep);
        assert_eq!(repartition_check(1, 0, 1, 10, 0, 0), Repartition::Keep);
    }

    #[test]
    #[should_panic(expected = "K must be")]
    fn rejects_k_one() {
        static_share(1.0, 100, 100);
    }
}
