//! Connected components (push-based label propagation).
//!
//! Every vertex starts labeled with its own id; a push proposes the
//! source's label at each target through an atomic min, so labels converge
//! to the minimum vertex id of each (weakly) connected component. All
//! vertices start active, which is why CC moves more data per iteration
//! than BFS in the paper's Table 1 (3.0–14.1 %).
//!
//! On directed graphs this computes components of the *directed reach*
//! closure under min-label flow — identical to weak connectivity when the
//! graph is symmetrized, which is how CC is conventionally run (and how the
//! tests compare against union–find).

use std::sync::atomic::{AtomicU32, Ordering};

use ascetic_graph::{Csr, GraphPatch, VertexId};
use ascetic_par::{atomic_min_u32, AtomicBitmap, Bitmap};

use crate::incremental::{forward_closure, in_boundary, RepairPlan};
use crate::traits::{AlgoOutput, Capabilities, EdgeSlice, VertexProgram};

/// Connected components via min-label propagation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cc;

impl Cc {
    /// A CC program.
    pub fn new() -> Self {
        Cc
    }
}

/// CC per-vertex state: the label array plus the iteration-start snapshot
/// of active labels (bulk-synchronous semantics — see
/// [`crate::bfs::BfsState`]).
pub struct CcState {
    label: Vec<AtomicU32>,
    frozen: Vec<AtomicU32>,
}

impl VertexProgram for Cc {
    type State = CcState;

    fn name(&self) -> &'static str {
        "CC"
    }

    fn capabilities(&self) -> Capabilities {
        // payload: vertex id + component label
        Capabilities::new()
            .with_pull()
            .with_payload_bytes(8)
            .with_incremental()
    }

    fn new_state(&self, g: &Csr) -> CcState {
        CcState {
            label: (0..g.num_vertices() as u32).map(AtomicU32::new).collect(),
            frozen: (0..g.num_vertices() as u32).map(AtomicU32::new).collect(),
        }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        Bitmap::ones(g.num_vertices())
    }

    fn compute(&self, _iteration: u32, active: &Bitmap, state: &CcState) {
        for v in active.iter_ones() {
            state.frozen[v].store(state.label[v].load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    #[inline]
    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &CcState,
        next: &AtomicBitmap,
    ) {
        let l = state.frozen[src as usize].load(Ordering::Relaxed);
        for (t, _w) in edges.iter() {
            if atomic_min_u32(&state.label[t as usize], l) {
                next.set(t as usize);
            }
        }
    }

    fn output(&self, state: &CcState) -> AlgoOutput {
        AlgoOutput::Labels(
            state
                .label
                .iter()
                .map(|l| l.load(Ordering::Relaxed))
                .collect(),
        )
    }

    /// Pull candidates: every vertex whose label can still shrink. Label 0
    /// is the global floor, so vertices already there are exact to skip.
    fn pull_targets(&self, g: &Csr, _active: &Bitmap, state: &CcState) -> Bitmap {
        let mut b = Bitmap::new(g.num_vertices());
        for (v, l) in state.label.iter().enumerate() {
            if l.load(Ordering::Relaxed) > 0 {
                b.set(v);
            }
        }
        b
    }

    /// Gather the min frozen label over active in-neighbors. Early exit
    /// when the running min reaches 0 is exact (nothing beats the floor)
    /// and deterministic: the stop position depends only on the row's
    /// contents, never on thread interleaving.
    #[inline]
    fn advance_pull(
        &self,
        v: VertexId,
        in_edges: EdgeSlice<'_>,
        active: &Bitmap,
        state: &CcState,
        next: &AtomicBitmap,
    ) -> u64 {
        let mut best = u32::MAX;
        let mut scanned = 0u64;
        for (u, _w) in in_edges.iter() {
            scanned += 1;
            if active.get(u as usize) {
                let l = state.frozen[u as usize].load(Ordering::Relaxed);
                best = best.min(l);
                if best == 0 {
                    break;
                }
            }
        }
        if best != u32::MAX && atomic_min_u32(&state.label[v as usize], best) {
            next.set(v as usize);
        }
        scanned
    }

    /// Invalidate-then-settle over labels. A deleted edge whose endpoints
    /// share a label may have been the only conduit for that label, so the
    /// forward closure of *label-carrying* edges (`label[s] == label[t]`)
    /// from the deleted heads is reset to self-labels. Each reset vertex is
    /// itself a settle seed (its own label must re-propagate — it may be
    /// the new component minimum), alongside the closure's surviving
    /// in-boundary and insert sources. Labels are always finite, so no
    /// reachability guards apply.
    fn repair(
        &self,
        g_old: &Csr,
        g_new: &Csr,
        csc_new: Option<&Csr>,
        patch: &GraphPatch,
        state: &CcState,
    ) -> RepairPlan {
        let label = |v: VertexId| state.label[v as usize].load(Ordering::Relaxed);
        let roots: Vec<VertexId> = patch
            .deletes
            .iter()
            .filter_map(|&(u, v, _)| (label(u) == label(v)).then_some(v))
            .collect();
        let mut seeds = Bitmap::new(g_new.num_vertices());
        if !roots.is_empty() {
            let in_a = forward_closure(g_old, roots, |s, t, _| label(s) == label(t));
            for (v, &a) in in_a.iter().enumerate() {
                if a {
                    state.label[v].store(v as u32, Ordering::Relaxed);
                    seeds.set(v);
                }
            }
            in_boundary(g_new, csc_new, &in_a, |p| seeds.set(p as usize));
        }
        for &(u, _, _) in &patch.inserts {
            seeds.set(u as usize);
        }
        RepairPlan::Seeded(seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmemory::run_in_memory;
    use crate::reference::cc_reference;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};
    use ascetic_graph::GraphBuilder;

    #[test]
    fn two_components() {
        let mut b = GraphBuilder::new(5).symmetrize(true);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        let g = b.build();
        let res = run_in_memory(&g, &Cc::new());
        assert_eq!(res.output, AlgoOutput::Labels(vec![0, 0, 0, 3, 3]));
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let g = GraphBuilder::new(3).build();
        let res = run_in_memory(&g, &Cc::new());
        assert_eq!(res.output, AlgoOutput::Labels(vec![0, 1, 2]));
    }

    #[test]
    fn matches_union_find_on_random_graphs() {
        for seed in 0..3 {
            let g = uniform_graph(600, 1_200, true, seed);
            let res = run_in_memory(&g, &Cc::new());
            assert_eq!(
                res.output,
                AlgoOutput::Labels(cc_reference(&g)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_union_find_on_rmat() {
        let g = rmat_graph(&RmatConfig::new(10, 3_000, 9).undirected(true));
        let res = run_in_memory(&g, &Cc::new());
        assert_eq!(res.output, AlgoOutput::Labels(cc_reference(&g)));
    }

    #[test]
    fn first_iteration_touches_every_edge() {
        let g = uniform_graph(300, 2_000, true, 4);
        let res = run_in_memory(&g, &Cc::new());
        assert_eq!(res.log[0].active_edges, g.num_edges());
        assert_eq!(res.log[0].active_vertices, g.num_vertices() as u64);
    }
}
