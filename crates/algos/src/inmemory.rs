//! Memory-unconstrained runner.
//!
//! Executes a [`VertexProgram`] directly over the host CSR with no device,
//! no partitioning and no transfers. Three jobs:
//!
//! 1. **Semantic oracle** — every out-of-core system must produce exactly
//!    this output (integration tests enforce it);
//! 2. **Workload profiler** — the per-iteration [`IterationLog`] yields the
//!    active-edge ratios of the paper's Table 1 and the working-set sizes
//!    behind Table 2;
//! 3. **Iteration-shape source** — the benchmark harness uses the logs to
//!    reason about K (the paper's active-fraction parameter, §3.3).

use ascetic_graph::Csr;
use ascetic_par::{parallel_for, AtomicBitmap};

use crate::traits::{AlgoOutput, EdgeSlice, VertexProgram};

/// Per-iteration activity record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IterationLog {
    /// Iteration index (0-based).
    pub iteration: u32,
    /// Vertices active at the start of the iteration.
    pub active_vertices: u64,
    /// Sum of their out-degrees (edges traversed this iteration).
    pub active_edges: u64,
}

/// Result of an in-memory run.
#[derive(Clone, Debug)]
pub struct InMemoryResult {
    /// Final program output.
    pub output: AlgoOutput,
    /// Number of iterations executed (until the frontier emptied).
    pub iterations: u32,
    /// Per-iteration activity.
    pub log: Vec<IterationLog>,
    /// Total edges traversed across the run.
    pub total_edges: u64,
}

impl InMemoryResult {
    /// Mean fraction of the graph's edges that were active per iteration —
    /// the paper's Table 1 metric ("Average percentages of active edges per
    /// iteration").
    pub fn avg_active_edge_fraction(&self, g: &Csr) -> f64 {
        if self.log.is_empty() || g.num_edges() == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .log
            .iter()
            .map(|l| l.active_edges as f64 / g.num_edges() as f64)
            .sum();
        sum / self.log.len() as f64
    }
}

/// Run `prog` over `g` entirely in memory.
pub fn run_in_memory<P: VertexProgram>(g: &Csr, prog: &P) -> InMemoryResult {
    if prog.needs_weights() {
        assert!(g.is_weighted(), "{} requires weights", prog.name());
    }
    let n = g.num_vertices();
    let state = prog.new_state(g);
    let mut active = prog.initial_frontier(g);
    let mut log = Vec::new();
    let mut total_edges = 0u64;
    let mut iter = 0u32;

    while !active.is_all_zero() && iter < prog.max_iterations() {
        prog.begin_iteration(iter, &active, &state);
        let nodes = active.to_indices();
        let active_edges: u64 = nodes.iter().map(|&v| g.degree(v)).sum();
        log.push(IterationLog {
            iteration: iter,
            active_vertices: nodes.len() as u64,
            active_edges,
        });
        total_edges += active_edges;

        let next = AtomicBitmap::new(n);
        let weights = g.weights();
        parallel_for(nodes.len(), |i| {
            let v = nodes[i];
            let r = g.edge_range(v);
            let (s, e) = (r.start as usize, r.end as usize);
            let slice = EdgeSlice::split(&g.targets()[s..e], weights.map(|w| &w[s..e]));
            prog.process_vertex(v, slice, &state, &next);
        });
        active = next.snapshot();
        iter += 1;
    }

    InMemoryResult {
        output: prog.output(&state),
        iterations: iter,
        log,
        total_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::cc::Cc;
    use crate::pr::PageRank;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_graph::GraphBuilder;

    #[test]
    fn empty_frontier_terminates_immediately() {
        // BFS from an isolated vertex: 1 iteration (source only), then done.
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 2);
        let g = b.build();
        let res = run_in_memory(&g, &Bfs::new(0));
        assert_eq!(res.iterations, 1);
        assert_eq!(res.log[0].active_vertices, 1);
        assert_eq!(res.log[0].active_edges, 0);
        assert_eq!(res.total_edges, 0);
    }

    #[test]
    fn log_sums_to_total() {
        let g = uniform_graph(400, 3_000, true, 1);
        let res = run_in_memory(&g, &Cc::new());
        let sum: u64 = res.log.iter().map(|l| l.active_edges).sum();
        assert_eq!(sum, res.total_edges);
        assert_eq!(res.log.len() as u32, res.iterations);
    }

    #[test]
    fn active_fraction_in_unit_range() {
        let g = uniform_graph(300, 2_000, false, 2);
        let res = run_in_memory(&g, &PageRank::new());
        let f = res.avg_active_edge_fraction(&g);
        assert!(f > 0.0 && f <= 1.0, "fraction {f}");
    }

    #[test]
    fn iteration_indices_are_sequential() {
        let g = uniform_graph(200, 1_500, true, 3);
        let res = run_in_memory(&g, &Bfs::new(0));
        for (i, l) in res.log.iter().enumerate() {
            assert_eq!(l.iteration, i as u32);
        }
    }
}
