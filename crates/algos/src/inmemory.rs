//! Memory-unconstrained runner.
//!
//! Executes a [`VertexProgram`] directly over the host CSR with no device,
//! no partitioning and no transfers. Three jobs:
//!
//! 1. **Semantic oracle** — every out-of-core system must produce exactly
//!    this output (integration tests enforce it);
//! 2. **Workload profiler** — the per-iteration [`IterationLog`] yields the
//!    active-edge ratios of the paper's Table 1 and the working-set sizes
//!    behind Table 2;
//! 3. **Iteration-shape source** — the benchmark harness uses the logs to
//!    reason about K (the paper's active-fraction parameter, §3.3).

use ascetic_graph::Csr;
use ascetic_par::Bitmap;

use crate::traits::{AlgoOutput, VertexProgram};

/// Per-iteration activity record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IterationLog {
    /// Iteration index (0-based).
    pub iteration: u32,
    /// Vertices active at the start of the iteration.
    pub active_vertices: u64,
    /// Sum of their out-degrees (edges traversed this iteration).
    pub active_edges: u64,
}

/// Result of an in-memory run.
#[derive(Clone, Debug)]
pub struct InMemoryResult {
    /// Final program output.
    pub output: AlgoOutput,
    /// Number of iterations executed (until the frontier emptied).
    pub iterations: u32,
    /// Per-iteration activity.
    pub log: Vec<IterationLog>,
    /// Total edges traversed across the run.
    pub total_edges: u64,
}

impl InMemoryResult {
    /// Mean fraction of the graph's edges that were active per iteration —
    /// the paper's Table 1 metric ("Average percentages of active edges per
    /// iteration").
    pub fn avg_active_edge_fraction(&self, g: &Csr) -> f64 {
        if self.log.is_empty() || g.num_edges() == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .log
            .iter()
            .map(|l| l.active_edges as f64 / g.num_edges() as f64)
            .sum();
        sum / self.log.len() as f64
    }
}

/// Run `prog` over `g` entirely in memory, one [`crate::ops::advance_all`]
/// composition per iteration, with the multi-phase handshake when the
/// frontier drains.
pub fn run_in_memory<P: VertexProgram>(g: &Csr, prog: &P) -> InMemoryResult {
    if prog.capabilities().weights {
        assert!(g.is_weighted(), "{} requires weights", prog.name());
    }
    let state = prog.new_state(g);
    let active = prog.initial_frontier(g);
    run_in_memory_from(g, prog, &state, active)
}

/// Run `prog` over `g` from an existing `state` and starting frontier —
/// the *settle* half of incremental repair (and the warm re-run of a
/// [`crate::incremental::RepairPlan::Restart`]). [`run_in_memory`] is this
/// with a fresh state and the program's initial frontier.
pub fn run_in_memory_from<P: VertexProgram>(
    g: &Csr,
    prog: &P,
    state: &P::State,
    mut active: Bitmap,
) -> InMemoryResult {
    let mut log = Vec::new();
    let mut total_edges = 0u64;
    let mut iter = 0u32;
    let mut phase = 0u32;

    while iter < prog.max_iterations() {
        if active.is_all_zero() {
            match crate::ops::phase_transition(prog, phase, g, state) {
                Some(f) => {
                    active = f;
                    phase += 1;
                }
                None => break,
            }
        }
        let active_vertices = active.count_ones() as u64;
        let (next, active_edges) = crate::ops::advance_all(prog, g, iter, &active, state);
        log.push(IterationLog {
            iteration: iter,
            active_vertices,
            active_edges,
        });
        total_edges += active_edges;
        active = next;
        iter += 1;
    }

    InMemoryResult {
        output: prog.output(state),
        iterations: iter,
        log,
        total_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::cc::Cc;
    use crate::pr::PageRank;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_graph::GraphBuilder;

    #[test]
    fn empty_frontier_terminates_immediately() {
        // BFS from an isolated vertex: 1 iteration (source only), then done.
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 2);
        let g = b.build();
        let res = run_in_memory(&g, &Bfs::new(0));
        assert_eq!(res.iterations, 1);
        assert_eq!(res.log[0].active_vertices, 1);
        assert_eq!(res.log[0].active_edges, 0);
        assert_eq!(res.total_edges, 0);
    }

    #[test]
    fn log_sums_to_total() {
        let g = uniform_graph(400, 3_000, true, 1);
        let res = run_in_memory(&g, &Cc::new());
        let sum: u64 = res.log.iter().map(|l| l.active_edges).sum();
        assert_eq!(sum, res.total_edges);
        assert_eq!(res.log.len() as u32, res.iterations);
    }

    #[test]
    fn active_fraction_in_unit_range() {
        let g = uniform_graph(300, 2_000, false, 2);
        let res = run_in_memory(&g, &PageRank::new());
        let f = res.avg_active_edge_fraction(&g);
        assert!(f > 0.0 && f <= 1.0, "fraction {f}");
    }

    #[test]
    fn iteration_indices_are_sequential() {
        let g = uniform_graph(200, 1_500, true, 3);
        let res = run_in_memory(&g, &Bfs::new(0));
        for (i, l) in res.log.iter().enumerate() {
            assert_eq!(l.iteration, i as u32);
        }
    }
}
