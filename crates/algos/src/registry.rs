//! The one list of shipped algorithms.
//!
//! [`Algo`] is the single source of truth for what this workspace can run:
//! the CLI parses `--algo` through its [`std::str::FromStr`], the serve
//! layer's trace parser and job admission consult its metadata, and the
//! bench harness builds its tables from it. Adding an algorithm means
//! adding a variant here (plus its program module) — every entry point
//! picks it up.
//!
//! [`AnyProgram`] is the type-erased instantiation: a closed enum over the
//! concrete programs, itself implementing [`VertexProgram`] by
//! delegation, so monomorphic engines (`session.run`, `run_fleet`, the
//! baselines) can execute a runtime-chosen algorithm without dynamic
//! dispatch or per-call generics at the call site.

use ascetic_graph::{Csr, GraphPatch, VertexId};
use ascetic_par::{AtomicBitmap, Bitmap};

use crate::betweenness::{BcState, Betweenness};
use crate::bfs::{Bfs, BfsState};
use crate::cc::{Cc, CcState};
use crate::closeness::{Closeness, ClosenessState};
use crate::incremental::RepairPlan;
use crate::kcore::{KCore, KCoreState};
use crate::lp::{LabelPropagation, LpState};
use crate::msbfs::{MsBfs, MsBfsState};
use crate::pr::{PageRank, PrState};
use crate::sssp::{Sssp, SsspState};
use crate::traits::{AlgoOutput, Capabilities, EdgeSlice, VertexProgram};

/// Every algorithm the workspace ships, by CLI name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algo {
    /// Breadth-first search (`bfs`).
    Bfs,
    /// Single-source shortest paths (`sssp`).
    Sssp,
    /// Weakly connected components (`cc`).
    Cc,
    /// Residual PageRank (`pr`).
    Pr,
    /// k-core decomposition (`kcore`).
    KCore,
    /// 64-lane multi-source BFS (`msbfs`).
    MsBfs,
    /// Sampled closeness centrality (`closeness`).
    Closeness,
    /// Label-propagation community detection (`lp`).
    Lp,
    /// Brandes betweenness centrality (`bc`).
    Bc,
}

impl Algo {
    /// All shipped algorithms, in canonical (serve cost-model) order: the
    /// paper's four first, extensions after.
    pub const ALL: [Algo; 9] = [
        Algo::Bfs,
        Algo::Sssp,
        Algo::Cc,
        Algo::Pr,
        Algo::KCore,
        Algo::MsBfs,
        Algo::Closeness,
        Algo::Lp,
        Algo::Bc,
    ];

    /// Canonical lowercase CLI/trace name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Bfs => "bfs",
            Algo::Sssp => "sssp",
            Algo::Cc => "cc",
            Algo::Pr => "pr",
            Algo::KCore => "kcore",
            Algo::MsBfs => "msbfs",
            Algo::Closeness => "closeness",
            Algo::Lp => "lp",
            Algo::Bc => "bc",
        }
    }

    /// Human/report display name (matches the program's
    /// [`VertexProgram::name`]).
    pub fn display(self) -> &'static str {
        match self {
            Algo::Bfs => "BFS",
            Algo::Sssp => "SSSP",
            Algo::Cc => "CC",
            Algo::Pr => "PR",
            Algo::KCore => "kCore",
            Algo::MsBfs => "MS-BFS",
            Algo::Closeness => "Closeness",
            Algo::Lp => "LP",
            Algo::Bc => "BC",
        }
    }

    /// Capability descriptor of the algorithm's program (metadata is
    /// parameter-independent, so a throwaway instantiation answers for
    /// all).
    pub fn capabilities(self) -> Capabilities {
        self.program(&ProgramOpts::meta()).capabilities()
    }

    /// Whether the program reads edge weights (wants the weighted graph
    /// variant).
    pub fn weighted(self) -> bool {
        self.capabilities().weights
    }

    /// Whether the program may be scheduled in pull/adaptive direction.
    pub fn pull(self) -> bool {
        self.capabilities().pull
    }

    /// Whether the program is rooted at one source vertex (`--source`
    /// applies; serve jobs carry a per-job source).
    pub fn single_source(self) -> bool {
        matches!(self, Algo::Bfs | Algo::Sssp | Algo::Bc)
    }

    /// How many sampled sources a multi-source program takes by default
    /// (0 for everything else).
    pub fn default_source_count(self) -> usize {
        match self {
            Algo::MsBfs => 64,
            Algo::Closeness => 16,
            _ => 0,
        }
    }

    /// Whether the serve layer accepts jobs of this kind. The long-running
    /// whole-graph sweeps (`msbfs`, `closeness`) are batch workloads, not
    /// interactive queries.
    pub fn servable(self) -> bool {
        !matches!(self, Algo::MsBfs | Algo::Closeness)
    }

    /// Instantiate the program with `opts`.
    pub fn program(self, opts: &ProgramOpts) -> AnyProgram {
        match self {
            Algo::Bfs => AnyProgram::Bfs(Bfs::new(opts.source)),
            Algo::Sssp => AnyProgram::Sssp(Sssp::new(opts.source)),
            Algo::Cc => AnyProgram::Cc(Cc::new()),
            Algo::Pr => AnyProgram::Pr(PageRank::new()),
            Algo::KCore => AnyProgram::KCore(KCore::new(opts.k)),
            Algo::MsBfs => AnyProgram::MsBfs(MsBfs::new(opts.sources.clone())),
            Algo::Closeness => AnyProgram::Closeness(Closeness::new(opts.sources.clone())),
            Algo::Lp => AnyProgram::Lp(LabelPropagation::new()),
            Algo::Bc => AnyProgram::Bc(Betweenness::new(opts.source)),
        }
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for an unrecognized algorithm name, listing what is accepted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownAlgo(pub String);

impl std::fmt::Display for UnknownAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown algorithm '{}' (expected one of: ", self.0)?;
        for (i, a) in Algo::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(a.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for UnknownAlgo {}

impl std::str::FromStr for Algo {
    type Err = UnknownAlgo;
    fn from_str(s: &str) -> Result<Self, UnknownAlgo> {
        Algo::ALL
            .iter()
            .copied()
            .find(|a| a.name() == s)
            .ok_or_else(|| UnknownAlgo(s.to_string()))
    }
}

/// Instantiation parameters for [`Algo::program`]. Fields an algorithm
/// does not use are ignored.
#[derive(Clone, Debug)]
pub struct ProgramOpts {
    /// Root vertex for single-source programs.
    pub source: VertexId,
    /// Sampled sources for multi-source programs.
    pub sources: Vec<VertexId>,
    /// Core parameter for `kcore`.
    pub k: u32,
}

impl Default for ProgramOpts {
    fn default() -> Self {
        ProgramOpts {
            source: 0,
            sources: Vec::new(),
            k: 4,
        }
    }
}

impl ProgramOpts {
    /// Opts for a single-source run from `source`.
    pub fn from_source(source: VertexId) -> Self {
        ProgramOpts {
            source,
            ..Self::default()
        }
    }

    /// Opts valid for every algorithm (multi-source programs reject an
    /// empty source list) — used for metadata-only instantiations.
    fn meta() -> Self {
        ProgramOpts {
            sources: vec![0],
            ..Self::default()
        }
    }
}

/// A runtime-chosen program: closed enum over every registered algorithm,
/// delegating [`VertexProgram`] to the wrapped concrete program.
#[allow(missing_docs)] // variants mirror `Algo` one-to-one
pub enum AnyProgram {
    Bfs(Bfs),
    Sssp(Sssp),
    Cc(Cc),
    Pr(PageRank),
    KCore(KCore),
    MsBfs(MsBfs),
    Closeness(Closeness),
    Lp(LabelPropagation),
    Bc(Betweenness),
}

/// State for [`AnyProgram`] — the wrapped program's state, same variant.
#[allow(missing_docs)] // variants mirror `Algo` one-to-one
pub enum AnyState {
    Bfs(BfsState),
    Sssp(SsspState),
    Cc(CcState),
    Pr(PrState),
    KCore(KCoreState),
    MsBfs(MsBfsState),
    Closeness(ClosenessState),
    Lp(LpState),
    Bc(BcState),
}

/// Delegate an expression to the wrapped program (no state involved).
macro_rules! each {
    ($self:expr, $p:ident => $e:expr) => {
        match $self {
            AnyProgram::Bfs($p) => $e,
            AnyProgram::Sssp($p) => $e,
            AnyProgram::Cc($p) => $e,
            AnyProgram::Pr($p) => $e,
            AnyProgram::KCore($p) => $e,
            AnyProgram::MsBfs($p) => $e,
            AnyProgram::Closeness($p) => $e,
            AnyProgram::Lp($p) => $e,
            AnyProgram::Bc($p) => $e,
        }
    };
}

/// Delegate an expression that also needs the matching state variant.
/// A variant mismatch means the state came from a *different* program —
/// a driver bug, so it panics loudly.
macro_rules! each_with_state {
    ($self:expr, $state:expr, $p:ident, $s:ident => $e:expr) => {
        match ($self, $state) {
            (AnyProgram::Bfs($p), AnyState::Bfs($s)) => $e,
            (AnyProgram::Sssp($p), AnyState::Sssp($s)) => $e,
            (AnyProgram::Cc($p), AnyState::Cc($s)) => $e,
            (AnyProgram::Pr($p), AnyState::Pr($s)) => $e,
            (AnyProgram::KCore($p), AnyState::KCore($s)) => $e,
            (AnyProgram::MsBfs($p), AnyState::MsBfs($s)) => $e,
            (AnyProgram::Closeness($p), AnyState::Closeness($s)) => $e,
            (AnyProgram::Lp($p), AnyState::Lp($s)) => $e,
            (AnyProgram::Bc($p), AnyState::Bc($s)) => $e,
            _ => unreachable!("AnyState does not belong to this AnyProgram"),
        }
    };
}

impl VertexProgram for AnyProgram {
    type State = AnyState;

    fn name(&self) -> &'static str {
        each!(self, p => p.name())
    }

    fn capabilities(&self) -> Capabilities {
        each!(self, p => p.capabilities())
    }

    fn new_state(&self, g: &Csr) -> AnyState {
        match self {
            AnyProgram::Bfs(p) => AnyState::Bfs(p.new_state(g)),
            AnyProgram::Sssp(p) => AnyState::Sssp(p.new_state(g)),
            AnyProgram::Cc(p) => AnyState::Cc(p.new_state(g)),
            AnyProgram::Pr(p) => AnyState::Pr(p.new_state(g)),
            AnyProgram::KCore(p) => AnyState::KCore(p.new_state(g)),
            AnyProgram::MsBfs(p) => AnyState::MsBfs(p.new_state(g)),
            AnyProgram::Closeness(p) => AnyState::Closeness(p.new_state(g)),
            AnyProgram::Lp(p) => AnyState::Lp(p.new_state(g)),
            AnyProgram::Bc(p) => AnyState::Bc(p.new_state(g)),
        }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        each!(self, p => p.initial_frontier(g))
    }

    fn compute(&self, iteration: u32, active: &Bitmap, state: &AnyState) {
        each_with_state!(self, state, p, s => p.compute(iteration, active, s))
    }

    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &AnyState,
        next: &AtomicBitmap,
    ) {
        each_with_state!(self, state, p, s => p.advance_push(src, edges, s, next))
    }

    fn pull_targets(&self, g: &Csr, active: &Bitmap, state: &AnyState) -> Bitmap {
        each_with_state!(self, state, p, s => p.pull_targets(g, active, s))
    }

    fn advance_pull(
        &self,
        v: VertexId,
        in_edges: EdgeSlice<'_>,
        active: &Bitmap,
        state: &AnyState,
        next: &AtomicBitmap,
    ) -> u64 {
        each_with_state!(self, state, p, s => p.advance_pull(v, in_edges, active, s, next))
    }

    fn retain(&self, v: VertexId, state: &AnyState) -> bool {
        each_with_state!(self, state, p, s => p.retain(v, s))
    }

    fn next_phase(&self, finished: u32, g: &Csr, state: &AnyState) -> Option<Bitmap> {
        each_with_state!(self, state, p, s => p.next_phase(finished, g, s))
    }

    fn output(&self, state: &AnyState) -> AlgoOutput {
        each_with_state!(self, state, p, s => p.output(s))
    }

    fn max_iterations(&self) -> u32 {
        each!(self, p => p.max_iterations())
    }

    fn repair(
        &self,
        g_old: &Csr,
        g_new: &Csr,
        csc_new: Option<&Csr>,
        patch: &GraphPatch,
        state: &AnyState,
    ) -> RepairPlan {
        each_with_state!(self, state, p, s => p.repair(g_old, g_new, csc_new, patch, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmemory::run_in_memory;
    use ascetic_graph::generators::uniform_graph;

    #[test]
    fn names_round_trip() {
        for a in Algo::ALL {
            assert_eq!(a.name().parse::<Algo>().unwrap(), a);
            assert_eq!(a.to_string(), a.name());
        }
        let err = "pagerank".parse::<Algo>().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("pagerank") && msg.contains("bfs") && msg.contains("bc"),
            "{msg}"
        );
    }

    #[test]
    fn metadata_is_consistent() {
        assert!(Algo::Sssp.weighted() && !Algo::Bfs.weighted());
        assert!(Algo::Bfs.pull() && Algo::Cc.pull() && Algo::Pr.pull());
        assert!(!Algo::Sssp.pull() && !Algo::Bc.pull());
        assert!(Algo::Bc.single_source() && !Algo::Lp.single_source());
        assert!(!Algo::MsBfs.servable() && Algo::Lp.servable());
        assert_eq!(Algo::MsBfs.default_source_count(), 64);
        assert_eq!(Algo::Closeness.default_source_count(), 16);
        for a in Algo::ALL {
            // display name agrees with the instantiated program
            assert_eq!(a.display(), a.program(&ProgramOpts::meta()).name());
        }
    }

    #[test]
    fn any_program_matches_concrete_program() {
        let g = uniform_graph(300, 2_400, false, 5);
        let erased = run_in_memory(&g, &Algo::Bfs.program(&ProgramOpts::from_source(1)));
        let concrete = run_in_memory(&g, &crate::bfs::Bfs::new(1));
        assert_eq!(erased.output, concrete.output);
        assert_eq!(erased.iterations, concrete.iterations);

        let erased = run_in_memory(&g, &Algo::Bc.program(&ProgramOpts::from_source(1)));
        let concrete = run_in_memory(&g, &Betweenness::new(1));
        assert_eq!(erased.output, concrete.output);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn mismatched_state_is_rejected() {
        let g = uniform_graph(10, 20, false, 1);
        let bfs = Algo::Bfs.program(&ProgramOpts::default());
        let cc_state = Algo::Cc.program(&ProgramOpts::default()).new_state(&g);
        let _ = bfs.output(&cc_state);
    }
}
