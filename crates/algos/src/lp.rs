//! Label propagation (community detection) on the operator core.
//!
//! Synchronous (Jacobi) label propagation: every vertex starts in its own
//! community (`label(v) = v`); each iteration every candidate vertex adopts
//! the most frequent label among its in-neighbors (ties break to the
//! smallest label). The run converges when no label can change, with a hard
//! iteration cap for the oscillating configurations synchronous LP is known
//! for (bipartite flip-flops).
//!
//! The operator decomposition keeps the per-iteration work proportional to
//! the *changed* vertices instead of all of `V`:
//!
//! * **compute** adopts labels for the active set (sequential on the
//!   orchestration thread, so adoption order is deterministic and all
//!   adoptions see the previous iteration's histograms — exactly Jacobi);
//! * **advance** broadcasts each adopter's label *delta* to its
//!   out-neighbors' histograms (`-old, +new` under a per-vertex lock;
//!   commuting increments, so thread interleaving cannot change the final
//!   histogram) and activates them;
//! * **filter** retains only activated vertices whose histogram argmax now
//!   differs from their label — the first program where the filter operator
//!   does real compaction.
//!
//! Histograms are seeded from the initial labels by one deterministic edge
//! sweep in `new_state`, so iteration 0's adoptions already see every
//! in-neighbor — no warm-up broadcast iteration is needed.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use ascetic_graph::{Csr, VertexId};
use ascetic_par::{AtomicBitmap, Bitmap};

use crate::traits::{AlgoOutput, Capabilities, EdgeSlice, VertexProgram};

/// Synchronous label propagation with an iteration cap.
#[derive(Clone, Copy, Debug)]
pub struct LabelPropagation {
    /// Hard cap on adoption sweeps (synchronous LP can oscillate forever).
    pub max_sweeps: u32,
}

/// Default sweep cap — communities on social-like graphs settle in well
/// under this; oscillators get cut off deterministically.
pub const DEFAULT_MAX_SWEEPS: u32 = 64;

impl Default for LabelPropagation {
    fn default() -> Self {
        LabelPropagation {
            max_sweeps: DEFAULT_MAX_SWEEPS,
        }
    }
}

impl LabelPropagation {
    /// LP with the default sweep cap.
    pub fn new() -> Self {
        Self::default()
    }
}

/// LP state: labels, the label each vertex held before its last adoption,
/// and one in-neighbor label histogram per vertex.
pub struct LpState {
    label: Vec<AtomicU32>,
    prev: Vec<AtomicU32>,
    counts: Vec<Mutex<Vec<(u32, u32)>>>,
}

/// Most frequent label in a histogram; ties break to the smallest label.
/// `None` when the histogram is empty (no in-neighbors).
fn argmax(counts: &[(u32, u32)]) -> Option<u32> {
    counts
        .iter()
        .filter(|&&(_, c)| c > 0)
        .fold(None, |best: Option<(u32, u32)>, &(l, c)| match best {
            Some((bl, bc)) if (bc, std::cmp::Reverse(bl)) >= (c, std::cmp::Reverse(l)) => best,
            _ => Some((l, c)),
        })
        .map(|(l, _)| l)
}

fn bump(counts: &mut Vec<(u32, u32)>, label: u32, delta: i32) {
    if let Some(e) = counts.iter_mut().find(|e| e.0 == label) {
        e.1 = e.1.wrapping_add_signed(delta);
    } else if delta > 0 {
        counts.push((label, delta as u32));
    }
}

impl VertexProgram for LabelPropagation {
    type State = LpState;

    fn name(&self) -> &'static str {
        "LP"
    }

    fn capabilities(&self) -> Capabilities {
        // payload: vertex id + community label
        Capabilities::new().with_payload_bytes(8)
    }

    fn new_state(&self, g: &Csr) -> LpState {
        let n = g.num_vertices();
        // seed histograms with every in-neighbor's initial label (= its id)
        let mut counts: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for v in 0..n as VertexId {
            for &t in g.neighbors(v) {
                bump(&mut counts[t as usize], v, 1);
            }
        }
        LpState {
            label: (0..n as u32).map(AtomicU32::new).collect(),
            prev: (0..n as u32).map(AtomicU32::new).collect(),
            counts: counts.into_iter().map(Mutex::new).collect(),
        }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        Bitmap::ones(g.num_vertices())
    }

    /// Adopt the argmax label for every active vertex. Runs before any
    /// advance of the iteration, so all adoptions see the previous
    /// iteration's histograms (Jacobi).
    fn compute(&self, _iteration: u32, active: &Bitmap, state: &LpState) {
        for v in active.iter_ones() {
            let old = state.label[v].load(Ordering::Relaxed);
            state.prev[v].store(old, Ordering::Relaxed);
            let hist = state.counts[v].lock().unwrap();
            if let Some(best) = argmax(&hist) {
                if best != old {
                    state.label[v].store(best, Ordering::Relaxed);
                }
            }
        }
    }

    /// Broadcast the adoption delta: `-prev, +label` into each
    /// out-neighbor's histogram. Vertices that did not change are a no-op
    /// (their edges may still be delivered; the delta is empty).
    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &LpState,
        next: &AtomicBitmap,
    ) {
        let l = state.label[src as usize].load(Ordering::Relaxed);
        let p = state.prev[src as usize].load(Ordering::Relaxed);
        if l == p {
            return;
        }
        for (t, _w) in edges.iter() {
            let mut hist = state.counts[t as usize].lock().unwrap();
            bump(&mut hist, p, -1);
            bump(&mut hist, l, 1);
            next.set(t as usize);
        }
    }

    /// Keep only vertices whose argmax now disagrees with their label —
    /// the rest cannot change next sweep.
    fn retain(&self, v: VertexId, state: &LpState) -> bool {
        let hist = state.counts[v as usize].lock().unwrap();
        match argmax(&hist) {
            Some(best) => best != state.label[v as usize].load(Ordering::Relaxed),
            None => false,
        }
    }

    fn output(&self, state: &LpState) -> AlgoOutput {
        AlgoOutput::Labels(
            state
                .label
                .iter()
                .map(|l| l.load(Ordering::Relaxed))
                .collect(),
        )
    }

    fn max_iterations(&self) -> u32 {
        self.max_sweeps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmemory::run_in_memory;
    use crate::reference::lp_reference;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_graph::GraphBuilder;

    #[test]
    fn two_cliques_find_two_communities() {
        // two 4-cliques joined by one edge
        let mut b = GraphBuilder::new(8);
        for c in [0u32, 4] {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        b.add_edge(c + i, c + j);
                    }
                }
            }
        }
        b.add_edge(3, 4);
        b.add_edge(4, 3);
        let g = b.build();
        let res = run_in_memory(&g, &LabelPropagation::new());
        let AlgoOutput::Labels(l) = &res.output else {
            panic!("LP outputs labels")
        };
        assert!(l[0] == l[1] && l[1] == l[2] && l[2] == l[3], "{l:?}");
        assert!(l[4] == l[5] && l[5] == l[6] && l[6] == l[7], "{l:?}");
        assert_ne!(l[0], l[4], "cliques must keep distinct communities");
    }

    #[test]
    fn matches_jacobi_reference() {
        let g = uniform_graph(500, 4_000, false, 9);
        let res = run_in_memory(&g, &LabelPropagation::new());
        assert_eq!(
            res.output,
            AlgoOutput::Labels(lp_reference(&g, DEFAULT_MAX_SWEEPS)),
            "operator-core LP must equal the synchronous reference"
        );
    }

    #[test]
    fn filter_shrinks_the_frontier() {
        let g = uniform_graph(400, 3_000, false, 4);
        let res = run_in_memory(&g, &LabelPropagation::new());
        assert!(res.iterations >= 2, "LP should take a few sweeps");
        assert!(
            res.log[1].active_vertices < g.num_vertices() as u64,
            "filter must compact the second frontier"
        );
    }
}
