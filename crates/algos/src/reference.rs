//! Sequential reference oracles.
//!
//! Each out-of-core system's result is checked against these simple,
//! obviously-correct implementations: a queue BFS, Dijkstra, union–find for
//! weakly connected components, dense power-iteration PageRank (same
//! dangling convention as the push variant: dangling mass retired, not
//! redistributed), synchronous (Jacobi) label propagation, and textbook
//! f64 Brandes betweenness.

use std::collections::VecDeque;

use ascetic_graph::{Csr, VertexId, INF_DIST};

/// Hop distances from `source` (queue BFS).
pub fn bfs_reference(g: &Csr, source: VertexId) -> Vec<u32> {
    let mut dist = vec![INF_DIST; g.num_vertices()];
    dist[source as usize] = 0;
    let mut q = VecDeque::new();
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        let d = dist[v as usize];
        for &t in g.neighbors(v) {
            if dist[t as usize] == INF_DIST {
                dist[t as usize] = d + 1;
                q.push_back(t);
            }
        }
    }
    dist
}

/// Shortest-path distances from `source` (binary-heap Dijkstra).
/// Panics if `g` is unweighted.
pub fn sssp_reference(g: &Csr, source: VertexId) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    assert!(g.is_weighted(), "SSSP reference needs weights");
    let mut dist = vec![INF_DIST; g.num_vertices()];
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (&t, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            let nd = d.saturating_add(w);
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(Reverse((nd, t)));
            }
        }
    }
    dist
}

/// Weakly-connected component labels: each vertex gets the minimum vertex
/// id in its component (union–find with path halving; edges treated as
/// undirected).
pub fn cc_reference(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    for (u, v) in g.iter_edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            // union by min id so the final label is the component minimum
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// PageRank by dense power iteration, `rank = (1-d)/n + d·Σ rank(u)/deg(u)`
/// over in-edges, iterated until the L1 delta drops below `tol` (or
/// `max_iters`). Dangling mass is retired (not redistributed) to match the
/// push formulation.
pub fn pagerank_reference(g: &Csr, damping: f64, tol: f64, max_iters: u32) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - damping) / n as f64;
    let mut rank = vec![base; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        next.fill(base);
        for v in 0..n as VertexId {
            let deg = g.degree(v);
            if deg == 0 {
                continue;
            }
            let share = damping * rank[v as usize] / deg as f64;
            for &t in g.neighbors(v) {
                next[t as usize] += share;
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < tol {
            break;
        }
    }
    rank
}

/// Synchronous (Jacobi) label propagation: every vertex starts in its own
/// community, and each sweep every vertex adopts the most frequent label
/// among its in-neighbors as of the *previous* sweep (ties break to the
/// smallest label; vertices with no in-neighbors keep their label). Stops
/// at a fixed point or after `max_sweeps` sweeps — the same cap and
/// tie-break as [`crate::lp::LabelPropagation`].
pub fn lp_reference(g: &Csr, max_sweeps: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    for _ in 0..max_sweeps {
        // histogram of in-neighbor labels, counting multi-edges
        let mut counts: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for v in 0..n as VertexId {
            let l = labels[v as usize];
            for &t in g.neighbors(v) {
                let hist = &mut counts[t as usize];
                match hist.iter_mut().find(|e| e.0 == l) {
                    Some(e) => e.1 += 1,
                    None => hist.push((l, 1)),
                }
            }
        }
        let next: Vec<u32> = (0..n)
            .map(|v| {
                counts[v]
                    .iter()
                    .fold(None, |best: Option<(u32, u32)>, &(l, c)| match best {
                        Some((bl, bc))
                            if (bc, std::cmp::Reverse(bl)) >= (c, std::cmp::Reverse(l)) =>
                        {
                            best
                        }
                        _ => Some((l, c)),
                    })
                    .map_or(labels[v], |(l, _)| l)
            })
            .collect();
        if next == labels {
            break;
        }
        labels = next;
    }
    labels
}

/// Single-source betweenness centrality by textbook Brandes (f64 path
/// counts and dependencies). The source's own centrality is 0 by
/// convention.
pub fn betweenness_reference(g: &Csr, source: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut dist = vec![INF_DIST; n];
    let mut sigma = vec![0.0f64; n];
    let mut order: Vec<VertexId> = Vec::new();
    dist[source as usize] = 0;
    sigma[source as usize] = 1.0;
    let mut q = VecDeque::new();
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        order.push(v);
        let nd = dist[v as usize] + 1;
        for &t in g.neighbors(v) {
            if dist[t as usize] == INF_DIST {
                dist[t as usize] = nd;
                q.push_back(t);
            }
            if dist[t as usize] == nd {
                sigma[t as usize] += sigma[v as usize];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &v in order.iter().rev() {
        let nd = dist[v as usize] + 1;
        for &t in g.neighbors(v) {
            if dist[t as usize] == nd {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[t as usize] * (1.0 + delta[t as usize]);
            }
        }
    }
    delta[source as usize] = 0.0;
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_graph::GraphBuilder;

    #[test]
    fn bfs_on_diamond() {
        // 0 -> {1, 2} -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(bfs_reference(&g, 0), vec![0, 1, 1, 2]);
    }

    #[test]
    fn dijkstra_beats_greedy_hop() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 2, 100);
        b.add_weighted_edge(0, 1, 1);
        b.add_weighted_edge(1, 2, 1);
        let g = b.build();
        assert_eq!(sssp_reference(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn union_find_components() {
        let mut b = GraphBuilder::new(6).symmetrize(true);
        b.add_edge(0, 5);
        b.add_edge(5, 2);
        b.add_edge(1, 3);
        let g = b.build();
        assert_eq!(cc_reference(&g), vec![0, 1, 0, 1, 4, 0]);
    }

    #[test]
    fn cc_treats_directed_edges_as_undirected() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1); // only one direction
        let g = b.build();
        assert_eq!(cc_reference(&g), vec![0, 0, 2]);
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let mut b = GraphBuilder::new(4);
        for v in 0..4u32 {
            b.add_edge(v, (v + 1) % 4);
        }
        let g = b.build();
        let r = pagerank_reference(&g, 0.85, 1e-12, 1_000);
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_empty_graph() {
        assert!(pagerank_reference(&Csr::empty(0), 0.85, 1e-9, 10).is_empty());
    }

    #[test]
    fn lp_clique_converges_to_one_community() {
        // 4-clique: one sweep of ties-to-min then consensus on label 0
        let mut b = GraphBuilder::new(4);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    b.add_edge(i, j);
                }
            }
        }
        let g = b.build();
        assert_eq!(lp_reference(&g, 16), vec![0; 4]);
    }

    #[test]
    fn brandes_on_path() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(betweenness_reference(&g, 0), vec![0.0, 2.0, 1.0, 0.0]);
    }
}
