//! Multi-source BFS (MS-BFS): up to 64 concurrent traversals in one pass.
//!
//! The classic MS-BFS trick (Then et al., VLDB '14): give each source a bit
//! in a per-vertex `u64` mask and push masks with atomic OR — one sweep of
//! the edge data advances all traversals at once. Out-of-core systems love
//! this workload: the per-iteration frontier is the *union* of 64 BFS
//! frontiers, so the active set is denser than one BFS but the edge data is
//! read once instead of 64 times.
//!
//! Not part of the paper's evaluation — included as an extension workload
//! (reachability/centrality seeds) and exercised by the integration tests.

use std::sync::atomic::{AtomicU64, Ordering};

use ascetic_graph::{Csr, VertexId};
use ascetic_par::{AtomicBitmap, Bitmap};

use crate::traits::{AlgoOutput, EdgeSlice, VertexProgram};

/// Concurrent BFS from up to 64 sources; outputs, per vertex, how many of
/// the sources reach it.
#[derive(Clone, Debug)]
pub struct MsBfs {
    /// Source vertices (≤ 64, deduplicated by the caller).
    pub sources: Vec<VertexId>,
}

impl MsBfs {
    /// MS-BFS from `sources`.
    ///
    /// # Panics
    /// Panics if `sources` is empty or holds more than 64 vertices.
    pub fn new(sources: Vec<VertexId>) -> Self {
        assert!(
            !sources.is_empty() && sources.len() <= 64,
            "MS-BFS takes 1..=64 sources"
        );
        MsBfs { sources }
    }
}

/// MS-BFS per-vertex state: reachability masks plus the bulk-synchronous
/// iteration snapshot (see [`crate::bfs::BfsState`]).
pub struct MsBfsState {
    reached: Vec<AtomicU64>,
    frozen: Vec<AtomicU64>,
}

impl VertexProgram for MsBfs {
    type State = MsBfsState;

    fn name(&self) -> &'static str {
        "MS-BFS"
    }

    fn new_state(&self, g: &Csr) -> MsBfsState {
        let reached: Vec<AtomicU64> = (0..g.num_vertices()).map(|_| AtomicU64::new(0)).collect();
        for (i, &s) in self.sources.iter().enumerate() {
            reached[s as usize].fetch_or(1 << i, Ordering::Relaxed);
        }
        MsBfsState {
            reached,
            frozen: (0..g.num_vertices()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        let mut b = Bitmap::new(g.num_vertices());
        for &s in &self.sources {
            b.set(s as usize);
        }
        b
    }

    fn compute(&self, _iteration: u32, active: &Bitmap, state: &MsBfsState) {
        for v in active.iter_ones() {
            state.frozen[v].store(state.reached[v].load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    #[inline]
    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &MsBfsState,
        next: &AtomicBitmap,
    ) {
        let mask = state.frozen[src as usize].load(Ordering::Relaxed);
        if mask == 0 {
            return;
        }
        for (t, _w) in edges.iter() {
            let old = state.reached[t as usize].fetch_or(mask, Ordering::Relaxed);
            if old | mask != old {
                next.set(t as usize);
            }
        }
    }

    fn output(&self, state: &MsBfsState) -> AlgoOutput {
        AlgoOutput::Labels(
            state
                .reached
                .iter()
                .map(|m| m.load(Ordering::Relaxed).count_ones())
                .collect(),
        )
    }
}

/// Reference: run the sources one by one with plain BFS reachability.
pub fn msbfs_reference(g: &Csr, sources: &[VertexId]) -> Vec<u32> {
    let n = g.num_vertices();
    let mut counts = vec![0u32; n];
    for &s in sources {
        let mut seen = vec![false; n];
        seen[s as usize] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &t in g.neighbors(v) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        for (c, &r) in counts.iter_mut().zip(&seen) {
            *c += u32::from(r);
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmemory::run_in_memory;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};
    use ascetic_graph::GraphBuilder;

    #[test]
    fn two_sources_on_a_path() {
        // 0 -> 1 -> 2 -> 3, sources {0, 2}
        let mut b = GraphBuilder::new(4);
        for v in 0..3u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let res = run_in_memory(&g, &MsBfs::new(vec![0, 2]));
        // 0 reached by {0}; 1 by {0}; 2 by {0,2}; 3 by {0,2}
        assert_eq!(res.output, AlgoOutput::Labels(vec![1, 1, 2, 2]));
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..3 {
            let g = uniform_graph(500, 2_500, false, seed);
            let sources: Vec<u32> = (0..32).map(|i| i * 13 % 500).collect();
            let mut dedup = sources.clone();
            dedup.sort_unstable();
            dedup.dedup();
            let res = run_in_memory(&g, &MsBfs::new(dedup.clone()));
            assert_eq!(
                res.output,
                AlgoOutput::Labels(msbfs_reference(&g, &dedup)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = rmat_graph(&RmatConfig::new(10, 6_000, 21).undirected(true));
        let sources = vec![1, 5, 100, 500, 900];
        let res = run_in_memory(&g, &MsBfs::new(sources.clone()));
        assert_eq!(
            res.output,
            AlgoOutput::Labels(msbfs_reference(&g, &sources))
        );
    }

    #[test]
    fn full_64_sources() {
        let g = uniform_graph(300, 2_000, true, 9);
        let sources: Vec<u32> = (0..64).collect();
        let res = run_in_memory(&g, &MsBfs::new(sources.clone()));
        assert_eq!(
            res.output,
            AlgoOutput::Labels(msbfs_reference(&g, &sources))
        );
    }

    #[test]
    fn union_frontier_is_denser_than_single_bfs() {
        let g = uniform_graph(2_000, 16_000, false, 4);
        let single = run_in_memory(&g, &crate::bfs::Bfs::new(0));
        let multi = run_in_memory(&g, &MsBfs::new((0..64).collect()));
        let s_peak = single.log.iter().map(|l| l.active_vertices).max().unwrap();
        let m_peak = multi.log.iter().map(|l| l.active_vertices).max().unwrap();
        assert!(
            m_peak >= s_peak,
            "union frontier {m_peak} vs single {s_peak}"
        );
        // but far less total edge work than 64 separate traversals
        assert!(multi.total_edges < single.total_edges * 64);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_too_many_sources() {
        MsBfs::new((0..65).collect());
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_empty_sources() {
        MsBfs::new(vec![]);
    }
}
