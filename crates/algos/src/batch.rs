//! Batched single-source traversals with per-source outputs.
//!
//! The serve layer folds compatible queued BFS/SSSP jobs over one graph
//! into a single pass. [`crate::msbfs::MsBfs`] already advances up to 64
//! traversals per edge sweep but only reports reachability counts; serving
//! needs every job's *own* answer. These programs keep the MS-BFS frontier
//! union (one read of the edge data for the whole batch) while maintaining
//! per-lane distance arrays, so a batch's [`AlgoOutput::MultiDistances`]
//! lane `i` is byte-identical to running job `i` alone.
//!
//! Why the per-lane distances are exact:
//!
//! * **BFS** is level-synchronous under the frozen-mask discipline: any
//!   vertex that acquires a new source bit during iteration `it` is
//!   activated and pushes its whole mask during iteration `it + 1`, so a
//!   bit's first arrival at a vertex happens exactly at that source's BFS
//!   level. Recording `it + 1` at first-set time is therefore the true hop
//!   distance, and the `fetch_or` return value makes exactly one thread
//!   the recorder per (vertex, lane).
//! * **SSSP** runs one label-correcting Bellman–Ford per lane over the
//!   union frontier. Extra activations from sibling lanes only re-propose
//!   already-known distances (the atomic min rejects them), so each lane
//!   converges to the same fixed point as a solo run.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use ascetic_graph::{Csr, VertexId, INF_DIST};
use ascetic_par::{atomic_min_u32, AtomicBitmap, Bitmap};

use crate::traits::{AlgoOutput, Capabilities, EdgeSlice, VertexProgram};

/// Largest batch either program accepts (one bit per lane in the BFS
/// masks; SSSP keeps the same bound so batches are interchangeable).
pub const MAX_BATCH_LANES: usize = 64;

fn check_lanes(sources: &[VertexId]) {
    assert!(
        !sources.is_empty() && sources.len() <= MAX_BATCH_LANES,
        "batched traversal takes 1..=64 sources"
    );
}

/// Concurrent BFS from up to 64 sources, one distance vector per source.
#[derive(Clone, Debug)]
pub struct MsBfsDistances {
    /// Source vertices, one lane each (duplicates allowed — lanes are
    /// independent).
    pub sources: Vec<VertexId>,
}

impl MsBfsDistances {
    /// Batched BFS from `sources`.
    ///
    /// # Panics
    /// Panics if `sources` is empty or holds more than 64 vertices.
    pub fn new(sources: Vec<VertexId>) -> Self {
        check_lanes(&sources);
        MsBfsDistances { sources }
    }
}

/// Batched-BFS state: MS-BFS reachability masks plus lane-major distances
/// (`dist[v * lanes + lane]`) and the level every bit set this iteration
/// corresponds to.
pub struct MsBfsDistancesState {
    reached: Vec<AtomicU64>,
    frozen: Vec<AtomicU64>,
    dist: Vec<AtomicU32>,
    next_dist: AtomicU32,
    lanes: usize,
}

impl VertexProgram for MsBfsDistances {
    type State = MsBfsDistancesState;

    fn name(&self) -> &'static str {
        "MS-BFS-D"
    }

    fn new_state(&self, g: &Csr) -> MsBfsDistancesState {
        let n = g.num_vertices();
        let lanes = self.sources.len();
        let reached: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let dist: Vec<AtomicU32> = (0..n * lanes).map(|_| AtomicU32::new(INF_DIST)).collect();
        for (i, &s) in self.sources.iter().enumerate() {
            reached[s as usize].fetch_or(1 << i, Ordering::Relaxed);
            dist[s as usize * lanes + i].store(0, Ordering::Relaxed);
        }
        MsBfsDistancesState {
            reached,
            frozen: (0..n).map(|_| AtomicU64::new(0)).collect(),
            dist,
            next_dist: AtomicU32::new(1),
            lanes,
        }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        let mut b = Bitmap::new(g.num_vertices());
        for &s in &self.sources {
            b.set(s as usize);
        }
        b
    }

    fn compute(&self, iteration: u32, active: &Bitmap, state: &MsBfsDistancesState) {
        state.next_dist.store(iteration + 1, Ordering::Relaxed);
        for v in active.iter_ones() {
            state.frozen[v].store(state.reached[v].load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    #[inline]
    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &MsBfsDistancesState,
        next: &AtomicBitmap,
    ) {
        let mask = state.frozen[src as usize].load(Ordering::Relaxed);
        if mask == 0 {
            return;
        }
        let d = state.next_dist.load(Ordering::Relaxed);
        for (t, _w) in edges.iter() {
            let old = state.reached[t as usize].fetch_or(mask, Ordering::Relaxed);
            let mut new = mask & !old;
            if new == 0 {
                continue;
            }
            next.set(t as usize);
            // exactly one thread sees each bit as new, so these stores are
            // per-(vertex, lane) unique
            while new != 0 {
                let lane = new.trailing_zeros() as usize;
                state.dist[t as usize * state.lanes + lane].store(d, Ordering::Relaxed);
                new &= new - 1;
            }
        }
    }

    fn output(&self, state: &MsBfsDistancesState) -> AlgoOutput {
        AlgoOutput::MultiDistances(
            (0..state.lanes)
                .map(|lane| {
                    state
                        .dist
                        .iter()
                        .skip(lane)
                        .step_by(state.lanes)
                        .map(|d| d.load(Ordering::Relaxed))
                        .collect()
                })
                .collect(),
        )
    }
}

/// Concurrent SSSP from up to 64 sources, one distance vector per source.
#[derive(Clone, Debug)]
pub struct MsSsspDistances {
    /// Source vertices, one lane each (duplicates allowed).
    pub sources: Vec<VertexId>,
}

impl MsSsspDistances {
    /// Batched SSSP from `sources`.
    ///
    /// # Panics
    /// Panics if `sources` is empty or holds more than 64 vertices.
    pub fn new(sources: Vec<VertexId>) -> Self {
        check_lanes(&sources);
        MsSsspDistances { sources }
    }
}

/// Batched-SSSP state: lane-major distance array plus the bulk-synchronous
/// iteration snapshot (see [`crate::bfs::BfsState`]).
pub struct MsSsspDistancesState {
    dist: Vec<AtomicU32>,
    frozen: Vec<AtomicU32>,
    lanes: usize,
}

impl VertexProgram for MsSsspDistances {
    type State = MsSsspDistancesState;

    fn name(&self) -> &'static str {
        "MS-SSSP-D"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::new().with_weights()
    }

    fn new_state(&self, g: &Csr) -> MsSsspDistancesState {
        assert!(g.is_weighted(), "SSSP requires a weighted graph");
        let n = g.num_vertices();
        let lanes = self.sources.len();
        let dist: Vec<AtomicU32> = (0..n * lanes).map(|_| AtomicU32::new(INF_DIST)).collect();
        for (i, &s) in self.sources.iter().enumerate() {
            dist[s as usize * lanes + i].store(0, Ordering::Relaxed);
        }
        MsSsspDistancesState {
            dist,
            frozen: (0..n * lanes).map(|_| AtomicU32::new(INF_DIST)).collect(),
            lanes,
        }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        let mut b = Bitmap::new(g.num_vertices());
        for &s in &self.sources {
            b.set(s as usize);
        }
        b
    }

    fn compute(&self, _iteration: u32, active: &Bitmap, state: &MsSsspDistancesState) {
        for v in active.iter_ones() {
            for lane in 0..state.lanes {
                let i = v * state.lanes + lane;
                state.frozen[i].store(state.dist[i].load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
    }

    #[inline]
    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &MsSsspDistancesState,
        next: &AtomicBitmap,
    ) {
        debug_assert!(edges.weighted(), "SSSP must receive weighted slices");
        let lanes = state.lanes;
        let mut d = [INF_DIST; MAX_BATCH_LANES];
        let mut any = false;
        for (lane, dl) in d.iter_mut().enumerate().take(lanes) {
            *dl = state.frozen[src as usize * lanes + lane].load(Ordering::Relaxed);
            any |= *dl != INF_DIST;
        }
        if !any {
            return;
        }
        for (t, w) in edges.iter() {
            for (lane, &dl) in d.iter().enumerate().take(lanes) {
                if dl == INF_DIST {
                    continue;
                }
                let nd = dl.saturating_add(w);
                if atomic_min_u32(&state.dist[t as usize * lanes + lane], nd) {
                    next.set(t as usize);
                }
            }
        }
    }

    fn output(&self, state: &MsSsspDistancesState) -> AlgoOutput {
        AlgoOutput::MultiDistances(
            (0..state.lanes)
                .map(|lane| {
                    state
                        .dist
                        .iter()
                        .skip(lane)
                        .step_by(state.lanes)
                        .map(|d| d.load(Ordering::Relaxed))
                        .collect()
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmemory::run_in_memory;
    use crate::reference::{bfs_reference, sssp_reference};
    use crate::{Bfs, Sssp};
    use ascetic_graph::datasets::weighted_variant;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};
    use ascetic_graph::GraphBuilder;

    fn lanes_of(out: &AlgoOutput) -> &Vec<Vec<u32>> {
        match out {
            AlgoOutput::MultiDistances(v) => v,
            other => panic!("expected MultiDistances, got {other:?}"),
        }
    }

    #[test]
    fn batched_bfs_lanes_on_a_path() {
        // 0 -> 1 -> 2 -> 3, sources {0, 2}
        let mut b = GraphBuilder::new(4);
        for v in 0..3u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let res = run_in_memory(&g, &MsBfsDistances::new(vec![0, 2]));
        assert_eq!(
            lanes_of(&res.output),
            &vec![vec![0, 1, 2, 3], vec![INF_DIST, INF_DIST, 0, 1],]
        );
    }

    #[test]
    fn batched_bfs_matches_individual_runs() {
        for seed in 0..3 {
            let g = uniform_graph(500, 3_000, false, seed);
            let sources: Vec<u32> = (0..48).map(|i| i * 17 % 500).collect();
            let res = run_in_memory(&g, &MsBfsDistances::new(sources.clone()));
            let lanes = lanes_of(&res.output);
            for (i, &s) in sources.iter().enumerate() {
                assert_eq!(lanes[i], bfs_reference(&g, s), "seed {seed} lane {i}");
                let solo = run_in_memory(&g, &Bfs::new(s));
                assert_eq!(solo.output, AlgoOutput::Distances(lanes[i].clone()));
            }
        }
    }

    #[test]
    fn batched_bfs_on_rmat_with_duplicate_sources() {
        let g = rmat_graph(&RmatConfig::new(10, 6_000, 21).undirected(true));
        let sources = vec![1, 5, 1, 500, 5];
        let res = run_in_memory(&g, &MsBfsDistances::new(sources.clone()));
        let lanes = lanes_of(&res.output);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(lanes[i], bfs_reference(&g, s), "lane {i}");
        }
    }

    #[test]
    fn batched_sssp_matches_individual_runs() {
        for seed in 0..3 {
            let g = weighted_variant(&uniform_graph(400, 2_400, false, seed));
            let sources: Vec<u32> = (0..24).map(|i| i * 13 % 400).collect();
            let res = run_in_memory(&g, &MsSsspDistances::new(sources.clone()));
            let lanes = lanes_of(&res.output);
            for (i, &s) in sources.iter().enumerate() {
                assert_eq!(lanes[i], sssp_reference(&g, s), "seed {seed} lane {i}");
                let solo = run_in_memory(&g, &Sssp::new(s));
                assert_eq!(solo.output, AlgoOutput::Distances(lanes[i].clone()));
            }
        }
    }

    #[test]
    fn full_64_lane_batch() {
        let g = uniform_graph(300, 2_000, true, 9);
        let sources: Vec<u32> = (0..64).collect();
        let res = run_in_memory(&g, &MsBfsDistances::new(sources.clone()));
        let lanes = lanes_of(&res.output);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(lanes[i], bfs_reference(&g, s), "lane {i}");
        }
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_oversized_batch() {
        MsBfsDistances::new((0..65).collect());
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_empty_batch() {
        MsSsspDistances::new(vec![]);
    }
}
