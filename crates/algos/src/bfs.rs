//! Breadth-first search (push-based level synchronous).
//!
//! Distances are hop counts from a single source; an edge push proposes
//! `dist(src) + 1` at its target through an atomic min. Activation on
//! improvement makes the frontier exactly the classic BFS level set, giving
//! the paper's tiny active-edge ratios (Table 1: 0.8–4.5 %).

use std::sync::atomic::{AtomicU32, Ordering};

use ascetic_graph::{Csr, GraphPatch, VertexId, INF_DIST};
use ascetic_par::{atomic_min_u32, AtomicBitmap, Bitmap};

use crate::incremental::{forward_closure, in_boundary, RepairPlan};
use crate::traits::{AlgoOutput, Capabilities, EdgeSlice, VertexProgram};

/// BFS from a fixed source.
#[derive(Clone, Copy, Debug)]
pub struct Bfs {
    /// Source vertex.
    pub source: VertexId,
}

impl Bfs {
    /// BFS rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Bfs { source }
    }
}

/// BFS per-vertex state: the distance array plus the iteration-start
/// snapshot of active distances.
///
/// The snapshot (`frozen`) makes execution *bulk-synchronous*: a push uses
/// the source's distance as of the start of the iteration, never a value
/// improved mid-iteration by another thread. This keeps frontier sizes —
/// and therefore every simulated time and transfer number — deterministic
/// and level-accurate, matching the paper's per-iteration bitmap model.
pub struct BfsState {
    dist: Vec<AtomicU32>,
    frozen: Vec<AtomicU32>,
}

impl VertexProgram for Bfs {
    type State = BfsState;

    fn name(&self) -> &'static str {
        "BFS"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::new()
            .with_pull()
            .with_batchable()
            .with_incremental()
    }

    fn new_state(&self, g: &Csr) -> BfsState {
        let dist: Vec<AtomicU32> = (0..g.num_vertices())
            .map(|_| AtomicU32::new(INF_DIST))
            .collect();
        dist[self.source as usize].store(0, Ordering::Relaxed);
        let frozen = (0..g.num_vertices())
            .map(|_| AtomicU32::new(INF_DIST))
            .collect();
        BfsState { dist, frozen }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        let mut b = Bitmap::new(g.num_vertices());
        b.set(self.source as usize);
        b
    }

    fn compute(&self, _iteration: u32, active: &Bitmap, state: &BfsState) {
        for v in active.iter_ones() {
            state.frozen[v].store(state.dist[v].load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    #[inline]
    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &BfsState,
        next: &AtomicBitmap,
    ) {
        let d = state.frozen[src as usize].load(Ordering::Relaxed);
        debug_assert_ne!(d, INF_DIST, "active vertex must have been reached");
        let nd = d + 1;
        for (t, _w) in edges.iter() {
            if atomic_min_u32(&state.dist[t as usize], nd) {
                next.set(t as usize);
            }
        }
    }

    fn output(&self, state: &BfsState) -> AlgoOutput {
        AlgoOutput::Distances(
            state
                .dist
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
        )
    }

    /// Pull candidates: the still-unreached vertices. A push iteration can
    /// only ever improve `INF` vertices (level-synchronous proposals are
    /// `level + 1`, and every reached vertex already sits at or below
    /// that), so restricting the gather to them is exact.
    fn pull_targets(&self, g: &Csr, _active: &Bitmap, state: &BfsState) -> Bitmap {
        let mut b = Bitmap::new(g.num_vertices());
        for (v, d) in state.dist.iter().enumerate() {
            if d.load(Ordering::Relaxed) == INF_DIST {
                b.set(v);
            }
        }
        b
    }

    /// Gather `min(frozen[parent] + 1)` over *all* active in-neighbors.
    ///
    /// No first-hit early exit: frontier vertices may carry mixed frozen
    /// distances (fleet exchange can activate a vertex a level "late"), and
    /// only the full min commutes with the push formulation's per-edge
    /// atomic mins — which is also what keeps the scanned-edge count, and
    /// therefore the simulated kernel time, thread-independent.
    #[inline]
    fn advance_pull(
        &self,
        v: VertexId,
        in_edges: EdgeSlice<'_>,
        active: &Bitmap,
        state: &BfsState,
        next: &AtomicBitmap,
    ) -> u64 {
        let mut best = INF_DIST;
        for (u, _w) in in_edges.iter() {
            if active.get(u as usize) {
                let nd = state.frozen[u as usize].load(Ordering::Relaxed) + 1;
                best = best.min(nd);
            }
        }
        if best != INF_DIST && atomic_min_u32(&state.dist[v as usize], best) {
            next.set(v as usize);
        }
        in_edges.len() as u64
    }

    /// Invalidate-then-settle. Deleted tree edges (`dist[v] == dist[u] + 1`)
    /// root a forward closure over the *old* graph's tight edges — every
    /// vertex whose only witness paths used a deleted edge lies inside it,
    /// because each hop of a shortest witness path is tight. Distances in
    /// the closure reset to `INF`; the settle frontier is the closure's
    /// surviving in-boundary in the *new* graph plus the sources of
    /// inserted edges (inserts only ever improve a monotone fixed point).
    fn repair(
        &self,
        g_old: &Csr,
        g_new: &Csr,
        csc_new: Option<&Csr>,
        patch: &GraphPatch,
        state: &BfsState,
    ) -> RepairPlan {
        let dist = |v: VertexId| state.dist[v as usize].load(Ordering::Relaxed);
        let src = self.source;
        let roots: Vec<VertexId> = patch
            .deletes
            .iter()
            .filter_map(|&(u, v, _)| {
                let (du, dv) = (dist(u), dist(v));
                (v != src && du != INF_DIST && dv != INF_DIST && dv == du + 1).then_some(v)
            })
            .collect();
        let mut seeds = Bitmap::new(g_new.num_vertices());
        if !roots.is_empty() {
            let in_a = forward_closure(g_old, roots, |s, t, _| {
                t != src && dist(s) != INF_DIST && dist(t) == dist(s) + 1
            });
            for (v, &a) in in_a.iter().enumerate() {
                if a {
                    state.dist[v].store(INF_DIST, Ordering::Relaxed);
                }
            }
            in_boundary(g_new, csc_new, &in_a, |p| {
                if dist(p) != INF_DIST {
                    seeds.set(p as usize);
                }
            });
        }
        for &(u, _, _) in &patch.inserts {
            if dist(u) != INF_DIST {
                seeds.set(u as usize);
            }
        }
        RepairPlan::Seeded(seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmemory::run_in_memory;
    use crate::reference::bfs_reference;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};
    use ascetic_graph::GraphBuilder;

    #[test]
    fn line_graph_distances() {
        let mut b = GraphBuilder::new(5);
        for v in 0..4u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let res = run_in_memory(&g, &Bfs::new(0));
        assert_eq!(res.output, AlgoOutput::Distances(vec![0, 1, 2, 3, 4]));
        assert_eq!(res.iterations, 5, "4 frontier levels + empty check");
    }

    #[test]
    fn unreachable_stays_inf() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        // 2, 3 disconnected
        b.add_edge(2, 3);
        let g = b.build();
        let res = run_in_memory(&g, &Bfs::new(0));
        match res.output {
            AlgoOutput::Distances(d) => {
                assert_eq!(d, vec![0, 1, INF_DIST, INF_DIST]);
            }
            _ => panic!("wrong output type"),
        }
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..3 {
            let g = uniform_graph(500, 3_000, false, seed);
            let res = run_in_memory(&g, &Bfs::new(0));
            assert_eq!(
                res.output,
                AlgoOutput::Distances(bfs_reference(&g, 0)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = rmat_graph(&RmatConfig::new(9, 5_000, 3).undirected(true));
        let res = run_in_memory(&g, &Bfs::new(1));
        assert_eq!(res.output, AlgoOutput::Distances(bfs_reference(&g, 1)));
    }

    #[test]
    fn frontier_activity_decreases_eventually() {
        let g = uniform_graph(2_000, 16_000, true, 7);
        let res = run_in_memory(&g, &Bfs::new(0));
        // BFS on a random graph: a few fat levels then empty.
        let total: u64 = res.log.iter().map(|l| l.active_edges).sum();
        assert!(total >= g.num_edges() / 10);
        assert!(res.iterations < 20);
    }
}
