//! Incremental repair plans: per-program affected-frontier seeding.
//!
//! After a mutation batch, a program whose [`crate::Capabilities`] declare
//! `incremental` can *repair* its converged state instead of recomputing
//! from scratch: [`crate::VertexProgram::repair`] inspects the
//! [`ascetic_graph::GraphPatch`], adjusts its state in place (interior mutability — the
//! same atomics the operators use), and returns a [`RepairPlan`] telling
//! the engine where to re-run the operator core from.
//!
//! The monotone programs (BFS, SSSP, CC) use the standard two-half scheme:
//!
//! * **Inserts** only ever *improve* a monotone fixed point, so seeding the
//!   insert sources and re-running advance/filter to quiescence is exact.
//! * **Deletes** may strand values that depended on a removed edge. The
//!   *invalidate-then-settle* pass computes a conservative affected set
//!   `A`: the forward closure, over the **old** graph, of *dependency-
//!   carrying* edges (BFS/SSSP: tight edges `dist[t] == dist[s] + w`; CC:
//!   label-carrying edges `label[s] == label[t]`) from the heads of the
//!   deleted edges that carried a dependency. Every value in `A` is reset
//!   (distances to `INF`, labels to self), and the re-convergence is
//!   seeded from the surviving in-boundary of `A` in the **new** graph.
//!   Any vertex whose every witness path used a deleted edge is in `A` —
//!   on a min-witness path each hop carries the dependency — so values
//!   outside `A` remain exact and the monotone re-run reaches the unique
//!   fixed point: bit-identical to a full recompute.
//!
//! Non-monotone programs return [`RepairPlan::Restart`]: state is rebuilt
//! but the run stays inside the *warm* session (the data-efficiency half
//! of the win — no re-prestore, no arena teardown). PageRank's repair is
//! exactly its residual formulation restarted with fresh residuals.

use ascetic_graph::{Csr, VertexId, Weight};
use ascetic_par::Bitmap;

/// What the repair engine should do after
/// [`crate::VertexProgram::repair`] adjusted program state.
pub enum RepairPlan {
    /// Re-run the operator core to a fixed point from this frontier (which
    /// may be empty — nothing was affected). State was repaired in place.
    Seeded(Bitmap),
    /// Rebuild state and re-run from the program's initial frontier,
    /// inside the warm session.
    Restart,
}

/// The forward closure of `roots` over `g`'s edges that satisfy `carries`
/// (judged on `(src, dst, weight)`; unweighted edges report weight 1).
/// Returns the membership mask of the affected set `A`.
pub(crate) fn forward_closure(
    g: &Csr,
    roots: impl IntoIterator<Item = VertexId>,
    mut carries: impl FnMut(VertexId, VertexId, Weight) -> bool,
) -> Vec<bool> {
    let n = g.num_vertices();
    let mut in_a = vec![false; n];
    let mut stack: Vec<VertexId> = Vec::new();
    for r in roots {
        if !in_a[r as usize] {
            in_a[r as usize] = true;
            stack.push(r);
        }
    }
    while let Some(v) = stack.pop() {
        let targets = g.neighbors(v);
        let weights = g.weights().map(|_| g.edge_weights(v));
        for (i, &t) in targets.iter().enumerate() {
            if in_a[t as usize] {
                continue;
            }
            let w = weights.map_or(1, |ws| ws[i]);
            if carries(v, t, w) {
                in_a[t as usize] = true;
                stack.push(t);
            }
        }
    }
    in_a
}

/// Visit every vertex outside `A` with an out-edge into `A` in the new
/// graph — the surviving boundary that re-seeds the settle pass. Walks the
/// CSC mirror's rows when available (`O(edges into A)`), otherwise scans
/// the CSR once.
pub(crate) fn in_boundary(
    g_new: &Csr,
    csc_new: Option<&Csr>,
    in_a: &[bool],
    mut visit: impl FnMut(VertexId),
) {
    match csc_new {
        Some(csc) => {
            for (v, &a) in in_a.iter().enumerate() {
                if !a {
                    continue;
                }
                for &p in csc.neighbors(v as VertexId) {
                    if !in_a[p as usize] {
                        visit(p);
                    }
                }
            }
        }
        None => {
            for u in 0..g_new.num_vertices() {
                if in_a[u] {
                    continue;
                }
                if g_new
                    .neighbors(u as VertexId)
                    .iter()
                    .any(|&t| in_a[t as usize])
                {
                    visit(u as VertexId);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::cc::Cc;
    use crate::inmemory::{run_in_memory, run_in_memory_from};
    use crate::pr::PageRank;
    use crate::sssp::Sssp;
    use crate::traits::VertexProgram;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_graph::{GraphBuilder, Mutation, PatchableCsr};

    #[test]
    fn closure_follows_only_carrying_edges() {
        // 0 -> 1 -> 2, 0 -> 3; pretend only edges between even-sum pairs carry
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 3);
        let g = b.build();
        let in_a = forward_closure(&g, [1], |s, t, _| s == 1 && t == 2);
        assert_eq!(in_a, vec![false, true, true, false]);
    }

    #[test]
    fn boundary_matches_between_csc_and_scan() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        b.add_edge(2, 3);
        let g = b.build();
        let csc = g.transpose();
        let in_a = vec![false, false, true, true, false];
        let mut with_csc = Vec::new();
        in_boundary(&g, Some(&csc), &in_a, |v| with_csc.push(v));
        let mut scanned = Vec::new();
        in_boundary(&g, None, &in_a, |v| scanned.push(v));
        with_csc.sort_unstable();
        with_csc.dedup();
        scanned.sort_unstable();
        scanned.dedup();
        assert_eq!(with_csc, vec![0, 1]);
        assert_eq!(scanned, vec![0, 1]);
    }

    /// Deterministic churn batch: ~2/3 inserts of fresh random edges, 1/3
    /// deletes of edges present in the current graph.
    fn churn_batch(
        g: &ascetic_graph::Csr,
        weighted: bool,
        count: usize,
        seed: u64,
    ) -> Vec<Mutation> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let n = g.num_vertices() as u64;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            if rng() % 3 == 0 && g.num_edges() > 0 {
                // delete a real edge: pick a vertex with out-degree > 0
                let mut src = (rng() % n) as u32;
                while g.degree(src) == 0 {
                    src = (src + 1) % n as u32;
                }
                let row = g.neighbors(src);
                let dst = row[(rng() % row.len() as u64) as usize];
                out.push(Mutation::Delete { src, dst });
            } else {
                out.push(Mutation::Insert {
                    src: (rng() % n) as u32,
                    dst: (rng() % n) as u32,
                    weight: weighted.then(|| (rng() % 9 + 1) as u32),
                });
            }
        }
        out
    }

    /// The hard oracle at the algorithm layer: converge on the old graph,
    /// patch, repair + settle, and demand bit-identical output to a cold
    /// recompute on the mutated graph — across several mutation batches
    /// applied to the *same* evolving state.
    fn assert_repair_matches_recompute<P: VertexProgram>(prog: &P, weighted: bool, seed: u64) {
        let base = uniform_graph(120, 700, false, seed);
        let base = if weighted {
            ascetic_graph::datasets::weighted_variant(&base)
        } else {
            base
        };
        let mut store = PatchableCsr::with_defaults(&base, true);
        let mut g_old = store.to_csr();
        let mut state = prog.new_state(&g_old);
        run_in_memory_from(&g_old, prog, &state, prog.initial_frontier(&g_old));

        for round in 0..4u64 {
            let batch = churn_batch(&g_old, weighted, 24, seed * 17 + round);
            let patch = store.apply(&batch).expect("valid churn batch");
            let g_new = store.to_csr();
            g_new.validate().expect("patched CSR invariants");
            let csc_new = store.to_csc().expect("mirror requested");

            match prog.repair(&g_old, &g_new, Some(&csc_new), &patch, &state) {
                RepairPlan::Seeded(seeds) => {
                    run_in_memory_from(&g_new, prog, &state, seeds);
                }
                RepairPlan::Restart => {
                    state = prog.new_state(&g_new);
                    run_in_memory_from(&g_new, prog, &state, prog.initial_frontier(&g_new));
                }
            }
            let repaired = prog.output(&state);
            let recomputed = run_in_memory(&g_new, prog).output;
            assert_eq!(repaired, recomputed, "round {round} diverged");
            g_old = g_new;
        }
    }

    #[test]
    fn bfs_repair_is_bit_identical_to_recompute() {
        for seed in 1..=4 {
            assert_repair_matches_recompute(&Bfs::new(0), false, seed);
        }
    }

    #[test]
    fn sssp_repair_is_bit_identical_to_recompute() {
        for seed in 1..=4 {
            assert_repair_matches_recompute(&Sssp::new(0), true, seed);
        }
    }

    #[test]
    fn cc_repair_is_bit_identical_to_recompute() {
        for seed in 1..=4 {
            assert_repair_matches_recompute(&Cc::new(), false, seed);
        }
    }

    #[test]
    fn pr_restart_is_bit_identical_to_recompute() {
        assert_repair_matches_recompute(&PageRank::new(), false, 3);
    }

    #[test]
    fn delete_only_batches_strand_vertices_correctly() {
        // Chain 0 -> 1 -> 2 -> 3 with a shortcut 0 -> 3; delete the chain
        // middle and check distances settle through the survivor.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(0, 3);
        let g = b.build();
        let mut store = PatchableCsr::with_defaults(&g, true);
        let prog = Bfs::new(0);
        let state = prog.new_state(&g);
        run_in_memory_from(&g, &prog, &state, prog.initial_frontier(&g));
        let patch = store.apply(&[Mutation::Delete { src: 1, dst: 2 }]).unwrap();
        let g_new = store.to_csr();
        match prog.repair(&g, &g_new, store.to_csc().as_ref(), &patch, &state) {
            RepairPlan::Seeded(seeds) => {
                run_in_memory_from(&g_new, &prog, &state, seeds);
            }
            RepairPlan::Restart => panic!("BFS declares incremental"),
        }
        assert_eq!(
            prog.output(&state),
            crate::AlgoOutput::Distances(vec![0, 1, ascetic_graph::INF_DIST, 1])
        );
    }
}
