//! The operator core: advance / filter / compute, composed by every engine.
//!
//! Gunrock-style decomposition of a frontier iteration. Programs supply
//! functors through [`VertexProgram`]; runtimes (session, fleet, serve,
//! baselines, the in-memory oracle) call these free functions instead of
//! invoking program hooks directly, so each engine feature — prefetch,
//! compression, direction choice, batching, fleet exchange, tracing — is
//! implemented once here and inherited by every workload:
//!
//! * [`compute`] — per-vertex map over the frozen active set, run once per
//!   iteration on the orchestration thread;
//! * [`advance`] / [`advance_pull`] + [`pull_frontier`] — edge expansion of
//!   one vertex's row (or a piece of it), push or pull, single- or
//!   multi-lane (lanes live inside the program's state, as in MS-BFS);
//! * [`filter`] — frontier compaction through the program's retain
//!   predicate;
//! * [`advance_all`] — whole-frontier push advance over a host CSR, the
//!   composition the in-memory oracle uses;
//! * [`phase_transition`] — the multi-phase handshake, consulted when a
//!   frontier drains.
//!
//! The operators are deliberately thin: determinism rests on the same
//! contracts as before (frozen snapshots in `compute`, commuting atomic
//! reductions in advance, pure predicates in filter), and the engines keep
//! their own batching/cost accounting around these calls.

use ascetic_graph::{Csr, VertexId};
use ascetic_par::{parallel_for, AtomicBitmap, Bitmap};

use crate::traits::{EdgeSlice, VertexProgram};

/// Run the *compute* operator for one iteration: the program's per-vertex
/// map over the frozen `active` set. Must be called exactly once per
/// iteration, before any advance of that iteration, on the orchestration
/// thread.
#[inline]
pub fn compute<P: VertexProgram>(prog: &P, iteration: u32, active: &Bitmap, state: &P::State) {
    prog.compute(iteration, active, state);
}

/// Run the push *advance* operator over (a piece of) one active vertex's
/// out-edges. Engines may deliver a row in several pieces, but each edge
/// exactly once per iteration.
#[inline]
pub fn advance<P: VertexProgram>(
    prog: &P,
    src: VertexId,
    edges: EdgeSlice<'_>,
    state: &P::State,
    next: &AtomicBitmap,
) {
    prog.advance_push(src, edges, state, next);
}

/// The candidate set a pull iteration must gather into, given the frozen
/// `active` frontier. Only meaningful when the program's
/// [`crate::Capabilities::pull`] is on.
#[inline]
pub fn pull_frontier<P: VertexProgram>(
    prog: &P,
    g: &Csr,
    active: &Bitmap,
    state: &P::State,
) -> Bitmap {
    prog.pull_targets(g, active, state)
}

/// Run the pull *advance* operator over (a piece of) one candidate
/// vertex's in-edges; returns the number of edges actually scanned for the
/// kernel cost model.
#[inline]
pub fn advance_pull<P: VertexProgram>(
    prog: &P,
    v: VertexId,
    in_edges: EdgeSlice<'_>,
    active: &Bitmap,
    state: &P::State,
    next: &AtomicBitmap,
) -> u64 {
    prog.advance_pull(v, in_edges, active, state, next)
}

/// Run the *filter* operator: compact a freshly snapshotted next frontier
/// through the program's retain predicate. The default predicate keeps
/// everything, in which case the frontier passes through bit-for-bit
/// unchanged (exact-frontier programs pay one scan of their set bits).
pub fn filter<P: VertexProgram>(prog: &P, frontier: Bitmap, state: &P::State) -> Bitmap {
    let mut out = frontier;
    let dropped: Vec<usize> = out
        .iter_ones()
        .filter(|&v| !prog.retain(v as VertexId, state))
        .collect();
    for v in dropped {
        out.clear(v);
    }
    out
}

/// Run one whole-frontier push advance over a host CSR: compute, then a
/// parallel advance of every active row, then filter. Returns the
/// compacted next frontier plus the active-edge count — the in-memory
/// oracle's entire iteration, and the reference composition the
/// out-of-core engines mirror around their data movement.
pub fn advance_all<P: VertexProgram>(
    prog: &P,
    g: &Csr,
    iteration: u32,
    active: &Bitmap,
    state: &P::State,
) -> (Bitmap, u64) {
    compute(prog, iteration, active, state);
    let nodes = active.to_indices();
    let active_edges: u64 = nodes.iter().map(|&v| g.degree(v)).sum();
    let next = AtomicBitmap::new(g.num_vertices());
    let weights_all = g.weights();
    parallel_for(nodes.len(), |i| {
        let v = nodes[i];
        let r = g.edge_range(v);
        let (s, e) = (r.start as usize, r.end as usize);
        let slice = EdgeSlice::split(&g.targets()[s..e], weights_all.map(|w| &w[s..e]));
        advance(prog, v, slice, state, &next);
    });
    (filter(prog, next.snapshot(), state), active_edges)
}

/// Consult the multi-phase handshake after a frontier drains: `finished`
/// phases are complete. Returns the next phase's (non-empty) initial
/// frontier, or `None` when the program is done. Single-phase programs
/// (the default `next_phase`) always get `None`.
pub fn phase_transition<P: VertexProgram>(
    prog: &P,
    finished: u32,
    g: &Csr,
    state: &P::State,
) -> Option<Bitmap> {
    let f = prog.next_phase(finished, g, state)?;
    if f.is_all_zero() {
        None
    } else {
        Some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::AlgoOutput;
    use ascetic_graph::generators::uniform_graph;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A tiny program that activates everything but retains only even
    /// vertices — exercises the filter operator doing real compaction.
    struct EvenHops;
    impl VertexProgram for EvenHops {
        type State = Vec<AtomicU32>;
        fn name(&self) -> &'static str {
            "even-hops"
        }
        fn new_state(&self, g: &Csr) -> Self::State {
            (0..g.num_vertices()).map(|_| AtomicU32::new(0)).collect()
        }
        fn initial_frontier(&self, g: &Csr) -> Bitmap {
            let mut b = Bitmap::new(g.num_vertices());
            b.set(0);
            b
        }
        fn advance_push(
            &self,
            _src: VertexId,
            edges: EdgeSlice<'_>,
            state: &Self::State,
            next: &AtomicBitmap,
        ) {
            for (t, _) in edges.iter() {
                state[t as usize].fetch_add(1, Ordering::Relaxed);
                next.set(t as usize);
            }
        }
        fn retain(&self, v: VertexId, _state: &Self::State) -> bool {
            v.is_multiple_of(2)
        }
        fn max_iterations(&self) -> u32 {
            3
        }
        fn output(&self, state: &Self::State) -> AlgoOutput {
            AlgoOutput::Labels(state.iter().map(|x| x.load(Ordering::Relaxed)).collect())
        }
    }

    #[test]
    fn filter_compacts_through_retain() {
        let g = uniform_graph(64, 512, false, 7);
        let prog = EvenHops;
        let state = prog.new_state(&g);
        let active = prog.initial_frontier(&g);
        let (next, edges) = advance_all(&prog, &g, 0, &active, &state);
        assert_eq!(edges, g.degree(0));
        assert!(next.iter_ones().all(|v| v % 2 == 0), "odd vertex survived");
    }

    #[test]
    fn default_retain_is_identity() {
        let g = uniform_graph(32, 128, false, 3);
        let prog = crate::Bfs::new(0);
        let state = prog.new_state(&g);
        let mut b = Bitmap::new(g.num_vertices());
        for v in [1usize, 5, 17, 31] {
            b.set(v);
        }
        let before: Vec<usize> = b.iter_ones().collect();
        let after = filter(&prog, b, &state);
        assert_eq!(after.iter_ones().collect::<Vec<_>>(), before);
    }

    #[test]
    fn single_phase_programs_decline_transition() {
        let g = uniform_graph(16, 64, false, 1);
        let prog = crate::Bfs::new(0);
        let state = prog.new_state(&g);
        assert!(phase_transition(&prog, 0, &g, &state).is_none());
    }
}
