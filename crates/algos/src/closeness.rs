//! Sampled closeness centrality via multi-source BFS with distances.
//!
//! Exact closeness needs all-pairs BFS; the standard estimator (Eppstein &
//! Wang) samples k sources and averages their distances. This program runs
//! up to 16 sampled BFS traversals concurrently, packing each source's hop
//! distance into 4 bits of a per-vertex `AtomicU64` (distances saturate at
//! 15 hops — ample for the small-world graphs this workspace targets; the
//! saturation is part of the estimator's contract and is tested).
//!
//! The packed-lane update is monotone (per-lane minimum), so the program is
//! correct under Ascetic's split/partial edge delivery like every other
//! push program here. An extension workload, not part of the paper.

use std::sync::atomic::{AtomicU64, Ordering};

use ascetic_graph::{Csr, VertexId};
use ascetic_par::{AtomicBitmap, Bitmap};

use crate::traits::{AlgoOutput, EdgeSlice, VertexProgram};

/// Number of 4-bit distance lanes per vertex word.
const LANES: usize = 16;
/// Per-lane saturation value ("unreached or ≥ 15 hops").
const SAT: u64 = 0xF;

/// Closeness-centrality sampling program (≤ 16 sources).
///
/// Output: per vertex, the **sum of hop distances to the sampled sources**
/// (saturated per source at 15), as `Labels`. Downstream, closeness is
/// `k / sum` — kept as an integer sum so results stay exactly comparable
/// across systems.
#[derive(Clone, Debug)]
pub struct Closeness {
    /// Sampled sources (≤ 16, deduplicated by the caller).
    pub sources: Vec<VertexId>,
}

impl Closeness {
    /// Closeness sampling from `sources`.
    ///
    /// # Panics
    /// Panics if `sources` is empty or holds more than 16 vertices.
    pub fn new(sources: Vec<VertexId>) -> Self {
        assert!(
            !sources.is_empty() && sources.len() <= LANES,
            "closeness sampling takes 1..=16 sources"
        );
        Closeness { sources }
    }
}

/// Pack `dist` into lane `i`.
#[inline]
fn lane(i: usize, dist: u64) -> u64 {
    dist << (4 * i)
}

/// Per-lane saturating minimum of two packed words.
///
/// Works lane-by-lane; 16 lanes is cheap and keeps the logic obvious
/// (a SWAR version is possible but not worth the subtlety here).
#[inline]
fn packed_min(a: u64, b: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..LANES {
        let (la, lb) = (a >> (4 * i) & SAT, b >> (4 * i) & SAT);
        out |= lane(i, la.min(lb));
    }
    out
}

/// Per-lane saturating increment (+1 hop, capped at 15).
#[inline]
fn packed_inc(a: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..LANES {
        let la = a >> (4 * i) & SAT;
        out |= lane(i, (la + 1).min(SAT));
    }
    out
}

/// Closeness per-vertex state: packed distances plus the iteration
/// snapshot (bulk-synchronous; see [`crate::bfs::BfsState`]).
pub struct ClosenessState {
    packed: Vec<AtomicU64>,
    frozen: Vec<AtomicU64>,
}

impl VertexProgram for Closeness {
    type State = ClosenessState;

    fn name(&self) -> &'static str {
        "Closeness"
    }

    fn new_state(&self, g: &Csr) -> ClosenessState {
        // all lanes saturated ("unreached"), then source lanes zeroed
        let all_sat = (0..LANES).fold(0u64, |acc, i| acc | lane(i, SAT));
        let packed: Vec<AtomicU64> = (0..g.num_vertices())
            .map(|_| AtomicU64::new(all_sat))
            .collect();
        for (i, &s) in self.sources.iter().enumerate() {
            let v = &packed[s as usize];
            let cur = v.load(Ordering::Relaxed);
            v.store(cur & !lane(i, SAT), Ordering::Relaxed);
        }
        ClosenessState {
            packed,
            frozen: (0..g.num_vertices()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        let mut b = Bitmap::new(g.num_vertices());
        for &s in &self.sources {
            b.set(s as usize);
        }
        b
    }

    fn compute(&self, _iteration: u32, active: &Bitmap, state: &ClosenessState) {
        for v in active.iter_ones() {
            state.frozen[v].store(state.packed[v].load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    #[inline]
    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &ClosenessState,
        next: &AtomicBitmap,
    ) {
        let push = packed_inc(state.frozen[src as usize].load(Ordering::Relaxed));
        for (t, _w) in edges.iter() {
            // CAS loop computing the per-lane minimum
            let cell = &state.packed[t as usize];
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let merged = packed_min(cur, push);
                if merged == cur {
                    break;
                }
                match cell.compare_exchange_weak(cur, merged, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => {
                        next.set(t as usize);
                        break;
                    }
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    fn output(&self, state: &ClosenessState) -> AlgoOutput {
        let k = self.sources.len();
        AlgoOutput::Labels(
            state
                .packed
                .iter()
                .map(|p| {
                    let w = p.load(Ordering::Relaxed);
                    (0..k).map(|i| (w >> (4 * i) & SAT) as u32).sum()
                })
                .collect(),
        )
    }
}

/// Reference: one saturated BFS per source, summed.
pub fn closeness_reference(g: &Csr, sources: &[VertexId]) -> Vec<u32> {
    use std::collections::VecDeque;
    let n = g.num_vertices();
    let mut sums = vec![0u32; n];
    for &s in sources {
        let mut dist = vec![u32::MAX; n];
        dist[s as usize] = 0;
        let mut q = VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            for &t in g.neighbors(v) {
                if dist[t as usize] == u32::MAX {
                    dist[t as usize] = dist[v as usize] + 1;
                    q.push_back(t);
                }
            }
        }
        for (sum, &d) in sums.iter_mut().zip(&dist) {
            *sum += if d == u32::MAX {
                SAT as u32
            } else {
                d.min(SAT as u32)
            };
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmemory::run_in_memory;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};
    use ascetic_graph::GraphBuilder;

    #[test]
    fn packed_helpers() {
        let a = lane(0, 3) | lane(1, SAT) | lane(15, 7);
        let b = lane(0, 5) | lane(1, 2) | lane(15, 7);
        let m = packed_min(a, b);
        assert_eq!(m & SAT, 3);
        assert_eq!(m >> 4 & SAT, 2);
        assert_eq!(m >> 60 & SAT, 7);
        let inc = packed_inc(lane(0, 14) | lane(1, SAT));
        assert_eq!(inc & SAT, 15);
        assert_eq!(inc >> 4 & SAT, SAT, "saturation holds");
    }

    #[test]
    fn path_distances_sum() {
        // 0 - 1 - 2 - 3 undirected; sources {0, 3}
        let mut b = GraphBuilder::new(4).symmetrize(true);
        for v in 0..3u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let res = run_in_memory(&g, &Closeness::new(vec![0, 3]));
        // sums: v0: 0+3, v1: 1+2, v2: 2+1, v3: 3+0
        assert_eq!(res.output, AlgoOutput::Labels(vec![3, 3, 3, 3]));
    }

    #[test]
    fn unreached_saturates() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build(); // vertex 2 disconnected
        let res = run_in_memory(&g, &Closeness::new(vec![0]));
        assert_eq!(res.output, AlgoOutput::Labels(vec![0, 1, SAT as u32]));
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..3 {
            let g = uniform_graph(400, 2_400, true, seed);
            let sources: Vec<u32> = (0..16).map(|i| i * 23 % 400).collect();
            let mut dedup = sources;
            dedup.sort_unstable();
            dedup.dedup();
            let res = run_in_memory(&g, &Closeness::new(dedup.clone()));
            assert_eq!(
                res.output,
                AlgoOutput::Labels(closeness_reference(&g, &dedup)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = rmat_graph(&RmatConfig::new(10, 7_000, 31).undirected(true));
        let sources = vec![2, 90, 400, 777];
        let res = run_in_memory(&g, &Closeness::new(sources.clone()));
        assert_eq!(
            res.output,
            AlgoOutput::Labels(closeness_reference(&g, &sources))
        );
    }

    #[test]
    fn deep_graph_saturates_consistently() {
        // a 40-vertex path: distances beyond 15 saturate identically in the
        // program and the reference
        let mut b = GraphBuilder::new(40).symmetrize(true);
        for v in 0..39u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let res = run_in_memory(&g, &Closeness::new(vec![0]));
        assert_eq!(
            res.output,
            AlgoOutput::Labels(closeness_reference(&g, &[0]))
        );
        if let AlgoOutput::Labels(l) = &res.output {
            assert_eq!(l[39], SAT as u32, "distance 39 saturates to 15");
        }
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn rejects_too_many_sources() {
        Closeness::new((0..17).collect());
    }
}
