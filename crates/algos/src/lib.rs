#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic-algos — the vertex-centric programming model and algorithms
//!
//! The paper evaluates four push-based vertex-centric algorithms: BFS, SSSP,
//! CC and PageRank ("We choose the push-based vertex-centric programming
//! model... We use a vertex-centric model in the framework and keep all
//! vertices in the GPU memory").
//!
//! * [`traits`] — the [`VertexProgram`] abstraction every out-of-core system
//!   executes: per-active-vertex edge processing over an [`EdgeSlice`] whose
//!   payload may live in any device region, plus next-frontier activation
//!   through an atomic bitmap.
//! * [`bfs`] / [`sssp`] / [`cc`] / [`pr`] — the four programs. PR is the
//!   residual ("delta") formulation, which is what gives the paper's
//!   decaying-but-high active ratios (Table 1: 25–29 %).
//! * [`mod@reference`] — simple sequential oracles (queue BFS, Bellman–Ford,
//!   union–find, power iteration) used by tests to verify every system.
//! * [`inmemory`] — a memory-unconstrained runner used as the semantic
//!   oracle and to measure per-iteration active-edge ratios (Table 1).

pub mod batch;
pub mod bfs;
pub mod cc;
pub mod closeness;
pub mod inmemory;
pub mod kcore;
pub mod msbfs;
pub mod pr;
pub mod reference;
pub mod sssp;
pub mod traits;

pub use batch::{MsBfsDistances, MsSsspDistances, MAX_BATCH_LANES};
pub use bfs::Bfs;
pub use cc::Cc;
pub use closeness::Closeness;
pub use inmemory::{run_in_memory, InMemoryResult, IterationLog};
pub use kcore::KCore;
pub use msbfs::MsBfs;
pub use pr::PageRank;
pub use sssp::Sssp;
pub use traits::{AlgoOutput, EdgeSlice, TraversalDirection, VertexProgram};
