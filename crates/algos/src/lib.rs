#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic-algos — the operator core and its algorithm programs
//!
//! The paper evaluates four push-based vertex-centric algorithms: BFS, SSSP,
//! CC and PageRank ("We choose the push-based vertex-centric programming
//! model... We use a vertex-centric model in the framework and keep all
//! vertices in the GPU memory"). This crate factors that model Gunrock-style
//! into a small set of composable operators so every engine feature is
//! implemented once and inherited by all workloads:
//!
//! * [`traits`] — the [`VertexProgram`] abstraction: per-edge/per-vertex
//!   *functors* (push/pull advance, compute, retain, phase transition) over
//!   an [`EdgeSlice`] whose payload may live in any device region, plus a
//!   [`Capabilities`] descriptor engines consult instead of probing
//!   default-method hooks.
//! * [`ops`] — the advance / filter / compute operators every runtime
//!   (session, fleet, serve, baselines, the in-memory oracle) drives.
//! * [`registry`] — the one list of shipped algorithms ([`Algo::ALL`]) with
//!   parse/display and per-algo metadata; CLI, bench and serve dispatch
//!   through it, so adding a program is a one-file change.
//! * [`bfs`] / [`sssp`] / [`cc`] / [`pr`] — the paper's four programs. PR is
//!   the residual ("delta") formulation, which is what gives the paper's
//!   decaying-but-high active ratios (Table 1: 25–29 %).
//! * [`kcore`] / [`msbfs`] / [`closeness`] / [`batch`] — extension programs
//!   (peeling, 64-lane traversal, sampled centrality, serve batching).
//! * [`lp`] / [`betweenness`] — label-propagation community detection and
//!   Brandes betweenness centrality (the first multi-phase program), each a
//!   ~100-line program on the operator core.
//! * [`incremental`] — repair plans for streaming mutations: programs that
//!   declare [`Capabilities::incremental`] patch converged state in place
//!   after an edge batch and re-run the operators from an affected-vertex
//!   frontier (the `ascetic-mutate` half that lives with the algorithms).
//! * [`mod@reference`] — simple sequential oracles (queue BFS, Bellman–Ford,
//!   union–find, power iteration, Jacobi LP, f64 Brandes) used by tests to
//!   verify every system.
//! * [`inmemory`] — a memory-unconstrained runner used as the semantic
//!   oracle and to measure per-iteration active-edge ratios (Table 1).

pub mod batch;
pub mod betweenness;
pub mod bfs;
pub mod cc;
pub mod closeness;
pub mod incremental;
pub mod inmemory;
pub mod kcore;
pub mod lp;
pub mod msbfs;
pub mod ops;
pub mod pr;
pub mod reference;
pub mod registry;
pub mod sssp;
pub mod traits;

pub use batch::{MsBfsDistances, MsSsspDistances, MAX_BATCH_LANES};
pub use betweenness::Betweenness;
pub use bfs::Bfs;
pub use cc::Cc;
pub use closeness::Closeness;
pub use incremental::RepairPlan;
pub use inmemory::{run_in_memory, run_in_memory_from, InMemoryResult, IterationLog};
pub use kcore::KCore;
pub use lp::LabelPropagation;
pub use msbfs::MsBfs;
pub use pr::PageRank;
pub use registry::{Algo, AnyProgram, ProgramOpts};
pub use sssp::Sssp;
pub use traits::{
    AlgoError, AlgoOutput, Capabilities, EdgeSlice, TraversalDirection, VertexProgram,
};
