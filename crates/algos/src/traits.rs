//! The vertex-program abstraction behind the operator core.
//!
//! Every out-of-core system in this workspace (PT, UVM, Subway, Ascetic)
//! executes the same programs through this trait. A program declares
//! *functors* — a push [`VertexProgram::advance_push`], an optional pull
//! gather ([`VertexProgram::pull_targets`] /
//! [`VertexProgram::advance_pull`]), a per-iteration
//! [`VertexProgram::compute`] map, a [`VertexProgram::retain`] filter
//! predicate and an optional [`VertexProgram::next_phase`] transition —
//! plus a [`Capabilities`] descriptor. The engines in [`crate::ops`]
//! compose these into the advance → filter → compute loop that every
//! runtime (session, fleet, serve, baselines, in-memory oracle) drives;
//! programs never own a loop. The contract mirrors the paper's workflow
//! (Figure 4):
//!
//! 1. the driver owns an `ActiveBitmap`; at the start of each iteration it
//!    snapshots it and runs the *compute* operator
//!    ([`VertexProgram::compute`]);
//! 2. the system materializes each active vertex's edge payload *somewhere*
//!    (a partition buffer, the static region, a gathered on-demand
//!    subgraph, UVM pages) and hands it to the *advance* operator
//!    ([`VertexProgram::advance_push`]) as an [`EdgeSlice`] — programs
//!    never know or care where the bytes came from;
//! 3. `advance_push` pushes updates into the (device-resident, atomic)
//!    vertex state and marks activated vertices in the *next* frontier;
//! 4. the *filter* operator compacts the next frontier through
//!    [`VertexProgram::retain`];
//! 5. when the frontier comes back empty the driver offers the program a
//!    phase transition ([`VertexProgram::next_phase`]); the run ends when
//!    that declines.
//!
//! A vertex's edges may be delivered in several pieces within one iteration
//! (Subway splits oversized subgraphs; Ascetic splits across the two
//! regions' boundary chunk), so `advance_push` must be correct under
//! partial, repeated-source delivery — which push-style atomic reductions
//! are naturally. Each edge is delivered exactly once per iteration, so
//! per-edge accumulations (PR residual scatter, betweenness path counts)
//! are exact.

use ascetic_graph::{Csr, GraphPatch, VertexId};

use crate::incremental::RepairPlan;
use ascetic_par::{AtomicBitmap, Bitmap};

/// A view over the edge payload of one vertex (or a piece of it).
///
/// Two zero-copy layouts are supported:
/// * **Packed** — the device serialization format produced by
///   [`Csr::write_edge_words`]: `[target]` per edge unweighted or
///   `[target, weight]` interleaved (what the partition buffers, on-demand
///   region and static region hold);
/// * **Split** — the host CSR's separate target/weight arrays (what the
///   in-memory oracle and UVM runner read directly).
#[derive(Clone, Copy, Debug)]
pub enum EdgeSlice<'a> {
    /// Interleaved device format.
    Packed {
        /// `[t]` or `[t, w]` repeated.
        words: &'a [u32],
        /// Whether entries carry weights.
        weighted: bool,
    },
    /// Host CSR format.
    Split {
        /// Edge targets.
        targets: &'a [u32],
        /// Optional parallel weights.
        weights: Option<&'a [u32]>,
    },
}

impl<'a> EdgeSlice<'a> {
    /// Wrap a packed word slice. Debug-panics if a weighted slice has odd
    /// length.
    #[inline]
    pub fn new(words: &'a [u32], weighted: bool) -> Self {
        if weighted {
            debug_assert!(
                words.len().is_multiple_of(2),
                "weighted slice must be even-length"
            );
        }
        EdgeSlice::Packed { words, weighted }
    }

    /// Wrap host CSR arrays. Debug-panics on length mismatch.
    #[inline]
    pub fn split(targets: &'a [u32], weights: Option<&'a [u32]>) -> Self {
        if let Some(w) = weights {
            debug_assert_eq!(w.len(), targets.len(), "weights length mismatch");
        }
        EdgeSlice::Split { targets, weights }
    }

    /// Number of edges in the slice.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            EdgeSlice::Packed {
                words,
                weighted: true,
            } => words.len() / 2,
            EdgeSlice::Packed {
                words,
                weighted: false,
            } => words.len(),
            EdgeSlice::Split { targets, .. } => targets.len(),
        }
    }

    /// Whether the slice holds zero edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether entries carry weights.
    #[inline]
    pub fn weighted(&self) -> bool {
        match self {
            EdgeSlice::Packed { weighted, .. } => *weighted,
            EdgeSlice::Split { weights, .. } => weights.is_some(),
        }
    }

    /// Iterate `(target, weight)`; unweighted edges yield weight 1.
    #[inline]
    pub fn iter(&self) -> EdgeSliceIter<'a> {
        match *self {
            EdgeSlice::Packed { words, weighted } => EdgeSliceIter::Packed { words, weighted },
            EdgeSlice::Split { targets, weights } => EdgeSliceIter::Split { targets, weights },
        }
    }
}

/// Iterator over an [`EdgeSlice`].
pub enum EdgeSliceIter<'a> {
    /// Interleaved walk.
    Packed {
        /// Remaining words.
        words: &'a [u32],
        /// Entry width flag.
        weighted: bool,
    },
    /// Parallel-array walk.
    Split {
        /// Remaining targets.
        targets: &'a [u32],
        /// Remaining weights.
        weights: Option<&'a [u32]>,
    },
}

impl<'a> Iterator for EdgeSliceIter<'a> {
    type Item = (VertexId, u32);
    #[inline]
    fn next(&mut self) -> Option<(VertexId, u32)> {
        match self {
            EdgeSliceIter::Packed {
                words,
                weighted: true,
            } => match words {
                [t, w, rest @ ..] => {
                    let item = (*t, *w);
                    *words = rest;
                    Some(item)
                }
                _ => None,
            },
            EdgeSliceIter::Packed {
                words,
                weighted: false,
            } => match words {
                [t, rest @ ..] => {
                    let item = (*t, 1);
                    *words = rest;
                    Some(item)
                }
                _ => None,
            },
            EdgeSliceIter::Split { targets, weights } => match targets {
                [t, rest @ ..] => {
                    let w = match weights {
                        Some([w, wrest @ ..]) => {
                            let w = *w;
                            *weights = Some(wrest);
                            w
                        }
                        _ => 1,
                    };
                    let item = (*t, w);
                    *targets = rest;
                    Some(item)
                }
                _ => None,
            },
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            EdgeSliceIter::Packed {
                words,
                weighted: true,
            } => words.len() / 2,
            EdgeSliceIter::Packed {
                words,
                weighted: false,
            } => words.len(),
            EdgeSliceIter::Split { targets, .. } => targets.len(),
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for EdgeSliceIter<'_> {}

/// Final result of a program run, for oracle comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum AlgoOutput {
    /// Per-vertex hop distance or shortest-path distance
    /// ([`ascetic_graph::INF_DIST`] = unreachable).
    Distances(Vec<u32>),
    /// Per-vertex component label.
    Labels(Vec<u32>),
    /// Per-vertex PageRank score.
    Ranks(Vec<f64>),
    /// One distance vector per source of a batched multi-source run
    /// (lane-major: `v[lane][vertex]`), in the batch's source order.
    MultiDistances(Vec<Vec<u32>>),
}

impl AlgoOutput {
    /// Compare against another output; floats compare with `tol`
    /// (absolute). Returns the first mismatching vertex, if any.
    pub fn first_mismatch(&self, other: &AlgoOutput, tol: f64) -> Option<usize> {
        match (self, other) {
            (AlgoOutput::Distances(a), AlgoOutput::Distances(b))
            | (AlgoOutput::Labels(a), AlgoOutput::Labels(b)) => {
                if a.len() != b.len() {
                    return Some(a.len().min(b.len()));
                }
                a.iter().zip(b).position(|(x, y)| x != y)
            }
            (AlgoOutput::Ranks(a), AlgoOutput::Ranks(b)) => {
                if a.len() != b.len() {
                    return Some(a.len().min(b.len()));
                }
                a.iter().zip(b).position(|(x, y)| (x - y).abs() > tol)
            }
            (AlgoOutput::MultiDistances(a), AlgoOutput::MultiDistances(b)) => {
                if a.len() != b.len() {
                    return Some(a.len().min(b.len()));
                }
                // report the first mismatching vertex across any lane
                for (la, lb) in a.iter().zip(b) {
                    if la.len() != lb.len() {
                        return Some(la.len().min(lb.len()));
                    }
                    if let Some(v) = la.iter().zip(lb).position(|(x, y)| x != y) {
                        return Some(v);
                    }
                }
                None
            }
            _ => Some(0),
        }
    }

    /// FNV-1a over the output's canonical little-endian bytes: a compact,
    /// deterministic fingerprint for byte-identity oracles (across serve
    /// policies, traversal directions, thread and device counts).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        match self {
            AlgoOutput::Distances(v) | AlgoOutput::Labels(v) => {
                eat(&[1u8]);
                for x in v {
                    eat(&x.to_le_bytes());
                }
            }
            AlgoOutput::Ranks(v) => {
                eat(&[2u8]);
                for x in v {
                    eat(&x.to_bits().to_le_bytes());
                }
            }
            AlgoOutput::MultiDistances(vs) => {
                eat(&[3u8]);
                for v in vs {
                    eat(&(v.len() as u64).to_le_bytes());
                    for x in v {
                        eat(&x.to_le_bytes());
                    }
                }
            }
        }
        h
    }
}

/// Which orientation an iteration traverses edges in.
///
/// * **Push** — the classic mode: scan *active* vertices' out-edges and
///   scatter updates to their targets (CSR rows).
/// * **Pull** — direction-optimizing mode: scan candidate *target*
///   vertices' in-edges (CSC rows of the transposed graph) and gather from
///   active parents. Profitable when the frontier is dense, because the
///   pull demand is bounded by the in-degree of the *unconverged* vertices
///   rather than the out-degree of the whole frontier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraversalDirection {
    /// Scatter over active vertices' out-edges.
    Push,
    /// Gather over candidate vertices' in-edges.
    Pull,
}

/// What a program can do and what its frontier traffic costs — declared
/// once, consulted by every engine instead of per-feature default-method
/// probes. Engines promise never to invoke a functor whose capability bit
/// is off: a program with `pull: false` will never see its pull functors
/// called, so the benign defaults on the trait are unreachable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// The program reads edge weights (doubles edge bytes — the paper's
    /// SSSP). Engines assert the graph variant matches.
    pub weights: bool,
    /// The program has an exact pull-mode gather
    /// ([`VertexProgram::pull_targets`] / [`VertexProgram::advance_pull`])
    /// and may be scheduled pull or adaptive.
    pub pull: bool,
    /// Same-kind single-source queries can be fused into one multi-lane
    /// run (the serve layer batches BFS/SSSP through their `MS-*-D`
    /// variants).
    pub batchable: bool,
    /// Wire bytes a fleet must ship per remote frontier vertex at an
    /// iteration boundary: the vertex id plus whatever per-vertex value
    /// the program's push updates carry (a distance, a component label, a
    /// residual). Sized per program so the exchange traffic in fleet
    /// reports reflects the actual protocol, not a one-size guess.
    pub payload_bytes: u64,
    /// The program implements [`VertexProgram::repair`]: after a graph
    /// mutation batch its converged state can be patched in place and
    /// re-run from an affected-vertex frontier instead of recomputed from
    /// scratch. Programs without the bit get the engine's full-recompute
    /// fallback (fresh state inside the warm session).
    pub incremental: bool,
}

impl Default for Capabilities {
    fn default() -> Self {
        Capabilities {
            weights: false,
            pull: false,
            batchable: false,
            payload_bytes: 4, // vertex id only (pure frontier-membership programs)
            incremental: false,
        }
    }
}

impl Capabilities {
    /// Builder start: the default descriptor (unweighted push-only,
    /// 4-byte id payload).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare that edge weights are required.
    pub fn with_weights(mut self) -> Self {
        self.weights = true;
        self
    }

    /// Declare an exact pull implementation.
    pub fn with_pull(mut self) -> Self {
        self.pull = true;
        self
    }

    /// Declare serve-layer batchability.
    pub fn with_batchable(mut self) -> Self {
        self.batchable = true;
        self
    }

    /// Set the per-vertex frontier exchange payload.
    pub fn with_payload_bytes(mut self, bytes: u64) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Declare an incremental repair implementation.
    pub fn with_incremental(mut self) -> Self {
        self.incremental = true;
        self
    }
}

/// A capability mismatch between a program and a requested configuration.
///
/// Raised at *configuration build / admission time* (CLI validation, serve
/// job admission, `AsceticConfig` checks) — never mid-run: engines treat
/// [`Capabilities`] as ground truth and silently fall back where the
/// request was only a preference (adaptive direction), but a *forced*
/// incompatible request surfaces as this typed error instead of the old
/// `unimplemented!()` panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoError {
    /// `--direction pull` was forced for a program whose
    /// [`Capabilities::pull`] is off.
    PullUnsupported {
        /// Program display name.
        algo: &'static str,
    },
    /// A weighted-graph program was handed an unweighted graph (or vice
    /// versa).
    WeightsMismatch {
        /// Program display name.
        algo: &'static str,
        /// Whether the program requires weights.
        needs_weights: bool,
    },
}

impl std::fmt::Display for AlgoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoError::PullUnsupported { algo } => write!(
                f,
                "--direction pull: {algo} is push-only (no pull operator)"
            ),
            AlgoError::WeightsMismatch {
                algo,
                needs_weights: true,
            } => write!(f, "{algo} requires a weighted graph"),
            AlgoError::WeightsMismatch {
                algo,
                needs_weights: false,
            } => write!(f, "{algo} runs on the unweighted graph variant"),
        }
    }
}

impl std::error::Error for AlgoError {}

/// A vertex program: per-edge/per-vertex functors plus a [`Capabilities`]
/// descriptor, composed into runs by the operators in [`crate::ops`].
pub trait VertexProgram: Sync {
    /// Per-run mutable state (device-resident vertex arrays; atomics).
    type State: Sync + Send;

    /// Display name ("BFS", "SSSP", ...).
    fn name(&self) -> &'static str;

    /// The program's capability descriptor. Engines consult this — and
    /// only this — to decide which functors may be invoked and how to
    /// budget frontier traffic.
    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    /// Allocate and initialize state for `g`.
    fn new_state(&self, g: &Csr) -> Self::State;

    /// The iteration-0 frontier (of the first phase).
    fn initial_frontier(&self, g: &Csr) -> Bitmap;

    /// *Compute* functor: a per-iteration map over the (frozen) active
    /// set, run once on the orchestration thread before any advance of
    /// that iteration. PR claims residuals here so that split edge
    /// delivery cannot double-claim; label propagation adopts labels here.
    fn compute(&self, iteration: u32, active: &Bitmap, state: &Self::State) {
        let _ = (iteration, active, state);
    }

    /// Push *advance* functor: process (a piece of) the out-edges of
    /// active vertex `src`, pushing updates into `state` and activating
    /// vertices in `next`.
    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &Self::State,
        next: &AtomicBitmap,
    );

    /// The set of vertices whose in-edge rows a pull iteration must scan,
    /// given the frozen `active` frontier. BFS/CC pull over the still
    /// unconverged vertices; PR's gather touches every vertex. Never
    /// called when [`Capabilities::pull`] is off (the default returns an
    /// empty set, making an erroneous call benign rather than a panic).
    fn pull_targets(&self, g: &Csr, active: &Bitmap, state: &Self::State) -> Bitmap {
        let _ = (active, state);
        Bitmap::new(g.num_vertices())
    }

    /// Pull *advance* functor: process target vertex `v`'s in-edges
    /// (sources of edges pointing at `v`), gathering from parents that are
    /// set in the frozen `active` bitmap, updating `state` and activating
    /// `v` in `next` exactly as the push formulation would. Returns the
    /// number of in-edges actually scanned (early-exit may stop before the
    /// row ends), which the session charges to the pull kernel's cost
    /// model. Must be correct under partial, repeated delivery of a row,
    /// like [`VertexProgram::advance_push`]. Never called when
    /// [`Capabilities::pull`] is off (the default scans nothing).
    fn advance_pull(
        &self,
        v: VertexId,
        in_edges: EdgeSlice<'_>,
        active: &Bitmap,
        state: &Self::State,
        next: &AtomicBitmap,
    ) -> u64 {
        let _ = (v, in_edges, active, state, next);
        0
    }

    /// *Filter* functor: whether an activated vertex should stay in the
    /// next frontier. A pure predicate over `state`, applied by the filter
    /// operator after every advance; the default keeps everything (exact
    /// frontier programs). Label propagation drops vertices whose label
    /// cannot change.
    fn retain(&self, v: VertexId, state: &Self::State) -> bool {
        let _ = (v, state);
        true
    }

    /// Phase-transition hook for multi-phase programs, consulted when the
    /// frontier drains. `finished` phases (0-based) have completed; return
    /// the next phase's initial frontier to continue, or `None` to end the
    /// run. Betweenness centrality runs a forward BFS phase, then one
    /// dependency-accumulation phase per BFS level, walking back toward
    /// the source. The iteration counter keeps climbing across phases and
    /// [`VertexProgram::max_iterations`] bounds the whole run.
    fn next_phase(&self, finished: u32, g: &Csr, state: &Self::State) -> Option<Bitmap> {
        let _ = (finished, g, state);
        None
    }

    /// Extract the final answer.
    fn output(&self, state: &Self::State) -> AlgoOutput;

    /// Safety valve for non-converging configurations.
    fn max_iterations(&self) -> u32 {
        10_000
    }

    /// Repair converged state after a mutation batch: adjust `state` in
    /// place (through the same interior mutability the operators use) and
    /// return where the engine should re-run the operator core from.
    /// `g_old` is the pre-patch graph (dependency closures are judged on
    /// the edges the converged state was computed over), `g_new` /
    /// `csc_new` the post-patch graph and its transpose (when the session
    /// maintains a mirror). Only called when [`Capabilities::incremental`]
    /// is on; the default — never reached through a capability-honoring
    /// engine — asks for a restart.
    fn repair(
        &self,
        g_old: &Csr,
        g_new: &Csr,
        csc_new: Option<&Csr>,
        patch: &GraphPatch,
        state: &Self::State,
    ) -> RepairPlan {
        let _ = (g_old, g_new, csc_new, patch, state);
        RepairPlan::Restart
    }
}

/// Bytes of vertex-array state a program keeps on the device per vertex —
/// used by the systems' device-memory budgeting (vertices always stay on
/// the GPU per the paper). Conservative common bound: value arrays plus
/// offsets/degrees plus the two bitmaps round to ~24 B/vertex.
pub const DEVICE_BYTES_PER_VERTEX: u64 = 24;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_slice_iteration() {
        let words = [5u32, 6, 7];
        let s = EdgeSlice::new(&words, false);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(5, 1), (6, 1), (7, 1)]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn weighted_slice_iteration() {
        let words = [5u32, 10, 6, 20];
        let s = EdgeSlice::new(&words, true);
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(5, 10), (6, 20)]);
    }

    #[test]
    fn empty_slice() {
        let s = EdgeSlice::new(&[], true);
        assert!(s.is_empty());
        assert_eq!(s.iter().next(), None);
    }

    #[test]
    fn split_slice_unweighted() {
        let t = [3u32, 4];
        let s = EdgeSlice::split(&t, None);
        assert_eq!(s.len(), 2);
        assert!(!s.weighted());
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(3, 1), (4, 1)]);
    }

    #[test]
    fn split_slice_weighted_matches_packed() {
        let targets = [3u32, 4, 9];
        let weights = [30u32, 40, 90];
        let split = EdgeSlice::split(&targets, Some(&weights));
        let packed_words = [3u32, 30, 4, 40, 9, 90];
        let packed = EdgeSlice::new(&packed_words, true);
        assert!(split.weighted());
        assert_eq!(
            split.iter().collect::<Vec<_>>(),
            packed.iter().collect::<Vec<_>>()
        );
        assert_eq!(split.len(), packed.len());
    }

    #[test]
    fn output_mismatch_detection() {
        let a = AlgoOutput::Distances(vec![0, 1, 2]);
        let b = AlgoOutput::Distances(vec![0, 1, 3]);
        assert_eq!(a.first_mismatch(&b, 0.0), Some(2));
        assert_eq!(a.first_mismatch(&a.clone(), 0.0), None);

        let r1 = AlgoOutput::Ranks(vec![0.5, 0.25]);
        let r2 = AlgoOutput::Ranks(vec![0.5 + 1e-12, 0.25]);
        assert_eq!(r1.first_mismatch(&r2, 1e-9), None);
        assert_eq!(r1.first_mismatch(&r2, 1e-15), Some(0));

        assert_eq!(a.first_mismatch(&r1, 0.0), Some(0), "type mismatch");
        let short = AlgoOutput::Distances(vec![0]);
        assert_eq!(a.first_mismatch(&short, 0.0), Some(1));
    }

    #[test]
    fn capabilities_builder_and_defaults() {
        let d = Capabilities::default();
        assert!(!d.weights && !d.pull && !d.batchable && !d.incremental);
        assert_eq!(d.payload_bytes, 4);
        let c = Capabilities::new()
            .with_weights()
            .with_pull()
            .with_batchable()
            .with_payload_bytes(12)
            .with_incremental();
        assert!(c.weights && c.pull && c.batchable && c.incremental);
        assert_eq!(c.payload_bytes, 12);
    }

    #[test]
    fn algo_error_messages_name_the_program() {
        let e = AlgoError::PullUnsupported { algo: "SSSP" };
        let msg = e.to_string();
        assert!(msg.contains("SSSP") && msg.contains("push-only"), "{msg}");
        let w = AlgoError::WeightsMismatch {
            algo: "SSSP",
            needs_weights: true,
        };
        assert!(w.to_string().contains("weighted"), "{w}");
    }
}
