//! PageRank (push-based residual / "delta" formulation).
//!
//! Classic pull PageRank touches every edge every iteration; the out-of-core
//! systems of the paper run the *push residual* variant in which only
//! vertices holding enough un-propagated mass are active. This matches the
//! paper's Table 1 (PR active-edge ratio 25–29 %, decaying over a ~43
//! iteration run on friendster-konect).
//!
//! Formulation: each vertex `v` carries `rank(v)` and `residual(v)`;
//! initially `rank = 0`, `residual = (1-d)/n`, everyone active. An active
//! vertex claims its residual `r` (once per iteration, in
//! [`VertexProgram::compute`], so split edge delivery cannot
//! double-claim), retires it into `rank`, and pushes `d·r/deg(v)` along
//! every out-edge. A target crossing the threshold `ε` activates. At
//! termination every vertex's rank satisfies the PageRank equation to
//! within `ε·|V|` total mass. Dangling mass (out-degree 0) is retired
//! without redistribution, the convention Subway-style push systems use.
//!
//! **Determinism**: residual/rank arithmetic is 2⁻⁴⁰ fixed-point in
//! `AtomicU64`. Integer atomic adds commute exactly, so results and
//! activation sets are bit-identical regardless of thread interleaving —
//! floats would make frontier sizes (and thus simulated times) racy.

use std::sync::atomic::{AtomicU64, Ordering};

use ascetic_graph::{Csr, GraphPatch, VertexId};
use ascetic_par::{AtomicBitmap, Bitmap};

use crate::incremental::RepairPlan;
use crate::traits::{AlgoOutput, Capabilities, EdgeSlice, VertexProgram};

/// Fixed-point scale: 2^40 units per 1.0 of rank mass.
const SCALE: u64 = 1 << 40;

/// PageRank with damping `d` and activation threshold `ε`.
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    /// Damping factor (paper-standard 0.85).
    pub damping: f64,
    /// Activation threshold as a fraction of the initial per-vertex
    /// residual `(1-d)/n`; smaller → more iterations. The default `1e-3`
    /// reproduces run lengths in the ballpark of the paper's 43 iterations
    /// on friendster-konect.
    pub eps_frac: f64,
    /// Hard iteration cap.
    pub max_iters: u32,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            damping: 0.85,
            eps_frac: 1e-3,
            max_iters: 500,
        }
    }
}

impl PageRank {
    /// PageRank with the standard damping of 0.85.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the convergence threshold fraction.
    pub fn with_eps_frac(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "eps_frac must be in (0, 1]");
        self.eps_frac = f;
        self
    }
}

/// PageRank per-vertex state (fixed-point).
pub struct PrState {
    /// Retired rank mass, 2^-40 units.
    rank: Vec<AtomicU64>,
    /// Un-propagated residual mass, 2^-40 units.
    residual: Vec<AtomicU64>,
    /// Residual claimed by the current iteration (set in
    /// `compute`; read-only during kernels).
    claimed: Vec<AtomicU64>,
    /// Out-degrees (a vertex's edges may arrive in pieces, so the degree
    /// cannot be inferred from slice length).
    degree: Vec<u32>,
    /// Damping in 2^-40 fixed-point.
    damping_fx: u64,
    /// Activation threshold in 2^-40 units.
    eps_fx: u64,
}

impl VertexProgram for PageRank {
    type State = PrState;

    fn name(&self) -> &'static str {
        "PR"
    }

    fn capabilities(&self) -> Capabilities {
        // payload: vertex id + accumulated 64-bit fixed-point residual
        Capabilities::new()
            .with_pull()
            .with_payload_bytes(12)
            .with_incremental()
    }

    fn new_state(&self, g: &Csr) -> PrState {
        let n = g.num_vertices().max(1);
        let init_residual = ((1.0 - self.damping) / n as f64 * SCALE as f64) as u64;
        let eps_fx = ((init_residual as f64 * self.eps_frac) as u64).max(1);
        PrState {
            rank: (0..n).map(|_| AtomicU64::new(0)).collect(),
            residual: (0..n).map(|_| AtomicU64::new(init_residual)).collect(),
            claimed: (0..n).map(|_| AtomicU64::new(0)).collect(),
            degree: (0..n as VertexId).map(|v| g.degree(v) as u32).collect(),
            damping_fx: (self.damping * SCALE as f64) as u64,
            eps_fx,
        }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        Bitmap::ones(g.num_vertices())
    }

    fn compute(&self, _iteration: u32, active: &Bitmap, state: &PrState) {
        for v in active.iter_ones() {
            let r = state.residual[v].swap(0, Ordering::Relaxed);
            state.rank[v].fetch_add(r, Ordering::Relaxed);
            state.claimed[v].store(r, Ordering::Relaxed);
        }
    }

    #[inline]
    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &PrState,
        next: &AtomicBitmap,
    ) {
        let deg = state.degree[src as usize] as u64;
        if deg == 0 {
            return; // dangling: mass already retired at claim time
        }
        let claimed = state.claimed[src as usize].load(Ordering::Relaxed);
        // per-edge contribution: d * claimed / deg, all in fixed-point
        let contrib = ((claimed as u128 * state.damping_fx as u128) >> 40) as u64 / deg;
        if contrib == 0 {
            return;
        }
        let eps = state.eps_fx;
        for (t, _w) in edges.iter() {
            let old = state.residual[t as usize].fetch_add(contrib, Ordering::Relaxed);
            // exactly-once activation on crossing the threshold
            if old < eps && old + contrib >= eps {
                next.set(t as usize);
            }
        }
    }

    fn output(&self, state: &PrState) -> AlgoOutput {
        // rank plus any unconsumed residual, back to f64
        let ranks = state
            .rank
            .iter()
            .zip(&state.residual)
            .map(|(r, q)| {
                (r.load(Ordering::Relaxed) + q.load(Ordering::Relaxed)) as f64 / SCALE as f64
            })
            .collect();
        AlgoOutput::Ranks(ranks)
    }

    fn max_iterations(&self) -> u32 {
        self.max_iters
    }

    /// PR's gather is the textbook pull formulation: every vertex may
    /// receive mass from an active in-neighbor, so the candidate set is all
    /// of `V`. (That makes pull demand ≈ |E| — the session's density
    /// heuristic only picks it when the push frontier is at least that
    /// expensive.)
    fn pull_targets(&self, g: &Csr, _active: &Bitmap, _state: &PrState) -> Bitmap {
        Bitmap::ones(g.num_vertices())
    }

    /// Sum the fixed-point contributions of active in-neighbors and apply
    /// them in one atomic add. Integer adds commute, so the result and the
    /// threshold-crossing activation are bit-identical to the push
    /// scatter's per-edge adds.
    #[inline]
    fn advance_pull(
        &self,
        v: VertexId,
        in_edges: EdgeSlice<'_>,
        active: &Bitmap,
        state: &PrState,
        next: &AtomicBitmap,
    ) -> u64 {
        let mut total = 0u64;
        for (u, _w) in in_edges.iter() {
            if active.get(u as usize) {
                let deg = state.degree[u as usize] as u64;
                if deg == 0 {
                    continue; // dangling: mass already retired at claim time
                }
                let claimed = state.claimed[u as usize].load(Ordering::Relaxed);
                total += ((claimed as u128 * state.damping_fx as u128) >> 40) as u64 / deg;
            }
        }
        if total > 0 {
            let old = state.residual[v as usize].fetch_add(total, Ordering::Relaxed);
            if old < state.eps_fx && old + total >= state.eps_fx {
                next.set(v as usize);
            }
        }
        in_edges.len() as u64
    }

    /// Residual-driven re-convergence restarted from fresh residuals.
    ///
    /// PR's repair is its own residual formulation: re-seed `(1-d)/n`
    /// everywhere and let the delta scheme re-converge inside the *warm*
    /// session — that is where the mutation win lives for PR (no
    /// re-prestore, resident chunks patched in place, only delta wire
    /// traffic). Warm-starting the old rank/residual vectors is ruled out
    /// by the hard oracle: fixed-point accumulation order differs from a
    /// cold run's, so the result would drift off bit-identity. A restart
    /// also rebuilds the state's cached out-degrees, which the patch
    /// changed.
    fn repair(
        &self,
        _g_old: &Csr,
        _g_new: &Csr,
        _csc_new: Option<&Csr>,
        _patch: &GraphPatch,
        _state: &PrState,
    ) -> RepairPlan {
        RepairPlan::Restart
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmemory::run_in_memory;
    use crate::reference::pagerank_reference;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};
    use ascetic_graph::GraphBuilder;

    fn assert_close(out: &AlgoOutput, expect: &[f64], tol: f64) {
        match out {
            AlgoOutput::Ranks(r) => {
                assert_eq!(r.len(), expect.len());
                for (i, (a, b)) in r.iter().zip(expect).enumerate() {
                    assert!((a - b).abs() < tol, "vertex {i}: {a} vs {b}");
                }
            }
            _ => panic!("wrong output type"),
        }
    }

    #[test]
    fn two_cycle_is_symmetric() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        let pr = PageRank::new().with_eps_frac(1e-6);
        let res = run_in_memory(&g, &pr);
        assert_close(&res.output, &[0.5, 0.5], 1e-4);
    }

    #[test]
    fn sink_absorbs_more_rank_than_source() {
        // 0 -> 1: vertex 1 must outrank vertex 0.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let res = run_in_memory(&g, &PageRank::new().with_eps_frac(1e-6));
        match res.output {
            AlgoOutput::Ranks(r) => assert!(r[1] > r[0]),
            _ => panic!(),
        }
    }

    #[test]
    fn total_mass_is_conserved_within_rounding() {
        let g = uniform_graph(500, 4_000, false, 2);
        let res = run_in_memory(&g, &PageRank::new());
        match res.output {
            AlgoOutput::Ranks(r) => {
                let total: f64 = r.iter().sum();
                // dangling mass is retired (not lost); only integer-division
                // dust disappears
                assert!(total > 0.90 && total <= 1.0 + 1e-9, "total {total}");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn matches_power_iteration_reference() {
        for seed in [1u64, 5] {
            let g = uniform_graph(300, 2_500, false, seed);
            let res = run_in_memory(&g, &PageRank::new().with_eps_frac(1e-6));
            let expect = pagerank_reference(&g, 0.85, 1e-12, 10_000);
            assert_close(&res.output, &expect, 1e-6);
        }
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = rmat_graph(&RmatConfig::new(9, 4_000, 8).undirected(true));
        let res = run_in_memory(&g, &PageRank::new().with_eps_frac(1e-6));
        let expect = pagerank_reference(&g, 0.85, 1e-12, 10_000);
        assert_close(&res.output, &expect, 1e-6);
    }

    #[test]
    fn activity_decays_across_iterations() {
        let g = uniform_graph(1_000, 10_000, false, 3);
        let res = run_in_memory(&g, &PageRank::new());
        assert!(res.iterations > 5, "ran {} iterations", res.iterations);
        let first = res.log.first().unwrap().active_edges;
        let last = res.log.last().unwrap().active_edges;
        assert_eq!(first, g.num_edges(), "everyone active at start");
        assert!(last < first / 4, "activity must decay: {last} vs {first}");
    }

    #[test]
    fn deterministic_across_runs() {
        let g = uniform_graph(400, 3_000, false, 9);
        let a = run_in_memory(&g, &PageRank::new());
        let b = run_in_memory(&g, &PageRank::new());
        assert_eq!(
            a.output, b.output,
            "fixed-point PR must be bit-deterministic"
        );
        assert_eq!(a.iterations, b.iterations);
        let la: Vec<u64> = a.log.iter().map(|l| l.active_edges).collect();
        let lb: Vec<u64> = b.log.iter().map(|l| l.active_edges).collect();
        assert_eq!(la, lb);
    }

    #[test]
    #[should_panic(expected = "eps_frac")]
    fn rejects_bad_eps() {
        PageRank::new().with_eps_frac(0.0);
    }
}
