//! k-core membership (iterative peeling as a push program).
//!
//! The k-core of an undirected graph is the maximal subgraph in which every
//! vertex has degree ≥ k; it is computed by repeatedly *peeling* vertices
//! of degree < k. Peeling maps cleanly onto the push model — a removed
//! vertex pushes a "degree decrement" to each neighbor, and a neighbor
//! whose effective degree drops below k activates to be peeled next
//! iteration — which makes k-core a natural fifth workload for the
//! out-of-core systems (not part of the paper's evaluation; included as an
//! extension and exercised by the ablation benches).
//!
//! Pushes are idempotent per (source, delivery): the program is correct
//! under Ascetic's split/partial edge delivery because a vertex only
//! decrements neighbors for edges actually delivered, and each of its
//! edges is delivered exactly once in its removal iteration.

use std::sync::atomic::{AtomicU32, Ordering};

use ascetic_graph::{Csr, VertexId};
use ascetic_par::{AtomicBitmap, Bitmap};

use crate::traits::{AlgoOutput, EdgeSlice, VertexProgram};

/// k-core membership: output label 1 for vertices in the k-core, 0 outside.
#[derive(Clone, Copy, Debug)]
pub struct KCore {
    /// The core parameter k (≥ 1).
    pub k: u32,
}

impl KCore {
    /// k-core membership program.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KCore { k }
    }
}

/// Peeling state.
pub struct KCoreState {
    /// Effective degree (decremented as neighbors peel); `u32::MAX` marks
    /// an already-peeled vertex.
    degree: Vec<AtomicU32>,
    k: u32,
}

impl VertexProgram for KCore {
    type State = KCoreState;

    fn name(&self) -> &'static str {
        "kCore"
    }

    fn new_state(&self, g: &Csr) -> KCoreState {
        KCoreState {
            degree: (0..g.num_vertices() as VertexId)
                .map(|v| AtomicU32::new(g.degree(v) as u32))
                .collect(),
            k: self.k,
        }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        // iteration 0 peels every vertex whose raw degree is already < k
        let mut b = Bitmap::new(g.num_vertices());
        for v in 0..g.num_vertices() as VertexId {
            if (g.degree(v) as u32) < self.k {
                b.set(v as usize);
            }
        }
        b
    }

    fn compute(&self, _iteration: u32, active: &Bitmap, state: &KCoreState) {
        // mark this wave as peeled *before* any pushes, so concurrent
        // decrements cannot re-activate a vertex being peeled right now
        for v in active.iter_ones() {
            state.degree[v].store(u32::MAX, Ordering::Relaxed);
        }
    }

    #[inline]
    fn advance_push(
        &self,
        _src: VertexId,
        edges: EdgeSlice<'_>,
        state: &KCoreState,
        next: &AtomicBitmap,
    ) {
        for (t, _w) in edges.iter() {
            let d = &state.degree[t as usize];
            // decrement unless the neighbor is already peeled
            let mut cur = d.load(Ordering::Relaxed);
            loop {
                if cur == u32::MAX || cur == 0 {
                    break;
                }
                match d.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => {
                        if cur - 1 < state.k {
                            next.set(t as usize);
                        }
                        break;
                    }
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    fn output(&self, state: &KCoreState) -> AlgoOutput {
        AlgoOutput::Labels(
            state
                .degree
                .iter()
                .map(|d| {
                    let v = d.load(Ordering::Relaxed);
                    u32::from(v != u32::MAX && v >= state.k)
                })
                .collect(),
        )
    }
}

/// Sequential peeling reference.
pub fn kcore_reference(g: &Csr, k: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let mut deg: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v) as u32).collect();
    let mut removed = vec![false; n];
    let mut queue: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| deg[v as usize] < k)
        .collect();
    for &v in &queue {
        removed[v as usize] = true;
    }
    let mut qi = 0;
    while qi < queue.len() {
        let v = queue[qi];
        qi += 1;
        for &t in g.neighbors(v) {
            if !removed[t as usize] {
                deg[t as usize] -= 1;
                if deg[t as usize] < k {
                    removed[t as usize] = true;
                    queue.push(t);
                }
            }
        }
    }
    (0..n).map(|v| u32::from(!removed[v])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmemory::run_in_memory;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};
    use ascetic_graph::GraphBuilder;

    /// Triangle 0-1-2 plus a pendant 3 attached to 0.
    fn triangle_with_tail() -> Csr {
        let mut b = GraphBuilder::new(4).symmetrize(true).sort_neighbors(true);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(0, 3);
        b.build()
    }

    #[test]
    fn two_core_of_triangle_plus_tail() {
        let g = triangle_with_tail();
        let res = run_in_memory(&g, &KCore::new(2));
        assert_eq!(res.output, AlgoOutput::Labels(vec![1, 1, 1, 0]));
        assert_eq!(res.output, AlgoOutput::Labels(kcore_reference(&g, 2)));
    }

    #[test]
    fn k1_keeps_anything_with_an_edge() {
        let mut b = GraphBuilder::new(3).symmetrize(true);
        b.add_edge(0, 1);
        let g = b.build();
        let res = run_in_memory(&g, &KCore::new(1));
        assert_eq!(res.output, AlgoOutput::Labels(vec![1, 1, 0]));
    }

    #[test]
    fn huge_k_empties_the_graph() {
        let g = triangle_with_tail();
        let res = run_in_memory(&g, &KCore::new(100));
        assert_eq!(res.output, AlgoOutput::Labels(vec![0; 4]));
    }

    #[test]
    fn cascade_peeling_takes_multiple_iterations() {
        // path 0-1-2-3-4: 2-core empty, peeled from both ends inward
        let mut b = GraphBuilder::new(5).symmetrize(true).sort_neighbors(true);
        for v in 0..4u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let res = run_in_memory(&g, &KCore::new(2));
        assert_eq!(res.output, AlgoOutput::Labels(vec![0; 5]));
        assert!(
            res.iterations >= 2,
            "peeling must cascade: {}",
            res.iterations
        );
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..3 {
            let g = uniform_graph(400, 2_400, true, seed);
            for k in [2, 4, 8] {
                let res = run_in_memory(&g, &KCore::new(k));
                assert_eq!(
                    res.output,
                    AlgoOutput::Labels(kcore_reference(&g, k)),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = rmat_graph(&RmatConfig::new(10, 8_000, 4).undirected(true));
        let res = run_in_memory(&g, &KCore::new(3));
        assert_eq!(res.output, AlgoOutput::Labels(kcore_reference(&g, 3)));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_k_zero() {
        KCore::new(0);
    }
}
