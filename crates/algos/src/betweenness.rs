//! Single-source betweenness centrality (Brandes) on the operator core —
//! the first *multi-phase* program.
//!
//! Brandes' algorithm: a forward BFS from the source counts shortest paths
//! (`σ`), then a backward sweep over the BFS DAG in decreasing depth
//! accumulates dependencies (`δ`):
//!
//! ```text
//! δ(v) = Σ_{w : dist(w) = dist(v)+1, (v,w) ∈ E}  σ(v)/σ(w) · (1 + δ(w))
//! ```
//!
//! The phase structure maps directly onto [`VertexProgram::next_phase`]:
//! phase 0 is the forward BFS (σ accumulates during advance — every edge is
//! delivered exactly once per iteration, so the per-edge `fetch_add` counts
//! each DAG edge once); when the frontier drains, the transition flips to
//! backward mode and returns the deepest non-leaf level as the next
//! frontier. Each subsequent phase is one iteration processing one level:
//! a vertex scans its *out*-edges, picks the DAG successors (one level
//! deeper, already finalized), and accumulates into its own δ — commuting
//! integer adds in 2⁻³² fixed point, so results are bit-identical across
//! threads, devices and delivery granularity. The engines drive all of this
//! through the ordinary operator loop: betweenness inherits prefetch,
//! compression, serving and fleet execution with no engine changes.
//!
//! `σ` uses wrapping `u64` arithmetic: path counts can explode
//! combinatorially, and wrapping keeps the computation deterministic
//! everywhere (the f64 reference is compared on graphs where counts stay
//! exact).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use ascetic_graph::{Csr, VertexId, INF_DIST};
use ascetic_par::{atomic_min_u32, AtomicBitmap, Bitmap};

use crate::traits::{AlgoOutput, Capabilities, EdgeSlice, VertexProgram};

/// Fixed-point scale for dependency values: 2^32 units per 1.0.
const SCALE: u64 = 1 << 32;

/// Brandes betweenness centrality from one source.
#[derive(Clone, Copy, Debug)]
pub struct Betweenness {
    /// BFS root; its own centrality is 0 by convention.
    pub source: VertexId,
}

impl Betweenness {
    /// Betweenness centrality of all vertices w.r.t. paths from `source`.
    pub fn new(source: VertexId) -> Self {
        Betweenness { source }
    }
}

/// Betweenness state: BFS depths, path counts, fixed-point dependencies,
/// and the forward/backward mode switch.
pub struct BcState {
    dist: Vec<AtomicU32>,
    sigma: Vec<AtomicU64>,
    delta: Vec<AtomicU64>,
    max_depth: AtomicU32,
    backward: AtomicBool,
}

impl VertexProgram for Betweenness {
    type State = BcState;

    fn name(&self) -> &'static str {
        "BC"
    }

    fn capabilities(&self) -> Capabilities {
        // payload: vertex id + depth + path count
        Capabilities::new().with_payload_bytes(16)
    }

    fn new_state(&self, g: &Csr) -> BcState {
        let n = g.num_vertices();
        let st = BcState {
            dist: (0..n).map(|_| AtomicU32::new(INF_DIST)).collect(),
            sigma: (0..n).map(|_| AtomicU64::new(0)).collect(),
            delta: (0..n).map(|_| AtomicU64::new(0)).collect(),
            max_depth: AtomicU32::new(0),
            backward: AtomicBool::new(false),
        };
        st.dist[self.source as usize].store(0, Ordering::Relaxed);
        st.sigma[self.source as usize].store(1, Ordering::Relaxed);
        st
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        let mut b = Bitmap::new(g.num_vertices());
        b.set(self.source as usize);
        b
    }

    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &BcState,
        next: &AtomicBitmap,
    ) {
        let d = state.dist[src as usize].load(Ordering::Relaxed);
        if !state.backward.load(Ordering::Relaxed) {
            // forward: level-synchronous BFS + path counting. All proposals
            // this iteration equal d+1, so dist[t] == nd after the min
            // exactly identifies DAG edges, and σ[src] is final (its own
            // level finished last iteration).
            let nd = d + 1;
            let s = state.sigma[src as usize].load(Ordering::Relaxed);
            for (t, _w) in edges.iter() {
                if atomic_min_u32(&state.dist[t as usize], nd) {
                    next.set(t as usize);
                }
                if state.dist[t as usize].load(Ordering::Relaxed) == nd {
                    state.sigma[t as usize].fetch_add(s, Ordering::Relaxed);
                }
            }
        } else {
            // backward: one level per iteration; successors one level deeper
            // are finalized, so the gather is exact. Accumulate locally and
            // publish one commuting add (correct under split delivery).
            let s = state.sigma[src as usize].load(Ordering::Relaxed) as u128;
            let mut acc = 0u64;
            for (t, _w) in edges.iter() {
                if state.dist[t as usize].load(Ordering::Relaxed) == d + 1 {
                    let sw = state.sigma[t as usize].load(Ordering::Relaxed);
                    if sw == 0 {
                        continue; // σ wrapped to 0: skip rather than divide by zero
                    }
                    let dw = state.delta[t as usize].load(Ordering::Relaxed);
                    acc = acc.wrapping_add(
                        (s.wrapping_mul(SCALE as u128 + dw as u128) / sw as u128) as u64,
                    );
                }
            }
            if acc != 0 {
                state.delta[src as usize].fetch_add(acc, Ordering::Relaxed);
            }
        }
    }

    /// Forward BFS drained → flip to backward mode and hand back one BFS
    /// level per phase, deepest first. Level `L` vertices read level `L+1`
    /// dependencies, finalized by the previous phase; level 0 is the source
    /// (excluded by convention), so the run ends after level 1.
    fn next_phase(&self, finished: u32, g: &Csr, state: &BcState) -> Option<Bitmap> {
        if finished == 0 {
            let d = (0..g.num_vertices())
                .map(|v| state.dist[v].load(Ordering::Relaxed))
                .filter(|&d| d != INF_DIST)
                .max()
                .unwrap_or(0);
            state.max_depth.store(d, Ordering::Relaxed);
            state.backward.store(true, Ordering::Relaxed);
        }
        let depth = state.max_depth.load(Ordering::Relaxed);
        // phase p (p >= 1) processes level depth - p
        let level = depth.checked_sub(finished + 1)?;
        if level == 0 {
            return None;
        }
        let mut b = Bitmap::new(g.num_vertices());
        for v in 0..g.num_vertices() {
            if state.dist[v].load(Ordering::Relaxed) == level {
                b.set(v);
            }
        }
        Some(b)
    }

    fn output(&self, state: &BcState) -> AlgoOutput {
        AlgoOutput::Ranks(
            state
                .delta
                .iter()
                .map(|d| d.load(Ordering::Relaxed) as f64 / SCALE as f64)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmemory::run_in_memory;
    use crate::reference::betweenness_reference;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_graph::GraphBuilder;

    #[test]
    fn path_graph_centrality_is_interior_count() {
        // 0 -> 1 -> 2 -> 3: δ(1) = 2, δ(2) = 1, endpoints 0
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build();
        let res = run_in_memory(&g, &Betweenness::new(0));
        let AlgoOutput::Ranks(r) = &res.output else {
            panic!("BC outputs ranks")
        };
        assert_eq!(r.as_slice(), &[0.0, 2.0, 1.0, 0.0]);
        // forward levels {0},{1},{2},{3} then backward levels {2},{1}
        assert_eq!(res.iterations, 6);
    }

    #[test]
    fn diamond_splits_dependency() {
        // 0 -> {1, 2} -> 3: σ(3) = 2, δ(1) = δ(2) = 1/2
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        let g = b.build();
        let res = run_in_memory(&g, &Betweenness::new(0));
        let AlgoOutput::Ranks(r) = &res.output else {
            panic!("BC outputs ranks")
        };
        assert!(
            (r[1] - 0.5).abs() < 1e-6 && (r[2] - 0.5).abs() < 1e-6,
            "{r:?}"
        );
        assert_eq!(r[0], 0.0);
        assert_eq!(r[3], 0.0);
    }

    #[test]
    fn matches_brandes_reference() {
        let g = uniform_graph(400, 3_000, false, 11);
        let res = run_in_memory(&g, &Betweenness::new(0));
        let expect = betweenness_reference(&g, 0);
        let AlgoOutput::Ranks(got) = &res.output else {
            panic!("BC outputs ranks")
        };
        for (v, (a, b)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (a - b).abs() < 1e-4,
                "vertex {v}: operator {a} vs Brandes {b}"
            );
        }
    }

    #[test]
    fn unreachable_and_source_are_zero() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4); // island
        let g = b.build();
        let res = run_in_memory(&g, &Betweenness::new(0));
        let AlgoOutput::Ranks(r) = &res.output else {
            panic!("BC outputs ranks")
        };
        assert_eq!(r[0], 0.0, "source excluded by convention");
        assert_eq!(r[3], 0.0);
        assert_eq!(r[4], 0.0);
    }
}
