//! Single-source shortest paths (push-based Bellman–Ford with frontier).
//!
//! A push proposes `dist(src) + w(src,t)` through an atomic min; targets
//! whose distance improved join the next frontier (label-correcting).
//! Requires edge weights — the paper doubles the edge footprint for SSSP.

use std::sync::atomic::{AtomicU32, Ordering};

use ascetic_graph::{Csr, GraphPatch, VertexId, INF_DIST};
use ascetic_par::{atomic_min_u32, AtomicBitmap, Bitmap};

use crate::incremental::{forward_closure, in_boundary, RepairPlan};
use crate::traits::{AlgoOutput, Capabilities, EdgeSlice, VertexProgram};

/// SSSP from a fixed source over non-negative `u32` weights.
#[derive(Clone, Copy, Debug)]
pub struct Sssp {
    /// Source vertex.
    pub source: VertexId,
}

impl Sssp {
    /// SSSP rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }
}

/// SSSP per-vertex state: the distance array plus the iteration-start
/// snapshot of active distances (bulk-synchronous semantics — see
/// [`crate::bfs::BfsState`]).
pub struct SsspState {
    dist: Vec<AtomicU32>,
    frozen: Vec<AtomicU32>,
}

impl VertexProgram for Sssp {
    type State = SsspState;

    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn capabilities(&self) -> Capabilities {
        // payload: vertex id + tentative distance
        Capabilities::new()
            .with_weights()
            .with_batchable()
            .with_payload_bytes(8)
            .with_incremental()
    }

    fn new_state(&self, g: &Csr) -> SsspState {
        assert!(g.is_weighted(), "SSSP requires a weighted graph");
        let dist: Vec<AtomicU32> = (0..g.num_vertices())
            .map(|_| AtomicU32::new(INF_DIST))
            .collect();
        dist[self.source as usize].store(0, Ordering::Relaxed);
        let frozen = (0..g.num_vertices())
            .map(|_| AtomicU32::new(INF_DIST))
            .collect();
        SsspState { dist, frozen }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        let mut b = Bitmap::new(g.num_vertices());
        b.set(self.source as usize);
        b
    }

    fn compute(&self, _iteration: u32, active: &Bitmap, state: &SsspState) {
        for v in active.iter_ones() {
            state.frozen[v].store(state.dist[v].load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    #[inline]
    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &SsspState,
        next: &AtomicBitmap,
    ) {
        debug_assert!(edges.weighted(), "SSSP must receive weighted slices");
        let d = state.frozen[src as usize].load(Ordering::Relaxed);
        if d == INF_DIST {
            return;
        }
        for (t, w) in edges.iter() {
            let nd = d.saturating_add(w);
            if atomic_min_u32(&state.dist[t as usize], nd) {
                next.set(t as usize);
            }
        }
    }

    fn output(&self, state: &SsspState) -> AlgoOutput {
        AlgoOutput::Distances(
            state
                .dist
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
        )
    }

    /// The weighted invalidate-then-settle pass ([`crate::bfs::Bfs`]'s,
    /// with `dist[t] == dist[s] + w` as the tight-edge test). The patch
    /// records one delete entry per removed parallel edge *with its
    /// weight*, so only deletes that severed an actual shortest-path
    /// predecessor root the closure.
    fn repair(
        &self,
        g_old: &Csr,
        g_new: &Csr,
        csc_new: Option<&Csr>,
        patch: &GraphPatch,
        state: &SsspState,
    ) -> RepairPlan {
        let dist = |v: VertexId| state.dist[v as usize].load(Ordering::Relaxed);
        let src = self.source;
        let roots: Vec<VertexId> = patch
            .deletes
            .iter()
            .filter_map(|&(u, v, w)| {
                let (du, dv) = (dist(u), dist(v));
                let w = w.expect("SSSP runs on weighted graphs");
                (v != src && du != INF_DIST && dv != INF_DIST && dv == du.saturating_add(w))
                    .then_some(v)
            })
            .collect();
        let mut seeds = Bitmap::new(g_new.num_vertices());
        if !roots.is_empty() {
            let in_a = forward_closure(g_old, roots, |s, t, w| {
                t != src && dist(s) != INF_DIST && dist(t) == dist(s).saturating_add(w)
            });
            for (v, &a) in in_a.iter().enumerate() {
                if a {
                    state.dist[v].store(INF_DIST, Ordering::Relaxed);
                }
            }
            in_boundary(g_new, csc_new, &in_a, |p| {
                if dist(p) != INF_DIST {
                    seeds.set(p as usize);
                }
            });
        }
        for &(u, _, _) in &patch.inserts {
            if dist(u) != INF_DIST {
                seeds.set(u as usize);
            }
        }
        RepairPlan::Seeded(seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmemory::run_in_memory;
    use crate::reference::sssp_reference;
    use ascetic_graph::datasets::weighted_variant;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};
    use ascetic_graph::GraphBuilder;

    #[test]
    fn prefers_cheap_two_hop_path() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 2, 10);
        b.add_weighted_edge(0, 1, 1);
        b.add_weighted_edge(1, 2, 2);
        let g = b.build();
        let res = run_in_memory(&g, &Sssp::new(0));
        assert_eq!(res.output, AlgoOutput::Distances(vec![0, 1, 3]));
    }

    #[test]
    fn unreachable_is_inf() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 5);
        b.add_weighted_edge(2, 0, 1);
        let g = b.build();
        let res = run_in_memory(&g, &Sssp::new(0));
        assert_eq!(res.output, AlgoOutput::Distances(vec![0, 5, INF_DIST]));
    }

    #[test]
    fn matches_dijkstra_reference() {
        for seed in 0..3 {
            let g = weighted_variant(&uniform_graph(400, 3_000, false, seed));
            let res = run_in_memory(&g, &Sssp::new(0));
            assert_eq!(
                res.output,
                AlgoOutput::Distances(sssp_reference(&g, 0)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = weighted_variant(&rmat_graph(&RmatConfig::new(9, 6_000, 11).undirected(true)));
        let res = run_in_memory(&g, &Sssp::new(2));
        assert_eq!(res.output, AlgoOutput::Distances(sssp_reference(&g, 2)));
    }

    #[test]
    #[should_panic(expected = "weighted")]
    fn rejects_unweighted_graph() {
        let g = uniform_graph(10, 20, false, 1);
        let _ = Sssp::new(0).new_state(&g);
    }
}
