//! The scaled experimental environment.
//!
//! The paper's testbed (§4.1): P100 capped to 10 GB, datasets of 7–28 GB
//! (Table 3), K = 10 %, 16 KiB chunks, UVM with 64 KiB pages. All
//! experiments here run the same configuration divided by one scale factor
//! (default 1000; override with `ASCETIC_SCALE`), which preserves every
//! ratio the results depend on. Chunk and page sizes are *not* scaled —
//! at 1/1000 the chunk count per dataset (≈650 for FK) matches the order
//! of magnitude of the paper's Figure 2 chunking.

use ascetic_baselines::{AnySystem, PtSystem, SubwaySystem, UvmSystem};
use ascetic_core::{AsceticConfig, AsceticSystem, CompressionMode, DirectionMode, PrefetchMode};
use ascetic_graph::datasets::{Dataset, DatasetId, PAPER_GPU_MEM_BYTES};
use ascetic_graph::{Csr, VertexId};
use ascetic_sim::DeviceConfig;

/// Default scale divisor for benchmark binaries.
pub const DEFAULT_BENCH_SCALE: u64 = 1000;

/// The workspace algorithm registry, re-exported: the bench harness has no
/// private algorithm list. Metadata ([`Algo::weighted`], display names)
/// comes from the registry; the paper's table orderings live in
/// [`TABLE4_ORDER`]/[`TABLE1_ORDER`] below.
pub use ascetic_algos::Algo;

/// Table 4 row order: SSSP, PR, CC, BFS (the paper's four).
pub const TABLE4_ORDER: [Algo; 4] = [Algo::Sssp, Algo::Pr, Algo::Cc, Algo::Bfs];
/// Table 1 column order: BFS, SSSP, CC, PR.
pub const TABLE1_ORDER: [Algo; 4] = [Algo::Bfs, Algo::Sssp, Algo::Cc, Algo::Pr];

/// The experimental environment.
pub struct Env {
    /// Scale divisor relative to the paper's setup.
    pub scale: u64,
    /// Compressed transfer path mode (Ascetic and Subway).
    pub compression: CompressionMode,
    /// Cross-iteration prefetch mode (Ascetic only).
    pub prefetch: PrefetchMode,
    /// Traversal direction policy (Ascetic only).
    pub direction: DirectionMode,
    /// Span-trace output directory (`ASCETIC_TRACE`). When set, every
    /// system the environment constructs records hierarchical spans, and
    /// [`Env::maybe_write_trace`] dumps one Perfetto `.json` per run.
    pub trace: Option<std::path::PathBuf>,
}

/// Parse an `ASCETIC_COMPRESSION`-style mode string.
pub fn parse_compression(s: &str) -> Option<CompressionMode> {
    match s {
        "off" => Some(CompressionMode::Off),
        "always" => Some(CompressionMode::Always),
        "adaptive" => Some(CompressionMode::Adaptive),
        _ => None,
    }
}

impl Env {
    /// Environment with the default (or `ASCETIC_SCALE`-overridden) scale,
    /// the `ASCETIC_COMPRESSION`-selected transfer mode
    /// (`off`/`always`/`adaptive`; default off) and the
    /// `ASCETIC_PREFETCH`-selected prefetch mode
    /// (`off`/`next-frontier`/`hotness`; default off), the
    /// `ASCETIC_DIRECTION`-selected traversal-direction policy
    /// (`push`/`pull`/`adaptive`; default push). `ASCETIC_TRACE=DIR`
    /// additionally records span traces on every constructed system and
    /// routes per-run Perfetto dumps into `DIR`.
    pub fn from_env() -> Env {
        let scale = std::env::var("ASCETIC_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_BENCH_SCALE);
        let compression = std::env::var("ASCETIC_COMPRESSION")
            .ok()
            .and_then(|s| parse_compression(&s))
            .unwrap_or(CompressionMode::Off);
        let prefetch = std::env::var("ASCETIC_PREFETCH")
            .ok()
            .and_then(|s| PrefetchMode::parse(&s))
            .unwrap_or(PrefetchMode::Off);
        let direction = std::env::var("ASCETIC_DIRECTION")
            .ok()
            .and_then(|s| DirectionMode::parse(&s))
            .unwrap_or(DirectionMode::Push);
        let trace = std::env::var_os("ASCETIC_TRACE").map(std::path::PathBuf::from);
        Env {
            scale,
            compression,
            prefetch,
            direction,
            trace,
        }
    }

    /// Environment with an explicit scale.
    pub fn with_scale(scale: u64) -> Env {
        Env {
            scale,
            compression: CompressionMode::Off,
            prefetch: PrefetchMode::Off,
            direction: DirectionMode::Push,
            trace: None,
        }
    }

    /// Whether span tracing is armed (`ASCETIC_TRACE` set).
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Dump a run's span trace as `<ASCETIC_TRACE>/<label>.json` (Perfetto
    /// format). No-op — returning `None` — when `ASCETIC_TRACE` is unset
    /// or the report carries no trace.
    pub fn maybe_write_trace(
        &self,
        rep: &ascetic_core::RunReport,
        label: &str,
    ) -> Option<std::path::PathBuf> {
        let dir = self.trace.as_ref()?;
        let trace = rep.span_trace.as_ref()?;
        std::fs::create_dir_all(dir).ok()?;
        let safe: String = label
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{safe}.json"));
        let json = trace.to_perfetto_json(ascetic_core::RUN_REPORT_SCHEMA_VERSION);
        match std::fs::write(&path, json) {
            Ok(()) => {
                eprintln!("    trace: {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("    trace write failed for {}: {e}", path.display());
                None
            }
        }
    }

    /// Same environment with a different compression mode.
    pub fn with_compression(mut self, mode: CompressionMode) -> Env {
        self.compression = mode;
        self
    }

    /// Same environment with a different prefetch mode.
    pub fn with_prefetch(mut self, mode: PrefetchMode) -> Env {
        self.prefetch = mode;
        self
    }

    /// Same environment with a different traversal-direction policy.
    pub fn with_direction(mut self, mode: DirectionMode) -> Env {
        self.direction = mode;
        self
    }

    /// Build one dataset stand-in.
    pub fn dataset(&self, id: DatasetId) -> Dataset {
        Dataset::build(id, self.scale)
    }

    /// The graph variant an algorithm runs on.
    pub fn graph_for(&self, ds: &Dataset, algo: Algo) -> Csr {
        if algo.weighted() {
            ds.weighted()
        } else {
            ds.graph.clone()
        }
    }

    /// Simulated device with the paper's (scaled) 10 GB cap.
    pub fn device(&self) -> DeviceConfig {
        self.device_with_mem(PAPER_GPU_MEM_BYTES / self.scale)
    }

    /// Simulated device with an explicit memory capacity (Figure 11 sweep).
    pub fn device_with_mem(&self, mem_bytes: u64) -> DeviceConfig {
        let mut d = DeviceConfig::p100(mem_bytes);
        // keep page/chunk granularity proportionate under extreme scaling
        if self.scale > 4000 {
            d.uvm.page_bytes = (d.uvm.page_bytes * 4000 / self.scale).max(512);
        }
        d
    }

    /// Chunk size: the paper's 16 KiB, shrunk proportionally when the
    /// scale is extreme (tests) so chunk counts stay meaningful.
    pub fn chunk_bytes(&self) -> usize {
        if self.scale > 4000 {
            (16 * 1024 * 4000 / self.scale as usize).max(256)
        } else {
            16 * 1024
        }
    }

    /// Paper-default Ascetic configuration on this environment's device.
    pub fn ascetic_cfg(&self) -> AsceticConfig {
        AsceticConfig::new(self.device())
            .with_chunk_bytes(self.chunk_bytes())
            .with_compression(self.compression)
            .with_prefetch(self.prefetch)
            .with_direction(self.direction)
            .with_tracing(self.tracing())
    }

    /// The Ascetic system under paper defaults.
    pub fn ascetic(&self) -> AsceticSystem {
        AsceticSystem::new(self.ascetic_cfg())
    }

    /// The Subway baseline (sharing the compressed transfer path setting,
    /// so transfer comparisons stay apples-to-apples).
    pub fn subway(&self) -> SubwaySystem {
        SubwaySystem::new(self.device())
            .with_compression(self.compression)
            .with_tracing(self.tracing())
    }

    /// The PT baseline.
    pub fn pt(&self) -> PtSystem {
        PtSystem::new(self.device()).with_tracing(self.tracing())
    }

    /// The UVM baseline.
    pub fn uvm(&self) -> UvmSystem {
        UvmSystem::new(self.device()).with_tracing(self.tracing())
    }

    /// Any requested system behind the single [`AnySystem`] dispatch point
    /// (the one construction site shared by the grid runner and the CLI).
    pub fn system(&self, sys: crate::run::Sys) -> AnySystem {
        use crate::run::Sys;
        match sys {
            Sys::Pt => self.pt().into(),
            Sys::Subway => self.subway().into(),
            Sys::Uvm => self.uvm().into(),
            Sys::Ascetic => self.ascetic().into(),
        }
    }
}

/// Deterministic source vertex for BFS/SSSP: the highest-out-degree vertex
/// (a hub, so traversals cover the graph; ties break to the lowest id).
pub fn source_vertex(g: &Csr) -> VertexId {
    (0..g.num_vertices() as VertexId)
        .max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v)))
        .unwrap_or(0)
}

/// Instantiate `algo` for a bench run: single-source programs root at the
/// dataset's hub ([`source_vertex`]), multi-source programs draw their
/// registry-default sample count, kcore uses the paper-default k = 4.
pub fn bench_program(g: &Csr, algo: Algo) -> ascetic_algos::AnyProgram {
    let count = algo.default_source_count();
    let sources = if count > 0 {
        let n = g.num_vertices() as VertexId;
        let mut s: Vec<VertexId> = (0..count as VertexId)
            .map(|i| i.wrapping_mul(2_654_435_761) % n.max(1))
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    } else {
        vec![source_vertex(g)]
    };
    algo.program(&ascetic_algos::ProgramOpts {
        source: source_vertex(g),
        sources,
        k: 4,
    })
}

/// Run `algo` on `g` (already weighted if needed) under a system, via the
/// common trait.
pub fn run_algo<S: ascetic_core::OutOfCoreSystem>(
    sys: &S,
    g: &Csr,
    algo: Algo,
) -> ascetic_core::RunReport {
    sys.run(g, &bench_program(g, algo))
}

/// Run `algo` in memory (oracle + activity log).
pub fn run_algo_in_memory(g: &Csr, algo: Algo) -> ascetic_algos::InMemoryResult {
    ascetic_algos::inmemory::run_in_memory(g, &bench_program(g, algo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_core::OutOfCoreSystem;

    #[test]
    fn env_scaling_is_consistent() {
        let env = Env::with_scale(20_000);
        let ds = env.dataset(DatasetId::Fk);
        let dev = env.device();
        // dataset oversubscribes the device for SSSP like the paper
        assert!(ds.weighted().edge_bytes() > dev.mem_bytes);
        assert!(env.chunk_bytes() >= 256);
    }

    #[test]
    fn source_vertex_is_a_hub() {
        let env = Env::with_scale(50_000);
        let g = env.dataset(DatasetId::Fk).graph;
        let s = source_vertex(&g);
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(g.degree(s) as f64 > avg, "source should be a hub");
    }

    #[test]
    fn all_systems_agree_on_a_small_dataset() {
        let env = Env::with_scale(50_000);
        let ds = env.dataset(DatasetId::Gs);
        for algo in TABLE4_ORDER {
            let g = env.graph_for(&ds, algo);
            let oracle = run_algo_in_memory(&g, algo);
            let asc = run_algo(&env.ascetic(), &g, algo);
            assert_eq!(asc.output, oracle.output, "Ascetic {}", algo.display());
            let sw = run_algo(&env.subway(), &g, algo);
            assert_eq!(sw.output, oracle.output, "Subway {}", algo.display());
            let pt = run_algo(&env.pt(), &g, algo);
            assert_eq!(pt.output, oracle.output, "PT {}", algo.display());
            let uv = run_algo(&env.uvm(), &g, algo);
            assert_eq!(uv.output, oracle.output, "UVM {}", algo.display());
        }
    }

    #[test]
    fn any_system_dispatch_matches_direct_construction() {
        use crate::run::Sys;
        let env = Env::with_scale(50_000);
        let ds = env.dataset(DatasetId::Gs);
        let g = env.graph_for(&ds, Algo::Bfs);
        for sys in [Sys::Pt, Sys::Subway, Sys::Uvm, Sys::Ascetic] {
            let direct = match sys {
                Sys::Pt => run_algo(&env.pt(), &g, Algo::Bfs),
                Sys::Subway => run_algo(&env.subway(), &g, Algo::Bfs),
                Sys::Uvm => run_algo(&env.uvm(), &g, Algo::Bfs),
                Sys::Ascetic => run_algo(&env.ascetic(), &g, Algo::Bfs),
            };
            let system = env.system(sys);
            system.prepare(&g).expect("small dataset fits");
            let via = run_algo(&system, &g, Algo::Bfs);
            assert_eq!(via.system, direct.system, "{}", sys.name());
            assert_eq!(via.output, direct.output, "{}", sys.name());
            assert_eq!(via.xfer, direct.xfer, "{}", sys.name());
            assert_eq!(via.sim_time_ns, direct.sim_time_ns, "{}", sys.name());
            assert_eq!(via.kernels, direct.kernels, "{}", sys.name());
        }
    }

    #[test]
    fn system_names() {
        let env = Env::with_scale(50_000);
        assert_eq!(env.ascetic().name(), "Ascetic");
        assert_eq!(env.subway().name(), "Subway");
        assert_eq!(env.pt().name(), "PT");
        assert_eq!(env.uvm().name(), "UVM");
    }
}
