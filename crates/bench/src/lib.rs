#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 for the
//! index). This library holds what they share:
//!
//! * [`setup`] — the scaled experimental environment: datasets, device,
//!   system constructors, all derived from one scale divisor so the
//!   paper's ratios (dataset : GPU memory, K) are preserved;
//! * [`fmt`] — markdown/CSV table printers and geometric means;
//! * [`output`] — the emission path every binary shares: markdown to
//!   stdout, one `<bin>.csv` per binary under `$ASCETIC_RESULTS`;
//! * [`run`] — uniform "run algorithm X on dataset Y under system Z"
//!   drivers used by most experiments.
//!
//! Every binary prints a markdown table shaped like the paper's, and (when
//! `ASCETIC_RESULTS` is set) writes raw CSVs for plotting.

pub mod fmt;
pub mod output;
pub mod run;
pub mod setup;
