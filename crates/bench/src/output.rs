//! The shared emission path for the bench binaries.
//!
//! Every binary produces the same two artifacts: a human-readable markdown
//! table on stdout and (when `$ASCETIC_RESULTS` is set) a machine-readable
//! CSV named after the binary. Centralising the pair keeps the file-naming
//! convention (`<bin>.csv`) and the stdout layout identical across all of
//! them.

use crate::fmt::{maybe_write_csv, Table};
use std::path::PathBuf;

pub use ascetic_core::RUN_REPORT_SCHEMA_VERSION as SCHEMA_VERSION;

/// The schema generation this crate's emitters were written against.
///
/// When [`ascetic_core::RUN_REPORT_SCHEMA_VERSION`] moves, every
/// `BENCH_*.json` layout must be revisited and the committed artifacts
/// regenerated. Keeping a local copy that [`json_header`] checks makes a
/// stale bench crate fail fast in debug/test builds instead of silently
/// stamping the new version onto an old layout.
pub const EMITTED_SCHEMA_VERSION: u32 = 3;

/// Shared opening of every `BENCH_*.json` document: the brace, the
/// [`SCHEMA_VERSION`] stamp and the bench identity lines, so downstream
/// parsers can branch on layout before touching bench-specific fields.
/// Callers append their own fields and the closing brace.
pub fn json_header(bench: &str, smoke: bool) -> String {
    debug_assert_eq!(
        SCHEMA_VERSION, EMITTED_SCHEMA_VERSION,
        "RUN_REPORT_SCHEMA_VERSION moved ({SCHEMA_VERSION}) but the bench emitters still \
         target {EMITTED_SCHEMA_VERSION}; revisit the BENCH_*.json layouts and regenerate \
         the committed artifacts before bumping EMITTED_SCHEMA_VERSION"
    );
    format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"bench\": \"{bench}\",\n  \
         \"smoke\": {smoke},\n"
    )
}

/// Print `display` as markdown and write `raw` as `<bin>.csv`.
///
/// `display` carries humanised units for the terminal; `raw` carries full
/// precision for plotting. Binaries with a single table pass it as both.
/// Returns the CSV path when `$ASCETIC_RESULTS` routed it to disk.
pub fn emit(bin: &str, display: &Table, raw: &Table) -> Option<PathBuf> {
    println!("\n{}", display.to_markdown());
    write_raw(bin, raw)
}

/// Print `table` as a markdown section under a `### title` heading — the
/// per-algorithm view the sweep binaries use, with one shared CSV written
/// separately via [`write_raw`] once all sections are out.
pub fn section(title: &str, table: &Table) {
    println!("\n### {title}\n\n{}", table.to_markdown());
}

/// The CSV half of [`emit`]: write `raw` as `<bin>.csv` under
/// `$ASCETIC_RESULTS` when the variable is set.
pub fn write_raw(bin: &str, raw: &Table) -> Option<PathBuf> {
    maybe_write_csv(&format!("{bin}.csv"), &raw.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_header_stamps_the_emitted_schema_generation() {
        let h = json_header("some_bench", false);
        assert!(
            h.contains(&format!("\"schema_version\": {EMITTED_SCHEMA_VERSION}")),
            "header must stamp the generation the emitters target:\n{h}"
        );
    }

    #[test]
    fn write_raw_names_the_file_after_the_binary() {
        // Serial by construction: this is the only test in the crate that
        // touches ASCETIC_RESULTS.
        std::env::remove_var("ASCETIC_RESULTS");
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert!(write_raw("some_bench", &t).is_none());

        let dir = std::env::temp_dir().join(format!("ascetic-output-{}", std::process::id()));
        std::env::set_var("ASCETIC_RESULTS", &dir);
        let path = write_raw("some_bench", &t).expect("env set, should write");
        std::env::remove_var("ASCETIC_RESULTS");
        assert_eq!(path, dir.join("some_bench.csv"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
