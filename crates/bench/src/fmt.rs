//! Table formatting and small statistics helpers.

use std::io::Write;
use std::path::PathBuf;

/// Geometric mean of positive values (the paper's Table 4/5 GEOMEAN rows).
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of nothing");
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// A simple markdown table builder.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned markdown.
    pub fn to_markdown(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(width)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &width));
        let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

/// Write `content` to `<ASCETIC_RESULTS>/<name>` when the env var is set;
/// returns the path written.
pub fn maybe_write_csv(name: &str, content: &str) -> Option<PathBuf> {
    let dir = std::env::var("ASCETIC_RESULTS").ok()?;
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).ok()?;
    f.write_all(content.as_bytes()).ok()?;
    eprintln!("wrote {}", path.display());
    Some(path)
}

/// Human-readable byte count.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}B")
    } else {
        format!("{v:.2}{}", UNITS[u])
    }
}

/// Seconds with adaptive precision.
pub fn human_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 10.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn table_renders_markdown_and_csv() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let md = t.to_markdown();
        assert!(md.contains("| a   | bb |"));
        assert!(md.lines().count() == 4);
        let csv = t.to_csv();
        assert_eq!(csv, "a,bb\n1,2\n333,4\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_checks_row_width() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn humanized_units() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.00KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00MB");
        assert_eq!(human_secs(2.5), "2.500s");
        assert_eq!(human_secs(0.0025), "2.500ms");
        assert_eq!(human_secs(2.5e-6), "2.5us");
    }
}
