//! Ablation — the Eq (3) adaptive re-partitioning rule.
//!
//! The paper's default configuration never triggers the rule ("no
//! partition adjustment is monitored", §4.1), so its value only shows when
//! the static region is deliberately oversized for a high-activity
//! workload: the on-demand region is then too small, batches fragment, and
//! Eq (3) should claw memory back. We force that regime with a large
//! static-ratio override on PR (the densest workload) and compare adaptive
//! on vs off.

use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::AsceticSystem;
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!(
        "Ablation: Eq (3) adaptive re-partitioning (scale 1/{})",
        env.scale
    );
    let pd = PreparedDataset::build(&env, DatasetId::Fk);

    let mut table = Table::new(vec![
        "Algo",
        "Forced R",
        "Adaptive off",
        "Adaptive on",
        "Improvement",
    ]);
    let mut csv = Table::new(vec![
        "algo",
        "ratio",
        "off_seconds",
        "on_seconds",
        "improvement_pct",
    ]);
    for algo in [Algo::Pr, Algo::Cc] {
        let g = pd.graph(algo);
        for ratio in [0.97, 0.99] {
            let base = env.ascetic_cfg().with_static_ratio(ratio);
            let off = run_algo(&AsceticSystem::new(base.with_adaptive(false)), g, algo);
            let on = run_algo(&AsceticSystem::new(base.with_adaptive(true)), g, algo);
            assert_eq!(off.output, on.output, "adaptivity must not change results");
            let improvement = (off.seconds() / on.seconds() - 1.0) * 100.0;
            table.row(vec![
                algo.display().to_string(),
                format!("{ratio:.2}"),
                format!("{:.4}s", off.seconds()),
                format!("{:.4}s", on.seconds()),
                format!("{improvement:+.1}%"),
            ]);
            csv.row(vec![
                algo.display().to_string(),
                format!("{ratio:.2}"),
                format!("{:.6}", off.seconds()),
                format!("{:.6}", on.seconds()),
                format!("{improvement:.2}"),
            ]);
        }
        // default Eq (2) sizing for reference: adaptivity should be a no-op
        let off = run_algo(
            &AsceticSystem::new(env.ascetic_cfg().with_adaptive(false)),
            g,
            algo,
        );
        let on = run_algo(&AsceticSystem::new(env.ascetic_cfg()), g, algo);
        table.row(vec![
            algo.display().to_string(),
            "Eq(2)".to_string(),
            format!("{:.4}s", off.seconds()),
            format!("{:.4}s", on.seconds()),
            format!("{:+.1}%", (off.seconds() / on.seconds() - 1.0) * 100.0),
        ]);
    }
    // The rule demands *both* an on-demand overflow and an under-used
    // static region — with the paper's near-uniform access that second
    // condition never holds, which is exactly why the paper reports "no
    // partition adjustment is monitored". To show the mechanism works at
    // all, stage a pathological case: a rear-filled, oversized static
    // region against BFS on the web graph, whose early frontiers are
    // localized near the (front-resident) source — the region holds cold
    // data while the 1-chunk on-demand region fragments badly.
    let uk = PreparedDataset::build(&env, DatasetId::Uk);
    let g = uk.graph(Algo::Bfs);
    let bad = env
        .ascetic_cfg()
        .with_static_ratio(0.995)
        .with_fill(ascetic_core::FillPolicy::Rear);
    let off = run_algo(&AsceticSystem::new(bad.with_adaptive(false)), g, Algo::Bfs);
    let on = run_algo(&AsceticSystem::new(bad.with_adaptive(true)), g, Algo::Bfs);
    assert_eq!(off.output, on.output);
    let improvement = (off.seconds() / on.seconds() - 1.0) * 100.0;
    eprintln!(
        "staged scenario: Eq (3) fired {} times (0 with adaptivity off: {})",
        on.repartitions, off.repartitions
    );
    table.row(vec![
        "BFS-UK(rear)".to_string(),
        "1.00".to_string(),
        format!("{:.4}s", off.seconds()),
        format!("{:.4}s", on.seconds()),
        format!("{improvement:+.1}%"),
    ]);
    csv.row(vec![
        "BFS-UK-rear".to_string(),
        "1.00".to_string(),
        format!("{:.6}", off.seconds()),
        format!("{:.6}", on.seconds()),
        format!("{improvement:.2}"),
    ]);

    emit("ablation_adaptive", &table, &csv);
    println!(
        "Expectation: ~0% in well-sized or uniformly-accessed configurations (the\n\
         paper saw no triggers at its defaults); a real gain only in the staged\n\
         cold-static scenario where Eq (3)'s two conditions actually hold."
    );
}
