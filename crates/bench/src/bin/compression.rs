//! Compression sweep — the compressed transfer path across the Table 5 grid.
//!
//! Runs Ascetic under `CompressionMode::{Off, Always, Adaptive}` over the
//! full 4 algos × 4 datasets grid and reports, per cell, the simulated
//! time and the raw vs wire transfer volumes. The acceptance invariants of
//! the adaptive crossover are checked here:
//!
//! * Adaptive puts strictly fewer bytes on the wire than Off over the grid
//!   (web-locality datasets compress ~3×; the bulk prestore crosses over).
//! * Adaptive never increases the simulated total time of any cell (the
//!   chain-aware crossover only ships encoded payloads when the copy +
//!   decompress chain beats the raw copy).
//!
//! Output: markdown on stdout, `compression.csv` under `$ASCETIC_RESULTS`,
//! and `BENCH_compression.json` recording both deltas. Pass `--smoke` for
//! the fast CI variant.

use ascetic_bench::fmt::{human_bytes, Table};
use ascetic_bench::output::emit;
use ascetic_bench::run::{run_grid, Cell, Sys};
use ascetic_bench::setup::Env;
use ascetic_core::CompressionMode;
use ascetic_graph::datasets::DatasetId;
use std::fmt::Write as _;
use std::path::PathBuf;

const MODES: [(CompressionMode, &str); 3] = [
    (CompressionMode::Off, "off"),
    (CompressionMode::Always, "always"),
    (CompressionMode::Adaptive, "adaptive"),
];

fn mode_grid(scale: u64, mode: CompressionMode) -> Vec<Cell> {
    // weighted graphs reject `Always` by design (weights ship raw, so a
    // forced-encode mode is a contradiction); SSSP's "always" cells run
    // the closest legal mode instead so the grid stays rectangular
    ascetic_bench::setup::TABLE4_ORDER
        .iter()
        .flat_map(|&algo| {
            let m = if algo.weighted() && mode == CompressionMode::Always {
                CompressionMode::Adaptive
            } else {
                mode
            };
            let env = Env::with_scale(scale).with_compression(m);
            run_grid(&env, &[algo], &DatasetId::ALL, &[Sys::Ascetic])
        })
        .collect()
}

fn json_report(smoke: bool, scale: u64, grids: &[Vec<Cell>]) -> String {
    let (off, always, adaptive) = (&grids[0], &grids[1], &grids[2]);
    let mut j = ascetic_bench::output::json_header("compression", smoke);
    let _ = writeln!(j, "  \"scale\": {scale},");
    let _ = writeln!(j, "  \"cells\": [");
    let mut off_wire_total = 0u64;
    let mut adaptive_wire_total = 0u64;
    let mut regressed = 0usize;
    for i in 0..off.len() {
        let (o, al, ad) = (
            &off[i].reports[0],
            &always[i].reports[0],
            &adaptive[i].reports[0],
        );
        off_wire_total += o.total_wire_bytes_with_prestore();
        adaptive_wire_total += ad.total_wire_bytes_with_prestore();
        if ad.sim_time_ns > o.sim_time_ns {
            regressed += 1;
        }
        let comma = if i + 1 < off.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"algo\": \"{}\", \"dataset\": \"{}\", \
             \"off\": {{\"sim_ns\": {}, \"bytes\": {}, \"wire\": {}}}, \
             \"always\": {{\"sim_ns\": {}, \"bytes\": {}, \"wire\": {}}}, \
             \"adaptive\": {{\"sim_ns\": {}, \"bytes\": {}, \"wire\": {}}}, \
             \"wire_saved_bytes\": {}, \"time_delta_ns\": {}}}{}",
            off[i].algo.display(),
            off[i].dataset.abbr(),
            o.sim_time_ns,
            o.total_bytes_with_prestore(),
            o.total_wire_bytes_with_prestore(),
            al.sim_time_ns,
            al.total_bytes_with_prestore(),
            al.total_wire_bytes_with_prestore(),
            ad.sim_time_ns,
            ad.total_bytes_with_prestore(),
            ad.total_wire_bytes_with_prestore(),
            o.total_wire_bytes_with_prestore() as i64 - ad.total_wire_bytes_with_prestore() as i64,
            ad.sim_time_ns as i64 - o.sim_time_ns as i64,
            comma
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"totals\": {{");
    let _ = writeln!(j, "    \"off_wire_bytes\": {off_wire_total},");
    let _ = writeln!(j, "    \"adaptive_wire_bytes\": {adaptive_wire_total},");
    let _ = writeln!(
        j,
        "    \"wire_saved_bytes\": {},",
        off_wire_total as i64 - adaptive_wire_total as i64
    );
    let _ = writeln!(
        j,
        "    \"adaptive_saves_wire\": {},",
        adaptive_wire_total < off_wire_total
    );
    let _ = writeln!(j, "    \"cells_time_regressed\": {regressed}");
    let _ = writeln!(j, "  }}");
    j.push('}');
    j.push('\n');
    j
}

fn output_path() -> PathBuf {
    match std::env::var("ASCETIC_RESULTS") {
        Ok(dir) if !dir.is_empty() => {
            std::fs::create_dir_all(&dir).expect("create $ASCETIC_RESULTS dir");
            PathBuf::from(dir).join("BENCH_compression.json")
        }
        _ => PathBuf::from("BENCH_compression.json"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 50_000 } else { Env::from_env().scale };
    eprintln!("Compression sweep (scale 1/{scale})");

    let grids: Vec<Vec<Cell>> = MODES
        .iter()
        .map(|&(mode, name)| {
            eprintln!("mode: {name}");
            mode_grid(scale, mode)
        })
        .collect();
    // the transfer encoding must be invisible to the algorithms
    for grid in &grids[1..] {
        for (a, b) in grids[0].iter().zip(grid.iter()) {
            assert!(
                a.reports[0]
                    .output
                    .first_mismatch(&b.reports[0].output, 1e-9)
                    .is_none(),
                "compression changed the answer on {} / {}",
                a.algo.display(),
                a.dataset.abbr()
            );
        }
    }

    let mut table = Table::new(vec![
        "Algo",
        "Dataset",
        "Raw",
        "Wire (adaptive)",
        "Saved",
        "Time delta",
    ]);
    let mut csv = Table::new(vec![
        "mode",
        "algo",
        "dataset",
        "sim_ns",
        "bytes_with_prestore",
        "wire_bytes_with_prestore",
    ]);
    for (gi, grid) in grids.iter().enumerate() {
        for c in grid {
            let r = &c.reports[0];
            csv.row(vec![
                MODES[gi].1.to_string(),
                c.algo.display().to_string(),
                c.dataset.abbr().to_string(),
                r.sim_time_ns.to_string(),
                r.total_bytes_with_prestore().to_string(),
                r.total_wire_bytes_with_prestore().to_string(),
            ]);
        }
    }
    for (cell, ad_cell) in grids[0].iter().zip(grids[2].iter()) {
        let o = &cell.reports[0];
        let ad = &ad_cell.reports[0];
        let raw = o.total_wire_bytes_with_prestore();
        let wire = ad.total_wire_bytes_with_prestore();
        let saved = 100.0 * (raw as f64 - wire as f64) / raw.max(1) as f64;
        let dt = ad.sim_time_ns as i64 - o.sim_time_ns as i64;
        table.row(vec![
            cell.algo.display().to_string(),
            cell.dataset.abbr().to_string(),
            human_bytes(raw),
            human_bytes(wire),
            format!("{saved:.1}%"),
            format!("{:+.2}%", 100.0 * dt as f64 / o.sim_time_ns.max(1) as f64),
        ]);
    }
    emit("compression", &table, &csv);

    let json = json_report(smoke, scale, &grids);
    let path = output_path();
    std::fs::write(&path, &json).expect("write BENCH_compression.json");
    println!("wrote {}", path.display());

    let off_wire: u64 = grids[0]
        .iter()
        .map(|c| c.reports[0].total_wire_bytes_with_prestore())
        .sum();
    let ad_wire: u64 = grids[2]
        .iter()
        .map(|c| c.reports[0].total_wire_bytes_with_prestore())
        .sum();
    if ad_wire >= off_wire {
        eprintln!("warning: adaptive wire bytes ({ad_wire}) did not improve on raw ({off_wire})");
    }
    let regressed: Vec<String> = grids[0]
        .iter()
        .zip(grids[2].iter())
        .filter(|(o, a)| a.reports[0].sim_time_ns > o.reports[0].sim_time_ns)
        .map(|(o, _)| format!("{}/{}", o.algo.display(), o.dataset.abbr()))
        .collect();
    if !regressed.is_empty() {
        eprintln!("warning: adaptive slowed down: {}", regressed.join(", "));
    }
}
