//! §5 discussion — static-region replacement study.
//!
//! Paper: "The replacement of dataset in Static Region does not
//! significantly improve the performance because the time left for
//! On-demand Engine to update the Static Region is quite limited. Based on
//! our measurements, only 28.40% of time is spent in the On-demand Region,
//! and only about 2% of the total data transfer can be completed during
//! that time." This experiment measures exactly those three quantities.

use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::{AsceticSystem, ReplacementPolicy};
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!(
        "Discussion: replacement study on FK (scale 1/{})",
        env.scale
    );
    let pd = PreparedDataset::build(&env, DatasetId::Fk);

    let mut table = Table::new(vec![
        "Algo",
        "Policy",
        "Time",
        "vs disabled",
        "Refresh bytes",
        "of total xfer",
        "OD-compute share",
    ]);
    let mut csv = Table::new(vec![
        "algo",
        "policy",
        "seconds",
        "refresh_bytes",
        "total_bytes",
        "od_window_frac",
    ]);
    for algo in [Algo::Pr, Algo::Cc] {
        let g = pd.graph(algo);
        let base = run_algo(
            &AsceticSystem::new(
                env.ascetic_cfg()
                    .with_replacement(ReplacementPolicy::Disabled),
            ),
            g,
            algo,
        );
        let policies = [
            ("disabled", ReplacementPolicy::Disabled),
            ("last-iter", ReplacementPolicy::LastIteration),
            (
                "cumulative",
                ReplacementPolicy::Cumulative { stale_threshold: 3 },
            ),
        ];
        for (name, policy) in policies {
            let rep = run_algo(
                &AsceticSystem::new(env.ascetic_cfg().with_replacement(policy)),
                g,
                algo,
            );
            assert_eq!(rep.output, base.output);
            let delta = (base.seconds() / rep.seconds() - 1.0) * 100.0;
            let total = rep.total_bytes_with_prestore();
            let refresh_frac = rep.refresh_bytes as f64 / total.max(1) as f64 * 100.0;
            let od_share =
                rep.breakdown.ondemand_compute_ns as f64 / rep.sim_time_ns as f64 * 100.0;
            table.row(vec![
                algo.display().to_string(),
                name.to_string(),
                format!("{:.4}s", rep.seconds()),
                format!("{delta:+.1}%"),
                format!("{}", rep.refresh_bytes),
                format!("{refresh_frac:.1}%"),
                format!("{od_share:.1}%"),
            ]);
            csv.row(vec![
                algo.display().to_string(),
                name.to_string(),
                format!("{:.6}", rep.seconds()),
                rep.refresh_bytes.to_string(),
                total.to_string(),
                format!("{:.4}", od_share / 100.0),
            ]);
        }
    }
    emit("disc_replacement", &table, &csv);
    println!(
        "Paper: replacement gains are small — only ~28.4% of time is on-demand\n\
         compute and only ~2% of the total transfer fits in that window."
    );
}
