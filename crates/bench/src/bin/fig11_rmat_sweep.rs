//! Figure 11 (right) — "The performance comparison with Subway with
//! different datasets" (R-MAT scaling).
//!
//! Paper: R-MAT datasets from 2.5 B to 12 B edges against a fixed 10 GB
//! device — the reuse benefit shrinks as the dataset grows, but at ~20 %
//! coverage Ascetic still achieves ~1.5× over Subway, and "Ascetic has a
//! better performance when large datasets are used" in absolute terms
//! because transfer time dominates.

use ascetic_baselines::SubwaySystem;
use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::AsceticSystem;
use ascetic_graph::datasets::rmat_dataset;

fn main() {
    let env = Env::from_env();
    eprintln!(
        "Figure 11 (right): R-MAT dataset sweep (scale 1/{})",
        env.scale
    );
    // Paper sweeps 2.5B..12B edges; same paper-scale series here.
    let paper_edges = [
        2_500_000_000u64,
        5_000_000_000,
        8_000_000_000,
        12_000_000_000,
    ];
    let dev = env.device();

    let mut table = Table::new(vec![
        "Paper |E|",
        "Scaled |E|",
        "Algo",
        "Subway",
        "Ascetic",
        "Speedup",
    ]);
    let mut csv = Table::new(vec![
        "paper_edges",
        "scaled_edges",
        "algo",
        "subway_s",
        "ascetic_s",
        "speedup",
    ]);
    for &pe in &paper_edges {
        let g = rmat_dataset(pe, env.scale, 0xBEEF ^ pe);
        for algo in [Algo::Bfs, Algo::Pr] {
            let gg = if algo.weighted() {
                ascetic_graph::datasets::weighted_variant(&g)
            } else {
                g.clone()
            };
            eprintln!("  RMAT {:.1}B / {} ...", pe as f64 / 1e9, algo.display());
            let sw = run_algo(&SubwaySystem::new(dev), &gg, algo);
            let asc = run_algo(&AsceticSystem::new(env.ascetic_cfg()), &gg, algo);
            assert_eq!(sw.output, asc.output);
            let speed = sw.seconds() / asc.seconds();
            table.row(vec![
                format!("{:.1}B", pe as f64 / 1e9),
                format!("{:.2}M", g.num_edges() as f64 / 1e6),
                algo.display().to_string(),
                format!("{:.4}s", sw.seconds()),
                format!("{:.4}s", asc.seconds()),
                format!("{speed:.2}X"),
            ]);
            csv.row(vec![
                pe.to_string(),
                g.num_edges().to_string(),
                algo.display().to_string(),
                format!("{:.6}", sw.seconds()),
                format!("{:.6}", asc.seconds()),
                format!("{speed:.4}"),
            ]);
        }
    }
    emit("fig11_rmat_sweep", &table, &csv);
    println!(
        "Paper: speedup decays with dataset size but stays >= ~1.5X even when the\n\
         static region covers only ~20% of the input."
    );
}
