//! Incremental recompute lane — streaming mutations vs. full recompute.
//!
//! Streams deterministic churn batches through a live Ascetic session
//! (delta-patch + incremental repair, `ascetic-mutate`) and compares each
//! batch against the alternative a mutation-oblivious deployment has: tear
//! the session down and recompute cold on the mutated graph. Three batch
//! sizes (0.1 %, 1 %, 5 % of the dataset's edges) × the five serve-facing
//! programs, covering all three repair modes — seeded (BFS/SSSP/CC),
//! restart (PR) and the full-recompute fallback (LP).
//!
//! Acceptance invariants checked here (downgraded to warnings by
//! `--smoke`):
//!
//! * On small batches (≤ 1 % of edges) repair beats the cold recompute on
//!   both simulated time and wire bytes, for every program.
//! * At the fallback boundary (LP, no `Capabilities::incremental`) no cell
//!   is slower than the recompute: the warm session must make the
//!   fallback at worst free, never a regression.
//! * Every repaired output is bit-identical to a cold in-memory recompute
//!   on the mutated graph (hard assert even under `--smoke`).
//!
//! Output: markdown on stdout, `incremental.csv` under `$ASCETIC_RESULTS`,
//! and `BENCH_incremental.json` recording every cell plus the two wins.

use ascetic_bench::fmt::{human_bytes, Table};
use ascetic_bench::output::emit;
use ascetic_bench::setup::{bench_program, Env};
use ascetic_core::{AsceticSession, RepairMode};
use ascetic_graph::datasets::DatasetId;
use ascetic_graph::Csr;
use ascetic_mutate::{materialize, run_with_mutations, synthetic_churn};
use std::fmt::Write as _;
use std::path::PathBuf;

use ascetic_bench::setup::Algo;

/// The serve-facing programs, one per repair mode class.
const ALGOS: [Algo; 5] = [Algo::Bfs, Algo::Sssp, Algo::Cc, Algo::Pr, Algo::Lp];

/// Batch sizes as fractions of the dataset's edge count. The first two
/// are the "small batch" regime the acceptance invariant covers.
const FRACS: [(f64, &str); 3] = [(0.001, "0.1%"), (0.01, "1%"), (0.05, "5%")];

/// How many consecutive batches each cell streams.
const BATCHES: usize = 3;

/// One (algo, batch-size) cell: repair-path costs summed over the
/// streamed batches vs. the cold-recompute costs summed over the same
/// epochs.
struct CellOut {
    algo: Algo,
    mode: &'static str,
    frac_label: &'static str,
    frac: f64,
    batch_edges: usize,
    repair_time_ns: u64,
    repair_wire_bytes: u64,
    repair_iterations: u64,
    recompute_time_ns: u64,
    recompute_wire_bytes: u64,
}

impl CellOut {
    fn small_batch(&self) -> bool {
        self.frac <= 0.01
    }
    fn wins_time(&self) -> bool {
        self.repair_time_ns < self.recompute_time_ns
    }
    fn wins_wire(&self) -> bool {
        self.repair_wire_bytes < self.recompute_wire_bytes
    }
}

/// The cold alternative for one epoch: a fresh session over the mutated
/// graph, prestore re-paid. Returns (time_ns, wire_bytes) including the
/// prestore on both axes — that is exactly what tearing the session down
/// costs.
fn recompute_cost(env: &Env, g: &Csr, prog: &ascetic_algos::AnyProgram) -> (u64, u64) {
    let mut sess = AsceticSession::new(env.ascetic_cfg(), g);
    let rep = sess.run(prog);
    (
        rep.prestore_ns + rep.sim_time_ns,
        rep.prestore_wire_bytes + rep.xfer.h2d_wire_bytes,
    )
}

fn run_cell(env: &Env, base: &Csr, algo: Algo, frac: f64, frac_label: &'static str) -> CellOut {
    let batch_edges = ((base.num_edges() as f64 * frac) as usize).max(1);
    // churn is seeded per (algo, frac) so cells are independent draws
    let seed = 0x5EED ^ ((algo as u64) << 8) ^ (frac * 1e4) as u64;
    let batches = synthetic_churn(base, BATCHES, batch_edges, seed);
    let prog = bench_program(base, algo);

    let run = run_with_mutations(env.ascetic_cfg(), base, &prog, &batches, true)
        .expect("churn batches are always applicable");
    assert!(
        run.all_verified(),
        "{}: a repaired output diverged from the cold recompute",
        algo.display()
    );

    let epochs = materialize(base, &batches).expect("same batches, same result");
    let mut recompute_time_ns = 0;
    let mut recompute_wire_bytes = 0;
    for version in &epochs.versions[1..] {
        let (t, w) = recompute_cost(env, version, &prog);
        recompute_time_ns += t;
        recompute_wire_bytes += w;
    }

    let mode = match run.batches[0].mode {
        RepairMode::Seeded => "seeded",
        RepairMode::Restart => "restart",
        RepairMode::Fallback => "fallback",
    };
    CellOut {
        algo,
        mode,
        frac_label,
        frac,
        batch_edges,
        repair_time_ns: run.batches.iter().map(|b| b.patch_ns + b.repair_ns).sum(),
        repair_wire_bytes: run
            .batches
            .iter()
            .map(|b| b.patch_wire_bytes + b.repair_wire_bytes)
            .sum(),
        repair_iterations: run.batches.iter().map(|b| b.repair_iterations as u64).sum(),
        recompute_time_ns,
        recompute_wire_bytes,
    }
}

fn json_report(smoke: bool, scale: u64, cells: &[CellOut]) -> String {
    let mut j = ascetic_bench::output::json_header("incremental", smoke);
    let _ = writeln!(j, "  \"scale\": {scale},");
    let _ = writeln!(j, "  \"dataset\": \"fk\",");
    let _ = writeln!(j, "  \"batches_per_cell\": {BATCHES},");
    let _ = writeln!(j, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"algo\": \"{}\", \"mode\": \"{}\", \"batch_frac\": {}, \
             \"batch_edges\": {}, \
             \"repair\": {{\"time_ns\": {}, \"wire_bytes\": {}, \"iterations\": {}}}, \
             \"recompute\": {{\"time_ns\": {}, \"wire_bytes\": {}}}, \
             \"time_speedup_x1000\": {}, \"wire_saved_bytes\": {}}}{}",
            c.algo.display(),
            c.mode,
            c.frac,
            c.batch_edges,
            c.repair_time_ns,
            c.repair_wire_bytes,
            c.repair_iterations,
            c.recompute_time_ns,
            c.recompute_wire_bytes,
            c.recompute_time_ns * 1000 / c.repair_time_ns.max(1),
            c.recompute_wire_bytes as i64 - c.repair_wire_bytes as i64,
            comma
        );
    }
    let _ = writeln!(j, "  ],");
    let small = cells.iter().filter(|c| c.small_batch());
    let _ = writeln!(j, "  \"totals\": {{");
    let _ = writeln!(
        j,
        "    \"small_batch_repair_wins_time\": {},",
        small.clone().all(CellOut::wins_time)
    );
    let _ = writeln!(
        j,
        "    \"small_batch_repair_wins_wire\": {},",
        small.clone().all(CellOut::wins_wire)
    );
    let _ = writeln!(
        j,
        "    \"fallback_cells_slower\": {}",
        cells
            .iter()
            .filter(|c| c.mode == "fallback" && !c.wins_time())
            .count()
    );
    let _ = writeln!(j, "  }}");
    j.push('}');
    j.push('\n');
    j
}

fn output_path() -> PathBuf {
    match std::env::var("ASCETIC_RESULTS") {
        Ok(dir) if !dir.is_empty() => {
            std::fs::create_dir_all(&dir).expect("create $ASCETIC_RESULTS dir");
            PathBuf::from(dir).join("BENCH_incremental.json")
        }
        _ => PathBuf::from("BENCH_incremental.json"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 50_000 } else { Env::from_env().scale };
    let env = Env::with_scale(scale);
    eprintln!("Incremental recompute lane (scale 1/{scale}, fk stand-in)");

    let ds = env.dataset(DatasetId::Fk);
    let mut cells: Vec<CellOut> = Vec::new();
    for algo in ALGOS {
        let g = env.graph_for(&ds, algo);
        eprintln!("algo: {}", algo.display());
        for (frac, label) in FRACS {
            cells.push(run_cell(&env, &g, algo, frac, label));
        }
    }

    let mut table = Table::new(vec![
        "Algo",
        "Mode",
        "Batch",
        "Repair",
        "Recompute",
        "Speedup",
        "Repair wire",
        "Recompute wire",
    ]);
    let mut csv = Table::new(vec![
        "algo",
        "mode",
        "batch_frac",
        "batch_edges",
        "repair_time_ns",
        "recompute_time_ns",
        "repair_wire_bytes",
        "recompute_wire_bytes",
        "repair_iterations",
    ]);
    for c in &cells {
        table.row(vec![
            c.algo.display().to_string(),
            c.mode.to_string(),
            c.frac_label.to_string(),
            format!("{:.2}ms", c.repair_time_ns as f64 / 1e6),
            format!("{:.2}ms", c.recompute_time_ns as f64 / 1e6),
            format!(
                "{:.2}x",
                c.recompute_time_ns as f64 / c.repair_time_ns.max(1) as f64
            ),
            human_bytes(c.repair_wire_bytes),
            human_bytes(c.recompute_wire_bytes),
        ]);
        csv.row(vec![
            c.algo.display().to_string(),
            c.mode.to_string(),
            c.frac.to_string(),
            c.batch_edges.to_string(),
            c.repair_time_ns.to_string(),
            c.recompute_time_ns.to_string(),
            c.repair_wire_bytes.to_string(),
            c.recompute_wire_bytes.to_string(),
            c.repair_iterations.to_string(),
        ]);
    }
    emit("incremental", &table, &csv);

    let json = json_report(smoke, scale, &cells);
    let path = output_path();
    std::fs::write(&path, &json).expect("write BENCH_incremental.json");
    println!("wrote {}", path.display());

    // acceptance: repair wins the small-batch regime on both axes, and
    // the fallback boundary never regresses below the recompute
    let mut failures: Vec<String> = Vec::new();
    for c in &cells {
        if c.small_batch() && !(c.wins_time() && c.wins_wire()) {
            failures.push(format!(
                "{}/{}: repair {} ns / {} B vs recompute {} ns / {} B",
                c.algo.display(),
                c.frac_label,
                c.repair_time_ns,
                c.repair_wire_bytes,
                c.recompute_time_ns,
                c.recompute_wire_bytes
            ));
        }
        if c.mode == "fallback" && !c.wins_time() {
            failures.push(format!(
                "{}/{} (fallback): repair {} ns is not under the recompute's {} ns",
                c.algo.display(),
                c.frac_label,
                c.repair_time_ns,
                c.recompute_time_ns
            ));
        }
    }
    if !failures.is_empty() {
        if smoke {
            for f in &failures {
                eprintln!("warning: {f}");
            }
        } else {
            panic!(
                "incremental repair lost where it must win:\n  {}",
                failures.join("\n  ")
            );
        }
    }
}
