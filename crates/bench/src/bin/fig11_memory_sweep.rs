//! Figure 11 (left) — "Performance comparison with Subway with different
//! GPU memory sizes".
//!
//! Paper: Friendster (15 GB dataset) on GPU memory from 5 GB to 13 GB —
//! the reuse benefit shrinks as memory shrinks, but even at 35 % of the
//! dataset size Ascetic keeps a 24.6 % edge over Subway. We sweep the same
//! memory-to-dataset fractions at scale.

use ascetic_baselines::SubwaySystem;
use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::{AsceticConfig, AsceticSystem};
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!(
        "Figure 11 (left): GPU memory sweep on FK (scale 1/{})",
        env.scale
    );
    let pd = PreparedDataset::build(&env, DatasetId::Fk);

    // Paper sweeps 5..13 GB against a 15 GB dataset: fractions 1/3 .. 0.87.
    let mem_fracs = [0.35, 0.45, 0.55, 0.65, 0.75, 0.87];
    let mut table = Table::new(vec!["Mem/dataset", "Algo", "Subway", "Ascetic", "Speedup"]);
    let mut csv = Table::new(vec!["mem_frac", "algo", "subway_s", "ascetic_s", "speedup"]);
    for algo in [Algo::Bfs, Algo::Cc, Algo::Pr] {
        let g = pd.graph(algo);
        let vertex_overhead = g.num_vertices() as u64 * 24;
        for &frac in &mem_fracs {
            let mem = (g.edge_bytes() as f64 * frac) as u64 + vertex_overhead;
            let dev = env.device_with_mem(mem);
            eprintln!("  {} at {:.0}% ...", algo.display(), frac * 100.0);
            let sw = run_algo(&SubwaySystem::new(dev), g, algo);
            let asc = run_algo(
                &AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(env.chunk_bytes())),
                g,
                algo,
            );
            assert_eq!(sw.output, asc.output);
            let speed = sw.seconds() / asc.seconds();
            table.row(vec![
                format!("{:.0}%", frac * 100.0),
                algo.display().to_string(),
                format!("{:.4}s", sw.seconds()),
                format!("{:.4}s", asc.seconds()),
                format!("{speed:.2}X"),
            ]);
            csv.row(vec![
                format!("{frac:.2}"),
                algo.display().to_string(),
                format!("{:.6}", sw.seconds()),
                format!("{:.6}", asc.seconds()),
                format!("{speed:.4}"),
            ]);
        }
    }
    emit("fig11_memory_sweep", &table, &csv);
    println!(
        "Paper: the benefit shrinks with memory, but at 35% of the dataset size\n\
         Ascetic still improves on Subway by ~24.6%."
    );
}
