//! Host wall-clock benchmark for the execution engine (not a paper table).
//!
//! Everything else in `ascetic-bench` measures *simulated* device time,
//! which is bit-identical across machines and host thread counts. This
//! binary is the one place we measure the **host** — the CPU-side cost of
//! actually running the framework — so the persistent worker pool in
//! `ascetic-par` can be judged against the scoped-spawn dispatcher it
//! replaced:
//!
//! 1. *Dispatch microbenchmark*: ns per `parallel_for` dispatch of a small
//!    job, A/B between `DispatchMode::Spawn` and `DispatchMode::Persistent`
//!    in the same process. Acceptance: persistent is ≥ 2× cheaper.
//! 2. *End-to-end wall-clock*: PR / BFS / SSSP on scaled FK at several
//!    host thread counts, recording wall milliseconds alongside the
//!    (thread-count-independent) simulated time as a sanity anchor.
//!
//! Output: a markdown table on stdout plus `BENCH_wallclock.json` written
//! to `$ASCETIC_RESULTS` (or the current directory), embedding the pool's
//! telemetry snapshot. Pass `--smoke` for the fast CI variant.

use ascetic_bench::fmt::Table;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::pool_metrics_snapshot;
use ascetic_graph::datasets::DatasetId;
use ascetic_par::{parallel_for, set_dispatch_mode, set_num_threads, DispatchMode};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Job size for the dispatch microbenchmark: big enough to cross the
/// serial-fallback threshold so every rep exercises the dispatcher, small
/// enough that dispatch overhead dominates the body.
const DISPATCH_LEN: usize = 1024;

struct DispatchAb {
    threads: usize,
    reps: u32,
    spawn_ns: f64,
    persistent_ns: f64,
}

impl DispatchAb {
    fn speedup(&self) -> f64 {
        self.spawn_ns / self.persistent_ns.max(1.0)
    }
}

struct AlgoRun {
    algo: Algo,
    threads: usize,
    wall_ms: f64,
    sim_ms: f64,
    iterations: u32,
}

/// ns/dispatch under `mode`: best of several batches, so a descheduled
/// batch does not masquerade as dispatch cost.
fn measure_dispatch(mode: DispatchMode, threads: usize, reps: u32) -> f64 {
    set_dispatch_mode(mode);
    set_num_threads(threads);
    for _ in 0..(reps / 10).max(8) {
        parallel_for(DISPATCH_LEN, |i| {
            std::hint::black_box(i);
        });
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..reps {
            parallel_for(DISPATCH_LEN, |i| {
                std::hint::black_box(i);
            });
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(reps));
    }
    best
}

fn dispatch_ab(smoke: bool) -> DispatchAb {
    let threads = if smoke {
        2
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4)
            .max(2)
    };
    let reps = if smoke { 300 } else { 2000 };
    // Spawn first so the persistent pool's threads are not yet competing.
    let spawn_ns = measure_dispatch(DispatchMode::Spawn, threads, reps);
    let persistent_ns = measure_dispatch(DispatchMode::Persistent, threads, reps);
    DispatchAb {
        threads,
        reps,
        spawn_ns,
        persistent_ns,
    }
}

fn algo_sweep(smoke: bool) -> Vec<AlgoRun> {
    let env = Env::with_scale(if smoke { 50_000 } else { 4_000 });
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let ds = env.dataset(DatasetId::Fk);
    let mut runs = Vec::new();
    for algo in [Algo::Pr, Algo::Bfs, Algo::Sssp] {
        let g = env.graph_for(&ds, algo);
        for &t in thread_counts {
            set_num_threads(t);
            let t0 = Instant::now();
            let r = run_algo(&env.ascetic(), &g, algo);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            runs.push(AlgoRun {
                algo,
                threads: t,
                wall_ms,
                sim_ms: r.sim_time_ns as f64 / 1e6,
                iterations: r.iterations,
            });
        }
    }
    set_num_threads(0);
    runs
}

fn json_report(smoke: bool, ab: &DispatchAb, runs: &[AlgoRun]) -> String {
    let mut j = ascetic_bench::output::json_header("wallclock", smoke);
    let _ = writeln!(j, "  \"dispatch\": {{");
    let _ = writeln!(j, "    \"threads\": {},", ab.threads);
    let _ = writeln!(j, "    \"job_len\": {DISPATCH_LEN},");
    let _ = writeln!(j, "    \"reps\": {},", ab.reps);
    let _ = writeln!(j, "    \"spawn_ns_per_dispatch\": {:.1},", ab.spawn_ns);
    let _ = writeln!(
        j,
        "    \"persistent_ns_per_dispatch\": {:.1},",
        ab.persistent_ns
    );
    let _ = writeln!(j, "    \"speedup\": {:.3}", ab.speedup());
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"system\": \"Ascetic\", \"dataset\": \"FK\", \"algo\": \"{}\", \
             \"threads\": {}, \"wall_ms\": {:.3}, \"sim_ms\": {:.3}, \"iterations\": {}}}{}",
            r.algo.display(),
            r.threads,
            r.wall_ms,
            r.sim_ms,
            r.iterations,
            comma
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"pool\": {}", pool_metrics_snapshot().to_json());
    j.push('}');
    j.push('\n');
    j
}

fn output_path() -> PathBuf {
    match std::env::var("ASCETIC_RESULTS") {
        Ok(dir) if !dir.is_empty() => {
            std::fs::create_dir_all(&dir).expect("create $ASCETIC_RESULTS dir");
            PathBuf::from(dir).join("BENCH_wallclock.json")
        }
        _ => PathBuf::from("BENCH_wallclock.json"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    eprintln!(
        "Host wall-clock bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    let ab = dispatch_ab(smoke);
    let mut dt = Table::new(vec!["dispatch", "ns/job", "speedup"]);
    dt.row(vec![
        "spawn".to_string(),
        format!("{:.0}", ab.spawn_ns),
        "1.00x".to_string(),
    ]);
    dt.row(vec![
        "persistent".to_string(),
        format!("{:.0}", ab.persistent_ns),
        format!("{:.2}x", ab.speedup()),
    ]);
    println!(
        "\nDispatch overhead ({} threads, len {}, {} reps):\n\n{}",
        ab.threads,
        DISPATCH_LEN,
        ab.reps,
        dt.to_markdown()
    );

    // End-to-end sweep runs under the (default) persistent dispatcher.
    set_dispatch_mode(DispatchMode::Persistent);
    let runs = algo_sweep(smoke);
    let mut rt = Table::new(vec!["algo", "threads", "wall ms", "sim ms", "iters"]);
    for r in &runs {
        rt.row(vec![
            r.algo.display().to_string(),
            r.threads.to_string(),
            format!("{:.2}", r.wall_ms),
            format!("{:.2}", r.sim_ms),
            r.iterations.to_string(),
        ]);
    }
    println!("Ascetic on FK, host wall-clock:\n\n{}", rt.to_markdown());

    let json = json_report(smoke, &ab, &runs);
    let path = output_path();
    std::fs::write(&path, &json).expect("write BENCH_wallclock.json");
    println!("wrote {}", path.display());

    if ab.speedup() < 2.0 {
        eprintln!(
            "warning: persistent dispatch speedup {:.2}x below the 2x target \
             (noisy host?)",
            ab.speedup()
        );
    }
}
