//! Ablation — static-region chunk size.
//!
//! The paper fixes 16 KiB chunks ("amenable to the PCI-e burst transfer
//! mechanism", §3.4) without studying alternatives. This ablation sweeps
//! the chunk size: small chunks track vertex boundaries tightly (fewer
//! partially-covered vertices → higher static hit rate) but cost more
//! replacement DMAs per byte; large chunks amortize DMA latency but strand
//! coverage on boundary-straddling vertices.

use ascetic_bench::fmt::Table;
use ascetic_bench::output::{section, write_raw};
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::AsceticSystem;
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!("Ablation: chunk size on FK (scale 1/{})", env.scale);
    let pd = PreparedDataset::build(&env, DatasetId::Fk);

    let mut csv = Table::new(vec![
        "algo",
        "chunk_bytes",
        "seconds",
        "static_hit_pct",
        "xfer_bytes",
    ]);
    for algo in [Algo::Bfs, Algo::Pr] {
        let g = pd.graph(algo);
        let mut table = Table::new(vec![
            "Chunk",
            "Time",
            "Static hit",
            "Steady transfer",
            "Prestore",
        ]);
        for chunk in [
            2 * 1024usize,
            4 * 1024,
            8 * 1024,
            16 * 1024,
            32 * 1024,
            64 * 1024,
        ] {
            let cfg = env.ascetic_cfg().with_chunk_bytes(chunk);
            let rep = run_algo(&AsceticSystem::new(cfg), g, algo);
            let static_edges: u64 = rep.per_iter.iter().map(|i| i.static_edges).sum();
            let total: u64 = rep.per_iter.iter().map(|i| i.active_edges).sum();
            let hit = static_edges as f64 / total.max(1) as f64 * 100.0;
            table.row(vec![
                format!("{}KB", chunk / 1024),
                format!("{:.4}s", rep.seconds()),
                format!("{hit:.1}%"),
                format!("{:.2}MB", rep.steady_bytes() as f64 / 1e6),
                format!("{:.2}MB", rep.prestore_bytes as f64 / 1e6),
            ]);
            csv.row(vec![
                algo.display().to_string(),
                chunk.to_string(),
                format!("{:.6}", rep.seconds()),
                format!("{hit:.2}"),
                rep.steady_bytes().to_string(),
            ]);
        }
        section(algo.display(), &table);
    }
    write_raw("ablation_chunk_size", &csv);
    println!(
        "Expectation: mild sensitivity — the paper's 16 KiB sits on the flat part of\n\
         the curve (hit-rate loss only matters once chunks approach hub adjacency sizes)."
    );
}
