//! Direction sweep — push vs pull vs density-adaptive traversal over the
//! chunked CSC mirror.
//!
//! Runs Ascetic under `DirectionMode::{Push, Pull, Adaptive}` over the
//! pull-capable algorithms (BFS, CC, PR — SSSP is push-only and would be
//! rejected) × the full dataset grid, with the on-demand compression chain
//! both off and adaptive. The acceptance invariants of the direction
//! machinery are checked here:
//!
//! * every direction produces byte-identical outputs (`first_mismatch`
//!   with zero tolerance) — direction is a data-movement decision, never
//!   an answer change;
//! * `adaptive` never ships more steady-state wire bytes than push-only,
//!   and strictly fewer on BFS (the dense mid-phase is where pull wins);
//! * `adaptive` never increases the simulated total time of any cell.
//!
//! Output: markdown on stdout, `direction.csv` under `$ASCETIC_RESULTS`,
//! and `BENCH_direction.json` recording the per-cell wire/time deltas and
//! pull-iteration counts. Pass `--smoke` for the fast CI variant (asserts
//! downgraded to warnings at toy scale).

use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::run::{run_grid, Cell, Sys};
use ascetic_bench::setup::{Algo, Env};
use ascetic_core::{CompressionMode, DirectionMode, RunReport};
use ascetic_graph::datasets::DatasetId;
use std::fmt::Write as _;
use std::path::PathBuf;

const MODES: [(DirectionMode, &str); 3] = [
    (DirectionMode::Push, "push"),
    (DirectionMode::Pull, "pull"),
    (DirectionMode::Adaptive, "adaptive"),
];

const COMPS: [(CompressionMode, &str); 2] = [
    (CompressionMode::Off, "off"),
    (CompressionMode::Adaptive, "adaptive"),
];

/// The algorithms with a pull implementation; forcing `--direction pull`
/// on anything else is a configuration error by design.
const PULL_ALGOS: [Algo; 3] = [Algo::Bfs, Algo::Cc, Algo::Pr];

fn pull_iters(r: &RunReport) -> usize {
    r.per_iter.iter().filter(|i| i.pull).count()
}

fn mode_grid(scale: u64, dir: DirectionMode, comp: CompressionMode) -> Vec<Cell> {
    let env = Env::with_scale(scale)
        .with_direction(dir)
        .with_compression(comp);
    run_grid(&env, &PULL_ALGOS, &DatasetId::ALL, &[Sys::Ascetic])
}

/// `grids[comp][mode]`, in `COMPS` × `MODES` order.
fn json_report(smoke: bool, scale: u64, grids: &[Vec<Vec<Cell>>]) -> String {
    let mut j = ascetic_bench::output::json_header("direction", smoke);
    let _ = writeln!(j, "  \"scale\": {scale},");
    let _ = writeln!(j, "  \"cells\": [");
    let mut push_wire_total = 0u64;
    let mut adaptive_wire_total = 0u64;
    let mut regressed = 0usize;
    let cells = grids[0][0].len();
    let mode_obj = |r: &RunReport| {
        format!(
            "{{\"sim_ns\": {}, \"steady_wire_bytes\": {}, \"h2d_wire_bytes\": {}, \
             \"pull_iterations\": {}}}",
            r.sim_time_ns,
            r.steady_wire_bytes(),
            r.xfer.h2d_wire_bytes,
            pull_iters(r)
        )
    };
    for (ci, &(_, comp_name)) in COMPS.iter().enumerate() {
        for (i, cell) in grids[ci][0].iter().enumerate() {
            let (p, f, a) = (
                &cell.reports[0],
                &grids[ci][1][i].reports[0],
                &grids[ci][2][i].reports[0],
            );
            push_wire_total += p.steady_wire_bytes();
            adaptive_wire_total += a.steady_wire_bytes();
            if a.sim_time_ns > p.sim_time_ns {
                regressed += 1;
            }
            let comma = if ci + 1 < COMPS.len() || i + 1 < cells {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                j,
                "    {{\"algo\": \"{}\", \"dataset\": \"{}\", \"compression\": \"{}\", \
                 \"push\": {}, \"pull\": {}, \"adaptive\": {}, \
                 \"wire_saved_bytes\": {}, \"time_delta_ns\": {}}}{}",
                cell.algo.display(),
                cell.dataset.abbr(),
                comp_name,
                mode_obj(p),
                mode_obj(f),
                mode_obj(a),
                p.steady_wire_bytes() as i64 - a.steady_wire_bytes() as i64,
                a.sim_time_ns as i64 - p.sim_time_ns as i64,
                comma
            );
        }
    }
    let saved_pct = 100.0 * (push_wire_total as f64 - adaptive_wire_total as f64)
        / push_wire_total.max(1) as f64;
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"totals\": {{");
    let _ = writeln!(j, "    \"push_wire_bytes\": {push_wire_total},");
    let _ = writeln!(j, "    \"adaptive_wire_bytes\": {adaptive_wire_total},");
    let _ = writeln!(j, "    \"wire_saved_pct\": {saved_pct:.2},");
    let _ = writeln!(j, "    \"cells_time_regressed\": {regressed}");
    let _ = writeln!(j, "  }}");
    j.push('}');
    j.push('\n');
    j
}

fn output_path() -> PathBuf {
    match std::env::var("ASCETIC_RESULTS") {
        Ok(dir) if !dir.is_empty() => {
            std::fs::create_dir_all(&dir).expect("create $ASCETIC_RESULTS dir");
            PathBuf::from(dir).join("BENCH_direction.json")
        }
        _ => PathBuf::from("BENCH_direction.json"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 50_000 } else { Env::from_env().scale };
    eprintln!("Direction sweep (scale 1/{scale})");

    // grids[comp][mode]
    let grids: Vec<Vec<Vec<Cell>>> = COMPS
        .iter()
        .map(|&(comp, comp_name)| {
            MODES
                .iter()
                .map(|&(dir, dir_name)| {
                    eprintln!("direction: {dir_name}, compression: {comp_name}");
                    mode_grid(scale, dir, comp)
                })
                .collect()
        })
        .collect();

    // the direction decision must be invisible to the algorithms: every
    // mode × compression combination answers exactly like push/off
    let baseline = &grids[0][0];
    for comp_grids in &grids {
        for grid in comp_grids {
            for (a, b) in baseline.iter().zip(grid.iter()) {
                assert!(
                    a.reports[0]
                        .output
                        .first_mismatch(&b.reports[0].output, 0.0)
                        .is_none(),
                    "direction changed the answer on {} / {}",
                    a.algo.display(),
                    a.dataset.abbr()
                );
            }
        }
    }

    let mut table = Table::new(vec![
        "Algo",
        "Dataset",
        "Compression",
        "Wire (push)",
        "Wire (adaptive)",
        "Saved",
        "Pull iters",
        "Time delta",
    ]);
    let mut csv = Table::new(vec![
        "direction",
        "compression",
        "algo",
        "dataset",
        "sim_ns",
        "steady_wire_bytes",
        "h2d_wire_bytes",
        "pull_iterations",
    ]);
    for (ci, comp_grids) in grids.iter().enumerate() {
        for (mi, grid) in comp_grids.iter().enumerate() {
            for c in grid {
                let r = &c.reports[0];
                csv.row(vec![
                    MODES[mi].1.to_string(),
                    COMPS[ci].1.to_string(),
                    c.algo.display().to_string(),
                    c.dataset.abbr().to_string(),
                    r.sim_time_ns.to_string(),
                    r.steady_wire_bytes().to_string(),
                    r.xfer.h2d_wire_bytes.to_string(),
                    pull_iters(r).to_string(),
                ]);
            }
        }
    }
    let mut slow = Vec::new();
    let mut not_reduced = Vec::new();
    for (ci, &(_, comp_name)) in COMPS.iter().enumerate() {
        for (pc, ac) in grids[ci][0].iter().zip(grids[ci][2].iter()) {
            let p = &pc.reports[0];
            let a = &ac.reports[0];
            let saved = p.steady_wire_bytes() as i64 - a.steady_wire_bytes() as i64;
            let dt = a.sim_time_ns as i64 - p.sim_time_ns as i64;
            table.row(vec![
                pc.algo.display().to_string(),
                pc.dataset.abbr().to_string(),
                comp_name.to_string(),
                format!("{:.1} KiB", p.steady_wire_bytes() as f64 / 1024.0),
                format!("{:.1} KiB", a.steady_wire_bytes() as f64 / 1024.0),
                format!(
                    "{:.1}%",
                    100.0 * saved as f64 / p.steady_wire_bytes().max(1) as f64
                ),
                pull_iters(a).to_string(),
                format!("{:+.2}%", 100.0 * dt as f64 / p.sim_time_ns.max(1) as f64),
            ]);
            let tag = format!("{}/{}/{}", pc.algo.display(), pc.dataset.abbr(), comp_name);
            if dt > 0 {
                slow.push(tag.clone());
            }
            // strict reduction only where push shipped anything at all —
            // a fully-resident graph has nothing for pull to save
            if saved < 0 || (pc.algo == Algo::Bfs && p.steady_wire_bytes() > 0 && saved <= 0) {
                not_reduced.push(tag);
            }
        }
    }
    emit("direction", &table, &csv);

    let json = json_report(smoke, scale, &grids);
    let path = output_path();
    std::fs::write(&path, &json).expect("write BENCH_direction.json");
    println!("wrote {}", path.display());

    let push_wire: u64 = grids
        .iter()
        .flat_map(|cg| cg[0].iter())
        .map(|c| c.reports[0].steady_wire_bytes())
        .sum();
    let adaptive_wire: u64 = grids
        .iter()
        .flat_map(|cg| cg[2].iter())
        .map(|c| c.reports[0].steady_wire_bytes())
        .sum();
    let saved_pct = 100.0 * (push_wire as f64 - adaptive_wire as f64) / push_wire.max(1) as f64;
    println!("adaptive ships {saved_pct:.1}% fewer steady-state wire bytes than push-only");
    if smoke {
        // toy scale: pull may never win, so only warn
        if !not_reduced.is_empty() {
            eprintln!(
                "warning: adaptive did not reduce wire bytes on: {}",
                not_reduced.join(", ")
            );
        }
        if !slow.is_empty() {
            eprintln!("warning: adaptive slowed down: {}", slow.join(", "));
        }
    } else {
        assert!(
            not_reduced.is_empty(),
            "adaptive must not ship more wire bytes than push (strictly fewer on BFS): {}",
            not_reduced.join(", ")
        );
        assert!(slow.is_empty(), "adaptive slowed down: {}", slow.join(", "));
    }
}
