//! Table 3 — "The datasets used in experiments".
//!
//! Prints the paper's catalog next to the scaled stand-ins actually
//! generated, with structural statistics so the substitution is auditable
//! (directedness, degree skew, dataset sizes per algorithm family).

use ascetic_bench::fmt::{human_bytes, Table};
use ascetic_bench::output::emit;
use ascetic_bench::setup::Env;
use ascetic_graph::datasets::DatasetId;
use ascetic_graph::stats::degree_stats;

fn main() {
    let env = Env::from_env();
    eprintln!("Table 3: datasets (scale 1/{})", env.scale);
    let mut table = Table::new(vec![
        "Abbr",
        "Name",
        "Paper |V|",
        "Paper |E|",
        "Scaled |V|",
        "Scaled |E|",
        "Size (unw/wt)",
        "MaxDeg",
        "Gini",
    ]);
    let mut csv = Table::new(vec![
        "abbr",
        "vertices",
        "edges",
        "bytes_unweighted",
        "bytes_weighted",
        "max_degree",
        "gini",
    ]);
    for id in DatasetId::ALL {
        let ds = env.dataset(id);
        let s = degree_stats(&ds.graph);
        table.row(vec![
            id.abbr().to_string(),
            id.name().to_string(),
            format!("{:.2} M", id.paper_vertices() as f64 / 1e6),
            format!("{:.2} B", id.paper_edges() as f64 / 1e9),
            format!("{:.2} K", s.num_vertices as f64 / 1e3),
            format!("{:.2} M", s.num_edges as f64 / 1e6),
            format!(
                "{}/{}",
                human_bytes(ds.graph.edge_bytes()),
                human_bytes(2 * ds.graph.edge_bytes())
            ),
            s.max.to_string(),
            format!("{:.2}", s.gini),
        ]);
        csv.row(vec![
            id.abbr().to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            ds.graph.edge_bytes().to_string(),
            (2 * ds.graph.edge_bytes()).to_string(),
            s.max.to_string(),
            format!("{:.4}", s.gini),
        ]);
    }
    emit("table3_datasets", &table, &csv);
    println!(
        "Scaled GPU memory cap: {} (paper: 10 GB).",
        human_bytes(ascetic_graph::datasets::PAPER_GPU_MEM_BYTES / env.scale)
    );
}
