//! Ablation — sensitivity to the K parameter of Eq (2).
//!
//! The paper picks K = 10 % ("the percentage of active edges in the data
//! set in each iteration is mostly around 10%, except PR") and claims the
//! resulting split is near-optimal. This ablation sweeps K and reports the
//! resulting static share and runtime per algorithm, quantifying how
//! forgiving the formula is to misestimating the workload's true activity.

use ascetic_bench::fmt::Table;
use ascetic_bench::output::{section, write_raw};
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, run_algo_in_memory, Algo, Env};
use ascetic_core::ratio::static_share;
use ascetic_core::system::{edge_budget_bytes, reserve_vertex_arrays};
use ascetic_core::AsceticSystem;
use ascetic_graph::datasets::DatasetId;
use ascetic_sim::Gpu;

fn main() {
    let env = Env::from_env();
    eprintln!("Ablation: K sweep on FK (scale 1/{})", env.scale);
    let pd = PreparedDataset::build(&env, DatasetId::Fk);

    let mut csv = Table::new(vec!["algo", "k", "share", "seconds", "true_activity"]);
    for algo in [Algo::Bfs, Algo::Cc, Algo::Pr] {
        let g = pd.graph(algo);
        let truth = run_algo_in_memory(g, algo).avg_active_edge_fraction(g);
        let mut table = Table::new(vec!["K", "Eq(2) share", "Time"]);
        for k in [0.02, 0.05, 0.10, 0.20, 0.30, 0.45] {
            let cfg = env.ascetic_cfg().with_k(k);
            let rep = run_algo(&AsceticSystem::new(cfg), g, algo);
            let share = {
                let mut gpu = Gpu::new(env.device());
                let _v = reserve_vertex_arrays(&mut gpu, g);
                static_share(k, g.edge_bytes(), edge_budget_bytes(&gpu))
            };
            table.row(vec![
                format!("{:.0}%", k * 100.0),
                format!("{share:.2}"),
                format!("{:.4}s", rep.seconds()),
            ]);
            csv.row(vec![
                algo.display().to_string(),
                format!("{k:.2}"),
                format!("{share:.4}"),
                format!("{:.6}", rep.seconds()),
                format!("{truth:.4}"),
            ]);
        }
        section(
            &format!(
                "{} (measured avg activity: {:.1}%)",
                algo.display(),
                truth * 100.0
            ),
            &table,
        );
    }
    write_raw("ablation_k_sweep", &csv);
    println!(
        "Expectation: runtimes vary only mildly across K — Eq (2)'s share moves\n\
         slowly in K when D/M is moderate, which is why the paper's fixed 10%\n\
         works across algorithms with very different true activity."
    );
}
