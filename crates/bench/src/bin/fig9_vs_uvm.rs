//! Figure 9 — "Performance and data transfer comparison with the UVM-based
//! scheme".
//!
//! Paper: UVM is 6.2× slower than Ascetic on average, and moves 12–16×
//! more data on some workloads (the y-axis of the figure is Ascetic's
//! volume relative to UVM, mostly well under 1.0).

use ascetic_bench::fmt::{geomean, Table};
use ascetic_bench::output::emit;
use ascetic_bench::run::{run_grid, Sys};
use ascetic_bench::setup::Env;
use ascetic_core::CompressionMode;
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!("Figure 9: Ascetic vs UVM (scale 1/{})", env.scale);
    let compressed = env.compression != CompressionMode::Off;
    let cells = run_grid(
        &env,
        &ascetic_bench::setup::TABLE4_ORDER,
        &DatasetId::ALL,
        &[Sys::Uvm, Sys::Ascetic],
    );

    let mut headers = vec!["Workload", "Speedup over UVM", "Transfer vs UVM"];
    let mut csv_headers = vec!["workload", "speedup", "transfer_ratio"];
    if compressed {
        headers.push("Wire vs UVM");
        csv_headers.push("wire_ratio");
    }
    let mut table = Table::new(headers);
    let mut speeds = Vec::new();
    let mut csv = Table::new(csv_headers);
    for c in &cells {
        let uvm = &c.reports[0];
        let asc = &c.reports[1];
        let speed = uvm.seconds() / asc.seconds();
        let ratio = asc.total_bytes_with_prestore() as f64 / uvm.steady_bytes() as f64;
        speeds.push(speed);
        let label = format!("{}-{}", c.algo.display(), c.dataset.abbr());
        let mut row = vec![label.clone(), format!("{speed:.2}X"), format!("{ratio:.2}")];
        let mut csv_row = vec![label, format!("{speed:.4}"), format!("{ratio:.4}")];
        if compressed {
            let wire = asc.total_wire_bytes_with_prestore() as f64 / uvm.steady_bytes() as f64;
            row.push(format!("{wire:.2}"));
            csv_row.push(format!("{wire:.4}"));
        }
        table.row(row);
        csv.row(csv_row);
    }
    emit("fig9_vs_uvm", &table, &csv);
    println!(
        "Geomean speedup over UVM: {:.2}X.\nPaper: UVM 6.2X slower than Ascetic on average; Ascetic moves a small fraction of UVM's bytes.",
        geomean(&speeds)
    );
}
