//! Figure 9 — "Performance and data transfer comparison with the UVM-based
//! scheme".
//!
//! Paper: UVM is 6.2× slower than Ascetic on average, and moves 12–16×
//! more data on some workloads (the y-axis of the figure is Ascetic's
//! volume relative to UVM, mostly well under 1.0).

use ascetic_bench::fmt::{geomean, Table};
use ascetic_bench::output::emit;
use ascetic_bench::run::{run_grid, Sys};
use ascetic_bench::setup::{Algo, Env};
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!("Figure 9: Ascetic vs UVM (scale 1/{})", env.scale);
    let cells = run_grid(
        &env,
        &Algo::TABLE4_ORDER,
        &DatasetId::ALL,
        &[Sys::Uvm, Sys::Ascetic],
    );

    let mut table = Table::new(vec!["Workload", "Speedup over UVM", "Transfer vs UVM"]);
    let mut speeds = Vec::new();
    let mut csv = Table::new(vec!["workload", "speedup", "transfer_ratio"]);
    for c in &cells {
        let uvm = &c.reports[0];
        let asc = &c.reports[1];
        let speed = uvm.seconds() / asc.seconds();
        let ratio = asc.total_bytes_with_prestore() as f64 / uvm.steady_bytes() as f64;
        speeds.push(speed);
        let label = format!("{}-{}", c.algo.name(), c.dataset.abbr());
        table.row(vec![
            label.clone(),
            format!("{speed:.2}X"),
            format!("{ratio:.2}"),
        ]);
        csv.row(vec![label, format!("{speed:.4}"), format!("{ratio:.4}")]);
    }
    emit("fig9_vs_uvm", &table, &csv);
    println!(
        "Geomean speedup over UVM: {:.2}X.\nPaper: UVM 6.2X slower than Ascetic on average; Ascetic moves a small fraction of UVM's bytes.",
        geomean(&speeds)
    );
}
