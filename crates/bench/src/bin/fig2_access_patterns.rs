//! Figure 2 — "Access patterns of different graph processing algorithms at
//! the data-chunk granularity".
//!
//! Paper: nvprof traces of a UVM run (vertices on-device, edges in UVM)
//! for PR / SSSP / CC on friendster-konect, chunked at 4 M edges:
//! (a–c) chunk id touched over time — a near-sequential scan per
//! iteration; (d–f) per-chunk access counts in one iteration — roughly
//! uniform, no hot spots. We reproduce both views from the traced UVM
//! runner. The paper's FK has ~650 4M-edge chunks; we chunk the scaled
//! dataset into the same *number* of chunks.

use ascetic_algos::{Cc, PageRank, Sssp};
use ascetic_bench::fmt::{maybe_write_csv, Table};
use ascetic_bench::output::emit;
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{source_vertex, Algo, Env};
use ascetic_graph::datasets::DatasetId;
use ascetic_sim::AccessTracer;

const NUM_CHUNKS: usize = 650;

fn main() {
    let env = Env::from_env();
    eprintln!(
        "Figure 2: UVM access patterns on FK (scale 1/{})",
        env.scale
    );
    let pd = PreparedDataset::build(&env, DatasetId::Fk);

    let mut summary = Table::new(vec![
        "Algo",
        "Chunks touched",
        "Min count (mid iter)",
        "Max count (mid iter)",
        "Max/Min",
    ]);
    for algo in [Algo::Pr, Algo::Sssp, Algo::Cc] {
        let g = pd.graph(algo);
        let chunk_bytes = (g.edge_bytes() / NUM_CHUNKS as u64).max(1);
        let mut tracer = AccessTracer::new(NUM_CHUNKS + 2, 16);
        let sys = env.uvm();
        // track a mid-run iteration for the (d-f) view
        tracer.track_iteration(1);
        let rep = match algo {
            Algo::Pr => sys.run_traced(g, &PageRank::new(), &mut tracer, chunk_bytes),
            Algo::Sssp => sys.run_traced(g, &Sssp::new(source_vertex(g)), &mut tracer, chunk_bytes),
            Algo::Cc => sys.run_traced(g, &Cc::new(), &mut tracer, chunk_bytes),
            _ => unreachable!(),
        };
        let counts = tracer.iteration_counts();
        let touched = counts.iter().filter(|&&c| c > 0).count();
        let nonzero: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
        let (mn, mx) = (
            nonzero.iter().copied().min().unwrap_or(0),
            nonzero.iter().copied().max().unwrap_or(0),
        );
        summary.row(vec![
            algo.display().to_string(),
            format!("{touched}/{NUM_CHUNKS}"),
            mn.to_string(),
            mx.to_string(),
            format!("{:.1}", mx as f64 / mn.max(1) as f64),
        ]);
        eprintln!(
            "  {}: {} iterations, {} trace events",
            algo.display(),
            rep.iterations,
            tracer.events().len()
        );
        maybe_write_csv(
            &format!("fig2_{}_timeline.csv", algo.display().to_lowercase()),
            &tracer.events_csv(),
        );
        maybe_write_csv(
            &format!("fig2_{}_counts.csv", algo.display().to_lowercase()),
            &tracer.iteration_counts_csv(),
        );
    }
    emit("fig2_access_patterns", &summary, &summary);
    println!(
        "Paper's observations to check: (1) accesses sweep chunk ids in order per\n\
         iteration (see *_timeline.csv); (2) per-chunk counts within one iteration\n\
         are roughly even — no hot chunks (Max/Min within a small factor for PR/CC)."
    );
}
