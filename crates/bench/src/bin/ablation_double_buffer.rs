//! Ablation — double-buffering the on-demand region (extension).
//!
//! The paper's on-demand region is a single buffer: within one iteration,
//! batch `i+1` cannot transfer until batch `i` finishes computing. Splitting
//! the region into N buffers pipelines transfer against compute at the cost
//! of smaller batches (more per-batch fixed costs). This matters most for
//! workloads with many on-demand batches per iteration (SSSP/PR at low
//! static coverage), and not at all when an iteration fits one batch.

use ascetic_bench::fmt::Table;
use ascetic_bench::output::{section, write_raw};
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::AsceticSystem;
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!(
        "Ablation: on-demand double buffering (scale 1/{})",
        env.scale
    );
    let pd = PreparedDataset::build(&env, DatasetId::Fs); // biggest social dataset

    let mut csv = Table::new(vec!["algo", "ratio", "buffers", "seconds"]);
    for algo in [Algo::Sssp, Algo::Pr] {
        let g = pd.graph(algo);
        // a modest static share leaves plenty of on-demand batches to pipeline
        for ratio in [0.5, 0.8] {
            let mut table = Table::new(vec!["Buffers", "Time", "vs 1 buffer"]);
            let mut base = 0.0f64;
            for nbuf in [1usize, 2, 4] {
                let cfg = env
                    .ascetic_cfg()
                    .with_static_ratio(ratio)
                    .with_od_buffers(nbuf);
                let rep = run_algo(&AsceticSystem::new(cfg), g, algo);
                if nbuf == 1 {
                    base = rep.seconds();
                }
                table.row(vec![
                    nbuf.to_string(),
                    format!("{:.4}s", rep.seconds()),
                    format!("{:+.1}%", (base / rep.seconds() - 1.0) * 100.0),
                ]);
                csv.row(vec![
                    algo.display().to_string(),
                    format!("{ratio:.1}"),
                    nbuf.to_string(),
                    format!("{:.6}", rep.seconds()),
                ]);
            }
            section(&format!("{} at R = {ratio}", algo.display()), &table);
        }
    }
    write_raw("ablation_double_buffer", &csv);
    println!(
        "Expectation: a few percent from pipelining transfer under compute when\n\
         iterations span many batches; negligible once the static region absorbs\n\
         most of the traffic."
    );
}
