//! Figure 10 — "The impact of Static Region ratio on the execution time".
//!
//! Paper: for BFS / CC / PageRank on FK, sweep the static-region share R
//! from 0 to 1 and report total time plus the component times
//! (Tsr = static compute, Tfilling = CPU gather, Ttransfer = on-demand
//! H2D, Tondemand = on-demand compute), with Subway as a horizontal
//! reference and Eq (2)'s chosen ratio as a vertical marker. The optimum
//! sits around R ≈ 0.95 and the Eq (2) choice lands close to it.

use ascetic_bench::fmt::Table;
use ascetic_bench::output::{section, write_raw};
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::ratio::static_share;
use ascetic_core::system::{edge_budget_bytes, reserve_vertex_arrays};
use ascetic_core::AsceticSystem;
use ascetic_graph::datasets::DatasetId;
use ascetic_sim::Gpu;

fn main() {
    let env = Env::from_env();
    eprintln!(
        "Figure 10: static-ratio sweep on FK (scale 1/{})",
        env.scale
    );
    let pd = PreparedDataset::build(&env, DatasetId::Fk);

    let mut csv = Table::new(vec![
        "algo",
        "ratio",
        "total_s",
        "tsr_s",
        "tfilling_s",
        "ttransfer_s",
        "tondemand_s",
        "subway_s",
        "eq2_ratio",
    ]);
    for algo in [Algo::Bfs, Algo::Cc, Algo::Pr] {
        let g = pd.graph(algo);
        let subway = run_algo(&env.subway(), g, algo).seconds();

        // the Eq (2) choice for this workload (marker in the paper's plot)
        let eq2 = {
            let mut gpu = Gpu::new(env.device());
            let _v = reserve_vertex_arrays(&mut gpu, g);
            static_share(0.10, g.edge_bytes(), edge_budget_bytes(&gpu))
        };

        let mut table = Table::new(vec![
            "R",
            "Total",
            "Tsr",
            "Tfilling",
            "Ttransfer",
            "Tondemand",
            "Subway",
        ]);
        for step in 0..=10 {
            let r = step as f64 / 10.0;
            let cfg = env.ascetic_cfg().with_static_ratio(r);
            let rep = run_algo(&AsceticSystem::new(cfg), g, algo);
            let b = &rep.breakdown;
            table.row(vec![
                format!("{r:.1}"),
                format!("{:.4}s", rep.seconds()),
                format!("{:.4}s", b.static_compute_ns as f64 / 1e9),
                format!("{:.4}s", b.gather_ns as f64 / 1e9),
                format!("{:.4}s", b.transfer_ns as f64 / 1e9),
                format!("{:.4}s", b.ondemand_compute_ns as f64 / 1e9),
                format!("{subway:.4}s"),
            ]);
            csv.row(vec![
                algo.display().to_string(),
                format!("{r:.2}"),
                format!("{:.6}", rep.seconds()),
                format!("{:.6}", b.static_compute_ns as f64 / 1e9),
                format!("{:.6}", b.gather_ns as f64 / 1e9),
                format!("{:.6}", b.transfer_ns as f64 / 1e9),
                format!("{:.6}", b.ondemand_compute_ns as f64 / 1e9),
                format!("{subway:.6}"),
                format!("{eq2:.4}"),
            ]);
        }
        section(
            &format!("{} (Eq (2) chooses R = {eq2:.2})", algo.display()),
            &table,
        );
    }
    write_raw("fig10_ratio_sweep", &csv);
    println!(
        "Paper: optimum near R = 0.95 for all three; Eq (2)'s choice sits close to it;\n\
         larger R grows Tsr and shrinks Ttransfer/Tondemand."
    );
}
