//! Ablation — sensitivity of the headline result to the cost model.
//!
//! The simulated substrate uses P100-class constants (DESIGN.md §1). A fair
//! question for any simulation study: does the Ascetic-over-Subway result
//! survive if the constants are off? This sweep varies the two most
//! influential knobs — host gather bandwidth (Subway's bottleneck) and GPU
//! kernel throughput — across generous ranges and reports the speedup at
//! each point.

use ascetic_baselines::SubwaySystem;
use ascetic_bench::fmt::Table;
use ascetic_bench::output::write_raw;
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::{AsceticConfig, AsceticSystem};
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!(
        "Ablation: cost-model sensitivity on FK (scale 1/{})",
        env.scale
    );
    let pd = PreparedDataset::build(&env, DatasetId::Fk);
    let g = pd.graph(Algo::Pr);

    let mut csv = Table::new(vec![
        "gather_gbps",
        "kernel_gedges",
        "subway_s",
        "ascetic_s",
        "speedup",
    ]);

    println!("\n### gather bandwidth sweep (kernel fixed at 4 G edges/s)\n");
    let mut t1 = Table::new(vec!["Gather BW", "Subway", "Ascetic", "Ascetic/Subway"]);
    for gather_gbps in [4u64, 6, 10, 16, 24] {
        let mut dev = env.device();
        dev.gather.bandwidth_bps = gather_gbps * 1_000_000_000;
        let sw = run_algo(&SubwaySystem::new(dev), g, Algo::Pr);
        let asc = run_algo(
            &AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(env.chunk_bytes())),
            g,
            Algo::Pr,
        );
        assert_eq!(sw.output, asc.output);
        let x = sw.seconds() / asc.seconds();
        t1.row(vec![
            format!("{gather_gbps} GB/s"),
            format!("{:.4}s", sw.seconds()),
            format!("{:.4}s", asc.seconds()),
            format!("{x:.2}X"),
        ]);
        csv.row(vec![
            gather_gbps.to_string(),
            "4".to_string(),
            format!("{:.6}", sw.seconds()),
            format!("{:.6}", asc.seconds()),
            format!("{x:.3}"),
        ]);
    }
    println!("{}", t1.to_markdown());

    println!("\n### kernel throughput sweep (gather fixed at 10 GB/s)\n");
    let mut t2 = Table::new(vec!["Kernel rate", "Subway", "Ascetic", "Ascetic/Subway"]);
    for gedges in [1u64, 2, 4, 8, 16] {
        let mut dev = env.device();
        dev.kernel.edge_fs = 1_000_000 / gedges; // fs per edge at G edges/s
        let sw = run_algo(&SubwaySystem::new(dev), g, Algo::Pr);
        let asc = run_algo(
            &AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(env.chunk_bytes())),
            g,
            Algo::Pr,
        );
        assert_eq!(sw.output, asc.output);
        let x = sw.seconds() / asc.seconds();
        t2.row(vec![
            format!("{gedges} Gedge/s"),
            format!("{:.4}s", sw.seconds()),
            format!("{:.4}s", asc.seconds()),
            format!("{x:.2}X"),
        ]);
        csv.row(vec![
            "10".to_string(),
            gedges.to_string(),
            format!("{:.6}", sw.seconds()),
            format!("{:.6}", asc.seconds()),
            format!("{x:.3}"),
        ]);
    }
    println!("{}", t2.to_markdown());
    println!(
        "Expectation: Ascetic stays ahead across the whole grid — the win is\n\
         structural (moving less data, overlapping what remains), not an artifact\n\
         of one calibration point. The margin narrows as kernels slow (compute-\n\
         bound regimes leave less transfer time to hide) and widens as gather\n\
         slows (Subway's serial bottleneck grows)."
    );
    write_raw("ablation_cost_model", &csv);
}
