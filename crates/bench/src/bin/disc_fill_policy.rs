//! §5 discussion — static-region fill-policy study.
//!
//! Paper: "We have conducted a serial of experiments by filling up the
//! Static Region with the front portion, the rear portion, and randomly
//! selected data chunks... the initial dataset in Static Region has
//! negligible impact on the performance (less than 5%)", which validates
//! the near-uniform chunk-access observation behind Figure 2.

use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::{AsceticSystem, FillPolicy};
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!(
        "Discussion: fill-policy study on FK (scale 1/{})",
        env.scale
    );
    let pd = PreparedDataset::build(&env, DatasetId::Fk);

    let policies = [
        ("front", FillPolicy::Front),
        ("rear", FillPolicy::Rear),
        ("random", FillPolicy::Random { seed: 42 }),
        ("lazy", FillPolicy::Lazy),
    ];
    let mut table = Table::new(vec![
        "Algo",
        "Front",
        "Rear",
        "Random",
        "Spread(3)",
        "Lazy",
        "Lazy xfer",
    ]);
    let mut csv = Table::new(vec!["algo", "policy", "seconds", "total_bytes"]);
    for algo in [Algo::Bfs, Algo::Cc, Algo::Pr] {
        let g = pd.graph(algo);
        let mut secs = Vec::new();
        let mut lazy_bytes = 0u64;
        for (name, policy) in policies {
            let rep = run_algo(
                &AsceticSystem::new(env.ascetic_cfg().with_fill(policy)),
                g,
                algo,
            );
            csv.row(vec![
                algo.display().to_string(),
                name.to_string(),
                format!("{:.6}", rep.seconds()),
                rep.total_bytes_with_prestore().to_string(),
            ]);
            if name == "lazy" {
                lazy_bytes = rep.total_bytes_with_prestore();
            }
            secs.push(rep.seconds());
        }
        // spread over the three prefill placements (the paper's experiment)
        let spread = (secs[..3].iter().cloned().fold(f64::MIN, f64::max)
            / secs[..3].iter().cloned().fold(f64::MAX, f64::min)
            - 1.0)
            * 100.0;
        table.row(vec![
            algo.display().to_string(),
            format!("{:.4}s", secs[0]),
            format!("{:.4}s", secs[1]),
            format!("{:.4}s", secs[2]),
            format!("{spread:.1}%"),
            format!("{:.4}s", secs[3]),
            format!("{:.2}X data", lazy_bytes as f64 / g.edge_bytes() as f64),
        ]);
    }
    emit("disc_fill_policy", &table, &csv);
    println!(
        "Paper: initial fill placement changes performance by < 5%. The extra 'lazy'\n\
         column is this reproduction's extension (no prestore, chunks adopted on\n\
         demand): at these high-coverage workloads the eager prestore wins —\n\
         lazy pays repeated on-demand shipping while the window-rationed warming\n\
         catches up. It pays off only when the touched working set is small."
    );
}
