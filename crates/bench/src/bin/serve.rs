//! Serve bench — the multi-query serving layer across scheduling policies.
//!
//! Replays one deterministic ≥32-job mixed trace (BFS/SSSP/CC/PR over one
//! dataset stand-in and its weighted variant) under every scheduling
//! policy and reports, per policy, the total virtual makespan, queue
//! wait, on-demand H2D traffic, prestore traffic and residency hits.
//! The serving layer's acceptance invariants are checked here:
//!
//! * every job's answer is byte-identical under every policy (the
//!   schedule may not change results);
//! * batched BFS/SSSP answers are byte-identical to running the same
//!   jobs individually (batching may not change results);
//! * `residency` beats `fifo` on total virtual makespan AND on on-demand
//!   H2D bytes — grouping jobs by what is already on-device avoids the
//!   rebuild prestores FIFO pays every time the trace alternates graph
//!   variants;
//! * `residency` records nonzero residency hit bytes (warm runs served
//!   static-region traffic from carried device state).
//!
//! Output: markdown on stdout, `serve.csv` under `$ASCETIC_RESULTS`, and
//! `BENCH_serve.json`. Pass `--smoke` for the fast CI variant (asserts
//! downgraded to warnings at toy scale).

use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::setup::Env;
use ascetic_graph::datasets::DatasetId;
use ascetic_serve::{
    output_fingerprint, serve, synthetic_mixed, Policy, ServeConfig, ServeReport, ALL_POLICIES,
};
use std::fmt::Write as _;
use std::path::PathBuf;

const N_JOBS: usize = 48;
const TRACE_SEED: u64 = 2021;

fn json_report(smoke: bool, scale: u64, reports: &[ServeReport], solo: &ServeReport) -> String {
    let mut j = ascetic_bench::output::json_header("serve", smoke);
    let _ = writeln!(j, "  \"scale\": {scale},");
    let _ = writeln!(j, "  \"jobs\": {N_JOBS},");
    let _ = writeln!(j, "  \"trace_seed\": {TRACE_SEED},");
    let _ = writeln!(j, "  \"policies\": [");
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"policy\": \"{}\", \"makespan_ns\": {}, \"total_queue_wait_ns\": {}, \
             \"ondemand_h2d_bytes\": {}, \"prestore_bytes\": {}, \"residency_hit_bytes\": {}, \
             \"sessions_built\": {}, \"batches\": {}, \"batched_jobs\": {}, \
             \"batch_occupancy_x100\": {}}}{}",
            r.policy,
            r.makespan_ns,
            r.total_queue_wait_ns,
            r.ondemand_h2d_bytes,
            r.prestore_bytes,
            r.residency_hit_bytes,
            r.sessions_built,
            r.batches,
            r.batched_jobs,
            r.batch_occupancy_x100(),
            comma
        );
    }
    let _ = writeln!(j, "  ],");
    let fifo = &reports[0];
    let ra = &reports[2];
    let _ = writeln!(j, "  \"residency_vs_fifo\": {{");
    let _ = writeln!(
        j,
        "    \"makespan_saved_ns\": {},",
        fifo.makespan_ns as i64 - ra.makespan_ns as i64
    );
    let _ = writeln!(
        j,
        "    \"ondemand_h2d_saved_bytes\": {},",
        fifo.ondemand_h2d_bytes as i64 - ra.ondemand_h2d_bytes as i64
    );
    let _ = writeln!(
        j,
        "    \"prestores_avoided\": {}",
        fifo.sessions_built as i64 - ra.sessions_built as i64
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"oracles\": {{");
    let _ = writeln!(j, "    \"outputs_identical_across_policies\": true,");
    let _ = writeln!(j, "    \"batched_identical_to_individual\": true,");
    let _ = writeln!(j, "    \"solo_makespan_ns\": {},", solo.makespan_ns);
    let _ = writeln!(
        j,
        "    \"residency_hit_bytes_nonzero\": {}",
        ra.residency_hit_bytes > 0
    );
    let _ = writeln!(j, "  }}");
    j.push('}');
    j.push('\n');
    j
}

fn output_path() -> PathBuf {
    match std::env::var("ASCETIC_RESULTS") {
        Ok(dir) if !dir.is_empty() => {
            std::fs::create_dir_all(&dir).expect("create $ASCETIC_RESULTS dir");
            PathBuf::from(dir).join("BENCH_serve.json")
        }
        _ => PathBuf::from("BENCH_serve.json"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 50_000 } else { Env::from_env().scale };
    let env = Env::with_scale(scale);
    eprintln!("Serve sweep (scale 1/{scale}, {N_JOBS}-job mixed trace)");

    let ds = env.dataset(DatasetId::Gs);
    let g = ds.graph.clone();
    let w = ds.weighted();
    let cfg = env.ascetic_cfg();
    // Calibrate the arrival spacing to this scale's run times (one CC pass
    // ≈ a mid-length job) so the trace streams in rather than arriving as
    // one burst: that is what separates the policies — FIFO switches graph
    // variants in arrival order while residency-affinity defers weighted
    // jobs until the unweighted queue drains, merging them into far fewer
    // multi-source passes.
    let spacing_ns = {
        let mut session = ascetic_core::AsceticSession::new(cfg, &g);
        session.run(&ascetic_algos::Cc::new()).sim_time_ns
    };
    // One full mix cycle (bfs, sssp, bfs, cc, sssp, pr) arrives per burst,
    // bursts two CC-lengths apart: enough pressure that batching matters,
    // enough spread that FIFO's eager variant switching costs it — the
    // regime a shared device actually serves in.
    let spacing_ns = spacing_ns * 2;
    let jobs = synthetic_mixed(N_JOBS, g.num_vertices(), TRACE_SEED, spacing_ns, 6);

    let reports: Vec<ServeReport> = ALL_POLICIES
        .iter()
        .map(|&policy| {
            eprintln!("policy: {}", policy.name());
            serve(&ServeConfig::new(cfg, policy), &g, Some(&w), &jobs).expect("serve")
        })
        .collect();
    eprintln!("policy: fifo (no batching)");
    let solo = serve(
        &ServeConfig::new(cfg, Policy::Fifo).without_batching(),
        &g,
        Some(&w),
        &jobs,
    )
    .expect("serve solo");

    for r in &reports {
        assert!(r.rejected.is_empty(), "trace jobs must all be admissible");
        assert_eq!(r.jobs.len(), N_JOBS);
    }

    // oracle: the schedule may not change any answer
    for r in &reports[1..] {
        for (a, b) in reports[0].jobs.iter().zip(&r.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                output_fingerprint(&a.output),
                output_fingerprint(&b.output),
                "policy {} changed job {}'s answer",
                r.policy,
                a.id
            );
        }
    }
    // oracle: batching may not change any answer
    for (a, b) in reports[0].jobs.iter().zip(&solo.jobs) {
        assert_eq!(
            output_fingerprint(&a.output),
            output_fingerprint(&b.output),
            "batched job {} differs from its individual run",
            a.id
        );
    }

    let mut table = Table::new(vec![
        "Policy",
        "Makespan",
        "Queue wait",
        "On-demand H2D",
        "Prestore",
        "Residency hits",
        "Sessions",
        "Batched",
    ]);
    let mut csv = Table::new(vec![
        "policy",
        "makespan_ns",
        "total_queue_wait_ns",
        "ondemand_h2d_bytes",
        "prestore_bytes",
        "residency_hit_bytes",
        "sessions_built",
        "batches",
        "batched_jobs",
    ]);
    for r in &reports {
        table.row(vec![
            r.policy.to_string(),
            format!("{:.2} ms", r.makespan_ns as f64 / 1e6),
            format!("{:.2} ms", r.total_queue_wait_ns as f64 / 1e6),
            format!("{:.2} MB", r.ondemand_h2d_bytes as f64 / 1e6),
            format!("{:.2} MB", r.prestore_bytes as f64 / 1e6),
            format!("{:.2} MB", r.residency_hit_bytes as f64 / 1e6),
            r.sessions_built.to_string(),
            format!("{}/{}", r.batched_jobs, r.jobs.len()),
        ]);
        csv.row(vec![
            r.policy.to_string(),
            r.makespan_ns.to_string(),
            r.total_queue_wait_ns.to_string(),
            r.ondemand_h2d_bytes.to_string(),
            r.prestore_bytes.to_string(),
            r.residency_hit_bytes.to_string(),
            r.sessions_built.to_string(),
            r.batches.to_string(),
            r.batched_jobs.to_string(),
        ]);
    }
    emit("serve", &table, &csv);

    let json = json_report(smoke, scale, &reports, &solo);
    let path = output_path();
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());

    let fifo = &reports[0];
    let ra = &reports[2];
    println!(
        "residency vs fifo: makespan {:.2} ms -> {:.2} ms, on-demand H2D {:.2} MB -> {:.2} MB, \
         {} -> {} sessions",
        fifo.makespan_ns as f64 / 1e6,
        ra.makespan_ns as f64 / 1e6,
        fifo.ondemand_h2d_bytes as f64 / 1e6,
        ra.ondemand_h2d_bytes as f64 / 1e6,
        fifo.sessions_built,
        ra.sessions_built
    );
    let wins_makespan = ra.makespan_ns < fifo.makespan_ns;
    let wins_h2d = ra.ondemand_h2d_bytes < fifo.ondemand_h2d_bytes;
    let hits = ra.residency_hit_bytes > 0;
    if smoke {
        // toy scale: the trace barely oversubscribes, so only warn
        if !wins_makespan || !wins_h2d {
            eprintln!(
                "warning: residency does not beat fifo at smoke scale \
                 (makespan win: {wins_makespan}, H2D win: {wins_h2d})"
            );
        }
        if !hits {
            eprintln!("warning: no residency hits at smoke scale");
        }
    } else {
        assert!(
            wins_makespan,
            "residency must beat fifo on makespan ({} vs {} ns)",
            ra.makespan_ns, fifo.makespan_ns
        );
        assert!(
            wins_h2d,
            "residency must beat fifo on on-demand H2D ({} vs {} B)",
            ra.ondemand_h2d_bytes, fifo.ondemand_h2d_bytes
        );
        assert!(hits, "residency recorded no residency hit bytes");
    }
}
