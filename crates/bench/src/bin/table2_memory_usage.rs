//! Table 2 — "Average memory usage per iteration".
//!
//! Paper (Subway-style fine-grained transfer, on the real graphs):
//!
//! | Dataset           | BFS     | SSSP    | CC      | PR      |
//! |-------------------|---------|---------|---------|---------|
//! | Friendster-konect | 0.45 GB | 0.64 GB | 1.64 GB | 2.97 GB |
//! | UK-2007-04        | 0.11 GB | 0.94 GB | 0.46 GB | 3.80 GB |
//!
//! i.e. out of the 10 GB device, each iteration's subgraph occupies only a
//! few percent — the under-utilization Ascetic's static region reclaims.
//! We report the same metric from the Subway runs: the mean per-iteration
//! device payload, alongside the device capacity.

use ascetic_bench::fmt::{human_bytes, Table};
use ascetic_bench::output::emit;
use ascetic_bench::run::{run_grid, Sys};
use ascetic_bench::setup::Env;
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!(
        "Table 2: Subway per-iteration memory usage (scale 1/{})",
        env.scale
    );
    let cells = run_grid(
        &env,
        &ascetic_bench::setup::TABLE1_ORDER,
        &[DatasetId::Fk, DatasetId::Uk],
        &[Sys::Subway],
    );
    let device = env.device().mem_bytes;

    let mut table = Table::new(vec!["Dataset", "BFS", "SSSP", "CC", "PR"]);
    let mut csv = Table::new(vec![
        "dataset",
        "algo",
        "avg_bytes",
        "peak_bytes",
        "device_bytes",
    ]);
    for id in [DatasetId::Fk, DatasetId::Uk] {
        let mut cells_row = vec![id.name().to_string()];
        for algo in ascetic_bench::setup::TABLE1_ORDER {
            let c = cells
                .iter()
                .find(|c| c.algo == algo && c.dataset == id)
                .expect("grid cell");
            let rep = &c.reports[0];
            cells_row.push(human_bytes(rep.avg_iteration_payload_bytes));
            csv.row(vec![
                id.abbr().to_string(),
                algo.display().to_string(),
                rep.avg_iteration_payload_bytes.to_string(),
                rep.peak_iteration_payload_bytes.to_string(),
                device.to_string(),
            ]);
        }
        table.row(cells_row);
    }
    emit("table2_memory_usage", &table, &csv);
    println!(
        "Device capacity (scaled): {} — the paper's point: per-iteration \
         usage is a small fraction of it.\nPaper: FK 0.45/0.64/1.64/2.97 GB; \
         UK 0.11/0.94/0.46/3.80 GB of 10-16 GB (BFS/SSSP/CC/PR).",
        human_bytes(device)
    );
}
