//! Table 4 — "Performance results".
//!
//! Paper: absolute runtime for PT, speedups (×) for Subway and Ascetic
//! normalized to PT, per algorithm × dataset, with a GEOMEAN row. The
//! paper reports Subway 5.6× / Ascetic 11.4× geomean over PT, i.e. Ascetic
//! ≈ 2.0× over Subway.

use ascetic_bench::fmt::{geomean, human_secs, Table};
use ascetic_bench::output::emit;
use ascetic_bench::run::{run_grid, Sys};
use ascetic_bench::setup::Env;
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!("Table 4: performance (scale 1/{})", env.scale);
    let cells = run_grid(
        &env,
        &ascetic_bench::setup::TABLE4_ORDER,
        &DatasetId::ALL,
        &[Sys::Pt, Sys::Subway, Sys::Ascetic],
    );

    let mut table = Table::new(vec!["Algo", "Dataset", "PT", "Subway", "Ascetic"]);
    let mut subway_speedups = Vec::new();
    let mut ascetic_speedups = Vec::new();
    let mut csv = Table::new(vec![
        "algo",
        "dataset",
        "pt_s",
        "subway_s",
        "ascetic_s",
        "subway_x",
        "ascetic_x",
    ]);
    for c in &cells {
        let pt = c.reports[0].seconds();
        let sw = c.reports[1].seconds();
        let asc = c.reports[2].seconds();
        let sw_x = pt / sw;
        let asc_x = pt / asc;
        subway_speedups.push(sw_x);
        ascetic_speedups.push(asc_x);
        table.row(vec![
            c.algo.display().to_string(),
            c.dataset.abbr().to_string(),
            human_secs(pt),
            format!("{sw_x:.1}X"),
            format!("{asc_x:.1}X"),
        ]);
        csv.row(vec![
            c.algo.display().to_string(),
            c.dataset.abbr().to_string(),
            format!("{pt:.6}"),
            format!("{sw:.6}"),
            format!("{asc:.6}"),
            format!("{sw_x:.3}"),
            format!("{asc_x:.3}"),
        ]);
    }
    table.row(vec![
        "GEOMEAN".to_string(),
        "".to_string(),
        "1.0X".to_string(),
        format!("{:.1}X", geomean(&subway_speedups)),
        format!("{:.1}X", geomean(&ascetic_speedups)),
    ]);
    emit("table4_performance", &table, &csv);
    println!(
        "Paper: Subway 5.6X, Ascetic 11.4X geomean over PT (Ascetic/Subway ~2.0X).\nHere:  Subway {:.1}X, Ascetic {:.1}X (Ascetic/Subway {:.2}X).",
        geomean(&subway_speedups),
        geomean(&ascetic_speedups),
        geomean(&ascetic_speedups) / geomean(&subway_speedups)
    );
}
