//! Ablation — degree-ordered relabeling × fill policy (extension).
//!
//! The paper fills the static region with the *front* chunks and observes
//! (§5) that placement barely matters because chunk access is near-uniform.
//! That premise is a property of the vertex numbering: if the graph is
//! relabeled so hubs come first, the front of the edge array concentrates
//! the most-touched adjacency lists and a front fill pins exactly the hot
//! data. This ablation measures static-region hit rate and runtime with and
//! without [`ascetic_graph::transform::relabel_by_degree`].

use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::AsceticSystem;
use ascetic_graph::datasets::DatasetId;
use ascetic_graph::transform::relabel_by_degree;

fn main() {
    let env = Env::from_env();
    eprintln!("Ablation: degree relabeling on FK (scale 1/{})", env.scale);
    let pd = PreparedDataset::build(&env, DatasetId::Fk);

    let mut table = Table::new(vec!["Algo", "Order", "Time", "Static hit", "Steady xfer"]);
    let mut csv = Table::new(vec![
        "algo",
        "order",
        "seconds",
        "static_hit_pct",
        "steady_bytes",
    ]);
    for algo in [Algo::Cc, Algo::Pr] {
        let natural = pd.graph(algo).clone();
        let (relabeled, _map) = relabel_by_degree(&natural);
        for (order, g) in [("natural", &natural), ("degree-desc", &relabeled)] {
            let rep = run_algo(&AsceticSystem::new(env.ascetic_cfg()), g, algo);
            let static_edges: u64 = rep.per_iter.iter().map(|i| i.static_edges).sum();
            let total: u64 = rep.per_iter.iter().map(|i| i.active_edges).sum();
            let hit = static_edges as f64 / total.max(1) as f64 * 100.0;
            table.row(vec![
                algo.display().to_string(),
                order.to_string(),
                format!("{:.4}s", rep.seconds()),
                format!("{hit:.1}%"),
                format!("{:.2}MB", rep.steady_bytes() as f64 / 1e6),
            ]);
            csv.row(vec![
                algo.display().to_string(),
                order.to_string(),
                format!("{:.6}", rep.seconds()),
                format!("{hit:.2}"),
                rep.steady_bytes().to_string(),
            ]);
        }
    }
    emit("ablation_relabel", &table, &csv);
    println!(
        "Expectation: with hubs front-loaded, the front-filled static region covers\n\
         a larger share of the *touched* edges, cutting steady transfer — the gain\n\
         is bounded by how skewed the degree distribution is.\n\
         Caveat: CC is confounded — min-label propagation converges faster when\n\
         the hub holds label 0, a separate (also classic) benefit of relabeling;\n\
         PR isolates the locality effect (same iterations, less transfer)."
    );
}
