//! Prefetch sweep — the cross-iteration prefetch pipeline across the
//! Table 5 grid.
//!
//! Runs Ascetic under `PrefetchMode::{Off, NextFrontier, Hotness}` over
//! the full 4 algos × 4 datasets grid and reports, per cell, the simulated
//! time, the on-demand stall time (Ttransfer + Tupdate — the refresh and
//! transfer work a prefetch can hide under compute) and the speculative
//! byte accounting. The acceptance invariants of the pipeline are checked
//! here:
//!
//! * `next-frontier` hides ≥ 20 % of the grid's on-demand refresh stall
//!   time relative to `off` (the speculative refreshes ride the second
//!   copy stream inside link slack, so next iterations start warm).
//! * `next-frontier` never increases the simulated total time of any cell
//!   (its transfers are budgeted into existing slack and it never evicts
//!   chunks the next frontier demands).
//!
//! Output: markdown on stdout, `prefetch.csv` under `$ASCETIC_RESULTS`,
//! and `BENCH_prefetch.json` recording both deltas. Pass `--smoke` for the
//! fast CI variant (asserts downgraded to warnings at toy scale).

use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::run::{run_grid, Cell, Sys};
use ascetic_bench::setup::Env;
use ascetic_core::{PrefetchMode, RunReport};
use ascetic_graph::datasets::DatasetId;
use std::fmt::Write as _;
use std::path::PathBuf;

const MODES: [(PrefetchMode, &str); 3] = [
    (PrefetchMode::Off, "off"),
    (PrefetchMode::NextFrontier, "next-frontier"),
    (PrefetchMode::Hotness, "hotness"),
];

/// The stall time a prefetch can attack: on-demand H2D transfer plus the
/// replacement server's refresh transfers.
fn stall_ns(r: &RunReport) -> u64 {
    r.breakdown.transfer_ns + r.breakdown.update_ns
}

fn mode_grid(scale: u64, mode: PrefetchMode) -> Vec<Cell> {
    let env = Env::with_scale(scale).with_prefetch(mode);
    run_grid(
        &env,
        &ascetic_bench::setup::TABLE4_ORDER,
        &DatasetId::ALL,
        &[Sys::Ascetic],
    )
}

fn json_report(smoke: bool, scale: u64, grids: &[Vec<Cell>]) -> String {
    let (off, nf, hot) = (&grids[0], &grids[1], &grids[2]);
    let mut j = ascetic_bench::output::json_header("prefetch", smoke);
    let _ = writeln!(j, "  \"scale\": {scale},");
    let _ = writeln!(j, "  \"cells\": [");
    let mut off_stall_total = 0u64;
    let mut nf_stall_total = 0u64;
    let mut regressed = 0usize;
    for i in 0..off.len() {
        let (o, n, h) = (&off[i].reports[0], &nf[i].reports[0], &hot[i].reports[0]);
        off_stall_total += stall_ns(o);
        nf_stall_total += stall_ns(n);
        if n.sim_time_ns > o.sim_time_ns {
            regressed += 1;
        }
        let mode_obj = |r: &RunReport| {
            format!(
                "{{\"sim_ns\": {}, \"stall_ns\": {}, \"transfer_ns\": {}, \"update_ns\": {}, \
                 \"prefetch_bytes\": {}, \
                 \"prefetch_ops\": {}, \"prefetch_hits\": {}, \"prefetch_wasted_bytes\": {}, \
                 \"hit_rate\": {:.4}}}",
                r.sim_time_ns,
                stall_ns(r),
                r.breakdown.transfer_ns,
                r.breakdown.update_ns,
                r.prefetch_bytes,
                r.prefetch_ops,
                r.prefetch_hits,
                r.prefetch_wasted_bytes,
                r.prefetch_hit_rate()
            )
        };
        let comma = if i + 1 < off.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"algo\": \"{}\", \"dataset\": \"{}\", \
             \"off\": {}, \"next_frontier\": {}, \"hotness\": {}, \
             \"stall_hidden_ns\": {}, \"time_delta_ns\": {}}}{}",
            off[i].algo.display(),
            off[i].dataset.abbr(),
            mode_obj(o),
            mode_obj(n),
            mode_obj(h),
            stall_ns(o) as i64 - stall_ns(n) as i64,
            n.sim_time_ns as i64 - o.sim_time_ns as i64,
            comma
        );
    }
    let hidden_pct =
        100.0 * (off_stall_total as f64 - nf_stall_total as f64) / off_stall_total.max(1) as f64;
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"totals\": {{");
    let _ = writeln!(j, "    \"off_stall_ns\": {off_stall_total},");
    let _ = writeln!(j, "    \"next_frontier_stall_ns\": {nf_stall_total},");
    let _ = writeln!(j, "    \"stall_hidden_pct\": {hidden_pct:.2},");
    let _ = writeln!(j, "    \"cells_time_regressed\": {regressed}");
    let _ = writeln!(j, "  }}");
    j.push('}');
    j.push('\n');
    j
}

fn output_path() -> PathBuf {
    match std::env::var("ASCETIC_RESULTS") {
        Ok(dir) if !dir.is_empty() => {
            std::fs::create_dir_all(&dir).expect("create $ASCETIC_RESULTS dir");
            PathBuf::from(dir).join("BENCH_prefetch.json")
        }
        _ => PathBuf::from("BENCH_prefetch.json"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 50_000 } else { Env::from_env().scale };
    eprintln!("Prefetch sweep (scale 1/{scale})");

    let grids: Vec<Vec<Cell>> = MODES
        .iter()
        .map(|&(mode, name)| {
            eprintln!("mode: {name}");
            mode_grid(scale, mode)
        })
        .collect();
    // speculation must be invisible to the algorithms
    for grid in &grids[1..] {
        for (a, b) in grids[0].iter().zip(grid.iter()) {
            assert!(
                a.reports[0]
                    .output
                    .first_mismatch(&b.reports[0].output, 1e-9)
                    .is_none(),
                "prefetch changed the answer on {} / {}",
                a.algo.display(),
                a.dataset.abbr()
            );
        }
    }

    let mut table = Table::new(vec![
        "Algo",
        "Dataset",
        "Stall (off)",
        "Stall (next-frontier)",
        "Hidden",
        "Hit rate",
        "Time delta",
    ]);
    let mut csv = Table::new(vec![
        "mode",
        "algo",
        "dataset",
        "sim_ns",
        "stall_ns",
        "prefetch_bytes",
        "prefetch_ops",
        "prefetch_hits",
        "prefetch_wasted_bytes",
    ]);
    for (gi, grid) in grids.iter().enumerate() {
        for c in grid {
            let r = &c.reports[0];
            csv.row(vec![
                MODES[gi].1.to_string(),
                c.algo.display().to_string(),
                c.dataset.abbr().to_string(),
                r.sim_time_ns.to_string(),
                stall_ns(r).to_string(),
                r.prefetch_bytes.to_string(),
                r.prefetch_ops.to_string(),
                r.prefetch_hits.to_string(),
                r.prefetch_wasted_bytes.to_string(),
            ]);
        }
    }
    for (cell, nf_cell) in grids[0].iter().zip(grids[1].iter()) {
        let o = &cell.reports[0];
        let n = &nf_cell.reports[0];
        let hidden = 100.0 * (stall_ns(o) as f64 - stall_ns(n) as f64) / stall_ns(o).max(1) as f64;
        let dt = n.sim_time_ns as i64 - o.sim_time_ns as i64;
        table.row(vec![
            cell.algo.display().to_string(),
            cell.dataset.abbr().to_string(),
            format!("{:.2} ms", stall_ns(o) as f64 / 1e6),
            format!("{:.2} ms", stall_ns(n) as f64 / 1e6),
            format!("{hidden:.1}%"),
            format!("{:.0}%", n.prefetch_hit_rate() * 100.0),
            format!("{:+.2}%", 100.0 * dt as f64 / o.sim_time_ns.max(1) as f64),
        ]);
    }
    emit("prefetch", &table, &csv);

    let json = json_report(smoke, scale, &grids);
    let path = output_path();
    std::fs::write(&path, &json).expect("write BENCH_prefetch.json");
    println!("wrote {}", path.display());

    let off_stall: u64 = grids[0].iter().map(|c| stall_ns(&c.reports[0])).sum();
    let nf_stall: u64 = grids[1].iter().map(|c| stall_ns(&c.reports[0])).sum();
    let hidden_pct = 100.0 * (off_stall as f64 - nf_stall as f64) / off_stall.max(1) as f64;
    println!("next-frontier hides {hidden_pct:.1}% of on-demand refresh stall time");
    let regressed: Vec<String> = grids[0]
        .iter()
        .zip(grids[1].iter())
        .filter(|(o, n)| n.reports[0].sim_time_ns > o.reports[0].sim_time_ns)
        .map(|(o, _)| format!("{}/{}", o.algo.display(), o.dataset.abbr()))
        .collect();
    if smoke {
        // toy scale: the grid barely oversubscribes, so only warn
        if hidden_pct < 20.0 {
            eprintln!("warning: only {hidden_pct:.1}% of stall hidden at smoke scale");
        }
        if !regressed.is_empty() {
            eprintln!(
                "warning: next-frontier slowed down: {}",
                regressed.join(", ")
            );
        }
    } else {
        assert!(
            hidden_pct >= 20.0,
            "next-frontier must hide >= 20% of stall time, got {hidden_pct:.1}%"
        );
        assert!(
            regressed.is_empty(),
            "next-frontier slowed down: {}",
            regressed.join(", ")
        );
    }
}
