//! §1/§2 motivation numbers.
//!
//! Two measurements the paper's introduction leans on:
//!
//! 1. *UVM transfer amplification*: "We run PageRank with
//!    friendster-konect on a GPU with 11GB GPU memory. It runs for 43
//!    iterations... the data transfer from CPU to GPU is about 1,306GB...
//!    an average of 30.4GB per iteration — almost twice the original size
//!    of the graph data", and the static-region thought experiment that
//!    cuts it by 26 %.
//! 2. *Subway GPU idle*: "Our study shows that 68% of GPU time is idle in
//!    BFS algorithm on Friendster-konect dataset."

use ascetic_bench::fmt::{human_bytes, Table};
use ascetic_bench::output::write_raw;
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!("Motivation stats on FK (scale 1/{})", env.scale);
    let pd = PreparedDataset::build(&env, DatasetId::Fk);
    let mut csv = Table::new(vec!["metric", "value"]);

    // (1) UVM PR transfer amplification
    let g = pd.graph(Algo::Pr);
    let uvm = run_algo(&env.uvm(), g, Algo::Pr);
    let per_iter = uvm.xfer.h2d_bytes / uvm.iterations.max(1) as u64;
    let amp = per_iter as f64 / g.edge_bytes() as f64;
    println!(
        "UVM PageRank on FK': {} iterations, {} transferred total,\n\
         {} per iteration = {:.2}x the dataset per iteration.\n\
         Paper: 43 iterations, 1306 GB total, 30.4 GB/iteration ≈ 2x the 15 GB dataset.\n",
        uvm.iterations,
        human_bytes(uvm.xfer.h2d_bytes),
        human_bytes(per_iter),
        amp
    );
    csv.row(vec![
        "uvm_pr_iterations".to_string(),
        uvm.iterations.to_string(),
    ]);
    csv.row(vec![
        "uvm_pr_total_bytes".to_string(),
        uvm.xfer.h2d_bytes.to_string(),
    ]);
    csv.row(vec![
        "uvm_pr_amplification_per_iter".to_string(),
        format!("{amp:.4}"),
    ]);

    // (2) Subway BFS GPU idle fraction
    let gb = pd.graph(Algo::Bfs);
    let sw = run_algo(&env.subway(), gb, Algo::Bfs);
    println!(
        "Subway BFS on FK': GPU compute engine idle {:.1}% of the run.\n\
         Paper: 68% GPU idle for Subway BFS on friendster-konect.\n",
        sw.gpu_idle_fraction() * 100.0
    );
    csv.row(vec![
        "subway_bfs_gpu_idle_frac".to_string(),
        format!("{:.4}", sw.gpu_idle_fraction()),
    ]);

    // (3) the §1 static-region thought experiment: pinning a third of the
    // graph cuts UVM-style traffic by ~26 %.
    let asc = run_algo(&env.ascetic(), g, Algo::Pr);
    println!(
        "Ascetic PR on FK': {} steady transfer (+ {} prestore) vs UVM's {} — reuse\n\
         eliminates {:.0}% of the traffic.",
        human_bytes(asc.steady_bytes()),
        human_bytes(asc.prestore_bytes),
        human_bytes(uvm.xfer.h2d_bytes),
        (1.0 - asc.total_bytes_with_prestore() as f64 / uvm.xfer.h2d_bytes as f64) * 100.0
    );
    csv.row(vec![
        "ascetic_pr_steady_bytes".to_string(),
        asc.steady_bytes().to_string(),
    ]);
    write_raw("motivation_stats", &csv);
}
