//! Figure 7 — "Performance and data transfer comparison with Subway".
//!
//! Paper: per (algorithm × dataset) bars of Ascetic's speedup over Subway
//! (avg 2.0×) and Ascetic's transfer volume relative to Subway (avg ≈ 39 %,
//! prestore *excluded*: "The data transfer is not contain the static
//! prestore data").

use ascetic_bench::fmt::{geomean, Table};
use ascetic_bench::output::emit;
use ascetic_bench::run::{run_grid, Sys};
use ascetic_bench::setup::Env;
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!("Figure 7: Ascetic vs Subway (scale 1/{})", env.scale);
    let cells = run_grid(
        &env,
        &ascetic_bench::setup::TABLE4_ORDER,
        &DatasetId::ALL,
        &[Sys::Subway, Sys::Ascetic],
    );

    let mut table = Table::new(vec![
        "Workload",
        "Speedup over Subway",
        "Transfer vs Subway",
    ]);
    let mut speeds = Vec::new();
    let mut ratios = Vec::new();
    let mut csv = Table::new(vec!["workload", "speedup", "transfer_ratio"]);
    for c in &cells {
        let sw = &c.reports[0];
        let asc = &c.reports[1];
        let speed = sw.seconds() / asc.seconds();
        let ratio = asc.steady_bytes() as f64 / sw.steady_bytes() as f64;
        speeds.push(speed);
        ratios.push(ratio.max(1e-6));
        let label = format!("{}-{}", c.algo.display(), c.dataset.abbr());
        table.row(vec![
            label.clone(),
            format!("{speed:.2}X"),
            format!("{:.1}%", ratio * 100.0),
        ]);
        csv.row(vec![label, format!("{speed:.4}"), format!("{ratio:.4}")]);
    }
    emit("fig7_vs_subway", &table, &csv);
    let avg_speed = speeds.iter().sum::<f64>() / speeds.len() as f64;
    let avg_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "Average: speedup {avg_speed:.2}X (geomean {:.2}X), transfer {:.0}% of Subway.\n\
         Paper: 2.0X average speedup; transfer ~39% of Subway.",
        geomean(&speeds),
        avg_ratio * 100.0
    );
}
