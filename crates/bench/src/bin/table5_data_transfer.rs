//! Table 5 — "Data transfer results".
//!
//! Paper: total transferred bytes normalized to the dataset size, for PT /
//! Subway / Ascetic (Ascetic's number *includes* the static-region
//! prestore). Geomeans: PT 32.5×, Subway 3.6×, Ascetic 1.4×. The expected
//! shape: PT ≫ Subway > Ascetic everywhere, with Ascetic below 1× on BFS
//! (the static region covers the few edges BFS ever touches).

use ascetic_bench::fmt::{geomean, human_bytes, Table};
use ascetic_bench::output::emit;
use ascetic_bench::run::{run_grid, Sys};
use ascetic_bench::setup::Env;
use ascetic_core::CompressionMode;
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!("Table 5: data transfer (scale 1/{})", env.scale);
    let compressed = env.compression != CompressionMode::Off;
    let cells = run_grid(
        &env,
        &ascetic_bench::setup::TABLE4_ORDER,
        &DatasetId::ALL,
        &[Sys::Pt, Sys::Subway, Sys::Ascetic],
    );

    let mut headers = vec!["Algo", "Dataset", "Size", "PT", "Subway", "Ascetic"];
    let mut csv_headers = vec![
        "algo",
        "dataset",
        "dataset_bytes",
        "pt_bytes",
        "subway_bytes",
        "ascetic_bytes_with_prestore",
        "ascetic_prestore_bytes",
    ];
    if compressed {
        headers.push("Ascetic wire");
        csv_headers.push("ascetic_wire_bytes_with_prestore");
    }
    let mut table = Table::new(headers);
    let mut g_pt = Vec::new();
    let mut g_sw = Vec::new();
    let mut g_asc = Vec::new();
    let mut g_wire = Vec::new();
    let mut csv = Table::new(csv_headers);
    for c in &cells {
        let size = c.reports[0].per_iter.first().map(|_| 0).unwrap_or(0); // placeholder
        let _ = size;
        let ds_bytes = {
            // dataset bytes for this algorithm variant
            let ds = env.dataset(c.dataset);
            if c.algo.weighted() {
                2 * ds.graph.edge_bytes()
            } else {
                ds.graph.edge_bytes()
            }
        };
        let pt = c.reports[0].total_bytes_with_prestore();
        let sw = c.reports[1].total_bytes_with_prestore();
        let asc = c.reports[2].total_bytes_with_prestore();
        let (xp, xs, xa) = (
            pt as f64 / ds_bytes as f64,
            sw as f64 / ds_bytes as f64,
            asc as f64 / ds_bytes as f64,
        );
        g_pt.push(xp);
        g_sw.push(xs);
        g_asc.push(xa);
        let mut row = vec![
            c.algo.display().to_string(),
            c.dataset.abbr().to_string(),
            human_bytes(ds_bytes),
            format!("{xp:.1}X"),
            format!("{xs:.1}X"),
            format!("{xa:.2}X"),
        ];
        let mut csv_row = vec![
            c.algo.display().to_string(),
            c.dataset.abbr().to_string(),
            ds_bytes.to_string(),
            pt.to_string(),
            sw.to_string(),
            asc.to_string(),
            c.reports[2].prestore_bytes.to_string(),
        ];
        if compressed {
            let wire = c.reports[2].total_wire_bytes_with_prestore();
            let xw = wire as f64 / ds_bytes as f64;
            g_wire.push(xw);
            row.push(format!("{xw:.2}X"));
            csv_row.push(wire.to_string());
        }
        table.row(row);
        csv.row(csv_row);
    }
    let mut geo_row = vec![
        "GEOMEAN".to_string(),
        "".to_string(),
        "".to_string(),
        format!("{:.1}X", geomean(&g_pt)),
        format!("{:.1}X", geomean(&g_sw)),
        format!("{:.1}X", geomean(&g_asc)),
    ];
    if compressed {
        geo_row.push(format!("{:.2}X", geomean(&g_wire)));
    }
    table.row(geo_row);
    emit("table5_data_transfer", &table, &csv);
    println!(
        "Paper geomeans: PT 32.5X, Subway 3.6X, Ascetic 1.4X (of dataset size, prestore included)."
    );
}
