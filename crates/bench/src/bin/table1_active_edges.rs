//! Table 1 — "Average percentages of active edges per iteration".
//!
//! Paper (on the real graphs):
//!
//! | Dataset           | BFS  | SSSP | CC    | PR    |
//! |-------------------|------|------|-------|-------|
//! | Friendster-konect | 4.5% | 3.1% | 14.1% | 28.7% |
//! | UK-2007-04        | 0.8% | 3.1% | 3.0%  | 25.1% |
//!
//! The scaled stand-ins have smaller diameters, so fractions shift up, but
//! the orderings the paper builds on must hold: traversals (BFS/SSSP) are
//! sparsest, PR is densest, and the web graph (UK) is sparser than the
//! social graph (FK) for traversals.

use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::setup::{run_algo_in_memory, Env};
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!("Table 1: active-edge fractions (scale 1/{})", env.scale);
    let mut table = Table::new(vec!["Dataset", "BFS", "SSSP", "CC", "PR"]);
    let mut csv = Table::new(vec!["dataset", "algo", "avg_active_pct", "iterations"]);
    for id in [DatasetId::Fk, DatasetId::Uk] {
        let ds = env.dataset(id);
        let mut cells = vec![ds.id.name().to_string()];
        for algo in ascetic_bench::setup::TABLE1_ORDER {
            let g = env.graph_for(&ds, algo);
            let res = run_algo_in_memory(&g, algo);
            let pct = res.avg_active_edge_fraction(&g) * 100.0;
            cells.push(format!("{pct:.1}%"));
            csv.row(vec![
                id.abbr().to_string(),
                algo.display().to_string(),
                format!("{pct:.3}"),
                res.iterations.to_string(),
            ]);
            eprintln!(
                "  {} {}: {:.1}% over {} iterations",
                id.abbr(),
                algo.display(),
                pct,
                res.iterations
            );
        }
        table.row(cells);
    }
    emit("table1_active_edges", &table, &csv);
    println!("Paper: FK 4.5/3.1/14.1/28.7%; UK 0.8/3.1/3.0/25.1% (BFS/SSSP/CC/PR).");
}
