//! Figure 8 — "Breakdown of the optimization benefits".
//!
//! Paper: relative to the Subway baseline, how much of Ascetic's
//! improvement comes from **Static savings** (data reuse in the static
//! region, measured with overlap disabled) vs **Overlapping savings**
//! (enabling the Figure 5 concurrency on top). Paper averages: ~37 % of
//! execution-time improvement from Static, ~10 % more from Overlapping;
//! CC/GS reaches 82.7 % Static savings; BFS gets ~6.5 % from Static even
//! with no reuse (data already resident needs no transfer).
//!
//! This repo adds a fourth lane beyond the paper's figure: **Prefetch
//! savings**, the extra time the cross-iteration prefetch pipeline
//! (`--prefetch next-frontier`) recovers on top of static + overlap.

use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, Algo, Env};
use ascetic_core::{AsceticSystem, PrefetchMode};
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!("Figure 8: optimization breakdown (scale 1/{})", env.scale);
    // Paper's Figure 8 dataset order: FS, FK, GSH, UK.
    let datasets = [DatasetId::Fs, DatasetId::Fk, DatasetId::Gs, DatasetId::Uk];

    let mut table = Table::new(vec![
        "Workload",
        "Subway",
        "Ascetic (static only)",
        "Ascetic (static+overlap)",
        "Ascetic (+prefetch)",
        "Static savings",
        "Overlap savings",
        "Prefetch savings",
    ]);
    let mut csv = Table::new(vec![
        "workload",
        "subway_s",
        "static_only_s",
        "full_s",
        "prefetch_s",
        "static_savings_pct",
        "overlap_savings_pct",
        "prefetch_savings_pct",
    ]);
    let mut static_savings_all = Vec::new();
    let mut overlap_savings_all = Vec::new();
    let mut prefetch_savings_all = Vec::new();
    for id in datasets {
        let pd = PreparedDataset::build(&env, id);
        for algo in [Algo::Bfs, Algo::Sssp, Algo::Cc, Algo::Pr] {
            let g = pd.graph(algo);
            eprintln!("  {} / {} ...", algo.display(), id.abbr());
            let sw = run_algo(&env.subway(), g, algo);
            let static_only = run_algo(
                &AsceticSystem::new(env.ascetic_cfg().with_overlap(false)),
                g,
                algo,
            );
            let full = run_algo(&env.ascetic(), g, algo);
            let prefetch = run_algo(
                &AsceticSystem::new(env.ascetic_cfg().with_prefetch(PrefetchMode::NextFrontier)),
                g,
                algo,
            );
            assert_eq!(static_only.output, sw.output);
            assert_eq!(full.output, sw.output);
            assert_eq!(prefetch.output, sw.output);
            let stem = format!("{}_{}", algo.display(), id.abbr());
            env.maybe_write_trace(&sw, &format!("fig8_subway_{stem}"));
            env.maybe_write_trace(&static_only, &format!("fig8_static_{stem}"));
            env.maybe_write_trace(&full, &format!("fig8_full_{stem}"));
            env.maybe_write_trace(&prefetch, &format!("fig8_prefetch_{stem}"));

            let t_sw = sw.seconds();
            let t_static = static_only.seconds();
            let t_full = full.seconds();
            let t_prefetch = prefetch.seconds();
            // savings as a fraction of the Subway baseline time
            let s_static = (t_sw - t_static) / t_sw * 100.0;
            let s_overlap = (t_static - t_full) / t_sw * 100.0;
            let s_prefetch = (t_full - t_prefetch) / t_sw * 100.0;
            static_savings_all.push(s_static);
            overlap_savings_all.push(s_overlap);
            prefetch_savings_all.push(s_prefetch);
            let label = format!("{}-{}", algo.display(), id.abbr());
            table.row(vec![
                label.clone(),
                format!("{t_sw:.4}s"),
                format!("{t_static:.4}s"),
                format!("{t_full:.4}s"),
                format!("{t_prefetch:.4}s"),
                format!("{s_static:.1}%"),
                format!("{s_overlap:.1}%"),
                format!("{s_prefetch:.1}%"),
            ]);
            csv.row(vec![
                label,
                format!("{t_sw:.6}"),
                format!("{t_static:.6}"),
                format!("{t_full:.6}"),
                format!("{t_prefetch:.6}"),
                format!("{s_static:.2}"),
                format!("{s_overlap:.2}"),
                format!("{s_prefetch:.2}"),
            ]);
        }
    }
    emit("fig8_breakdown", &table, &csv);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "Average savings vs Subway: static {:.1}%, overlapping {:.1}%, \
         prefetch {:.1}%.\n\
         Paper: static 37% average (82.7% best, CC/GS), overlapping ~10% \
         (prefetch lane is this repo's extension).",
        avg(&static_savings_all),
        avg(&overlap_savings_all),
        avg(&prefetch_savings_all)
    );
}
