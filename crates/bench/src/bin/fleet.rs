//! Fleet bench — multi-device sharded execution and fleet-aware serving.
//!
//! Two sweeps over the gsh-2015-host stand-in:
//!
//! 1. **Serve fleet scaling** — the serve bench's 48-job mixed trace
//!    (same seed), arriving as one burst so the sweep is service-bound,
//!    replayed by the residency-affinity scheduler over 1/2/4/8 devices
//!    on an NVLink-class fabric. Acceptance: makespan speedup ≥ 1.7× at
//!    2 devices and ≥ 3× at 4 devices, and every job's answer is
//!    byte-identical at every fleet size.
//! 2. **Algorithm sharding** — each algorithm run across 1/2/4 shards
//!    with cross-device frontier exchange (owner-computes). Reported for
//!    the exchange-volume curve; the answer must be byte-identical to
//!    the single-device run.
//!
//! Output: markdown on stdout, `fleet.csv` under `$ASCETIC_RESULTS`, and
//! `BENCH_fleet.json`. Pass `--smoke` for the fast CI variant (the
//! speedup oracles hold at every scale and stay asserted).

use ascetic_algos::{Bfs, Cc, PageRank, Sssp};
use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::setup::Env;
use ascetic_core::{run_fleet, FleetConfig, FleetRunReport};
use ascetic_graph::datasets::DatasetId;
use ascetic_serve::{output_fingerprint, serve, synthetic_mixed, Policy, ServeConfig, ServeReport};
use ascetic_sim::InterconnectConfig;
use std::fmt::Write as _;
use std::path::PathBuf;

const N_JOBS: usize = 48;
const TRACE_SEED: u64 = 2021;
const SERVE_DEVICES: [usize; 4] = [1, 2, 4, 8];
const RUN_DEVICES: [usize; 3] = [1, 2, 4];

fn speedup_x100(base: u64, this: u64) -> u64 {
    base * 100 / this.max(1)
}

fn json_report(
    smoke: bool,
    scale: u64,
    serve_reps: &[ServeReport],
    algo_reps: &[(&str, Vec<FleetRunReport>)],
) -> String {
    let base = serve_reps[0].makespan_ns;
    let mut j = ascetic_bench::output::json_header("fleet", smoke);
    let _ = writeln!(j, "  \"scale\": {scale},");
    let _ = writeln!(j, "  \"jobs\": {N_JOBS},");
    let _ = writeln!(j, "  \"trace_seed\": {TRACE_SEED},");
    let _ = writeln!(j, "  \"fabric\": \"nvlink\",");
    let _ = writeln!(j, "  \"serve\": [");
    for (i, r) in serve_reps.iter().enumerate() {
        let comma = if i + 1 < serve_reps.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"devices\": {}, \"makespan_ns\": {}, \"speedup_x100\": {}, \
             \"replications\": {}, \"replicated_bytes\": {}, \"sessions_built\": {}, \
             \"total_queue_wait_ns\": {}}}{}",
            r.devices,
            r.makespan_ns,
            speedup_x100(base, r.makespan_ns),
            r.replications,
            r.replicated_bytes,
            r.sessions_built,
            r.total_queue_wait_ns,
            comma
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"algorithms\": [");
    let last = algo_reps.len() - 1;
    for (ai, (name, reps)) in algo_reps.iter().enumerate() {
        for (di, r) in reps.iter().enumerate() {
            let comma = if ai == last && di + 1 == reps.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                j,
                "    {{\"algo\": \"{}\", \"devices\": {}, \"iterations\": {}, \
                 \"makespan_ns\": {}, \"exchange_bytes\": {}, \"wire_bytes\": {}}}{}",
                name,
                r.devices,
                r.iterations,
                r.makespan_ns,
                r.exchange_bytes,
                r.interconnect.total_bytes(),
                comma
            );
        }
    }
    let _ = writeln!(j, "  ],");
    let two = serve_reps.iter().find(|r| r.devices == 2).unwrap();
    let four = serve_reps.iter().find(|r| r.devices == 4).unwrap();
    let _ = writeln!(j, "  \"oracles\": {{");
    let _ = writeln!(j, "    \"outputs_identical_across_fleet_sizes\": true,");
    let _ = writeln!(
        j,
        "    \"serve_speedup_2dev_x100\": {},",
        speedup_x100(base, two.makespan_ns)
    );
    let _ = writeln!(
        j,
        "    \"serve_speedup_4dev_x100\": {}",
        speedup_x100(base, four.makespan_ns)
    );
    let _ = writeln!(j, "  }}");
    j.push('}');
    j.push('\n');
    j
}

fn output_path() -> PathBuf {
    match std::env::var("ASCETIC_RESULTS") {
        Ok(dir) if !dir.is_empty() => {
            std::fs::create_dir_all(&dir).expect("create $ASCETIC_RESULTS dir");
            PathBuf::from(dir).join("BENCH_fleet.json")
        }
        _ => PathBuf::from("BENCH_fleet.json"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 50_000 } else { Env::from_env().scale };
    let env = Env::with_scale(scale);
    eprintln!("Fleet sweep (scale 1/{scale}, {N_JOBS}-job burst trace)");

    let ds = env.dataset(DatasetId::Gs);
    let g = ds.graph.clone();
    let w = ds.weighted();
    let cfg = env.ascetic_cfg();

    // One burst at t=0: with no arrival spacing the sweep is purely
    // service-bound, so makespan scaling isolates what the fleet buys.
    let jobs = synthetic_mixed(N_JOBS, g.num_vertices(), TRACE_SEED, 0, 1);

    let serve_reps: Vec<ServeReport> = SERVE_DEVICES
        .iter()
        .map(|&d| {
            eprintln!("serve: {d} device(s)");
            let sc = ServeConfig::new(cfg, Policy::ResidencyAffinity)
                .with_devices(d)
                .with_interconnect(InterconnectConfig::nvlink());
            serve(&sc, &g, Some(&w), &jobs).expect("serve")
        })
        .collect();
    for r in &serve_reps {
        assert!(r.rejected.is_empty(), "trace jobs must all be admissible");
        assert_eq!(r.jobs.len(), N_JOBS);
    }
    // oracle: fleet size may not change any answer
    for r in &serve_reps[1..] {
        for (a, b) in serve_reps[0].jobs.iter().zip(&r.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                output_fingerprint(&a.output),
                output_fingerprint(&b.output),
                "{} devices changed job {}'s answer",
                r.devices,
                a.id
            );
        }
    }
    // oracle: neither may the policy, at any fleet size
    for &policy in ascetic_serve::ALL_POLICIES.iter() {
        let sc = ServeConfig::new(cfg, policy)
            .with_devices(4)
            .with_interconnect(InterconnectConfig::nvlink());
        let r = serve(&sc, &g, Some(&w), &jobs).expect("serve");
        for (a, b) in serve_reps[0].jobs.iter().zip(&r.jobs) {
            assert_eq!(
                output_fingerprint(&a.output),
                output_fingerprint(&b.output),
                "policy {} changed job {}'s answer on the 4-device fleet",
                policy.name(),
                a.id
            );
        }
    }

    eprintln!("algorithm sharding:");
    let algo_reps: Vec<(&str, Vec<FleetRunReport>)> =
        [("bfs", 0usize), ("cc", 1), ("pr", 2), ("sssp", 3)]
            .iter()
            .map(|&(name, which)| {
                eprintln!("  {name}");
                let reps: Vec<FleetRunReport> = RUN_DEVICES
                    .iter()
                    .map(|&d| {
                        let fc = FleetConfig::nvlink(d);
                        match which {
                            0 => run_fleet(cfg, fc, &g, &Bfs::new(0)),
                            1 => run_fleet(cfg, fc, &g, &Cc::new()),
                            2 => run_fleet(cfg, fc, &g, &PageRank::new()),
                            _ => run_fleet(cfg, fc, &w, &Sssp::new(0)),
                        }
                    })
                    .collect();
                // oracle: sharding may not change the answer
                for r in &reps[1..] {
                    assert_eq!(
                        output_fingerprint(&reps[0].output),
                        output_fingerprint(&r.output),
                        "{name} answer changed at {} devices",
                        r.devices
                    );
                }
                (name, reps)
            })
            .collect();

    let mut table = Table::new(vec![
        "Lane",
        "Devices",
        "Makespan",
        "Speedup",
        "Replications",
        "Exchange",
    ]);
    let mut csv = Table::new(vec![
        "lane",
        "devices",
        "makespan_ns",
        "speedup_x100",
        "replications",
        "replicated_bytes",
        "exchange_bytes",
    ]);
    let base = serve_reps[0].makespan_ns;
    for r in &serve_reps {
        table.row(vec![
            "serve".into(),
            r.devices.to_string(),
            format!("{:.2} ms", r.makespan_ns as f64 / 1e6),
            format!("{:.2}x", base as f64 / r.makespan_ns.max(1) as f64),
            r.replications.to_string(),
            "-".into(),
        ]);
        csv.row(vec![
            "serve".into(),
            r.devices.to_string(),
            r.makespan_ns.to_string(),
            speedup_x100(base, r.makespan_ns).to_string(),
            r.replications.to_string(),
            r.replicated_bytes.to_string(),
            "0".into(),
        ]);
    }
    for (name, reps) in &algo_reps {
        let solo = reps[0].makespan_ns;
        for r in reps {
            table.row(vec![
                (*name).into(),
                r.devices.to_string(),
                format!("{:.2} ms", r.makespan_ns as f64 / 1e6),
                format!("{:.2}x", solo as f64 / r.makespan_ns.max(1) as f64),
                "-".into(),
                format!("{:.2} MB", r.exchange_bytes as f64 / 1e6),
            ]);
            csv.row(vec![
                (*name).to_string(),
                r.devices.to_string(),
                r.makespan_ns.to_string(),
                speedup_x100(solo, r.makespan_ns).to_string(),
                "0".into(),
                "0".into(),
                r.exchange_bytes.to_string(),
            ]);
        }
    }
    emit("fleet", &table, &csv);

    let json = json_report(smoke, scale, &serve_reps, &algo_reps);
    let path = output_path();
    std::fs::write(&path, &json).expect("write BENCH_fleet.json");
    println!("wrote {}", path.display());

    let two = serve_reps.iter().find(|r| r.devices == 2).unwrap();
    let four = serve_reps.iter().find(|r| r.devices == 4).unwrap();
    let s2 = base as f64 / two.makespan_ns.max(1) as f64;
    let s4 = base as f64 / four.makespan_ns.max(1) as f64;
    println!(
        "serve fleet scaling: {:.2} ms -> {:.2} ms (2 dev, {s2:.2}x) -> {:.2} ms (4 dev, {s4:.2}x)",
        base as f64 / 1e6,
        two.makespan_ns as f64 / 1e6,
        four.makespan_ns as f64 / 1e6,
    );
    // the acceptance bars hold at every scale: the burst is service-bound
    assert!(
        s2 >= 1.7,
        "2-device fleet must reach 1.7x on the burst trace (got {s2:.2}x)"
    );
    assert!(
        s4 >= 3.0,
        "4-device fleet must reach 3x on the burst trace (got {s4:.2}x)"
    );
}
