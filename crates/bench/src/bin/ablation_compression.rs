//! Ablation — what would compressed transfers buy?
//!
//! None of the paper's systems compress edge payloads before PCIe (raw
//! 4-byte targets). This ablation measures the delta–varint compression
//! ratio of each dataset and projects the transfer-time saving each system
//! would see if its H2D payloads were compressed at that ratio
//! (decompression on the GPU assumed free — an upper bound).

use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::run::{run_grid, Sys};
use ascetic_bench::setup::{Algo, Env};
use ascetic_graph::compress::compression_stats;
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!("Ablation: compression projection (scale 1/{})", env.scale);

    let mut table = Table::new(vec![
        "Dataset",
        "Ratio",
        "Subway xfer",
        "Subway projected",
        "Ascetic xfer",
        "Ascetic projected",
    ]);
    let mut csv = Table::new(vec!["dataset", "ratio", "subway_bytes", "ascetic_bytes"]);
    let cells = run_grid(
        &env,
        &[Algo::Pr],
        &DatasetId::ALL,
        &[Sys::Subway, Sys::Ascetic],
    );
    for c in &cells {
        let ds = env.dataset(c.dataset);
        let ratio = compression_stats(&ds.graph).ratio();
        let sw = c.reports[0].steady_bytes();
        let asc = c.reports[1].total_bytes_with_prestore();
        table.row(vec![
            c.dataset.abbr().to_string(),
            format!("{ratio:.2}x"),
            format!("{:.1}MB", sw as f64 / 1e6),
            format!("{:.1}MB", sw as f64 / ratio / 1e6),
            format!("{:.1}MB", asc as f64 / 1e6),
            format!("{:.1}MB", asc as f64 / ratio / 1e6),
        ]);
        csv.row(vec![
            c.dataset.abbr().to_string(),
            format!("{ratio:.4}"),
            sw.to_string(),
            asc.to_string(),
        ]);
    }
    emit("ablation_compression", &table, &csv);
    println!(
        "Web crawls (GS/UK) compress far better than social graphs — their id\n\
         locality is the same property the paper's chunk model exploits. A real\n\
         integration would need a GPU-side decoder; this bounds the win."
    );
}
