//! Extension study — amortizing the prestore across an analytics pipeline.
//!
//! Paper §4.3: "In practice, the Static Region can be reused throughout the
//! graph processing and benefits the reduction in data transfer." This
//! experiment quantifies that: a BFS → CC → PR pipeline over one
//! [`AsceticSession`] (prestore paid once) versus three independent
//! one-shot runs (prestore paid three times).

use ascetic_bench::fmt::Table;
use ascetic_bench::output::emit;
use ascetic_bench::run::PreparedDataset;
use ascetic_bench::setup::{run_algo, source_vertex, Algo, Env};
use ascetic_core::session::AsceticSession;
use ascetic_core::AsceticSystem;
use ascetic_graph::datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    eprintln!("Extension: session amortization (scale 1/{})", env.scale);

    let mut table = Table::new(vec![
        "Dataset",
        "Pipeline",
        "Session time",
        "One-shot time",
        "Session xfer",
        "One-shot xfer",
        "Saved",
    ]);
    let mut csv = Table::new(vec![
        "dataset",
        "session_ns",
        "oneshot_ns",
        "session_bytes",
        "oneshot_bytes",
    ]);
    for id in [DatasetId::Fk, DatasetId::Uk] {
        let pd = PreparedDataset::build(&env, id);
        let g = pd.graph(Algo::Bfs); // unweighted pipeline
        let src = source_vertex(g);

        let mut session = AsceticSession::new(env.ascetic_cfg(), g);
        let mut s_ns = 0u64;
        let mut s_bytes = 0u64;
        for rep in [
            session.run(&ascetic_algos::Bfs::new(src)),
            session.run(&ascetic_algos::Cc::new()),
            session.run(&ascetic_algos::PageRank::new()),
        ] {
            s_ns += rep.sim_time_ns;
            s_bytes += rep.total_bytes_with_prestore();
        }

        let mut o_ns = 0u64;
        let mut o_bytes = 0u64;
        for algo in [Algo::Bfs, Algo::Cc, Algo::Pr] {
            let rep = run_algo(&AsceticSystem::new(env.ascetic_cfg()), g, algo);
            o_ns += rep.sim_time_ns;
            o_bytes += rep.total_bytes_with_prestore();
        }

        table.row(vec![
            id.abbr().to_string(),
            "BFS,CC,PR".to_string(),
            format!("{:.2}ms", s_ns as f64 / 1e6),
            format!("{:.2}ms", o_ns as f64 / 1e6),
            format!("{:.1}MB", s_bytes as f64 / 1e6),
            format!("{:.1}MB", o_bytes as f64 / 1e6),
            format!(
                "{:+.1}ms / {:+.1}MB",
                (o_ns as i64 - s_ns as i64) as f64 / 1e6,
                (o_bytes as i64 - s_bytes as i64) as f64 / 1e6
            ),
        ]);
        csv.row(vec![
            id.abbr().to_string(),
            s_ns.to_string(),
            o_ns.to_string(),
            s_bytes.to_string(),
            o_bytes.to_string(),
        ]);
    }
    emit("session_amortization", &table, &csv);
    println!(
        "The time saving approximates two prestores — §4.3's point that the\n\
         prestore is a per-graph cost, not a per-algorithm one. Byte savings can\n\
         be offset when the persistent hotness state drives extra replacement\n\
         traffic in later runs (visible on UK)."
    );
}
