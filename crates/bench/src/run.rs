//! Uniform experiment drivers.
//!
//! Most experiments need "run all four algorithms on some datasets under
//! some systems and compare"; this module provides that grid runner with
//! result caching of the built datasets (building FK' once, not once per
//! algorithm).

use ascetic_core::RunReport;
use ascetic_graph::datasets::{Dataset, DatasetId};
use ascetic_graph::Csr;

use crate::setup::{run_algo, Algo, Env};

/// One grid cell result.
pub struct Cell {
    /// Algorithm.
    pub algo: Algo,
    /// Dataset.
    pub dataset: DatasetId,
    /// Reports per system, in the order requested.
    pub reports: Vec<RunReport>,
}

/// Which systems to include in a grid run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sys {
    /// Partition-based baseline.
    Pt,
    /// Subway baseline.
    Subway,
    /// UVM baseline.
    Uvm,
    /// Ascetic (paper defaults).
    Ascetic,
}

impl Sys {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Sys::Pt => "PT",
            Sys::Subway => "Subway",
            Sys::Uvm => "UVM",
            Sys::Ascetic => "Ascetic",
        }
    }
}

/// Materialized dataset with both graph variants (unweighted + weighted),
/// so the weighted build happens once.
pub struct PreparedDataset {
    /// Dataset identity.
    pub id: DatasetId,
    /// Unweighted graph.
    pub unweighted: Csr,
    /// Weighted variant (SSSP).
    pub weighted: Csr,
}

impl PreparedDataset {
    /// Build from the environment.
    pub fn build(env: &Env, id: DatasetId) -> PreparedDataset {
        let ds: Dataset = env.dataset(id);
        let weighted = ds.weighted();
        PreparedDataset {
            id,
            unweighted: ds.graph,
            weighted,
        }
    }

    /// The variant `algo` needs.
    pub fn graph(&self, algo: Algo) -> &Csr {
        if algo.weighted() {
            &self.weighted
        } else {
            &self.unweighted
        }
    }
}

/// Run the full (algo × dataset × system) grid, with progress to stderr.
pub fn run_grid(env: &Env, algos: &[Algo], datasets: &[DatasetId], systems: &[Sys]) -> Vec<Cell> {
    let prepared: Vec<PreparedDataset> = datasets
        .iter()
        .map(|&id| PreparedDataset::build(env, id))
        .collect();
    let mut cells = Vec::new();
    for &algo in algos {
        for pd in &prepared {
            let g = pd.graph(algo);
            let mut reports = Vec::new();
            for &sys in systems {
                eprintln!(
                    "  running {} / {} / {} ...",
                    sys.name(),
                    algo.display(),
                    pd.id.abbr()
                );
                let system = env.system(sys);
                if let Err(e) = ascetic_core::OutOfCoreSystem::prepare(&system, g) {
                    panic!(
                        "{} refuses {} / {}: {e}",
                        sys.name(),
                        algo.display(),
                        pd.id.abbr()
                    );
                }
                let rep = run_algo(&system, g, algo);
                env.maybe_write_trace(
                    &rep,
                    &format!("{}_{}_{}", sys.name(), algo.display(), pd.id.abbr()),
                );
                reports.push(rep);
            }
            // cross-check: all systems must agree on the answer
            for r in &reports[1..] {
                assert!(
                    r.output.first_mismatch(&reports[0].output, 1e-6).is_none(),
                    "{} and {} disagree on {} / {}",
                    r.system,
                    reports[0].system,
                    algo.display(),
                    pd.id.abbr()
                );
            }
            cells.push(Cell {
                algo,
                dataset: pd.id,
                reports,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_runs_and_cross_checks() {
        let env = Env::with_scale(50_000);
        let cells = run_grid(
            &env,
            &[Algo::Bfs],
            &[DatasetId::Gs],
            &[Sys::Subway, Sys::Ascetic],
        );
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].reports.len(), 2);
        assert_eq!(cells[0].reports[0].system, "Subway");
        assert_eq!(cells[0].reports[1].system, "Ascetic");
    }

    #[test]
    fn prepared_dataset_shares_structure() {
        let env = Env::with_scale(50_000);
        let pd = PreparedDataset::build(&env, DatasetId::Fk);
        assert_eq!(pd.unweighted.num_edges(), pd.weighted.num_edges());
        assert!(pd.graph(Algo::Sssp).is_weighted());
        assert!(!pd.graph(Algo::Pr).is_weighted());
    }
}
