//! Benchmarks of the delta–varint adjacency codec: encode and decode
//! throughput (bytes of raw payload per second) on the two locality
//! regimes that bound the compressed transfer path — social graphs
//! (scattered targets, poor ratio) and web graphs (clustered targets,
//! the ~3–4× ratio the crossover banks on).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use ascetic_graph::compress::{decode_ranges, encode_ranges, EncodeEntry};
use ascetic_graph::generators::{social_graph, web_graph, SocialConfig, WebConfig};
use ascetic_graph::Csr;

fn full_entries(g: &Csr) -> Vec<EncodeEntry> {
    (0..g.num_vertices() as u32)
        .filter(|&v| !g.edge_range(v).is_empty())
        .map(|v| (v, g.edge_range(v)))
        .collect()
}

fn codec_benches(c: &mut Criterion) {
    let variants: [(&str, Csr); 2] = [
        (
            "social",
            social_graph(&SocialConfig::new(65_536, 1_000_000, 3)),
        ),
        ("web", web_graph(&WebConfig::new(65_536, 1_000_000, 3))),
    ];

    let mut grp = c.benchmark_group("codec");
    grp.sample_size(20);
    for (name, g) in &variants {
        let entries = full_entries(g);
        let raw_bytes = g.num_edges() * 4;
        grp.throughput(Throughput::Bytes(raw_bytes));

        grp.bench_function(format!("encode_{name}"), |b| {
            let mut buf = Vec::new();
            b.iter(|| {
                buf.clear();
                black_box(encode_ranges(g, &entries, &mut buf));
            })
        });

        let mut buf = Vec::new();
        let wire = encode_ranges(g, &entries, &mut buf);
        let srcs: Vec<u32> = entries.iter().map(|e| e.0).collect();
        eprintln!(
            "codec/{name}: ratio {:.2}x ({raw_bytes} raw -> {wire} wire)",
            raw_bytes as f64 / wire as f64
        );
        grp.bench_function(format!("decode_{name}"), |b| {
            b.iter(|| black_box(decode_ranges(&srcs, &buf).expect("valid stream")))
        });
    }
    grp.finish();
}

criterion_group!(benches, codec_benches);
criterion_main!(benches);
