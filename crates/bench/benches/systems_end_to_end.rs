//! End-to-end wall-clock benchmarks of the four systems on one workload.
//!
//! These measure the *host* cost of driving the simulation (useful for
//! keeping the framework itself fast); the paper-facing *simulated* numbers
//! come from the `table*`/`fig*` binaries instead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ascetic_algos::Bfs;
use ascetic_baselines::{PtSystem, SubwaySystem, UvmSystem};
use ascetic_core::{AsceticConfig, AsceticSystem, OutOfCoreSystem};
use ascetic_graph::datasets::{Dataset, DatasetId, PAPER_GPU_MEM_BYTES};
use ascetic_sim::DeviceConfig;

fn systems(c: &mut Criterion) {
    let scale = 8_000;
    let ds = Dataset::build(DatasetId::Fk, scale);
    let g = &ds.graph;
    let mut dev = DeviceConfig::p100(PAPER_GPU_MEM_BYTES / scale);
    dev.uvm.page_bytes = 8192;
    let chunk = 8192;

    let mut grp = c.benchmark_group("end_to_end_bfs_fk");
    grp.sample_size(10);
    grp.bench_function("ascetic", |b| {
        b.iter(|| {
            black_box(
                AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(chunk))
                    .run(g, &Bfs::new(0)),
            )
        })
    });
    grp.bench_function("subway", |b| {
        b.iter(|| black_box(SubwaySystem::new(dev).run(g, &Bfs::new(0))))
    });
    grp.bench_function("pt", |b| {
        b.iter(|| black_box(PtSystem::new(dev).run(g, &Bfs::new(0))))
    });
    grp.bench_function("uvm", |b| {
        b.iter(|| black_box(UvmSystem::new(dev).run(g, &Bfs::new(0))))
    });
    grp.finish();
}

criterion_group!(benches, systems);
criterion_main!(benches);
