//! Micro-benchmarks of the hot substrate primitives: bitmap algebra
//! (GenDataMap's cost), atomic reductions (the kernels' inner loop),
//! prefix scans (subgraph layout) and the device-memory allocator.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use ascetic_par::{atomic_add_f64, atomic_min_u32, parallel_exclusive_scan, AtomicBitmap, Bitmap};
use ascetic_sim::DeviceMemory;
use std::sync::atomic::{AtomicU32, AtomicU64};

fn bitmap_ops(c: &mut Criterion) {
    let n = 1 << 20;
    let mut a = Bitmap::new(n);
    let mut b = Bitmap::new(n);
    for i in (0..n).step_by(3) {
        a.set(i);
    }
    for i in (0..n).step_by(7) {
        b.set(i);
    }
    let mut g = c.benchmark_group("bitmap");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("and_1M", |bench| bench.iter(|| black_box(a.and(&b))));
    g.bench_function("and_not_1M", |bench| {
        bench.iter(|| black_box(a.and_not(&b)))
    });
    g.bench_function("to_indices_1M", |bench| {
        bench.iter(|| black_box(a.to_indices()))
    });
    g.bench_function("count_ones_1M", |bench| {
        bench.iter(|| black_box(a.count_ones()))
    });
    g.finish();

    let ab = AtomicBitmap::new(n);
    c.bench_function("atomic_bitmap/set_snapshot_1M", |bench| {
        bench.iter(|| {
            ab.clear_all();
            for i in (0..n).step_by(5) {
                ab.set(i);
            }
            black_box(ab.snapshot())
        })
    });
}

fn atomic_reductions(c: &mut Criterion) {
    let n = 1 << 16;
    let targets: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let mut g = c.benchmark_group("atomics");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("min_u32_64K", |bench| {
        bench.iter(|| {
            for (i, t) in targets.iter().enumerate() {
                atomic_min_u32(t, black_box((i as u32).wrapping_mul(2_654_435_761)));
            }
        })
    });
    let acc: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    g.bench_function("add_f64_64K", |bench| {
        bench.iter(|| {
            for a in &acc {
                atomic_add_f64(a, black_box(0.25));
            }
        })
    });
    g.finish();
}

fn scans(c: &mut Criterion) {
    let xs: Vec<u64> = (0..1_000_000u64).map(|i| i % 37).collect();
    let mut g = c.benchmark_group("scan");
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("parallel_exclusive_1M", |bench| {
        bench.iter(|| black_box(parallel_exclusive_scan(&xs)))
    });
    g.finish();
}

fn allocator(c: &mut Criterion) {
    c.bench_function("device_alloc/churn_1000", |bench| {
        bench.iter(|| {
            let mut mem = DeviceMemory::new(1 << 20);
            let mut live = Vec::new();
            for i in 0..1000 {
                live.push(mem.alloc(64 + i % 128).unwrap());
                if i % 3 == 0 {
                    let p = live.swap_remove(i % live.len());
                    mem.free(p);
                }
            }
            black_box(mem.available())
        })
    });
}

criterion_group!(benches, bitmap_ops, atomic_reductions, scans, allocator);
criterion_main!(benches);
