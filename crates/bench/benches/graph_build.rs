//! Benchmarks of graph construction: the generators and the edge-list →
//! CSR builder (counting sort, symmetrization, dedup).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use ascetic_graph::generators::{
    rmat_graph, social_graph, web_graph, RmatConfig, SocialConfig, WebConfig,
};
use ascetic_graph::GraphBuilder;

fn generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate");
    g.sample_size(10);
    g.throughput(Throughput::Elements(200_000));
    g.bench_function("rmat_200k_edges", |b| {
        b.iter(|| black_box(rmat_graph(&RmatConfig::new(14, 200_000, 1))))
    });
    g.bench_function("social_200k_edges", |b| {
        b.iter(|| black_box(social_graph(&SocialConfig::new(16_384, 100_000, 1))))
    });
    g.bench_function("web_200k_edges", |b| {
        b.iter(|| black_box(web_graph(&WebConfig::new(16_384, 200_000, 1))))
    });
    g.finish();
}

fn builder(c: &mut Criterion) {
    // fixed edge list to isolate the builder cost
    let edges: Vec<(u32, u32)> = (0..200_000u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h % 16_384) as u32, ((h >> 20) % 16_384) as u32)
        })
        .collect();
    let mut g = c.benchmark_group("builder");
    g.sample_size(20);
    g.throughput(Throughput::Elements(edges.len() as u64));
    g.bench_function("counting_sort_200k", |b| {
        b.iter(|| {
            let mut bld = GraphBuilder::with_capacity(16_384, edges.len());
            for &(u, v) in &edges {
                bld.add_edge(u, v);
            }
            black_box(bld.build())
        })
    });
    g.bench_function("sort_dedup_200k", |b| {
        b.iter(|| {
            let mut bld = GraphBuilder::with_capacity(16_384, edges.len()).dedup(true);
            for &(u, v) in &edges {
                bld.add_edge(u, v);
            }
            black_box(bld.build())
        })
    });
    g.bench_function("symmetrize_200k", |b| {
        b.iter(|| {
            let mut bld = GraphBuilder::with_capacity(16_384, edges.len()).symmetrize(true);
            for &(u, v) in &edges {
                bld.add_edge(u, v);
            }
            black_box(bld.build())
        })
    });
    g.finish();
}

criterion_group!(benches, generators, builder);
criterion_main!(benches);
