//! Benchmarks of `Bitmap::iter_ones` across the density regimes the
//! session walks every iteration: near-empty frontiers (a few set bits
//! among millions — the zero-word skip's home turf), clustered frontiers
//! (set bits packed into a few words), and dense frontiers where every
//! word carries payload.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use ascetic_par::Bitmap;

const N: usize = 1 << 20;

fn sparse_scattered(stride: usize) -> Bitmap {
    let mut b = Bitmap::new(N);
    let mut i = 0;
    while i < N {
        b.set(i);
        i += stride;
    }
    b
}

fn clustered(run: usize, period: usize) -> Bitmap {
    let mut b = Bitmap::new(N);
    let mut i = 0;
    while i < N {
        for j in i..(i + run).min(N) {
            b.set(j);
        }
        i += period;
    }
    b
}

fn iter_ones_benches(c: &mut Criterion) {
    let cases: [(&str, Bitmap); 4] = [
        // 16 set bits in a 1M-bit map: virtually every word is zero
        ("sparse_1_in_64k", sparse_scattered(N / 16)),
        // one bit per 8 words: skip still dominates
        ("sparse_1_in_512", sparse_scattered(512)),
        // 64-bit runs every 4096 bits: zero gaps between dense islands
        ("clustered_64_per_4096", clustered(64, 4096)),
        // every other bit: no zero words at all (skip must not slow this)
        ("dense_alternating", sparse_scattered(2)),
    ];
    let mut grp = c.benchmark_group("bitmap_iter_ones");
    grp.throughput(Throughput::Elements(N as u64));
    for (name, b) in &cases {
        grp.bench_function(*name, |bench| {
            bench.iter(|| {
                let mut acc = 0usize;
                for i in b.iter_ones() {
                    acc = acc.wrapping_add(i);
                }
                black_box(acc)
            })
        });
    }
    grp.finish();
}

criterion_group!(benches, iter_ones_benches);
criterion_main!(benches);
