//! Benchmarks of the On-demand Engine data plane: batch planning and the
//! multi-threaded edge gather (the paper's CPU-side `Tfilling` component —
//! the cost Ascetic hides behind static-region compute).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use ascetic_core::ondemand::{gather, plan_batches};
use ascetic_graph::generators::{social_graph, SocialConfig};

fn gather_benches(c: &mut Criterion) {
    let g = social_graph(&SocialConfig::new(65_536, 1_000_000, 3));
    let every_3rd: Vec<u32> = (0..g.num_vertices() as u32).step_by(3).collect();
    let total_edges: u64 = every_3rd.iter().map(|&v| g.degree(v)).sum();

    let mut grp = c.benchmark_group("ondemand");
    grp.sample_size(20);
    grp.throughput(Throughput::Elements(total_edges));

    grp.bench_function("plan_batches", |b| {
        b.iter(|| black_box(plan_batches(&g, &every_3rd, 1 << 18)))
    });

    let batches = plan_batches(&g, &every_3rd, 1 << 18);
    grp.bench_function("gather_all_batches", |b| {
        b.iter(|| {
            for entries in &batches {
                black_box(gather(&g, entries.clone()));
            }
        })
    });

    // sparse frontier (every 50th vertex): per-vertex overheads dominate
    let sparse: Vec<u32> = (0..g.num_vertices() as u32).step_by(50).collect();
    let sparse_edges: u64 = sparse.iter().map(|&v| g.degree(v)).sum();
    grp.throughput(Throughput::Elements(sparse_edges));
    grp.bench_function("gather_sparse_frontier", |b| {
        b.iter(|| {
            for entries in plan_batches(&g, &sparse, 1 << 18) {
                black_box(gather(&g, entries));
            }
        })
    });
    grp.finish();
}

criterion_group!(benches, gather_benches);
criterion_main!(benches);
