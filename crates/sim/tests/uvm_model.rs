//! Property test: the O(1) intrusive-LRU UVM implementation must behave
//! exactly like an obviously-correct naive model (Vec-backed LRU) on any
//! access sequence.

use proptest::prelude::*;

use ascetic_sim::{Uvm, UvmModel};

/// Naive reference: a Vec ordered most-recent-first.
struct NaiveLru {
    cap: usize,
    pages: Vec<u64>,
    hits: u64,
    faults: u64,
    evictions: u64,
}

impl NaiveLru {
    fn new(cap: usize) -> Self {
        NaiveLru {
            cap,
            pages: Vec::new(),
            hits: 0,
            faults: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, p: u64) {
        if let Some(i) = self.pages.iter().position(|&x| x == p) {
            self.pages.remove(i);
            self.pages.insert(0, p);
            self.hits += 1;
            return;
        }
        self.faults += 1;
        if self.pages.len() >= self.cap {
            self.pages.pop();
            self.evictions += 1;
        }
        self.pages.insert(0, p);
    }
}

fn model(page_bytes: u64) -> UvmModel {
    UvmModel {
        page_bytes,
        fault_ns: 1_000,
        bandwidth_bps: 1_000_000_000,
    }
}

proptest! {
    #[test]
    fn lru_matches_naive_model(
        cap in 1usize..32,
        accesses in proptest::collection::vec(0u64..64, 1..2000),
    ) {
        let mut uvm = Uvm::new(model(1024), cap as u64 * 1024);
        let mut naive = NaiveLru::new(cap);
        for &p in &accesses {
            uvm.touch(p);
            naive.touch(p);
        }
        prop_assert_eq!(uvm.stats.hits, naive.hits);
        prop_assert_eq!(uvm.stats.faults, naive.faults);
        prop_assert_eq!(uvm.stats.evictions, naive.evictions);
        prop_assert_eq!(uvm.resident_pages(), naive.pages.len());
        for &p in &naive.pages {
            prop_assert!(uvm.is_resident(p), "page {} must be resident", p);
        }
    }

    #[test]
    fn prefetch_then_touch_always_hits(
        cap in 4usize..32,
        pages in proptest::collection::vec(0u64..16, 1..16),
    ) {
        // prefetching a set smaller than capacity guarantees hits
        let distinct: std::collections::BTreeSet<u64> = pages.iter().copied().collect();
        prop_assume!(distinct.len() <= cap);
        let mut uvm = Uvm::new(model(1024), cap as u64 * 1024);
        for &p in &distinct {
            uvm.prefetch(p..p + 1);
        }
        let faults_before = uvm.stats.faults;
        for &p in &pages {
            uvm.touch(p);
        }
        prop_assert_eq!(uvm.stats.faults, faults_before, "no faults after prefetch");
    }

    #[test]
    fn migrated_bytes_equal_faults_plus_prefetches(
        cap in 1usize..16,
        accesses in proptest::collection::vec(0u64..48, 1..500),
    ) {
        let mut uvm = Uvm::new(model(512), cap as u64 * 512);
        for &p in &accesses {
            uvm.touch(p);
        }
        prop_assert_eq!(uvm.stats.migrated_bytes, uvm.stats.faults * 512);
        prop_assert_eq!(uvm.stats.prefetched_bytes, 0);
    }
}
