//! Simulated time.
//!
//! Instants and durations are nanoseconds in `u64`; arithmetic is exact and
//! platform-independent, which keeps every reported number bit-reproducible.
//! `SimTime` is an *instant* on the virtual clock; durations are plain `u64`
//! nanoseconds produced by the cost models in [`crate::device`].

/// An instant on the simulated clock, in nanoseconds since run start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The instant `dur_ns` nanoseconds after `self`.
    #[inline]
    pub fn after(self, dur_ns: u64) -> SimTime {
        SimTime(self.0 + dur_ns)
    }

    /// Nanoseconds from `earlier` to `self`; panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        debug_assert!(self >= earlier, "negative duration");
        self.0 - earlier.0
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Seconds as `f64` (for reporting only; never used in scheduling).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

/// Nanoseconds for a given seconds value (helper for configuring models).
#[inline]
pub fn ns_from_secs_f64(s: f64) -> u64 {
    debug_assert!(s >= 0.0 && s.is_finite());
    (s * 1e9).round() as u64
}

/// Nanoseconds to move `bytes` at `bytes_per_sec`, rounded up so that a
/// nonzero payload never takes zero time.
#[inline]
pub fn ns_for_bytes(bytes: u64, bytes_per_sec: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    // ns = bytes * 1e9 / Bps, computed in u128 to avoid overflow.
    let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
    ns.min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::ZERO.after(500);
        assert_eq!(t.0, 500);
        assert_eq!(t.since(SimTime::ZERO), 500);
        assert_eq!(t.max(SimTime(100)), t);
        assert_eq!(SimTime(100).max(t), t);
    }

    #[test]
    fn seconds_conversion() {
        assert_eq!(SimTime(1_500_000_000).as_secs_f64(), 1.5);
        assert_eq!(ns_from_secs_f64(0.25), 250_000_000);
        assert_eq!(ns_from_secs_f64(0.0), 0);
    }

    #[test]
    fn bandwidth_math() {
        // 12 GB/s: 12 bytes take 1 ns
        assert_eq!(ns_for_bytes(12, 12_000_000_000), 1);
        assert_eq!(ns_for_bytes(0, 12_000_000_000), 0);
        // rounding up: 1 byte still costs 1 ns
        assert_eq!(ns_for_bytes(1, 12_000_000_000), 1);
        // 1 GiB at 1 GB/s ≈ 1.074 s
        let ns = ns_for_bytes(1 << 30, 1_000_000_000);
        assert_eq!(ns, 1_073_741_824);
    }

    #[test]
    fn bandwidth_saturates_instead_of_overflowing() {
        assert_eq!(ns_for_bytes(u64::MAX / 2, 1), u64::MAX);
        // 1 TB at 12 GB/s stays exact
        let ns = ns_for_bytes(1_000_000_000_000, 12_000_000_000);
        assert_eq!(ns, 83_333_333_334);
    }
}
