//! Chunk-access tracing (Figure 2).
//!
//! The paper's motivation study records, via `nvprof` on a UVM run, which
//! 4M-edge data chunk each memory access lands in over time (Fig. 2 a–c)
//! and how often each chunk is touched per iteration (Fig. 2 d–f). The
//! [`AccessTracer`] collects the same two views from our simulated runs:
//! a time-stamped chunk-touch event stream and a per-chunk access counter,
//! both dumpable as CSV for plotting.

use crate::time::SimTime;

/// One recorded access event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessEvent {
    /// Simulated timestamp of the access.
    pub time: SimTime,
    /// Chunk index touched.
    pub chunk: u32,
    /// Iteration during which it happened.
    pub iteration: u32,
}

/// Collects chunk-granularity access patterns.
pub struct AccessTracer {
    num_chunks: usize,
    /// Per-chunk access counts (all iterations).
    counts: Vec<u64>,
    /// Per-chunk access counts for a single selected iteration.
    iter_counts: Vec<u64>,
    /// Which iteration `iter_counts` tracks.
    tracked_iteration: u32,
    /// Sampled event stream (sampled 1-in-`sample_every` to bound memory).
    events: Vec<AccessEvent>,
    sample_every: u64,
    seen: u64,
}

impl AccessTracer {
    /// Tracer over `num_chunks` chunks, keeping every `sample_every`-th
    /// event in the time-series view (counts are always exact).
    pub fn new(num_chunks: usize, sample_every: u64) -> Self {
        AccessTracer {
            num_chunks,
            counts: vec![0; num_chunks],
            iter_counts: vec![0; num_chunks],
            tracked_iteration: 0,
            events: Vec::new(),
            sample_every: sample_every.max(1),
            seen: 0,
        }
    }

    /// Select which iteration the per-iteration counter view tracks
    /// (Fig. 2 d–f show "access count of chunks in one iteration").
    pub fn track_iteration(&mut self, iteration: u32) {
        self.tracked_iteration = iteration;
        self.iter_counts.fill(0);
    }

    /// Record `accesses` touches of `chunk` at `time` during `iteration`.
    pub fn record(&mut self, time: SimTime, chunk: u32, iteration: u32, accesses: u64) {
        debug_assert!((chunk as usize) < self.num_chunks);
        self.counts[chunk as usize] += accesses;
        if iteration == self.tracked_iteration {
            self.iter_counts[chunk as usize] += accesses;
        }
        self.seen += 1;
        if self.seen.is_multiple_of(self.sample_every) {
            self.events.push(AccessEvent {
                time,
                chunk,
                iteration,
            });
        }
    }

    /// Exact per-chunk totals over the whole run.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Exact per-chunk totals for the tracked iteration.
    pub fn iteration_counts(&self) -> &[u64] {
        &self.iter_counts
    }

    /// The sampled time-series events.
    pub fn events(&self) -> &[AccessEvent] {
        &self.events
    }

    /// CSV of the time series: `time_s,chunk,iteration` (Fig. 2 a–c).
    pub fn events_csv(&self) -> String {
        let mut out = String::from("time_s,chunk,iteration\n");
        for e in &self.events {
            out.push_str(&format!(
                "{:.6},{},{}\n",
                e.time.as_secs_f64(),
                e.chunk,
                e.iteration
            ));
        }
        out
    }

    /// CSV of per-chunk counts: `chunk,count` (Fig. 2 d–f).
    pub fn iteration_counts_csv(&self) -> String {
        let mut out = String::from("chunk,access_count\n");
        for (c, n) in self.iter_counts.iter().enumerate() {
            out.push_str(&format!("{c},{n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact_even_with_sampling() {
        let mut t = AccessTracer::new(4, 10);
        for i in 0..100u64 {
            t.record(SimTime(i), (i % 4) as u32, 0, 1);
        }
        assert_eq!(t.counts(), &[25, 25, 25, 25]);
        // sampled stream: 1 in 10
        assert_eq!(t.events().len(), 10);
    }

    #[test]
    fn iteration_view_tracks_selected_iteration() {
        let mut t = AccessTracer::new(2, 1);
        t.track_iteration(1);
        t.record(SimTime(0), 0, 0, 5);
        t.record(SimTime(1), 0, 1, 7);
        t.record(SimTime(2), 1, 1, 2);
        t.record(SimTime(3), 1, 2, 9);
        assert_eq!(t.iteration_counts(), &[7, 2]);
        assert_eq!(t.counts(), &[12, 11]);
    }

    #[test]
    fn csv_output_shapes() {
        let mut t = AccessTracer::new(2, 1);
        t.record(SimTime(1_000_000_000), 1, 0, 1);
        let ev = t.events_csv();
        assert!(ev.starts_with("time_s,chunk,iteration\n"));
        assert!(ev.contains("1.000000,1,0"));
        let ic = t.iteration_counts_csv();
        assert_eq!(ic.lines().count(), 3); // header + 2 chunks
    }

    #[test]
    fn retracking_resets_iteration_counts() {
        let mut t = AccessTracer::new(1, 1);
        t.record(SimTime(0), 0, 0, 3);
        assert_eq!(t.iteration_counts(), &[3]);
        t.track_iteration(2);
        assert_eq!(t.iteration_counts(), &[0]);
    }
}
