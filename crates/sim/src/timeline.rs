//! Engine timeline: CUDA-stream-like scheduling on the virtual clock.
//!
//! The P100 has independent DMA (copy) and compute engines, so a kernel can
//! execute while the next batch of data streams in — the mechanism behind
//! the paper's overlap optimization (Figure 5). We model three serially-
//! exclusive resources:
//!
//! * [`Engine::Copy`] — the H2D/D2H DMA engine,
//! * [`Engine::Compute`] — the SMs (one kernel at a time, as in a stream),
//! * [`Engine::Cpu`] — the host threads doing gather / on-demand work.
//!
//! An operation is scheduled with a *ready time* (its dependencies' latest
//! finish); it starts at `max(ready, engine_free)` and occupies the engine
//! for its duration. Baseline systems chain every op after the previous one
//! (no overlap); Ascetic hands independent ready-times to different engines
//! and the timeline computes the concurrency automatically.

use crate::time::SimTime;
use ascetic_obs::trace::{SpanTracer, CAT_WAIT};

/// Track-name prefix for per-copy-stream tracks in hierarchical traces
/// (`"PCIe copy stream 0"` is the default stream; consumers find the link
/// tracks by this prefix).
pub const COPY_STREAM_TRACK_PREFIX: &str = "PCIe copy stream";

/// Hierarchical-trace track name for copy stream `i`.
pub fn copy_stream_track_name(i: usize) -> String {
    format!("{COPY_STREAM_TRACK_PREFIX} {i}")
}

/// A FIFO command queue feeding the PCIe copy engine (a CUDA stream whose
/// work is pure DMA). Every timeline starts with one stream,
/// [`CopyStream::DEFAULT`]; more are minted with
/// [`Timeline::add_copy_stream`]. Streams order their own operations
/// FIFO but share the single physical link: an operation starts no
/// earlier than both its stream's frontier and the link's frontier, so
/// concurrent streams serialize on the wire in deterministic issue order
/// (round-robin falls out of alternating issues).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CopyStream(usize);

impl CopyStream {
    /// The stream every plain [`Engine::Copy`] operation runs on.
    pub const DEFAULT: CopyStream = CopyStream(0);
}

/// A serially-exclusive hardware resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// PCIe DMA engine.
    Copy,
    /// GPU compute (kernel) engine.
    Compute,
    /// Host CPU worker pool.
    Cpu,
}

const NUM_ENGINES: usize = 3;

impl Engine {
    fn index(self) -> usize {
        match self {
            Engine::Copy => 0,
            Engine::Compute => 1,
            Engine::Cpu => 2,
        }
    }
}

/// The executed interval of a scheduled operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// When the operation began executing.
    pub start: SimTime,
    /// When it finished.
    pub end: SimTime,
}

impl Span {
    /// An empty span at `t` (zero-duration operations).
    pub fn empty_at(t: SimTime) -> Span {
        Span { start: t, end: t }
    }

    /// Duration in nanoseconds.
    pub fn duration(&self) -> u64 {
        self.end.since(self.start)
    }
}

/// A labeled executed span, recorded when tracing is enabled — exported as
/// a Chrome trace (`chrome://tracing` / Perfetto) via
/// [`chrome_trace_json`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Engine the operation ran on.
    pub engine: Engine,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
    /// Human-readable label ("H2D 64KB", "kernel e=12000 v=800", ...).
    pub label: String,
}

/// Per-run scheduling state plus busy-time accounting.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Earliest instant each engine is free. For [`Engine::Copy`] this is
    /// the shared *link* frontier — the latest finish over every stream —
    /// so single-copy-engine idle/overlap accounting stays exact with
    /// multiple streams (the wire is still one serially-exclusive
    /// resource).
    free_at: [SimTime; NUM_ENGINES],
    /// Total busy nanoseconds per engine. `busy_ns[Copy]` is the link
    /// total: the sum over streams (streams serialize on the wire, so the
    /// sum never double-counts an instant).
    busy_ns: [u64; NUM_ENGINES],
    /// Per-stream FIFO frontiers for the copy engine (index 0 = the
    /// default stream).
    stream_free_at: Vec<SimTime>,
    /// Per-stream busy nanoseconds.
    stream_busy_ns: Vec<u64>,
    /// Latest finish time seen so far (the makespan).
    horizon: SimTime,
    /// Recorded spans, when tracing is on.
    trace: Option<Vec<TraceSpan>>,
    /// Hierarchical per-track tracer, armed together with `trace`. Engine
    /// and per-stream tracks are fed from `record`; callers may add their
    /// own tracks (session phases, serve jobs) via [`Timeline::tracer_mut`].
    tracer: Option<SpanTracer>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    /// A fresh timeline at time zero.
    pub fn new() -> Self {
        Timeline {
            free_at: [SimTime::ZERO; NUM_ENGINES],
            busy_ns: [0; NUM_ENGINES],
            stream_free_at: vec![SimTime::ZERO],
            stream_busy_ns: vec![0],
            horizon: SimTime::ZERO,
            trace: None,
            tracer: None,
        }
    }

    /// Mint an additional copy stream (FIFO queue on the shared link).
    /// The default stream always exists; this returns a fresh handle
    /// starting free at the current barrier state of the copy engine.
    pub fn add_copy_stream(&mut self) -> CopyStream {
        let id = self.stream_free_at.len();
        // A new stream has issued nothing yet: it is free whenever the
        // link is (barriers already advanced the link frontier).
        self.stream_free_at.push(self.free_at[Engine::Copy.index()]);
        self.stream_busy_ns.push(0);
        if let Some(tr) = self.tracer.as_mut() {
            tr.track(&copy_stream_track_name(id));
        }
        CopyStream(id)
    }

    /// Number of copy streams (≥ 1; the default stream counts).
    pub fn num_copy_streams(&self) -> usize {
        self.stream_free_at.len()
    }

    /// Start recording every scheduled span, both as the flat Chrome-trace
    /// list and as hierarchical per-track spans in a
    /// [`SpanTracer`]. Tracks are interned eagerly (one per existing copy
    /// stream, one per compute/CPU engine) so track order does not depend
    /// on which operation happens to run first.
    pub fn enable_tracing(&mut self) {
        self.trace.get_or_insert_with(Vec::new);
        let streams = self.stream_free_at.len();
        let tr = self.tracer.get_or_insert_with(SpanTracer::new);
        for s in 0..streams {
            tr.track(&copy_stream_track_name(s));
        }
        tr.track(Engine::Compute.name());
        tr.track(Engine::Cpu.name());
    }

    /// The recorded spans, if tracing was enabled.
    pub fn trace(&self) -> Option<&[TraceSpan]> {
        self.trace.as_deref()
    }

    /// Take ownership of the recorded spans (used when assembling reports).
    pub fn take_trace(&mut self) -> Option<Vec<TraceSpan>> {
        self.trace.take()
    }

    /// The hierarchical tracer, if tracing is enabled. Callers add their
    /// own tracks (session phases, serve jobs) here; engine and stream
    /// tracks are fed automatically by scheduling.
    pub fn tracer_mut(&mut self) -> Option<&mut SpanTracer> {
        self.tracer.as_mut()
    }

    /// Take ownership of the hierarchical tracer (used when assembling a
    /// run report; call [`Timeline::enable_tracing`] again to re-arm for
    /// a subsequent run on the same timeline).
    pub fn take_tracer(&mut self) -> Option<SpanTracer> {
        self.tracer.take()
    }

    /// Schedule an operation of `dur_ns` on `engine`, not before `ready`.
    /// Returns the executed span.
    pub fn schedule(&mut self, engine: Engine, ready: SimTime, dur_ns: u64) -> Span {
        self.schedule_labeled(engine, ready, dur_ns, String::new)
    }

    /// [`Timeline::schedule`] with a lazily-built label recorded when
    /// tracing is enabled (the closure never runs otherwise).
    pub fn schedule_labeled(
        &mut self,
        engine: Engine,
        ready: SimTime,
        dur_ns: u64,
        label: impl FnOnce() -> String,
    ) -> Span {
        if engine == Engine::Copy {
            return self.schedule_copy(CopyStream::DEFAULT, ready, dur_ns, label);
        }
        let i = engine.index();
        let start = self.free_at[i].max(ready);
        let end = start.after(dur_ns);
        self.free_at[i] = end;
        self.busy_ns[i] += dur_ns;
        self.horizon = self.horizon.max(end);
        self.record(engine, None, start, end, dur_ns, label);
        Span { start, end }
    }

    /// Schedule a DMA of `dur_ns` on `stream`, not before `ready`. The
    /// operation waits for both the stream's own FIFO frontier and the
    /// shared link; completing it advances both, so streams interleave on
    /// the wire in deterministic issue order.
    pub fn schedule_copy(
        &mut self,
        stream: CopyStream,
        ready: SimTime,
        dur_ns: u64,
        label: impl FnOnce() -> String,
    ) -> Span {
        let i = Engine::Copy.index();
        // The stream's own FIFO would admit the op at `queue_ready`; any
        // extra delay until `start` is time lost arbitrating for the
        // shared link (recorded as a wait span on the stream's track).
        let queue_ready = self.stream_free_at[stream.0].max(ready);
        let start = queue_ready.max(self.free_at[i]);
        let end = start.after(dur_ns);
        self.stream_free_at[stream.0] = end;
        self.free_at[i] = end;
        self.busy_ns[i] += dur_ns;
        self.stream_busy_ns[stream.0] += dur_ns;
        self.horizon = self.horizon.max(end);
        if dur_ns > 0 && start > queue_ready {
            if let Some(tr) = self.tracer.as_mut() {
                let id = tr.track(&copy_stream_track_name(stream.0));
                tr.complete(id, queue_ready.0, start.0, "link arbitration", CAT_WAIT)
                    .expect("stream spans are FIFO per track");
            }
        }
        self.record(Engine::Copy, Some(stream.0), start, end, dur_ns, label);
        Span { start, end }
    }

    fn record(
        &mut self,
        engine: Engine,
        stream: Option<usize>,
        start: SimTime,
        end: SimTime,
        dur_ns: u64,
        label: impl FnOnce() -> String,
    ) {
        if dur_ns == 0 || (self.trace.is_none() && self.tracer.is_none()) {
            return;
        }
        let label = label();
        if let Some(tr) = self.tracer.as_mut() {
            let track = match stream {
                Some(s) => tr.track(&copy_stream_track_name(s)),
                None => tr.track(engine.name()),
            };
            let cat = span_cat(engine, &label);
            let name = if label.is_empty() {
                "op"
            } else {
                label.as_str()
            };
            tr.complete(track, start.0, end.0, name, cat)
                .expect("engine spans are FIFO per track");
        }
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceSpan {
                engine,
                start,
                end,
                label,
            });
        }
    }

    /// The instant `engine` next becomes free. For [`Engine::Copy`] this
    /// is the shared link frontier (the latest finish over all streams).
    pub fn engine_free_at(&self, engine: Engine) -> SimTime {
        self.free_at[engine.index()]
    }

    /// The instant `stream`'s FIFO queue drains (its last op finishes).
    pub fn stream_free_at(&self, stream: CopyStream) -> SimTime {
        self.stream_free_at[stream.0]
    }

    /// Total busy time issued through `stream`, ns. The sum over streams
    /// equals [`Timeline::busy_ns`]`(Engine::Copy)`.
    pub fn stream_busy_ns(&self, stream: CopyStream) -> u64 {
        self.stream_busy_ns[stream.0]
    }

    /// Latest finish over all engines (current makespan).
    pub fn now(&self) -> SimTime {
        self.horizon
    }

    /// Total busy time of `engine`, ns.
    pub fn busy_ns(&self, engine: Engine) -> u64 {
        self.busy_ns[engine.index()]
    }

    /// Idle time of `engine` relative to the makespan, ns. For the GPU
    /// compute engine this is the paper's "GPU idle" metric (§2.2 reports
    /// 68 % idle for Subway BFS on friendster-konect).
    pub fn idle_ns(&self, engine: Engine) -> u64 {
        self.horizon.0.saturating_sub(self.busy_ns(engine))
    }

    /// Fast-forward every engine to at least `t` (an iteration barrier —
    /// the driver synchronizes all streams between iterations).
    pub fn barrier(&mut self, t: SimTime) {
        for f in &mut self.free_at {
            *f = (*f).max(t);
        }
        for f in &mut self.stream_free_at {
            *f = (*f).max(t);
        }
        self.horizon = self.horizon.max(t);
    }

    /// Barrier at the current makespan; returns it. Called at the end of
    /// each iteration (`cudaDeviceSynchronize` equivalent).
    pub fn sync_all(&mut self) -> SimTime {
        let t = self.horizon;
        self.barrier(t);
        t
    }
}

impl Engine {
    /// Display name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Copy => "PCIe copy engine",
            Engine::Compute => "GPU compute engine",
            Engine::Cpu => "Host CPU",
        }
    }
}

/// Category assigned to an automatically-recorded engine span: the copy
/// engine moves data (`dma`), the compute engine runs kernels except for
/// decompression launches (`decode`), and the host CPU does gather /
/// encode work (`cpu`).
fn span_cat(engine: Engine, label: &str) -> &'static str {
    match engine {
        Engine::Copy => "dma",
        Engine::Compute if label.starts_with("decompress") => "decode",
        Engine::Compute => "kernel",
        Engine::Cpu => "cpu",
    }
}

/// Render recorded spans as Chrome trace-event JSON (load in
/// `chrome://tracing` or <https://ui.perfetto.dev>). Timestamps are in
/// microseconds of simulated time; each engine appears as its own thread.
pub fn chrome_trace_json(spans: &[TraceSpan]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in [Engine::Copy, Engine::Compute, Engine::Cpu]
        .into_iter()
        .enumerate()
    {
        let sep = if spans.is_empty() && i == 2 {
            "\n"
        } else {
            ",\n"
        };
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}{sep}",
            e.index(),
            e.name()
        ));
    }
    for (i, s) in spans.iter().enumerate() {
        let label = ascetic_obs::json::escape(&s.label);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"cat\":\"sim\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            if label.is_empty() { "op" } else { &label },
            s.engine.index(),
            s.start.0 as f64 / 1_000.0,
            s.end.since(s.start) as f64 / 1_000.0,
        ));
        out.push_str(if i + 1 == spans.len() { "\n" } else { ",\n" });
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_accumulates() {
        let mut tl = Timeline::new();
        let a = tl.schedule(Engine::Cpu, SimTime::ZERO, 100);
        let b = tl.schedule(Engine::Copy, a.end, 50);
        let c = tl.schedule(Engine::Compute, b.end, 200);
        assert_eq!(a.start, SimTime(0));
        assert_eq!(b.start, SimTime(100));
        assert_eq!(c.start, SimTime(150));
        assert_eq!(tl.now(), SimTime(350));
    }

    #[test]
    fn overlap_across_engines() {
        let mut tl = Timeline::new();
        // Kernel and copy issued with the same ready time run concurrently.
        let k = tl.schedule(Engine::Compute, SimTime::ZERO, 300);
        let x = tl.schedule(Engine::Copy, SimTime::ZERO, 200);
        assert_eq!(k.start, x.start);
        assert_eq!(tl.now(), SimTime(300), "makespan = max, not sum");
    }

    #[test]
    fn same_engine_serializes() {
        let mut tl = Timeline::new();
        let a = tl.schedule(Engine::Compute, SimTime::ZERO, 100);
        // ready earlier than engine-free: starts when the engine frees
        let b = tl.schedule(Engine::Compute, SimTime::ZERO, 100);
        assert_eq!(a.end, b.start);
        assert_eq!(tl.now(), SimTime(200));
    }

    #[test]
    fn idle_accounting_matches_overlap() {
        let mut tl = Timeline::new();
        // Baseline-style: gather 300 then compute 100 -> compute idle 300.
        let g = tl.schedule(Engine::Cpu, SimTime::ZERO, 300);
        tl.schedule(Engine::Compute, g.end, 100);
        assert_eq!(tl.idle_ns(Engine::Compute), 300);
        assert_eq!(tl.busy_ns(Engine::Compute), 100);
        assert_eq!(tl.busy_ns(Engine::Cpu), 300);
    }

    #[test]
    fn barrier_advances_engines() {
        let mut tl = Timeline::new();
        tl.schedule(Engine::Copy, SimTime::ZERO, 100);
        tl.barrier(SimTime(500));
        let k = tl.schedule(Engine::Compute, SimTime::ZERO, 10);
        assert_eq!(k.start, SimTime(500), "barrier holds later ops");
        assert_eq!(tl.now(), SimTime(510));
    }

    #[test]
    fn sync_all_is_iteration_boundary() {
        let mut tl = Timeline::new();
        tl.schedule(Engine::Compute, SimTime::ZERO, 120);
        tl.schedule(Engine::Copy, SimTime::ZERO, 80);
        let t = tl.sync_all();
        assert_eq!(t, SimTime(120));
        let next = tl.schedule(Engine::Copy, SimTime::ZERO, 10);
        assert_eq!(next.start, SimTime(120));
    }

    #[test]
    fn tracing_records_labeled_spans() {
        let mut tl = Timeline::new();
        tl.schedule(Engine::Copy, SimTime::ZERO, 10); // before tracing: not recorded
        tl.enable_tracing();
        tl.schedule_labeled(Engine::Compute, SimTime::ZERO, 100, || "kernel".into());
        tl.schedule_labeled(Engine::Copy, SimTime::ZERO, 0, || "empty".into()); // zero-dur skipped
        let spans = tl.trace().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].label, "kernel");
        assert_eq!(spans[0].engine, Engine::Compute);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut tl = Timeline::new();
        tl.enable_tracing();
        tl.schedule_labeled(Engine::Cpu, SimTime::ZERO, 2_000, || "gather \"x\"".into());
        tl.schedule_labeled(Engine::Copy, SimTime(2_000), 1_000, || "H2D".into());
        let json = chrome_trace_json(tl.trace().unwrap());
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("Host CPU"));
        assert!(json.contains("gather \\\"x\\\"")); // quotes escaped
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        ascetic_obs::json::validate(&json).expect("trace JSON validates");
    }

    #[test]
    fn chrome_json_escapes_control_characters() {
        let mut tl = Timeline::new();
        tl.enable_tracing();
        tl.schedule_labeled(Engine::Copy, SimTime::ZERO, 100, || {
            "line\nbreak\ttab \\ \u{01}".into()
        });
        let json = chrome_trace_json(tl.trace().unwrap());
        assert!(json.contains("line\\nbreak\\ttab \\\\ \\u0001"));
        ascetic_obs::json::validate(&json).expect("control chars must be escaped");
    }

    #[test]
    fn chrome_json_empty_trace_validates() {
        let json = chrome_trace_json(&[]);
        ascetic_obs::json::validate(&json).expect("metadata-only trace validates");
    }

    #[test]
    fn second_stream_serializes_on_the_shared_link() {
        let mut tl = Timeline::new();
        let pf = tl.add_copy_stream();
        assert_eq!(tl.num_copy_streams(), 2);
        // Default-stream op first, then a prefetch op with the same ready
        // time: the link is one wire, so they serialize in issue order.
        let a = tl.schedule(Engine::Copy, SimTime::ZERO, 100);
        let b = tl.schedule_copy(pf, SimTime::ZERO, 50, String::new);
        assert_eq!(a.end, b.start, "streams share the link FIFO");
        assert_eq!(tl.busy_ns(Engine::Copy), 150, "link busy = sum of streams");
        assert_eq!(tl.stream_busy_ns(CopyStream::DEFAULT), 100);
        assert_eq!(tl.stream_busy_ns(pf), 50);
        assert_eq!(tl.stream_free_at(pf), b.end);
        // Link idle accounting stays exact with two streams (satellite fix):
        // makespan 150, link busy 150 -> zero idle.
        assert_eq!(tl.idle_ns(Engine::Copy), 0);
    }

    #[test]
    fn streams_interleave_round_robin_by_issue_order() {
        let mut tl = Timeline::new();
        let pf = tl.add_copy_stream();
        let a = tl.schedule_copy(CopyStream::DEFAULT, SimTime::ZERO, 10, String::new);
        let b = tl.schedule_copy(pf, SimTime::ZERO, 10, String::new);
        let c = tl.schedule_copy(CopyStream::DEFAULT, SimTime::ZERO, 10, String::new);
        let d = tl.schedule_copy(pf, SimTime::ZERO, 10, String::new);
        assert_eq!(
            (a.start, b.start, c.start, d.start),
            (SimTime(0), SimTime(10), SimTime(20), SimTime(30)),
            "alternating issues alternate on the wire"
        );
    }

    #[test]
    fn default_stream_behaviour_is_unchanged_by_extra_streams() {
        // The same schedule with and without an (unused) second stream must
        // produce identical spans — existing timings cannot shift.
        let mut plain = Timeline::new();
        let mut multi = Timeline::new();
        let _pf = multi.add_copy_stream();
        for tl in [&mut plain, &mut multi] {
            tl.schedule(Engine::Copy, SimTime::ZERO, 70);
            tl.schedule(Engine::Compute, SimTime::ZERO, 100);
        }
        assert_eq!(plain.now(), multi.now());
        assert_eq!(
            plain.engine_free_at(Engine::Copy),
            multi.engine_free_at(Engine::Copy)
        );
        assert_eq!(plain.busy_ns(Engine::Copy), multi.busy_ns(Engine::Copy));
    }

    #[test]
    fn barrier_advances_stream_frontiers() {
        let mut tl = Timeline::new();
        let pf = tl.add_copy_stream();
        tl.schedule_copy(pf, SimTime::ZERO, 10, String::new);
        tl.barrier(SimTime(500));
        let s = tl.schedule_copy(pf, SimTime::ZERO, 10, String::new);
        assert_eq!(s.start, SimTime(500), "barrier holds stream ops too");
        assert_eq!(tl.stream_free_at(CopyStream::DEFAULT), SimTime(500));
    }

    #[test]
    fn new_stream_starts_at_the_link_frontier() {
        let mut tl = Timeline::new();
        tl.schedule(Engine::Copy, SimTime::ZERO, 80);
        let pf = tl.add_copy_stream();
        assert_eq!(tl.stream_free_at(pf), SimTime(80));
        assert_eq!(tl.stream_busy_ns(pf), 0);
    }

    #[test]
    fn tracer_builds_per_track_spans_with_arbitration_waits() {
        let mut tl = Timeline::new();
        tl.enable_tracing();
        let pf = tl.add_copy_stream();
        tl.schedule_labeled(Engine::Copy, SimTime::ZERO, 100, || "H2D a".into());
        // Prefetch issued at t=0 must wait for the link until t=100.
        tl.schedule_copy(pf, SimTime::ZERO, 50, || "prefetch b".into());
        tl.schedule_labeled(Engine::Compute, SimTime(100), 80, || "kernel".into());
        tl.schedule_labeled(Engine::Compute, SimTime::ZERO, 20, || "decompress x".into());
        let trace = tl.take_tracer().unwrap().finish().unwrap();
        // Track order: streams first (creation order), then engines.
        assert_eq!(
            trace.tracks(),
            &[
                copy_stream_track_name(0),
                Engine::Compute.name().to_string(),
                Engine::Cpu.name().to_string(),
                copy_stream_track_name(1),
            ]
        );
        let pf_track = trace.track_index(&copy_stream_track_name(1)).unwrap();
        let pf_spans: Vec<_> = trace.track_spans(pf_track).collect();
        assert_eq!(pf_spans.len(), 2, "wait span + dma span");
        assert_eq!(pf_spans[0].cat, CAT_WAIT);
        assert_eq!((pf_spans[0].start_ns, pf_spans[0].end_ns), (0, 100));
        assert_eq!(pf_spans[1].name, "prefetch b");
        // Wait time is excluded from busy accounting: stream 1 busy = 50.
        assert_eq!(trace.busy_ns(pf_track, 0, 200), 50);
        let k = trace.track_index(Engine::Compute.name()).unwrap();
        let cats: Vec<_> = trace.track_spans(k).map(|s| s.cat.as_str()).collect();
        assert_eq!(cats, ["kernel", "decode"]);
    }

    #[test]
    fn tracer_and_flat_trace_agree_on_span_count() {
        let mut tl = Timeline::new();
        tl.enable_tracing();
        tl.schedule_labeled(Engine::Cpu, SimTime::ZERO, 10, || "gather".into());
        tl.schedule_labeled(Engine::Copy, SimTime::ZERO, 10, || "H2D".into());
        tl.schedule(Engine::Compute, SimTime::ZERO, 0); // zero-dur: skipped by both
        let flat = tl.take_trace().unwrap();
        let trace = tl.take_tracer().unwrap().finish().unwrap();
        assert_eq!(flat.len(), 2);
        assert_eq!(trace.spans().len(), 2, "no waits here, counts match");
    }

    #[test]
    fn zero_duration_span() {
        let mut tl = Timeline::new();
        let s = tl.schedule(Engine::Cpu, SimTime(42), 0);
        assert_eq!(s.duration(), 0);
        assert_eq!(s, Span::empty_at(SimTime(42)));
    }
}
