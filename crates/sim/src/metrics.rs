//! Transfer and kernel counters.
//!
//! Tables 4/5 and Figures 7–9 are built from exactly these numbers: bytes
//! moved per direction, number of DMA operations, kernel launches and the
//! work they performed. Counters are plain (non-atomic) because all systems
//! drive the simulated device from a single orchestration thread.

/// PCIe transfer counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XferStats {
    /// Host→device payload bytes (decoded / logical size).
    pub h2d_bytes: u64,
    /// Host→device bytes actually on the link — equal to `h2d_bytes` for
    /// raw transfers, the encoded size for compressed ones.
    pub h2d_wire_bytes: u64,
    /// Of `h2d_bytes`, the portion shipped speculatively by the prefetch
    /// stream (on-demand / reactive bytes are `h2d_bytes` minus this).
    pub h2d_prefetch_bytes: u64,
    /// Device→host payload bytes.
    pub d2h_bytes: u64,
    /// Number of H2D DMA operations.
    pub h2d_ops: u64,
    /// Number of D2H DMA operations.
    pub d2h_ops: u64,
}

impl XferStats {
    /// Total payload bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Total bytes on the link in both directions (D2H is never encoded).
    pub fn total_wire_bytes(&self) -> u64 {
        self.h2d_wire_bytes + self.d2h_bytes
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &XferStats) {
        self.h2d_bytes += other.h2d_bytes;
        self.h2d_wire_bytes += other.h2d_wire_bytes;
        self.h2d_prefetch_bytes += other.h2d_prefetch_bytes;
        self.d2h_bytes += other.d2h_bytes;
        self.h2d_ops += other.h2d_ops;
        self.d2h_ops += other.d2h_ops;
    }

    /// The reactive share of the H2D payload: everything the device pulled
    /// on demand rather than receiving from the prefetch stream.
    pub fn h2d_ondemand_bytes(&self) -> u64 {
        self.h2d_bytes - self.h2d_prefetch_bytes
    }
}

/// Kernel-launch counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of kernel launches.
    pub launches: u64,
    /// Total edges traversed across launches.
    pub edges: u64,
    /// Total vertices processed across launches.
    pub vertices: u64,
    /// Total simulated kernel time, ns.
    pub time_ns: u64,
}

impl KernelStats {
    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.launches += other.launches;
        self.edges += other.edges;
        self.vertices += other.vertices;
        self.time_ns += other.time_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xfer_totals_and_merge() {
        let mut a = XferStats {
            h2d_bytes: 10,
            h2d_wire_bytes: 4,
            h2d_prefetch_bytes: 3,
            d2h_bytes: 2,
            h2d_ops: 1,
            d2h_ops: 1,
        };
        let b = XferStats {
            h2d_bytes: 5,
            h2d_wire_bytes: 5,
            h2d_prefetch_bytes: 1,
            d2h_bytes: 0,
            h2d_ops: 2,
            d2h_ops: 0,
        };
        a.merge(&b);
        assert_eq!(a.h2d_bytes, 15);
        assert_eq!(a.h2d_wire_bytes, 9);
        assert_eq!(a.h2d_prefetch_bytes, 4);
        assert_eq!(a.h2d_ondemand_bytes(), 11);
        assert_eq!(a.h2d_ops, 3);
        assert_eq!(a.total_bytes(), 17);
        assert_eq!(a.total_wire_bytes(), 11);
    }

    #[test]
    fn kernel_merge() {
        let mut a = KernelStats {
            launches: 1,
            edges: 100,
            vertices: 10,
            time_ns: 500,
        };
        a.merge(&KernelStats {
            launches: 2,
            edges: 50,
            vertices: 5,
            time_ns: 100,
        });
        assert_eq!(a.launches, 3);
        assert_eq!(a.edges, 150);
        assert_eq!(a.vertices, 15);
        assert_eq!(a.time_ns, 600);
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(XferStats::default().total_bytes(), 0);
        assert_eq!(KernelStats::default().launches, 0);
    }
}
