//! Unified Virtual Memory emulation.
//!
//! The UVM baseline (paper §4.4) lets the GPU touch host-resident edge data
//! directly: the first touch of a non-resident page stalls on a page fault,
//! the driver migrates the page over PCIe, and an LRU policy evicts pages
//! when the device fills. This module reproduces that mechanism:
//!
//! * pages of configurable size (Pascal default 64 KiB),
//! * a device-capacity-bounded resident set with **O(1) LRU** (hash map +
//!   intrusive doubly-linked list),
//! * fault / hit / eviction / migrated-byte accounting,
//! * `prefetch` mimicking `cudaMemPrefetchAsync`-style bulk hints
//!   (the paper's tuned UVM baseline uses `cudaMemAdvise`).
//!
//! The paper's two UVM pathologies fall out naturally: sparse accesses
//! drag in whole pages (amplification), and reuse distances larger than
//! capacity make LRU evict every page right before it would be reused.

use std::collections::HashMap;

use crate::device::UvmModel;

/// Page identifier (byte address / page size).
pub type PageId = u64;

/// UVM access/migration counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UvmStats {
    /// Accesses that found the page resident.
    pub hits: u64,
    /// Page faults (demand migrations).
    pub faults: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Bytes migrated host→device (faults + prefetches).
    pub migrated_bytes: u64,
    /// Bytes migrated via prefetch hints only.
    pub prefetched_bytes: u64,
}

/// Intrusive LRU list node.
#[derive(Clone, Copy, Debug)]
struct Node {
    page: PageId,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// O(1) LRU set of pages with bounded capacity.
struct LruSet {
    map: HashMap<PageId, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruSet {
    fn new() -> Self {
        LruSet {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    fn detach(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Mark `page` most-recently-used; returns false if absent.
    fn touch(&mut self, page: PageId) -> bool {
        match self.map.get(&page).copied() {
            None => false,
            Some(idx) => {
                if self.head != idx {
                    self.detach(idx);
                    self.push_front(idx);
                }
                true
            }
        }
    }

    /// Insert `page` as most-recently-used (must not be present).
    fn insert(&mut self, page: PageId) {
        debug_assert!(!self.contains(page));
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    page,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    page,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(page, idx);
        self.push_front(idx);
    }

    /// Remove and return the least-recently-used page.
    fn pop_lru(&mut self) -> Option<PageId> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let page = self.nodes[idx].page;
        self.detach(idx);
        self.map.remove(&page);
        self.free.push(idx);
        Some(page)
    }
}

/// The UVM space for one host allocation (the edge array).
pub struct Uvm {
    model: UvmModel,
    capacity_pages: usize,
    lru: LruSet,
    /// Counters.
    pub stats: UvmStats,
}

impl Uvm {
    /// UVM over a device with `capacity_bytes` available for migrated pages.
    pub fn new(model: UvmModel, capacity_bytes: u64) -> Self {
        let capacity_pages = (capacity_bytes / model.page_bytes).max(1) as usize;
        Uvm {
            model,
            capacity_pages,
            lru: LruSet::new(),
            stats: UvmStats::default(),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.model.page_bytes
    }

    /// Resident-set capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.lru.len()
    }

    /// Whether `page` is resident (does not touch recency).
    pub fn is_resident(&self, page: PageId) -> bool {
        self.lru.contains(page)
    }

    /// GPU touches `page`. On a hit, recency is refreshed and 0 ns is
    /// charged. On a fault the page is migrated (evicting LRU if full) and
    /// the fault-service time is returned.
    pub fn touch(&mut self, page: PageId) -> u64 {
        if self.lru.touch(page) {
            self.stats.hits += 1;
            return 0;
        }
        self.stats.faults += 1;
        self.stats.migrated_bytes += self.model.page_bytes;
        if self.lru.len() >= self.capacity_pages {
            self.lru.pop_lru();
            self.stats.evictions += 1;
        }
        self.lru.insert(page);
        self.model.fault_in_ns()
    }

    /// Touch the page containing byte address `addr`.
    pub fn touch_addr(&mut self, addr: u64) -> u64 {
        self.touch(addr / self.model.page_bytes)
    }

    /// Bulk prefetch hint (`cudaMemPrefetchAsync`-style): migrate the page
    /// range without fault stalls, at migration bandwidth. Returns the
    /// charged time. Pages already resident are skipped.
    pub fn prefetch(&mut self, pages: std::ops::Range<PageId>) -> u64 {
        let mut migrated = 0u64;
        for p in pages {
            if self.lru.touch(p) {
                continue;
            }
            if self.lru.len() >= self.capacity_pages {
                self.lru.pop_lru();
                self.stats.evictions += 1;
            }
            self.lru.insert(p);
            migrated += self.model.page_bytes;
        }
        self.stats.migrated_bytes += migrated;
        self.stats.prefetched_bytes += migrated;
        crate::time::ns_for_bytes(migrated, self.model.bandwidth_bps)
    }

    /// Drop every resident page (e.g. `cudaMemAdvise` un-set / reset
    /// between algorithm runs).
    pub fn evict_all(&mut self) {
        while self.lru.pop_lru().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> UvmModel {
        UvmModel {
            page_bytes: 1024,
            fault_ns: 10_000,
            bandwidth_bps: 1_000_000_000,
        }
    }

    #[test]
    fn fault_then_hit() {
        let mut u = Uvm::new(model(), 10 * 1024);
        let t1 = u.touch(3);
        assert!(t1 > 0);
        assert_eq!(u.stats.faults, 1);
        let t2 = u.touch(3);
        assert_eq!(t2, 0);
        assert_eq!(u.stats.hits, 1);
        assert!(u.is_resident(3));
        assert_eq!(u.resident_pages(), 1);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut u = Uvm::new(model(), 3 * 1024); // 3 pages
        u.touch(0);
        u.touch(1);
        u.touch(2);
        u.touch(0); // refresh 0; LRU is now 1
        u.touch(3); // evicts 1
        assert!(u.is_resident(0));
        assert!(!u.is_resident(1));
        assert!(u.is_resident(2));
        assert!(u.is_resident(3));
        assert_eq!(u.stats.evictions, 1);
    }

    #[test]
    fn thrash_on_cyclic_scan_larger_than_capacity() {
        // The paper's core observation: a sequential scan with reuse
        // distance > capacity gets zero hits from LRU.
        let mut u = Uvm::new(model(), 4 * 1024); // 4 pages
        for _round in 0..3 {
            for p in 0..8 {
                u.touch(p);
            }
        }
        assert_eq!(
            u.stats.hits, 0,
            "LRU must thrash on cyclic oversubscribed scan"
        );
        assert_eq!(u.stats.faults, 24);
    }

    #[test]
    fn touch_addr_maps_to_page() {
        let mut u = Uvm::new(model(), 10 * 1024);
        u.touch_addr(0);
        u.touch_addr(1023);
        u.touch_addr(1024);
        assert_eq!(u.stats.faults, 2);
        assert_eq!(u.stats.hits, 1);
    }

    #[test]
    fn prefetch_is_cheaper_per_byte_than_faulting() {
        let mut a = Uvm::new(model(), 64 * 1024);
        let mut b = Uvm::new(model(), 64 * 1024);
        let t_prefetch = a.prefetch(0..16);
        let t_faults: u64 = (0..16).map(|p| b.touch(p)).sum();
        assert!(t_prefetch < t_faults);
        assert_eq!(a.stats.prefetched_bytes, 16 * 1024);
        assert_eq!(a.resident_pages(), b.resident_pages());
    }

    #[test]
    fn prefetch_skips_resident() {
        let mut u = Uvm::new(model(), 64 * 1024);
        u.touch(5);
        let migrated_before = u.stats.migrated_bytes;
        u.prefetch(5..6);
        assert_eq!(u.stats.migrated_bytes, migrated_before);
    }

    #[test]
    fn evict_all_clears() {
        let mut u = Uvm::new(model(), 64 * 1024);
        u.touch(1);
        u.touch(2);
        u.evict_all();
        assert_eq!(u.resident_pages(), 0);
        assert!(!u.is_resident(1));
    }

    #[test]
    fn lru_set_reuses_freed_slots() {
        let mut u = Uvm::new(model(), 2 * 1024); // 2 pages
        for p in 0..100 {
            u.touch(p);
        }
        // internal nodes vec shouldn't grow unbounded: len == capacity + freed
        assert!(u.lru.nodes.len() <= 3, "nodes: {}", u.lru.nodes.len());
    }

    #[test]
    fn single_page_capacity() {
        let mut u = Uvm::new(model(), 100); // rounds up to 1 page
        assert_eq!(u.capacity_pages(), 1);
        u.touch(0);
        u.touch(1);
        assert_eq!(u.resident_pages(), 1);
        assert!(u.is_resident(1));
    }
}
