//! The assembled simulated GPU.
//!
//! [`Gpu`] bundles the arena, the timeline and the counters behind the
//! operations every system needs:
//!
//! * `h2d` / `h2d_at` — copy host words into a device allocation, charging
//!   the PCIe model on the COPY engine,
//! * `kernel_at` — charge a kernel of given edge/vertex work on the COMPUTE
//!   engine,
//! * `gather_at` — charge a host-side gather on the CPU engine,
//! * `alloc` / `free` — arena management.
//!
//! Systems call the `_at` variants with explicit ready-times to express
//! dependency structure (and hence overlap); the plain variants chain after
//! "everything so far" (a full barrier), which is how the non-overlapping
//! baselines behave.

use crate::device::DeviceConfig;
use crate::memory::{DevPtr, DeviceMemory, OutOfDeviceMemory};
use crate::metrics::{KernelStats, XferStats};
use crate::time::SimTime;
use crate::timeline::{Engine, Span, Timeline};
use ascetic_obs::{Event, Obs, XferDir};

/// A simulated GPU with its host-side engines.
///
/// ```
/// use ascetic_sim::{DeviceConfig, Gpu, SimTime};
/// let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
/// let buf = gpu.alloc(4).unwrap();
/// // a kernel and a copy issued with the same ready-time overlap
/// let k = gpu.kernel_at(1_000_000, 0, SimTime::ZERO);
/// let c = gpu.h2d_at(buf, &[1, 2, 3, 4], SimTime::ZERO);
/// assert_eq!(k.start, c.start);
/// assert_eq!(gpu.mem.words(buf), &[1, 2, 3, 4]); // data really moved
/// assert_eq!(gpu.xfer.h2d_bytes, 16);            // and was accounted
/// ```
pub struct Gpu {
    /// Static configuration / cost models.
    pub config: DeviceConfig,
    /// Device-memory arena.
    pub mem: DeviceMemory,
    /// Engine timeline.
    pub timeline: Timeline,
    /// Transfer counters.
    pub xfer: XferStats,
    /// Kernel counters.
    pub kernels: KernelStats,
    /// Telemetry bundle: live metric registry plus optional event log
    /// (enable with `obs.enable_events`; off by default).
    pub obs: Obs,
}

impl Gpu {
    /// A fresh device with span tracing enabled (Chrome-trace export).
    pub fn new_traced(config: DeviceConfig) -> Self {
        let mut g = Self::new(config);
        g.timeline.enable_tracing();
        g
    }

    /// A fresh device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        Gpu {
            mem: DeviceMemory::new(config.mem_words()),
            timeline: Timeline::new(),
            xfer: XferStats::default(),
            kernels: KernelStats::default(),
            obs: Obs::new(),
            config,
        }
    }

    /// Allocate device words, advancing the allocator high-water telemetry
    /// when the peak rises.
    pub fn alloc(&mut self, words: usize) -> Result<DevPtr, OutOfDeviceMemory> {
        let before = self.mem.high_water();
        let ptr = self.mem.alloc(words)?;
        if self.mem.high_water() > before {
            let bytes = self.mem.high_water() as u64 * 4;
            self.obs.registry.gauge_max("mem.high_water_bytes", bytes);
            let now = self.timeline.now().0;
            self.obs.record(now, Event::HighWater { bytes });
        }
        Ok(ptr)
    }

    /// Free a device allocation.
    pub fn free(&mut self, ptr: DevPtr) {
        self.mem.free(ptr);
    }

    /// H2D copy of `src` into `dst`, ready at `ready`. Copies the payload
    /// and charges `pcie.transfer_ns` on the COPY engine.
    pub fn h2d_at(&mut self, dst: DevPtr, src: &[u32], ready: SimTime) -> Span {
        self.mem.write(dst, src);
        let bytes = (src.len() * 4) as u64;
        self.xfer.h2d_bytes += bytes;
        self.xfer.h2d_ops += 1;
        self.obs.registry.observe("h2d.op_bytes", bytes);
        let span = self.timeline.schedule_labeled(
            Engine::Copy,
            ready,
            self.config.pcie.transfer_ns(bytes),
            || format!("H2D {bytes}B"),
        );
        self.obs.record(
            span.start.0,
            Event::Dma {
                dir: XferDir::H2d,
                bytes,
                dur_ns: span.duration(),
            },
        );
        span
    }

    /// H2D copy chained after everything scheduled so far.
    pub fn h2d(&mut self, dst: DevPtr, src: &[u32]) -> Span {
        let now = self.timeline.now();
        self.h2d_at(dst, src, now)
    }

    /// D2H copy of `src` into `dst`, ready at `ready`.
    pub fn d2h_at(&mut self, src: DevPtr, dst: &mut [u32], ready: SimTime) -> Span {
        self.mem.read(src, dst);
        let bytes = (dst.len() * 4) as u64;
        self.xfer.d2h_bytes += bytes;
        self.xfer.d2h_ops += 1;
        self.obs.registry.observe("d2h.op_bytes", bytes);
        let span = self.timeline.schedule_labeled(
            Engine::Copy,
            ready,
            self.config.pcie.transfer_ns(bytes),
            || format!("D2H {bytes}B"),
        );
        self.obs.record(
            span.start.0,
            Event::Dma {
                dir: XferDir::D2h,
                bytes,
                dur_ns: span.duration(),
            },
        );
        span
    }

    /// Charge a kernel of `edges`/`vertices` work on the COMPUTE engine,
    /// ready at `ready`. The caller runs the actual computation on host
    /// threads; this records its simulated cost.
    pub fn kernel_at(&mut self, edges: u64, vertices: u64, ready: SimTime) -> Span {
        let dur = self.config.kernel.kernel_ns(edges, vertices);
        self.kernels.launches += 1;
        self.kernels.edges += edges;
        self.kernels.vertices += vertices;
        self.kernels.time_ns += dur;
        self.obs.registry.observe("kernel.ns", dur);
        let span = self
            .timeline
            .schedule_labeled(Engine::Compute, ready, dur, || {
                format!("kernel e={edges} v={vertices}")
            });
        if self.obs.events_enabled() {
            self.obs.record(
                span.start.0,
                Event::Kernel {
                    label: format!("e={edges} v={vertices}"),
                    edges,
                    dur_ns: span.duration(),
                },
            );
        }
        span
    }

    /// Charge a host gather of `bytes` over `vertices` adjacency lists on
    /// the CPU engine, ready at `ready`.
    pub fn gather_at(&mut self, bytes: u64, vertices: u64, ready: SimTime) -> Span {
        let dur = self.config.gather.gather_ns(bytes, vertices);
        self.obs.registry.observe("gather.ns", dur);
        let span = self.timeline.schedule_labeled(Engine::Cpu, ready, dur, || {
            format!("gather {bytes}B / {vertices} vertices")
        });
        self.obs.record(
            span.start.0,
            Event::Gather {
                bytes,
                dur_ns: span.duration(),
            },
        );
        span
    }

    /// End-of-iteration barrier; returns the iteration finish time.
    pub fn sync(&mut self) -> SimTime {
        self.timeline.sync_all()
    }

    /// Total simulated run time so far.
    pub fn elapsed(&self) -> SimTime {
        self.timeline.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_gpu() -> Gpu {
        Gpu::new(DeviceConfig::p100(4096)) // 1024 words
    }

    #[test]
    fn h2d_moves_real_data_and_charges_time() {
        let mut g = small_gpu();
        let p = g.alloc(4).unwrap();
        let s = g.h2d(p, &[7, 8, 9, 10]);
        assert_eq!(g.mem.words(p), &[7, 8, 9, 10]);
        assert_eq!(g.xfer.h2d_bytes, 16);
        assert_eq!(g.xfer.h2d_ops, 1);
        assert!(s.duration() >= g.config.pcie.latency_ns);
    }

    #[test]
    fn d2h_roundtrip() {
        let mut g = small_gpu();
        let p = g.alloc(3).unwrap();
        g.h2d(p, &[1, 2, 3]);
        let mut out = [0u32; 3];
        g.d2h_at(p, &mut out, g.elapsed());
        assert_eq!(out, [1, 2, 3]);
        assert_eq!(g.xfer.d2h_bytes, 12);
    }

    #[test]
    fn kernel_accounting() {
        let mut g = small_gpu();
        let s = g.kernel_at(1000, 10, SimTime::ZERO);
        assert_eq!(g.kernels.launches, 1);
        assert_eq!(g.kernels.edges, 1000);
        assert_eq!(g.kernels.time_ns, s.duration());
    }

    #[test]
    fn copy_compute_overlap() {
        let mut g = small_gpu();
        let p = g.alloc(1000).unwrap();
        let data = vec![0u32; 1000];
        // Issue a kernel and a copy with the same ready time: they overlap.
        let k = g.kernel_at(10_000_000, 0, SimTime::ZERO); // ~2.5 ms
        let c = g.h2d_at(p, &data, SimTime::ZERO);
        assert_eq!(k.start, c.start);
        assert_eq!(g.elapsed(), k.end.max(c.end));
        assert!(g.elapsed() < SimTime(k.duration() + c.duration()));
    }

    #[test]
    fn sequential_dependencies_serialize() {
        let mut g = small_gpu();
        let p = g.alloc(256).unwrap();
        let data = vec![1u32; 256];
        let gth = g.gather_at(1024, 256, SimTime::ZERO);
        let cp = g.h2d_at(p, &data, gth.end);
        let k = g.kernel_at(256, 256, cp.end);
        assert!(gth.end <= cp.start);
        assert!(cp.end <= k.start);
        let idle = g.timeline.idle_ns(Engine::Compute);
        assert_eq!(idle, g.elapsed().0 - k.duration());
    }

    #[test]
    fn obs_histograms_track_xfer_counters() {
        let mut g = small_gpu();
        let p = g.alloc(8).unwrap();
        g.h2d(p, &[0; 8]);
        g.h2d(p, &[1; 8]);
        let mut out = [0u32; 8];
        g.d2h_at(p, &mut out, g.elapsed());
        let snap = g.obs.registry.snapshot();
        let h2d = snap.histogram("h2d.op_bytes").unwrap();
        assert_eq!(h2d.count(), g.xfer.h2d_ops);
        assert_eq!(h2d.sum(), g.xfer.h2d_bytes);
        let d2h = snap.histogram("d2h.op_bytes").unwrap();
        assert_eq!(d2h.count(), g.xfer.d2h_ops);
        assert_eq!(d2h.sum(), g.xfer.d2h_bytes);
    }

    #[test]
    fn obs_events_record_dma_and_high_water() {
        let mut g = small_gpu();
        g.obs.enable_events(64);
        let p = g.alloc(8).unwrap();
        g.h2d(p, &[0; 8]);
        let events = g.obs.events().unwrap();
        let kinds: Vec<&str> = events.iter().map(|e| e.event.kind()).collect();
        assert!(kinds.contains(&"high_water"));
        assert!(kinds.contains(&"dma"));
        assert_eq!(
            g.obs.registry.snapshot().gauge("mem.high_water_bytes"),
            Some(32)
        );
    }

    #[test]
    fn obs_events_off_by_default() {
        let mut g = small_gpu();
        let p = g.alloc(8).unwrap();
        g.h2d(p, &[0; 8]);
        assert!(g.obs.events().is_none());
    }

    #[test]
    fn sync_sets_iteration_boundary() {
        let mut g = small_gpu();
        g.kernel_at(100, 0, SimTime::ZERO);
        let t = g.sync();
        let k2 = g.kernel_at(100, 0, SimTime::ZERO);
        assert!(k2.start >= t);
    }
}
