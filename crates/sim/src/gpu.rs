//! The assembled simulated GPU.
//!
//! [`Gpu`] bundles the arena, the timeline and the counters behind the
//! operations every system needs:
//!
//! * `h2d` / `h2d_at` — copy host words into a device allocation, charging
//!   the PCIe model on the COPY engine,
//! * `kernel_at` — charge a kernel of given edge/vertex work on the COMPUTE
//!   engine,
//! * `gather_at` — charge a host-side gather on the CPU engine,
//! * `alloc` / `free` — arena management.
//!
//! Systems call the `_at` variants with explicit ready-times to express
//! dependency structure (and hence overlap); the plain variants chain after
//! "everything so far" (a full barrier), which is how the non-overlapping
//! baselines behave.

use crate::device::DeviceConfig;
use crate::memory::{DevPtr, DeviceMemory, OutOfDeviceMemory};
use crate::metrics::{KernelStats, XferStats};
use crate::time::SimTime;
use crate::timeline::{CopyStream, Engine, Span, Timeline};
use ascetic_obs::{Event, Obs, XferDir};

/// A simulated GPU with its host-side engines.
///
/// ```
/// use ascetic_sim::{DeviceConfig, Gpu, SimTime};
/// let mut gpu = Gpu::new(DeviceConfig::p100(1 << 20));
/// let buf = gpu.alloc(4).unwrap();
/// // a kernel and a copy issued with the same ready-time overlap
/// let k = gpu.kernel_at(1_000_000, 0, SimTime::ZERO);
/// let c = gpu.h2d_at(buf, &[1, 2, 3, 4], SimTime::ZERO);
/// assert_eq!(k.start, c.start);
/// assert_eq!(gpu.mem.words(buf), &[1, 2, 3, 4]); // data really moved
/// assert_eq!(gpu.xfer.h2d_bytes, 16);            // and was accounted
/// ```
pub struct Gpu {
    /// Static configuration / cost models.
    pub config: DeviceConfig,
    /// Device-memory arena.
    pub mem: DeviceMemory,
    /// Engine timeline.
    pub timeline: Timeline,
    /// Transfer counters.
    pub xfer: XferStats,
    /// Kernel counters.
    pub kernels: KernelStats,
    /// Telemetry bundle: live metric registry plus optional event log
    /// (enable with `obs.enable_events`; off by default).
    pub obs: Obs,
    /// Lazily-minted second copy stream for speculative transfers.
    prefetch_stream: Option<CopyStream>,
}

impl Gpu {
    /// A fresh device with span tracing enabled (Chrome-trace export).
    pub fn new_traced(config: DeviceConfig) -> Self {
        let mut g = Self::new(config);
        g.timeline.enable_tracing();
        g
    }

    /// A fresh device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        Gpu {
            mem: DeviceMemory::new(config.mem_words()),
            timeline: Timeline::new(),
            xfer: XferStats::default(),
            kernels: KernelStats::default(),
            obs: Obs::new(),
            prefetch_stream: None,
            config,
        }
    }

    /// The dedicated prefetch copy stream, minted on first use. Operations
    /// issued through it ([`Gpu::prefetch_dma_at`]) queue FIFO among
    /// themselves but share the one physical link with the default stream
    /// (see [`crate::timeline::CopyStream`]).
    pub fn stream(&mut self) -> CopyStream {
        match self.prefetch_stream {
            Some(s) => s,
            None => {
                let s = self.timeline.add_copy_stream();
                self.prefetch_stream = Some(s);
                s
            }
        }
    }

    /// Speculative H2D refresh of `bytes` for `chunk` on the prefetch
    /// stream, ready at `ready`. The caller moves the payload itself (the
    /// static region's data-plane load/swap); this charges the link time
    /// on the second stream and accounts the bytes as prefetch traffic
    /// (`h2d_prefetch_bytes` rides inside `h2d_bytes`). Prefetches always
    /// ship raw: decoding would steal the compute engine the pipeline is
    /// trying to keep busy.
    pub fn prefetch_dma_at(&mut self, chunk: u64, bytes: u64, ready: SimTime) -> Span {
        let stream = self.stream();
        self.xfer.h2d_bytes += bytes;
        self.xfer.h2d_wire_bytes += bytes;
        self.xfer.h2d_prefetch_bytes += bytes;
        self.xfer.h2d_ops += 1;
        self.obs.registry.observe("h2d.op_bytes", bytes);
        let span =
            self.timeline
                .schedule_copy(stream, ready, self.config.pcie.transfer_ns(bytes), || {
                    format!("prefetch chunk {chunk} ({bytes}B)")
                });
        self.obs.record(
            span.start.0,
            Event::PrefetchDma {
                chunk,
                bytes,
                dur_ns: span.duration(),
            },
        );
        span
    }

    /// Allocate device words, advancing the allocator high-water telemetry
    /// when the peak rises.
    pub fn alloc(&mut self, words: usize) -> Result<DevPtr, OutOfDeviceMemory> {
        let before = self.mem.high_water();
        let ptr = self.mem.alloc(words)?;
        if self.mem.high_water() > before {
            let bytes = self.mem.high_water() as u64 * 4;
            self.obs.registry.gauge_max("mem.high_water_bytes", bytes);
            let now = self.timeline.now().0;
            self.obs.record(now, Event::HighWater { bytes });
        }
        Ok(ptr)
    }

    /// Free a device allocation.
    pub fn free(&mut self, ptr: DevPtr) {
        self.mem.free(ptr);
    }

    /// H2D copy of `src` into `dst`, ready at `ready`. Copies the payload
    /// and charges `pcie.transfer_ns` on the COPY engine.
    pub fn h2d_at(&mut self, dst: DevPtr, src: &[u32], ready: SimTime) -> Span {
        self.mem.write(dst, src);
        let bytes = (src.len() * 4) as u64;
        self.xfer.h2d_bytes += bytes;
        self.xfer.h2d_wire_bytes += bytes;
        self.xfer.h2d_ops += 1;
        self.obs.registry.observe("h2d.op_bytes", bytes);
        let span = self.timeline.schedule_labeled(
            Engine::Copy,
            ready,
            self.config.pcie.transfer_ns(bytes),
            || format!("H2D {bytes}B"),
        );
        self.obs.record(
            span.start.0,
            Event::Dma {
                dir: XferDir::H2d,
                bytes,
                dur_ns: span.duration(),
            },
        );
        span
    }

    /// H2D copy chained after everything scheduled so far.
    pub fn h2d(&mut self, dst: DevPtr, src: &[u32]) -> Span {
        let now = self.timeline.now();
        self.h2d_at(dst, src, now)
    }

    /// Compressed H2D copy: ship `encoded` over the link, decode into
    /// `decoded` on the compute engine. Returns `(copy, decompress)` spans;
    /// the payload is usable at `decompress.end`.
    ///
    /// The encoded bytes really land in `dst`'s word window first (a true
    /// byte copy of the wire payload), then the decoded words overwrite
    /// them — modelling an in-place decompression kernel. Only the encoded
    /// size is charged on the COPY engine; the decode cost is charged on
    /// the COMPUTE engine starting when the copy completes.
    pub fn h2d_compressed_at(
        &mut self,
        dst: DevPtr,
        decoded: &[u32],
        encoded: &[u8],
        ready: SimTime,
    ) -> (Span, Span) {
        let wire = encoded.len() as u64;
        let raw = (decoded.len() * 4) as u64;
        // Land the encoded stream in the destination window. `Always` mode
        // may inflate a payload past its raw size; the landing copy is then
        // clipped to the window (the link still pays for every wire byte).
        debug_assert_eq!(decoded.len(), dst.len, "payload must fill the window");
        let mut landing = vec![0u32; encoded.len().div_ceil(4).min(decoded.len())];
        for (w, chunk) in landing.iter_mut().zip(encoded.chunks(4)) {
            let mut b = [0u8; 4];
            b[..chunk.len()].copy_from_slice(chunk);
            *w = u32::from_le_bytes(b);
        }
        self.mem.write(dst.slice(0, landing.len()), &landing);
        let copy = self.timeline.schedule_labeled(
            Engine::Copy,
            ready,
            self.config.pcie.transfer_ns(wire),
            || format!("H2D {wire}B (compressed, {raw}B raw)"),
        );
        let dec = self.timeline.schedule_labeled(
            Engine::Compute,
            copy.end,
            self.config.decompress.decompress_ns(raw),
            || format!("decompress {raw}B"),
        );
        self.mem.write(dst, decoded);
        self.xfer.h2d_bytes += raw;
        self.xfer.h2d_wire_bytes += wire;
        self.xfer.h2d_ops += 1;
        self.obs.registry.observe("h2d.op_bytes", raw);
        self.obs.registry.observe("h2d.op_wire_bytes", wire);
        self.obs.record(
            copy.start.0,
            Event::CompressedDma {
                raw_bytes: raw,
                wire_bytes: wire,
                dur_ns: copy.duration(),
                decompress_ns: dec.duration(),
            },
        );
        (copy, dec)
    }

    /// D2H copy of `src` into `dst`, ready at `ready`.
    pub fn d2h_at(&mut self, src: DevPtr, dst: &mut [u32], ready: SimTime) -> Span {
        self.mem.read(src, dst);
        let bytes = (dst.len() * 4) as u64;
        self.xfer.d2h_bytes += bytes;
        self.xfer.d2h_ops += 1;
        self.obs.registry.observe("d2h.op_bytes", bytes);
        let span = self.timeline.schedule_labeled(
            Engine::Copy,
            ready,
            self.config.pcie.transfer_ns(bytes),
            || format!("D2H {bytes}B"),
        );
        self.obs.record(
            span.start.0,
            Event::Dma {
                dir: XferDir::D2h,
                bytes,
                dur_ns: span.duration(),
            },
        );
        span
    }

    /// Charge a kernel of `edges`/`vertices` work on the COMPUTE engine,
    /// ready at `ready`. The caller runs the actual computation on host
    /// threads; this records its simulated cost.
    pub fn kernel_at(&mut self, edges: u64, vertices: u64, ready: SimTime) -> Span {
        let dur = self.config.kernel.kernel_ns(edges, vertices);
        self.kernels.launches += 1;
        self.kernels.edges += edges;
        self.kernels.vertices += vertices;
        self.kernels.time_ns += dur;
        self.obs.registry.observe("kernel.ns", dur);
        let span = self
            .timeline
            .schedule_labeled(Engine::Compute, ready, dur, || {
                format!("kernel e={edges} v={vertices}")
            });
        if self.obs.events_enabled() {
            self.obs.record(
                span.start.0,
                Event::Kernel {
                    label: format!("e={edges} v={vertices}"),
                    edges,
                    dur_ns: span.duration(),
                },
            );
        }
        span
    }

    /// Charge a pull-direction (gather) kernel of `edges`/`vertices` work
    /// on the COMPUTE engine, ready at `ready`. Identical accounting to
    /// [`Gpu::kernel_at`] but costed with the pull kernel model — gather
    /// kernels pay more per in-edge for their scattered parent reads.
    pub fn pull_kernel_at(&mut self, edges: u64, vertices: u64, ready: SimTime) -> Span {
        let dur = self.config.pull_kernel.kernel_ns(edges, vertices);
        self.kernels.launches += 1;
        self.kernels.edges += edges;
        self.kernels.vertices += vertices;
        self.kernels.time_ns += dur;
        self.obs.registry.observe("kernel.ns", dur);
        let span = self
            .timeline
            .schedule_labeled(Engine::Compute, ready, dur, || {
                format!("pull kernel e={edges} v={vertices}")
            });
        if self.obs.events_enabled() {
            self.obs.record(
                span.start.0,
                Event::Kernel {
                    label: format!("pull e={edges} v={vertices}"),
                    edges,
                    dur_ns: span.duration(),
                },
            );
        }
        span
    }

    /// Charge a host gather of `bytes` over `vertices` adjacency lists on
    /// the CPU engine, ready at `ready`.
    pub fn gather_at(&mut self, bytes: u64, vertices: u64, ready: SimTime) -> Span {
        let dur = self.config.gather.gather_ns(bytes, vertices);
        self.obs.registry.observe("gather.ns", dur);
        let span = self.timeline.schedule_labeled(Engine::Cpu, ready, dur, || {
            format!("gather {bytes}B / {vertices} vertices")
        });
        self.obs.record(
            span.start.0,
            Event::Gather {
                bytes,
                dur_ns: span.duration(),
            },
        );
        span
    }

    /// End-of-iteration barrier; returns the iteration finish time.
    pub fn sync(&mut self) -> SimTime {
        self.timeline.sync_all()
    }

    /// Total simulated run time so far.
    pub fn elapsed(&self) -> SimTime {
        self.timeline.now()
    }

    /// Snapshot of the device arena's occupancy in bytes.
    pub fn occupancy(&self) -> crate::memory::ArenaOccupancy {
        self.mem.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_gpu() -> Gpu {
        Gpu::new(DeviceConfig::p100(4096)) // 1024 words
    }

    #[test]
    fn h2d_moves_real_data_and_charges_time() {
        let mut g = small_gpu();
        let p = g.alloc(4).unwrap();
        let s = g.h2d(p, &[7, 8, 9, 10]);
        assert_eq!(g.mem.words(p), &[7, 8, 9, 10]);
        assert_eq!(g.xfer.h2d_bytes, 16);
        assert_eq!(g.xfer.h2d_ops, 1);
        assert!(s.duration() >= g.config.pcie.latency_ns);
    }

    #[test]
    fn d2h_roundtrip() {
        let mut g = small_gpu();
        let p = g.alloc(3).unwrap();
        g.h2d(p, &[1, 2, 3]);
        let mut out = [0u32; 3];
        g.d2h_at(p, &mut out, g.elapsed());
        assert_eq!(out, [1, 2, 3]);
        assert_eq!(g.xfer.d2h_bytes, 12);
    }

    #[test]
    fn kernel_accounting() {
        let mut g = small_gpu();
        let s = g.kernel_at(1000, 10, SimTime::ZERO);
        assert_eq!(g.kernels.launches, 1);
        assert_eq!(g.kernels.edges, 1000);
        assert_eq!(g.kernels.time_ns, s.duration());
    }

    #[test]
    fn pull_kernel_accounting_uses_its_own_model() {
        let mut g = small_gpu();
        let s = g.pull_kernel_at(1000, 10, SimTime::ZERO);
        assert_eq!(g.kernels.launches, 1);
        assert_eq!(g.kernels.edges, 1000);
        assert_eq!(g.kernels.time_ns, s.duration());
        assert_eq!(s.duration(), g.config.pull_kernel.kernel_ns(1000, 10));
        assert!(s.duration() > g.config.kernel.kernel_ns(1000, 10));
    }

    #[test]
    fn copy_compute_overlap() {
        let mut g = small_gpu();
        let p = g.alloc(1000).unwrap();
        let data = vec![0u32; 1000];
        // Issue a kernel and a copy with the same ready time: they overlap.
        let k = g.kernel_at(10_000_000, 0, SimTime::ZERO); // ~2.5 ms
        let c = g.h2d_at(p, &data, SimTime::ZERO);
        assert_eq!(k.start, c.start);
        assert_eq!(g.elapsed(), k.end.max(c.end));
        assert!(g.elapsed() < SimTime(k.duration() + c.duration()));
    }

    #[test]
    fn sequential_dependencies_serialize() {
        let mut g = small_gpu();
        let p = g.alloc(256).unwrap();
        let data = vec![1u32; 256];
        let gth = g.gather_at(1024, 256, SimTime::ZERO);
        let cp = g.h2d_at(p, &data, gth.end);
        let k = g.kernel_at(256, 256, cp.end);
        assert!(gth.end <= cp.start);
        assert!(cp.end <= k.start);
        let idle = g.timeline.idle_ns(Engine::Compute);
        assert_eq!(idle, g.elapsed().0 - k.duration());
    }

    #[test]
    fn obs_histograms_track_xfer_counters() {
        let mut g = small_gpu();
        let p = g.alloc(8).unwrap();
        g.h2d(p, &[0; 8]);
        g.h2d(p, &[1; 8]);
        let mut out = [0u32; 8];
        g.d2h_at(p, &mut out, g.elapsed());
        let snap = g.obs.registry.snapshot();
        let h2d = snap.histogram("h2d.op_bytes").unwrap();
        assert_eq!(h2d.count(), g.xfer.h2d_ops);
        assert_eq!(h2d.sum(), g.xfer.h2d_bytes);
        let d2h = snap.histogram("d2h.op_bytes").unwrap();
        assert_eq!(d2h.count(), g.xfer.d2h_ops);
        assert_eq!(d2h.sum(), g.xfer.d2h_bytes);
    }

    #[test]
    fn compressed_h2d_charges_wire_bytes_and_decompress_time() {
        let mut g = small_gpu();
        let p = g.alloc(8).unwrap();
        let decoded = [1u32, 2, 3, 4, 5, 6, 7, 8]; // 32 raw bytes
        let encoded = [9u8; 10]; // 10 wire bytes
        let (copy, dec) = g.h2d_compressed_at(p, &decoded, &encoded, SimTime::ZERO);
        // payload accounting: logical bytes stay raw, wire bytes shrink
        assert_eq!(g.xfer.h2d_bytes, 32);
        assert_eq!(g.xfer.h2d_wire_bytes, 10);
        assert_eq!(g.xfer.h2d_ops, 1);
        // the link was charged for the encoded size only
        assert_eq!(copy.duration(), g.config.pcie.transfer_ns(10));
        // decompression runs on the compute engine after the copy
        assert_eq!(dec.duration(), g.config.decompress.decompress_ns(32));
        assert!(dec.start >= copy.end);
        // the decoded payload is what ends up in device memory
        assert_eq!(g.mem.words(p), &decoded);
    }

    #[test]
    fn compressed_h2d_mixes_with_raw_in_wire_totals() {
        let mut g = small_gpu();
        let p = g.alloc(8).unwrap();
        g.h2d(p, &[0; 8]); // raw: 32 payload == 32 wire
        let t = g.elapsed();
        g.h2d_compressed_at(p, &[0; 8], &[0; 12], t);
        assert_eq!(g.xfer.h2d_bytes, 64);
        assert_eq!(g.xfer.h2d_wire_bytes, 44);
        assert_eq!(g.xfer.total_bytes(), 64);
        assert_eq!(g.xfer.total_wire_bytes(), 44);
        // op_bytes histogram still tracks logical payload exactly
        let snap = g.obs.registry.snapshot();
        let h = snap.histogram("h2d.op_bytes").unwrap();
        assert_eq!(h.count(), g.xfer.h2d_ops);
        assert_eq!(h.sum(), g.xfer.h2d_bytes);
    }

    #[test]
    fn compressed_h2d_emits_event() {
        let mut g = small_gpu();
        g.obs.enable_events(64);
        let p = g.alloc(4).unwrap();
        g.h2d_compressed_at(p, &[1, 2, 3, 4], &[7, 7, 7], SimTime::ZERO);
        let events = g.obs.events().unwrap();
        assert!(events.iter().any(|e| e.event.kind() == "compressed_dma"));
    }

    #[test]
    fn obs_events_record_dma_and_high_water() {
        let mut g = small_gpu();
        g.obs.enable_events(64);
        let p = g.alloc(8).unwrap();
        g.h2d(p, &[0; 8]);
        let events = g.obs.events().unwrap();
        let kinds: Vec<&str> = events.iter().map(|e| e.event.kind()).collect();
        assert!(kinds.contains(&"high_water"));
        assert!(kinds.contains(&"dma"));
        assert_eq!(
            g.obs.registry.snapshot().gauge("mem.high_water_bytes"),
            Some(32)
        );
    }

    #[test]
    fn obs_events_off_by_default() {
        let mut g = small_gpu();
        let p = g.alloc(8).unwrap();
        g.h2d(p, &[0; 8]);
        assert!(g.obs.events().is_none());
    }

    #[test]
    fn prefetch_dma_accounts_on_the_second_stream() {
        let mut g = small_gpu();
        g.obs.enable_events(64);
        let s1 = g.stream();
        assert_eq!(g.stream(), s1, "stream is minted once");
        assert_eq!(g.timeline.num_copy_streams(), 2);
        let span = g.prefetch_dma_at(3, 4096, SimTime::ZERO);
        assert_eq!(span.duration(), g.config.pcie.transfer_ns(4096));
        assert_eq!(g.xfer.h2d_bytes, 4096);
        assert_eq!(g.xfer.h2d_wire_bytes, 4096);
        assert_eq!(g.xfer.h2d_prefetch_bytes, 4096);
        assert_eq!(g.xfer.h2d_ondemand_bytes(), 0);
        assert_eq!(g.xfer.h2d_ops, 1);
        assert_eq!(g.timeline.stream_busy_ns(s1), span.duration());
        let events = g.obs.events().unwrap();
        assert!(events.iter().any(|e| e.event.kind() == "prefetch_dma"));
    }

    #[test]
    fn prefetch_shares_the_link_with_ondemand_copies() {
        let mut g = small_gpu();
        let p = g.alloc(256).unwrap();
        let c = g.h2d_at(p, &[0u32; 256], SimTime::ZERO);
        let pf = g.prefetch_dma_at(0, 1024, SimTime::ZERO);
        assert_eq!(pf.start, c.end, "one wire: prefetch waits for the DMA");
        assert_eq!(g.xfer.h2d_ondemand_bytes(), 1024);
    }

    #[test]
    fn sync_sets_iteration_boundary() {
        let mut g = small_gpu();
        g.kernel_at(100, 0, SimTime::ZERO);
        let t = g.sync();
        let k2 = g.kernel_at(100, 0, SimTime::ZERO);
        assert!(k2.start >= t);
    }
}
