//! Device-memory arena with a first-fit free-list allocator.
//!
//! Every byte a system claims to put "on the GPU" really lives in this
//! arena, and every transfer really copies into it — so memory-capacity
//! bugs (static region too large, on-demand buffer overflow, fragmentation)
//! fail loudly instead of being silently mismodeled. The arena is
//! word-addressed (`u32`) because all edge payloads in this workspace are
//! 4-byte aligned (target ids and weights).

/// A device allocation: offset and length in words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DevPtr {
    /// Word offset into the arena.
    pub offset: usize,
    /// Length in words.
    pub len: usize,
}

impl DevPtr {
    /// Byte length of the allocation.
    pub fn len_bytes(&self) -> u64 {
        self.len as u64 * 4
    }

    /// A sub-range of this allocation (word offsets relative to it).
    pub fn slice(&self, start: usize, len: usize) -> DevPtr {
        assert!(start + len <= self.len, "slice out of allocation bounds");
        DevPtr {
            offset: self.offset + start,
            len,
        }
    }
}

/// Error: the device is out of memory (or too fragmented).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// Words requested.
    pub requested: usize,
    /// Largest free block available.
    pub largest_free: usize,
}

impl std::fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} words, largest free block {}",
            self.requested, self.largest_free
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// A point-in-time, byte-denominated view of the device arena, cheap to
/// copy out to layers that must not hold a borrow of the allocator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaOccupancy {
    /// Total arena capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes currently allocated.
    pub used_bytes: u64,
    /// Bytes currently free (possibly fragmented).
    pub free_bytes: u64,
    /// Largest single free block in bytes — the real ceiling for the next
    /// contiguous allocation.
    pub largest_free_bytes: u64,
    /// Peak concurrent allocation over the arena's lifetime, in bytes.
    pub high_water_bytes: u64,
}

/// The device-memory arena.
pub struct DeviceMemory {
    data: Vec<u32>,
    /// Free blocks as (offset, len), kept sorted by offset and coalesced.
    free: Vec<(usize, usize)>,
    used_words: usize,
    high_water_words: usize,
}

impl DeviceMemory {
    /// An arena of `capacity_words` words (all free).
    pub fn new(capacity_words: usize) -> Self {
        DeviceMemory {
            data: vec![0; capacity_words],
            free: if capacity_words > 0 {
                vec![(0, capacity_words)]
            } else {
                vec![]
            },
            used_words: 0,
            high_water_words: 0,
        }
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Currently allocated words.
    pub fn used(&self) -> usize {
        self.used_words
    }

    /// Currently free words (may be fragmented).
    pub fn available(&self) -> usize {
        self.capacity() - self.used()
    }

    /// Peak concurrently-allocated words over the arena's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water_words
    }

    /// Largest single free block, in words.
    pub fn largest_free_block(&self) -> usize {
        self.free.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }

    /// A byte-denominated snapshot of arena occupancy, for admission
    /// control and reporting above the allocator (the serve layer sizes
    /// incoming jobs against `largest_free_bytes`, not just the total).
    pub fn occupancy(&self) -> ArenaOccupancy {
        ArenaOccupancy {
            capacity_bytes: self.capacity() as u64 * 4,
            used_bytes: self.used() as u64 * 4,
            free_bytes: self.available() as u64 * 4,
            largest_free_bytes: self.largest_free_block() as u64 * 4,
            high_water_bytes: self.high_water() as u64 * 4,
        }
    }

    /// Allocate `words` words (first fit). Zero-length allocations succeed
    /// and occupy nothing.
    pub fn alloc(&mut self, words: usize) -> Result<DevPtr, OutOfDeviceMemory> {
        if words == 0 {
            return Ok(DevPtr { offset: 0, len: 0 });
        }
        for i in 0..self.free.len() {
            let (off, len) = self.free[i];
            if len >= words {
                if len == words {
                    self.free.remove(i);
                } else {
                    self.free[i] = (off + words, len - words);
                }
                self.used_words += words;
                self.high_water_words = self.high_water_words.max(self.used_words);
                return Ok(DevPtr {
                    offset: off,
                    len: words,
                });
            }
        }
        Err(OutOfDeviceMemory {
            requested: words,
            largest_free: self.largest_free_block(),
        })
    }

    /// Free an allocation returned by [`DeviceMemory::alloc`]. Coalesces
    /// with neighbors. Freeing a zero-length pointer is a no-op.
    ///
    /// # Panics
    /// Panics (debug) if the block overlaps the free list — an indicator of
    /// a double free.
    pub fn free(&mut self, ptr: DevPtr) {
        if ptr.len == 0 {
            return;
        }
        debug_assert!(ptr.offset + ptr.len <= self.capacity());
        let idx = self.free.partition_point(|&(off, _)| off < ptr.offset);
        // check overlap with neighbors
        if idx > 0 {
            let (poff, plen) = self.free[idx - 1];
            assert!(
                poff + plen <= ptr.offset,
                "double free / overlap with previous block"
            );
        }
        if idx < self.free.len() {
            let (noff, _) = self.free[idx];
            assert!(
                ptr.offset + ptr.len <= noff,
                "double free / overlap with next block"
            );
        }
        self.free.insert(idx, (ptr.offset, ptr.len));
        self.used_words -= ptr.len;
        self.coalesce_around(idx);
    }

    fn coalesce_around(&mut self, idx: usize) {
        // try merge with next
        if idx + 1 < self.free.len() {
            let (off, len) = self.free[idx];
            let (noff, nlen) = self.free[idx + 1];
            if off + len == noff {
                self.free[idx] = (off, len + nlen);
                self.free.remove(idx + 1);
            }
        }
        // try merge with previous
        if idx > 0 {
            let (poff, plen) = self.free[idx - 1];
            let (off, len) = self.free[idx];
            if poff + plen == off {
                self.free[idx - 1] = (poff, plen + len);
                self.free.remove(idx);
            }
        }
    }

    /// Read-only view of an allocation's words.
    #[inline]
    pub fn words(&self, ptr: DevPtr) -> &[u32] {
        &self.data[ptr.offset..ptr.offset + ptr.len]
    }

    /// Mutable view of an allocation's words.
    #[inline]
    pub fn words_mut(&mut self, ptr: DevPtr) -> &mut [u32] {
        &mut self.data[ptr.offset..ptr.offset + ptr.len]
    }

    /// Copy `src` into the allocation (the data-plane half of an H2D
    /// transfer; the time accounting lives in [`crate::gpu::Gpu`]).
    ///
    /// # Panics
    /// Panics if `src` does not fit `ptr` exactly.
    pub fn write(&mut self, ptr: DevPtr, src: &[u32]) {
        assert_eq!(src.len(), ptr.len, "payload size must match allocation");
        self.data[ptr.offset..ptr.offset + ptr.len].copy_from_slice(src);
    }

    /// Copy a range of the allocation out to `dst` (D2H data plane).
    pub fn read(&self, ptr: DevPtr, dst: &mut [u32]) {
        assert_eq!(dst.len(), ptr.len, "buffer size must match allocation");
        dst.copy_from_slice(&self.data[ptr.offset..ptr.offset + ptr.len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = DeviceMemory::new(100);
        let a = m.alloc(40).unwrap();
        let b = m.alloc(60).unwrap();
        assert_eq!(m.used(), 100);
        assert_eq!(m.available(), 0);
        assert!(m.alloc(1).is_err());
        m.free(a);
        assert_eq!(m.available(), 40);
        m.free(b);
        assert_eq!(m.available(), 100);
        assert_eq!(m.largest_free_block(), 100, "blocks must coalesce");
    }

    #[test]
    fn first_fit_reuses_freed_block() {
        let mut m = DeviceMemory::new(100);
        let a = m.alloc(30).unwrap();
        let _b = m.alloc(30).unwrap();
        m.free(a);
        let c = m.alloc(20).unwrap();
        assert_eq!(c.offset, 0, "first fit should reuse the hole at 0");
    }

    #[test]
    fn coalesce_middle_block() {
        let mut m = DeviceMemory::new(90);
        let a = m.alloc(30).unwrap();
        let b = m.alloc(30).unwrap();
        let c = m.alloc(30).unwrap();
        m.free(a);
        m.free(c);
        assert_eq!(m.largest_free_block(), 30);
        m.free(b);
        assert_eq!(m.largest_free_block(), 90);
    }

    #[test]
    fn fragmentation_reported() {
        let mut m = DeviceMemory::new(100);
        let a = m.alloc(40).unwrap();
        let _b = m.alloc(20).unwrap();
        let c = m.alloc(40).unwrap();
        m.free(a);
        m.free(c);
        // 80 words free but split 40/40
        assert_eq!(m.available(), 80);
        let err = m.alloc(50).unwrap_err();
        assert_eq!(err.largest_free, 40);
        assert_eq!(err.requested, 50);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut m = DeviceMemory::new(100);
        let a = m.alloc(60).unwrap();
        assert_eq!(m.high_water(), 60);
        m.free(a);
        assert_eq!(m.high_water(), 60, "peak survives frees");
        let _b = m.alloc(30).unwrap();
        assert_eq!(m.high_water(), 60, "smaller re-alloc keeps peak");
        let _c = m.alloc(40).unwrap();
        assert_eq!(m.high_water(), 70);
    }

    #[test]
    fn zero_length_alloc() {
        let mut m = DeviceMemory::new(10);
        let z = m.alloc(0).unwrap();
        assert_eq!(z.len, 0);
        m.free(z);
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn data_plane_roundtrip() {
        let mut m = DeviceMemory::new(16);
        let p = m.alloc(4).unwrap();
        m.write(p, &[1, 2, 3, 4]);
        assert_eq!(m.words(p), &[1, 2, 3, 4]);
        let mut out = [0u32; 4];
        m.read(p, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        m.words_mut(p)[2] = 99;
        assert_eq!(m.words(p), &[1, 2, 99, 4]);
    }

    #[test]
    fn slice_within_allocation() {
        let mut m = DeviceMemory::new(16);
        let p = m.alloc(8).unwrap();
        m.write(p, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let s = p.slice(2, 3);
        assert_eq!(m.words(s), &[2, 3, 4]);
        assert_eq!(s.len_bytes(), 12);
    }

    #[test]
    #[should_panic(expected = "out of allocation bounds")]
    fn slice_bounds_checked() {
        let p = DevPtr { offset: 0, len: 4 };
        p.slice(2, 3);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut m = DeviceMemory::new(10);
        let a = m.alloc(5).unwrap();
        m.free(a);
        m.free(a);
    }

    #[test]
    fn empty_arena() {
        let mut m = DeviceMemory::new(0);
        assert_eq!(m.capacity(), 0);
        assert!(m.alloc(1).is_err());
    }
}
