//! Multi-device interconnect model.
//!
//! One [`crate::Gpu`] models a single device behind a single PCIe link.
//! A fleet of N devices shares a richer fabric: every device keeps its own
//! PCIe link to the host, but all those links converge on one **root
//! complex** whose aggregate bandwidth is finite — and devices may
//! additionally be joined by **NVLink-class peer links** that bypass the
//! host entirely. The [`Interconnect`] arbitrates device-to-device
//! transfers on the same virtual clock the per-device timelines use:
//! every call is pure integer arithmetic over link frontiers, so a given
//! sequence of transfers produces identical times on every run and host.
//!
//! Two paths exist for a `src → dst` transfer:
//!
//! * **peer** — when a peer link is configured, the payload moves directly
//!   over the `(src, dst)` link; transfers between *different* pairs
//!   proceed in parallel (each ordered pair has its own frontier), while
//!   transfers on the *same* pair serialize.
//! * **staged** — without peer links the payload bounces through host
//!   memory: a D2H hop on `src`'s PCIe link followed by an H2D hop on
//!   `dst`'s. Both hops also serialize on the shared root complex at its
//!   aggregate bandwidth, which is what makes N simultaneous exchanges
//!   slower than N independent PCIe links would suggest.

use crate::time::ns_for_bytes;

/// A point-to-point link: fixed per-transfer latency plus
/// bandwidth-limited payload time. The same shape as
/// [`crate::PcieModel`], kept separate so peer links read as what they
/// are in fleet configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkModel {
    /// Sustained bandwidth, bytes per second.
    pub bandwidth_bps: u64,
    /// Fixed cost per transfer (setup + doorbell), ns.
    pub latency_ns: u64,
}

impl LinkModel {
    /// Time to move `bytes` in one transfer over this link.
    #[inline]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.latency_ns + ns_for_bytes(bytes, self.bandwidth_bps)
    }
}

/// Fabric description for an N-device fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterconnectConfig {
    /// Optional NVLink-class peer links (one per ordered device pair).
    /// `None` means all device-to-device traffic stages through the host.
    pub peer: Option<LinkModel>,
    /// Each device's PCIe link to the host (used by staged transfers).
    pub host: LinkModel,
    /// Aggregate bandwidth of the shared host root complex, bytes per
    /// second. Staged hops from *all* devices serialize their payload
    /// time on this budget.
    pub host_root_bps: u64,
}

impl InterconnectConfig {
    /// PCIe-only fabric: no peer links, P100-class 12 GB/s per-device
    /// links, a 3.0 x16-era root complex that sustains roughly two
    /// links' worth of aggregate traffic.
    pub fn pcie() -> Self {
        InterconnectConfig {
            peer: None,
            host: LinkModel {
                bandwidth_bps: 12_000_000_000,
                latency_ns: 10_000,
            },
            host_root_bps: 24_000_000_000,
        }
    }

    /// NVLink-class fabric: the PCIe host links of [`Self::pcie`] plus
    /// direct peer links (P100 NVLink 1.0: 4 bricks x 20 GB/s per
    /// direction, microsecond-class latency).
    pub fn nvlink() -> Self {
        InterconnectConfig {
            peer: Some(LinkModel {
                bandwidth_bps: 80_000_000_000,
                latency_ns: 1_500,
            }),
            ..Self::pcie()
        }
    }
}

/// Byte/transfer counters the fleet reports read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InterconnectStats {
    /// Bytes moved over peer links.
    pub peer_bytes: u64,
    /// Bytes moved via host staging (counted once, not per hop).
    pub staged_bytes: u64,
    /// Peer-link transfers completed.
    pub peer_transfers: u64,
    /// Staged transfers completed.
    pub staged_transfers: u64,
}

impl InterconnectStats {
    /// Total device-to-device payload bytes, either path.
    pub fn total_bytes(&self) -> u64 {
        self.peer_bytes + self.staged_bytes
    }
}

/// Link-frontier arbiter for an N-device fabric.
///
/// Holds one busy-until frontier per ordered peer pair, one per device
/// host link, and one for the shared root complex. [`Self::transfer`]
/// places a payload on the earliest slot every involved resource allows
/// and advances those frontiers — the multi-device analogue of
/// [`crate::Timeline::schedule`].
#[derive(Clone, Debug)]
pub struct Interconnect {
    cfg: InterconnectConfig,
    devices: usize,
    /// Busy-until per ordered `(src, dst)` peer pair, `src * n + dst`.
    peer_free: Vec<u64>,
    /// Busy-until per device host link.
    host_free: Vec<u64>,
    /// Busy-until of the shared root complex (staged payload time).
    root_free: u64,
    stats: InterconnectStats,
}

impl Interconnect {
    /// A fabric joining `devices` devices.
    pub fn new(cfg: InterconnectConfig, devices: usize) -> Self {
        assert!(devices > 0, "a fabric needs at least one device");
        Interconnect {
            cfg,
            devices,
            peer_free: vec![0; devices * devices],
            host_free: vec![0; devices],
            root_free: 0,
            stats: InterconnectStats::default(),
        }
    }

    /// Number of devices on the fabric.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// The fabric description.
    pub fn config(&self) -> &InterconnectConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> InterconnectStats {
        self.stats
    }

    /// Move `bytes` from device `src` to device `dst`, no earlier than
    /// `ready_ns`. Returns the `(start, end)` window on the virtual
    /// clock. Zero-byte transfers are free and occupy nothing.
    pub fn transfer(&mut self, src: usize, dst: usize, bytes: u64, ready_ns: u64) -> (u64, u64) {
        assert!(src < self.devices && dst < self.devices && src != dst);
        if bytes == 0 {
            return (ready_ns, ready_ns);
        }
        if let Some(peer) = self.cfg.peer {
            let pair = src * self.devices + dst;
            let start = ready_ns.max(self.peer_free[pair]);
            let end = start + peer.transfer_ns(bytes);
            self.peer_free[pair] = end;
            self.stats.peer_bytes += bytes;
            self.stats.peer_transfers += 1;
            return (start, end);
        }
        // Staged: D2H on src's link, then H2D on dst's. Each hop's payload
        // also serializes on the root complex at its aggregate bandwidth;
        // the hop itself still runs at the (slower) per-device link rate,
        // so the root only bites when several devices stage at once.
        let root_ns = ns_for_bytes(bytes, self.cfg.host_root_bps);
        let up_start = ready_ns.max(self.host_free[src]).max(self.root_free);
        let up_end = up_start + self.cfg.host.transfer_ns(bytes);
        self.host_free[src] = up_end;
        self.root_free = up_start + root_ns;
        let down_start = up_end.max(self.host_free[dst]).max(self.root_free);
        let down_end = down_start + self.cfg.host.transfer_ns(bytes);
        self.host_free[dst] = down_end;
        self.root_free = down_start + root_ns;
        self.stats.staged_bytes += bytes;
        self.stats.staged_transfers += 1;
        (up_start, down_end)
    }

    /// All-gather at an iteration boundary: device `i` ships `bytes[i]`
    /// to every other device, each send no earlier than `ready[i]`.
    /// Returns the time every device holds every slice (the fleet's
    /// barrier point). Deterministic: sends issue in `(src, dst)` order.
    pub fn all_gather(&mut self, ready: &[u64], bytes: &[u64]) -> u64 {
        assert_eq!(ready.len(), self.devices);
        assert_eq!(bytes.len(), self.devices);
        let mut done = ready.iter().copied().max().unwrap_or(0);
        for src in 0..self.devices {
            for dst in 0..self.devices {
                if src != dst {
                    let (_, end) = self.transfer(src, dst, bytes[src], ready[src]);
                    done = done.max(end);
                }
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_pairs_run_in_parallel_but_serialize_per_pair() {
        let mut ic = Interconnect::new(InterconnectConfig::nvlink(), 4);
        let (s0, e0) = ic.transfer(0, 1, 1 << 20, 0);
        let (s1, e1) = ic.transfer(2, 3, 1 << 20, 0);
        assert_eq!(s0, 0);
        assert_eq!(s1, 0, "distinct pairs do not contend");
        assert_eq!(e0, e1);
        // the same ordered pair serializes
        let (s2, e2) = ic.transfer(0, 1, 1 << 20, 0);
        assert_eq!(s2, e0);
        assert_eq!(e2 - s2, e0 - s0);
        assert_eq!(ic.stats().peer_transfers, 3);
        assert_eq!(ic.stats().peer_bytes, 3 << 20);
        assert_eq!(ic.stats().staged_transfers, 0);
    }

    #[test]
    fn peer_beats_staged_for_the_same_payload() {
        let bytes = 16u64 << 20;
        let mut peer = Interconnect::new(InterconnectConfig::nvlink(), 2);
        let mut staged = Interconnect::new(InterconnectConfig::pcie(), 2);
        let (_, pe) = peer.transfer(0, 1, bytes, 0);
        let (_, se) = staged.transfer(0, 1, bytes, 0);
        assert!(
            pe * 2 < se,
            "NVLink path ({pe} ns) should be far ahead of staging ({se} ns)"
        );
        assert_eq!(staged.stats().staged_bytes, bytes);
    }

    #[test]
    fn staged_hops_contend_on_the_root_complex() {
        // Two simultaneous staged transfers between disjoint device pairs:
        // their per-device links are independent, but the shared root
        // complex (2x one link's bandwidth here) must stretch the second
        // transfer's window beyond what one transfer alone takes.
        let cfg = InterconnectConfig {
            host_root_bps: 12_000_000_000, // == one link: full serialization
            ..InterconnectConfig::pcie()
        };
        let bytes = 64u64 << 20;
        let solo_end = {
            let mut ic = Interconnect::new(cfg, 4);
            ic.transfer(0, 1, bytes, 0).1
        };
        let mut ic = Interconnect::new(cfg, 4);
        ic.transfer(0, 1, bytes, 0);
        let (_, contended_end) = ic.transfer(2, 3, bytes, 0);
        assert!(
            contended_end > solo_end + solo_end / 4,
            "root contention must delay the second staged transfer \
             ({contended_end} vs {solo_end} ns solo)"
        );
    }

    #[test]
    fn zero_bytes_are_free_and_ready_is_respected() {
        let mut ic = Interconnect::new(InterconnectConfig::nvlink(), 2);
        assert_eq!(ic.transfer(0, 1, 0, 500), (500, 500));
        assert_eq!(ic.stats(), InterconnectStats::default());
        let (s, _) = ic.transfer(1, 0, 4096, 9_000);
        assert_eq!(s, 9_000, "transfers never start before ready");
    }

    #[test]
    fn all_gather_is_deterministic_and_covers_all_pairs() {
        let cfg = InterconnectConfig::nvlink();
        let run = |cfg| {
            let mut ic = Interconnect::new(cfg, 3);
            let t = ic.all_gather(&[100, 0, 50], &[4096, 8192, 0]);
            (t, ic.stats())
        };
        let (t1, s1) = run(cfg);
        let (t2, s2) = run(cfg);
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
        // devices 0 and 1 each send to two peers; device 2 sends nothing
        assert_eq!(s1.peer_transfers, 4);
        assert_eq!(s1.peer_bytes, 2 * (4096 + 8192));
        assert!(t1 >= 100, "barrier respects the latest ready time");
    }
}
