#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic-sim — the simulated GPU substrate
//!
//! The paper's prototype runs on a real NVIDIA P100 over PCIe. This crate is
//! the stand-in substrate (see `DESIGN.md` §1): a *functional* device — real
//! bytes move into a real device-memory arena through a real allocator — with
//! a *virtual* clock that charges each operation a cost from a calibrated
//! model:
//!
//! * [`time`] — nanosecond-resolution simulated time.
//! * [`device`] — the device descriptor: memory capacity, PCIe link, kernel
//!   and CPU-gather cost models (P100-class defaults).
//! * [`memory`] — the device-memory arena with a first-fit free-list
//!   allocator; all "GPU" data lives here, word (u32) addressed.
//! * [`timeline`] — the engine timeline: one COPY engine, one COMPUTE
//!   engine and the host CPU, with CUDA-stream-like dependency scheduling.
//!   Overlap (paper Figure 5) falls out of scheduling compute and copy
//!   spans with independent ready-times.
//! * [`gpu`] — ties the above together: `h2d`/`d2h` transfers that copy real
//!   words and charge the link, kernels that charge the compute model.
//! * [`interconnect`] — the N-device fabric: per-device PCIe links behind
//!   a shared root complex, plus optional NVLink-class peer links, for the
//!   fleet execution layer.
//! * [`uvm`] — Unified Virtual Memory emulation: demand paging over host
//!   data, LRU residency, fault/migration accounting (the UVM baseline).
//! * [`trace`] — chunk-access tracer used to regenerate Figure 2.
//! * [`metrics`] — transfer/kernel counters every experiment reads.
//!
//! Determinism: nothing in this crate reads wall-clock time or RNGs; given
//! the same sequence of operations the clock advances identically on every
//! run and platform.

pub mod device;
pub mod gpu;
pub mod interconnect;
pub mod memory;
pub mod metrics;
pub mod time;
pub mod timeline;
pub mod trace;
pub mod uvm;

pub use device::{DecompressModel, DeviceConfig, GatherModel, KernelModel, PcieModel, UvmModel};
pub use gpu::Gpu;
pub use interconnect::{Interconnect, InterconnectConfig, InterconnectStats, LinkModel};
pub use memory::{ArenaOccupancy, DevPtr, DeviceMemory, OutOfDeviceMemory};
pub use metrics::{KernelStats, XferStats};
pub use time::SimTime;
pub use timeline::{
    chrome_trace_json, copy_stream_track_name, CopyStream, Engine, Span, Timeline, TraceSpan,
    COPY_STREAM_TRACK_PREFIX,
};
pub use trace::AccessTracer;
pub use uvm::{Uvm, UvmStats};
