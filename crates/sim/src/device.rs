//! Device descriptor and cost models.
//!
//! One [`DeviceConfig`] bundles everything timing-related about the
//! simulated platform. The defaults are calibrated to the paper's testbed —
//! an NVIDIA Tesla P100 (16 GB, capped to 10 GB), PCIe 3.0 ×16, and an Intel
//! Xeon Silver 4210 10-core host — at the granularity that matters for the
//! reproduced experiments: *ratios* between transfer, gather and compute
//! time, not absolute seconds.

use crate::time::ns_for_bytes;

/// PCIe link model: fixed per-transfer latency plus bandwidth-limited
/// payload time. Effective bandwidth ~12 GB/s matches measured P100 PCIe
/// 3.0 ×16 host-to-device throughput for pinned memory.
#[derive(Clone, Copy, Debug)]
pub struct PcieModel {
    /// Sustained bandwidth, bytes per second.
    pub bandwidth_bps: u64,
    /// Fixed cost per DMA operation (driver + doorbell + setup), ns.
    pub latency_ns: u64,
}

impl PcieModel {
    /// Time to move `bytes` in one DMA operation.
    #[inline]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.latency_ns + ns_for_bytes(bytes, self.bandwidth_bps)
    }
}

/// GPU kernel cost model: launch overhead plus linear per-edge and
/// per-vertex work. Graph kernels on a P100 are memory-bound; ~4 G
/// traversed-edges/s (0.25 ns/edge) is in line with published
/// Subway/Gunrock numbers for irregular frontiers.
#[derive(Clone, Copy, Debug)]
pub struct KernelModel {
    /// Fixed launch + sync overhead per kernel, ns.
    pub launch_ns: u64,
    /// Cost per traversed edge, femtoseconds (fs keeps integer math exact
    /// for sub-ns rates: 0.25 ns/edge = 250_000 fs/edge).
    pub edge_fs: u64,
    /// Cost per processed vertex, femtoseconds.
    pub vertex_fs: u64,
}

impl KernelModel {
    /// Time for a kernel touching `edges` edges and `vertices` vertices.
    #[inline]
    pub fn kernel_ns(&self, edges: u64, vertices: u64) -> u64 {
        let work_fs =
            edges as u128 * self.edge_fs as u128 + vertices as u128 * self.vertex_fs as u128;
        self.launch_ns + (work_fs.div_ceil(1_000_000)) as u64
    }
}

/// Host-side gather model: the On-demand Engine / Subway step (b) where CPU
/// threads collect the active vertices' edges from main memory into a
/// pinned staging buffer. Multi-threaded gather on a 10-core Xeon sustains
/// roughly 10 GB/s aggregate (Subway reports similar rates); per-vertex
/// bookkeeping adds a few ns each.
#[derive(Clone, Copy, Debug)]
pub struct GatherModel {
    /// Aggregate gather throughput of the host threads, bytes per second.
    pub bandwidth_bps: u64,
    /// Per-gathered-vertex overhead (offset lookup, size calc), ns.
    pub vertex_ns: u64,
    /// Fixed cost to kick off a gather batch (thread wake-up etc.), ns.
    pub batch_ns: u64,
}

impl GatherModel {
    /// Time for the host to gather `bytes` of edge data spread over
    /// `vertices` adjacency lists.
    #[inline]
    pub fn gather_ns(&self, bytes: u64, vertices: u64) -> u64 {
        if bytes == 0 && vertices == 0 {
            return 0;
        }
        self.batch_ns + ns_for_bytes(bytes, self.bandwidth_bps) + vertices * self.vertex_ns
    }
}

/// On-device decompression model for the delta–varint transfer codec.
/// Decoding runs on the compute engine (a light kernel between the DMA and
/// the consuming graph kernel). GPU varint decoders sustain well above
/// PCIe rates — published GPU LEB128/varint decoders reach tens of GB/s —
/// so the calibrated 20 GB/s output rate keeps decompression cheaper per
/// byte than the link it is saving, without making it free.
#[derive(Clone, Copy, Debug)]
pub struct DecompressModel {
    /// Decoded-output throughput, bytes per second.
    pub bandwidth_bps: u64,
    /// Fixed launch overhead per decompression kernel, ns.
    pub launch_ns: u64,
}

impl DecompressModel {
    /// Time to decode a payload that expands to `raw_bytes`.
    #[inline]
    pub fn decompress_ns(&self, raw_bytes: u64) -> u64 {
        if raw_bytes == 0 {
            return 0;
        }
        self.launch_ns + ns_for_bytes(raw_bytes, self.bandwidth_bps)
    }
}

/// Unified Virtual Memory model. Page-fault servicing on Pascal costs tens
/// of microseconds per fault (20-50 us in published measurements) and
/// migrations under oversubscription run far below peak PCIe bandwidth
/// (fault-ordered, small pages, eviction interference).
#[derive(Clone, Copy, Debug)]
pub struct UvmModel {
    /// Page size, bytes (Pascal migrates 64 KiB basic blocks by default).
    pub page_bytes: u64,
    /// Cost to service one page fault (GPU stall + OS + driver), ns.
    pub fault_ns: u64,
    /// Migration bandwidth, bytes per second (below raw PCIe).
    pub bandwidth_bps: u64,
}

impl UvmModel {
    /// Time to fault-in one page.
    #[inline]
    pub fn fault_in_ns(&self) -> u64 {
        self.fault_ns + ns_for_bytes(self.page_bytes, self.bandwidth_bps)
    }
}

/// Full device + host descriptor used by every system implementation.
#[derive(Clone, Copy, Debug)]
pub struct DeviceConfig {
    /// Device memory capacity, bytes (the paper caps the P100 at 10 GB).
    pub mem_bytes: u64,
    /// PCIe link model.
    pub pcie: PcieModel,
    /// Kernel cost model.
    pub kernel: KernelModel,
    /// Pull (gather-direction) kernel cost model. Pull kernels read
    /// scattered parent state per in-edge instead of streaming a frontier's
    /// out-edges, so their per-edge cost runs a little higher than push.
    pub pull_kernel: KernelModel,
    /// Host gather model.
    pub gather: GatherModel,
    /// UVM model.
    pub uvm: UvmModel,
    /// On-device decompression model (compressed transfer path).
    pub decompress: DecompressModel,
}

impl DeviceConfig {
    /// P100-class defaults with the given memory capacity.
    pub fn p100(mem_bytes: u64) -> Self {
        DeviceConfig {
            mem_bytes,
            pcie: PcieModel {
                bandwidth_bps: 12_000_000_000,
                latency_ns: 10_000,
            },
            kernel: KernelModel {
                launch_ns: 8_000,
                edge_fs: 250_000,
                vertex_fs: 1_000_000,
            },
            pull_kernel: KernelModel {
                launch_ns: 8_000,
                edge_fs: 300_000,
                vertex_fs: 1_000_000,
            },
            gather: GatherModel {
                bandwidth_bps: 10_000_000_000,
                vertex_ns: 4,
                batch_ns: 20_000,
            },
            uvm: UvmModel {
                page_bytes: 64 * 1024,
                fault_ns: 35_000,
                bandwidth_bps: 4_000_000_000,
            },
            decompress: DecompressModel {
                bandwidth_bps: 20_000_000_000,
                launch_ns: 5_000,
            },
        }
    }

    /// Device memory capacity in u32 words (the arena's unit).
    pub fn mem_words(&self) -> usize {
        (self.mem_bytes / 4) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_latency_dominates_small_transfers() {
        let p = DeviceConfig::p100(1 << 30).pcie;
        let small = p.transfer_ns(64);
        let big = p.transfer_ns(64 * 1024 * 1024);
        assert!(small >= p.latency_ns);
        assert!(small < 2 * p.latency_ns);
        // 64 MiB at 12 GB/s ≈ 5.6 ms >> latency
        assert!(big > 5_000_000);
        assert_eq!(p.transfer_ns(0), 0);
    }

    #[test]
    fn kernel_scales_with_work() {
        let k = DeviceConfig::p100(1 << 30).kernel;
        let t0 = k.kernel_ns(0, 0);
        assert_eq!(t0, k.launch_ns);
        // 4M edges at 0.25 ns/edge = 1 ms
        let t = k.kernel_ns(4_000_000, 0);
        assert!((t as i64 - (k.launch_ns as i64 + 1_000_000)).abs() <= 1);
        // vertices cost more per item than edges
        assert!(k.kernel_ns(0, 1_000) > k.kernel_ns(1_000, 0));
    }

    #[test]
    fn gather_accounts_bytes_and_vertices() {
        let g = DeviceConfig::p100(1 << 30).gather;
        assert_eq!(g.gather_ns(0, 0), 0);
        let t = g.gather_ns(10_000_000, 1_000);
        // 10 MB at 10 GB/s = 1 ms, plus batch + 4 us vertex cost
        assert!(t >= 1_000_000 + g.batch_ns + 4_000);
    }

    #[test]
    fn uvm_fault_cost_exceeds_bulk_transfer_per_byte() {
        let cfg = DeviceConfig::p100(1 << 30);
        // Moving 64 KiB via one UVM fault must cost more than moving it as
        // part of a big bulk PCIe transfer — the inefficiency the paper's
        // §4.4 attributes to page-grained migration.
        let uvm_per_byte = cfg.uvm.fault_in_ns() as f64 / cfg.uvm.page_bytes as f64;
        let bulk = cfg.pcie.transfer_ns(256 << 20) as f64 / (256u64 << 20) as f64;
        assert!(uvm_per_byte > 2.0 * bulk);
    }

    #[test]
    fn decompress_is_cheaper_per_byte_than_the_link_it_saves() {
        let cfg = DeviceConfig::p100(1 << 30);
        assert_eq!(cfg.decompress.decompress_ns(0), 0);
        // Bulk: decoding a payload must cost less than shipping it raw,
        // otherwise compression could never win the crossover.
        let bytes = 64u64 << 20;
        assert!(cfg.decompress.decompress_ns(bytes) < cfg.pcie.transfer_ns(bytes));
        // Tiny: launch overhead dominates, so small transfers should lose
        // the crossover even at a good ratio — the adaptive path relies on
        // this to decline chunk-sized refreshes.
        let raw = 16u64 << 10;
        let saved = cfg.pcie.transfer_ns(raw) - cfg.pcie.transfer_ns(raw / 3);
        assert!(cfg.decompress.decompress_ns(raw) > saved);
    }

    #[test]
    fn pull_kernel_costs_more_per_edge_than_push() {
        let cfg = DeviceConfig::p100(1 << 30);
        assert!(cfg.pull_kernel.edge_fs > cfg.kernel.edge_fs);
        assert!(cfg.pull_kernel.kernel_ns(1_000_000, 0) > cfg.kernel.kernel_ns(1_000_000, 0));
    }

    #[test]
    fn word_capacity() {
        assert_eq!(DeviceConfig::p100(4096).mem_words(), 1024);
    }
}
