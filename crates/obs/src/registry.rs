//! Metric registry: counters, gauges and log2-bucketed histograms.
//!
//! Names are `&'static str` at the recording sites (no per-op allocation);
//! export always walks a `BTreeMap`, so ordering is deterministic and two
//! identical runs serialize byte-identically. Labels identify the stream
//! (system / algo / dataset) the way the paper's tables are keyed.
//!
//! Distributions matter as much as totals: HyTGraph's transfer management
//! and EMOGI's access analysis both reason about *sizes* of individual
//! operations, so DMA ops, kernels and UVM faults are observed into
//! [`Histogram`]s (power-of-two buckets, exact count and sum).

use std::collections::BTreeMap;

use crate::json;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i - 1]` (bucket 64 saturates at `u64::MAX`).
pub const NUM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a histogram from raw parts — the import path for external
    /// log2-bucketed counters that share this layout (e.g. the
    /// `ascetic-par` worker-pool job wall-time buckets).
    ///
    /// # Panics
    /// Panics if `count` does not equal the bucket total.
    pub fn from_parts(count: u64, sum: u64, buckets: [u64; NUM_BUCKETS]) -> Histogram {
        let total: u64 = buckets.iter().sum();
        assert_eq!(count, total, "histogram count must match bucket total");
        Histogram {
            count,
            sum,
            buckets,
        }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive `[lo, hi]` range of bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        assert!(i < NUM_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            (0, 0)
        } else if i == 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Add `other`'s samples into `self` (associative and commutative).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Samples accumulated since `baseline` (which must be a prefix of
    /// `self`'s history; bucket counts subtract saturating so a foreign
    /// baseline degrades gracefully instead of panicking).
    pub fn diff(&self, baseline: &Histogram) -> Histogram {
        let mut out = Histogram {
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
            buckets: [0; NUM_BUCKETS],
        };
        for i in 0..NUM_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(baseline.buckets[i]);
        }
        out
    }

    fn json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
            self.count, self.sum
        ));
        let mut first = true;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let (lo, hi) = Self::bucket_range(i);
            out.push_str(&format!("[{lo},{hi},{c}]"));
        }
        out.push_str("]}");
    }
}

/// One registered metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Point-in-time value (merge takes the max — high-water semantics).
    Gauge(u64),
    /// Distribution of samples (boxed: a histogram is ~0.5 KiB, far larger
    /// than the scalar variants).
    Histogram(Box<Histogram>),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    fn json_into(&self, out: &mut String) {
        match self {
            MetricValue::Counter(v) => {
                out.push_str(&format!("{{\"type\":\"counter\",\"value\":{v}}}"))
            }
            MetricValue::Gauge(v) => out.push_str(&format!("{{\"type\":\"gauge\",\"value\":{v}}}")),
            MetricValue::Histogram(h) => h.json_into(out),
        }
    }
}

/// Live metric registry used at recording sites.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    labels: BTreeMap<String, String>,
    metrics: BTreeMap<&'static str, MetricValue>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a stream label (system / algo / dataset).
    pub fn set_label(&mut self, key: &str, value: &str) {
        self.labels.insert(key.to_string(), value.to_string());
    }

    /// Add `delta` to counter `name` (created at zero on first use).
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        match self.metrics.entry(name).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += delta,
            other => panic!("{name} is a {}, not a counter", other.kind()),
        }
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        match self.metrics.entry(name).or_insert(MetricValue::Gauge(0)) {
            MetricValue::Gauge(v) => *v = value,
            other => panic!("{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Raise gauge `name` to at least `value` (high-water mark).
    pub fn gauge_max(&mut self, name: &'static str, value: u64) {
        match self.metrics.entry(name).or_insert(MetricValue::Gauge(0)) {
            MetricValue::Gauge(v) => *v = (*v).max(value),
            other => panic!("{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Observe `value` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        match self
            .metrics
            .entry(name)
            .or_insert_with(|| MetricValue::Histogram(Box::new(Histogram::new())))
        {
            MetricValue::Histogram(h) => h.observe(value),
            other => panic!("{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Merge another registry: counters add, gauges take the max,
    /// histograms merge. Labels from `other` fill in missing keys only.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.labels {
            self.labels.entry(k.clone()).or_insert_with(|| v.clone());
        }
        for (name, theirs) in &other.metrics {
            match self.metrics.entry(name) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(theirs.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    match (e.get_mut(), theirs) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        (mine, theirs) => panic!(
                            "metric {name} kind mismatch: {} vs {}",
                            mine.kind(),
                            theirs.kind()
                        ),
                    }
                }
            }
        }
    }

    /// Immutable, exportable copy of the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            labels: self.labels.clone(),
            metrics: self
                .metrics
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

/// A frozen, serializable view of a [`Registry`] — embedded in every
/// `RunReport` and exported by `--metrics-out` / `--summary json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    labels: BTreeMap<String, String>,
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a stream label.
    pub fn set_label(&mut self, key: &str, value: &str) {
        self.labels.insert(key.to_string(), value.to_string());
    }

    /// Label value, if set.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(|s| s.as_str())
    }

    /// All labels, sorted by key.
    pub fn labels(&self) -> impl Iterator<Item = (&str, &str)> {
        self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Counter value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram, if `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Overwrite (or create) counter `name` with an authoritative value —
    /// used to pin the snapshot to the `XferStats`/`KernelStats` totals the
    /// experiments already trust.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.metrics
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Overwrite (or create) gauge `name`.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.metrics
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Overwrite (or create) histogram `name` with an externally built
    /// distribution (see [`Histogram::from_parts`]).
    pub fn set_histogram(&mut self, name: &str, h: Histogram) {
        self.metrics
            .insert(name.to_string(), MetricValue::Histogram(Box::new(h)));
    }

    /// All metrics, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The change since `baseline`: counters and histograms subtract,
    /// gauges keep their current value. Metrics absent from `baseline`
    /// pass through unchanged.
    pub fn diff(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot {
            labels: self.labels.clone(),
            metrics: BTreeMap::new(),
        };
        for (name, v) in &self.metrics {
            let d = match (v, baseline.metrics.get(name)) {
                (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                    MetricValue::Counter(a.saturating_sub(*b))
                }
                (MetricValue::Histogram(a), Some(MetricValue::Histogram(b))) => {
                    MetricValue::Histogram(Box::new(a.diff(b)))
                }
                (v, _) => v.clone(),
            };
            out.metrics.insert(name.clone(), d);
        }
        out
    }

    /// Merge semantics identical to [`Registry::merge`].
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.labels {
            self.labels.entry(k.clone()).or_insert_with(|| v.clone());
        }
        for (name, theirs) in &other.metrics {
            match self.metrics.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(theirs.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    match (e.get_mut(), theirs) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        (mine, theirs) => panic!(
                            "metric {name} kind mismatch: {} vs {}",
                            mine.kind(),
                            theirs.kind()
                        ),
                    }
                }
            }
        }
    }

    /// Render as one JSON object:
    /// `{"labels":{...},"metrics":{"name":{"type":...,...},...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"labels\":{");
        let mut first = true;
        for (k, v) in &self.labels {
            if !first {
                out.push(',');
            }
            first = false;
            json::key_into(k, &mut out);
            json::string_into(v, &mut out);
        }
        out.push_str("},\"metrics\":{");
        let mut first = true;
        for (name, v) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            json::key_into(name, &mut out);
            v.json_into(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Render as CSV (`metric,kind,value,count,sum` — histograms fill
    /// count/sum, scalars fill value).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,kind,value,count,sum\n");
        for (name, v) in &self.metrics {
            match v {
                MetricValue::Counter(c) => out.push_str(&format!("{name},counter,{c},,\n")),
                MetricValue::Gauge(g) => out.push_str(&format!("{name},gauge,{g},,\n")),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("{name},histogram,,{},{}\n", h.count(), h.sum()))
                }
            }
        }
        out
    }
}

/// The per-device observability bundle: one live [`Registry`] plus an
/// optional [`crate::EventLog`] (off by default — enabling costs one `Vec`
/// push per event).
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Live metric registry (always on; counters are cheap).
    pub registry: Registry,
    events: Option<crate::EventLog>,
}

impl Obs {
    /// A fresh bundle with event logging disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start recording events, keeping at most `capacity` of them.
    pub fn enable_events(&mut self, capacity: usize) {
        if self.events.is_none() {
            self.events = Some(crate::EventLog::new(capacity));
        }
    }

    /// Whether event recording is on.
    pub fn events_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Record `event` at virtual-clock instant `t_ns` (no-op when event
    /// logging is disabled).
    pub fn record(&mut self, t_ns: u64, event: crate::Event) {
        if let Some(log) = self.events.as_mut() {
            log.record(t_ns, event);
        }
    }

    /// The recorded events, if enabled.
    pub fn events(&self) -> Option<&crate::EventLog> {
        self.events.as_ref()
    }

    /// Take ownership of the event log (used when assembling reports).
    pub fn take_events(&mut self) -> Option<crate::EventLog> {
        self.events.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(1), (1, 1));
        assert_eq!(Histogram::bucket_range(2), (2, 3));
        assert_eq!(Histogram::bucket_range(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn histogram_observe_merge_diff() {
        let mut a = Histogram::new();
        a.observe(0);
        a.observe(5);
        let mut b = Histogram::new();
        b.observe(5);
        b.observe(1024);
        let baseline = a.clone();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 1034);
        assert_eq!(a.buckets()[Histogram::bucket_index(5)], 2);
        let d = a.diff(&baseline);
        assert_eq!(d, b);
    }

    #[test]
    fn registry_kinds_and_snapshot() {
        let mut r = Registry::new();
        r.set_label("system", "Ascetic");
        r.counter_add("xfer.h2d_bytes", 100);
        r.counter_add("xfer.h2d_bytes", 20);
        r.gauge_max("mem.high_water_bytes", 7);
        r.gauge_max("mem.high_water_bytes", 3);
        r.observe("h2d.op_bytes", 64);
        let s = r.snapshot();
        assert_eq!(s.counter("xfer.h2d_bytes"), Some(120));
        assert_eq!(s.gauge("mem.high_water_bytes"), Some(7));
        assert_eq!(s.histogram("h2d.op_bytes").unwrap().count(), 1);
        assert_eq!(s.label("system"), Some("Ascetic"));
        assert_eq!(s.counter("mem.high_water_bytes"), None, "kind-checked");
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let mut r = Registry::new();
        r.gauge_set("x", 1);
        r.counter_add("x", 1);
    }

    #[test]
    fn snapshot_diff_subtracts_counters_keeps_gauges() {
        let mut r = Registry::new();
        r.counter_add("c", 10);
        r.gauge_set("g", 5);
        let base = r.snapshot();
        r.counter_add("c", 7);
        r.gauge_set("g", 3);
        let d = r.snapshot().diff(&base);
        assert_eq!(d.counter("c"), Some(7));
        assert_eq!(d.gauge("g"), Some(3), "gauges report current value");
    }

    #[test]
    fn merge_is_deterministic_and_additive() {
        let mut a = Registry::new();
        a.counter_add("c", 1);
        a.observe("h", 10);
        let mut b = Registry::new();
        b.counter_add("c", 2);
        b.counter_add("only_b", 5);
        b.observe("h", 20);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.counter("c"), Some(3));
        assert_eq!(s.counter("only_b"), Some(5));
        assert_eq!(s.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn snapshot_json_and_csv_are_well_formed() {
        let mut r = Registry::new();
        r.set_label("algo", "BFS");
        r.counter_add("xfer.h2d_bytes", 4096);
        r.gauge_set("sim_time_ns", 10);
        r.observe("h2d.op_bytes", 4096);
        let s = r.snapshot();
        let j = s.to_json();
        crate::json::validate(&j).expect("snapshot JSON validates");
        assert!(j.contains("\"xfer.h2d_bytes\""));
        let csv = s.to_csv();
        assert!(csv.starts_with("metric,kind,value,count,sum\n"));
        assert!(csv.contains("xfer.h2d_bytes,counter,4096,,"));
        assert!(csv.contains("h2d.op_bytes,histogram,,1,4096"));
    }

    #[test]
    fn histogram_from_parts_round_trips() {
        let mut h = Histogram::new();
        h.observe(3);
        h.observe(1024);
        let rebuilt = Histogram::from_parts(h.count(), h.sum(), *h.buckets());
        assert_eq!(rebuilt, h);
        let mut s = MetricsSnapshot::new();
        s.set_histogram("pool.job_wall_ns", rebuilt);
        assert_eq!(s.histogram("pool.job_wall_ns").unwrap().count(), 2);
        crate::json::validate(&s.to_json()).expect("snapshot JSON validates");
    }

    #[test]
    #[should_panic(expected = "count must match bucket total")]
    fn histogram_from_parts_rejects_mismatch() {
        Histogram::from_parts(3, 0, [0; NUM_BUCKETS]);
    }

    #[test]
    fn obs_gates_events() {
        let mut o = Obs::new();
        o.record(5, crate::Event::IterEnd { iter: 0 });
        assert!(o.events().is_none(), "disabled log records nothing");
        o.enable_events(4);
        o.record(7, crate::Event::IterEnd { iter: 1 });
        assert_eq!(o.events().unwrap().len(), 1);
    }
}
