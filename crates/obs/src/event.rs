//! Structured event log stamped by the virtual clock.
//!
//! Events are the *sequence* view the registry's totals cannot give:
//! which iteration a re-partition happened in, how fault storms cluster,
//! when the allocator's high-water mark moved. Timestamps are plain `u64`
//! nanoseconds supplied by the caller from the simulated clock
//! (`ascetic-sim`'s `SimTime`), so the log is bit-deterministic.
//!
//! The log is bounded: past `capacity` events it counts drops instead of
//! growing (a UVM run can fault millions of times).

use crate::json;

/// Default bound on retained events (65 536 ≈ a few MB worst case).
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Direction of a DMA transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XferDir {
    /// Host to device.
    H2d,
    /// Device to host.
    D2h,
}

impl XferDir {
    fn as_str(self) -> &'static str {
        match self {
            XferDir::H2d => "h2d",
            XferDir::D2h => "d2h",
        }
    }
}

/// One observable occurrence in a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// An iteration of the vertex program began.
    IterStart {
        /// Zero-based iteration index.
        iter: u32,
    },
    /// An iteration finished.
    IterEnd {
        /// Zero-based iteration index.
        iter: u32,
    },
    /// A compute kernel was launched.
    Kernel {
        /// Kernel label (e.g. `"bfs_static"`).
        label: String,
        /// Edges traversed by the launch.
        edges: u64,
        /// Modeled duration in virtual nanoseconds.
        dur_ns: u64,
    },
    /// A DMA copy over PCIe.
    Dma {
        /// Transfer direction.
        dir: XferDir,
        /// Bytes moved.
        bytes: u64,
        /// Modeled duration in virtual nanoseconds.
        dur_ns: u64,
    },
    /// A compressed DMA copy: delta–varint payload over the link, decoded
    /// on the compute engine.
    CompressedDma {
        /// Decoded payload bytes.
        raw_bytes: u64,
        /// Encoded bytes actually on the link.
        wire_bytes: u64,
        /// Modeled copy duration in virtual nanoseconds.
        dur_ns: u64,
        /// Modeled decompression duration in virtual nanoseconds.
        decompress_ns: u64,
    },
    /// A speculative chunk refresh issued on the prefetch copy stream
    /// (cross-iteration pipeline; distinct from reactive `Dma`).
    PrefetchDma {
        /// Chunk shipped ahead of demand.
        chunk: u64,
        /// Bytes moved.
        bytes: u64,
        /// Modeled duration in virtual nanoseconds.
        dur_ns: u64,
    },
    /// An on-demand gather of frontier-reachable edge chunks.
    Gather {
        /// Bytes gathered.
        bytes: u64,
        /// Modeled duration in virtual nanoseconds.
        dur_ns: u64,
    },
    /// A UVM page fault (miss serviced by migration).
    UvmFault {
        /// Virtual page index that faulted.
        page: u64,
        /// Fault service latency in virtual nanoseconds.
        dur_ns: u64,
    },
    /// A UVM page eviction.
    UvmEvict {
        /// Number of pages evicted by this event.
        pages: u64,
    },
    /// A hotness-table chunk replacement in the static region.
    HotSwap {
        /// Chunks swapped in this refresh.
        chunks: u64,
        /// Bytes re-filled.
        bytes: u64,
    },
    /// A chunk loaded lazily into a free static-region slot.
    LazyLoad {
        /// Bytes loaded.
        bytes: u64,
    },
    /// An Eq (3) adaptive re-partition of the static/on-demand boundary.
    Repartition {
        /// Iteration at which the boundary moved.
        iter: u32,
        /// New static-region size in bytes.
        static_bytes: u64,
    },
    /// The one-time prestore fill of the static region.
    Prestore {
        /// Bytes prestored.
        bytes: u64,
        /// Modeled duration in virtual nanoseconds.
        dur_ns: u64,
    },
    /// The device allocator's high-water mark rose.
    HighWater {
        /// New peak allocation in bytes.
        bytes: u64,
    },
}

impl Event {
    /// Machine-readable event kind (stable across releases).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::IterStart { .. } => "iter_start",
            Event::IterEnd { .. } => "iter_end",
            Event::Kernel { .. } => "kernel",
            Event::Dma { .. } => "dma",
            Event::CompressedDma { .. } => "compressed_dma",
            Event::PrefetchDma { .. } => "prefetch_dma",
            Event::Gather { .. } => "gather",
            Event::UvmFault { .. } => "uvm_fault",
            Event::UvmEvict { .. } => "uvm_evict",
            Event::HotSwap { .. } => "hot_swap",
            Event::LazyLoad { .. } => "lazy_load",
            Event::Repartition { .. } => "repartition",
            Event::Prestore { .. } => "prestore",
            Event::HighWater { .. } => "high_water",
        }
    }

    fn fields_into(&self, out: &mut String) {
        match self {
            Event::IterStart { iter } | Event::IterEnd { iter } => {
                out.push_str(&format!(",\"iter\":{iter}"));
            }
            Event::Kernel {
                label,
                edges,
                dur_ns,
            } => {
                out.push_str(",\"label\":");
                json::string_into(label, out);
                out.push_str(&format!(",\"edges\":{edges},\"dur_ns\":{dur_ns}"));
            }
            Event::Dma { dir, bytes, dur_ns } => {
                out.push_str(&format!(
                    ",\"dir\":\"{}\",\"bytes\":{bytes},\"dur_ns\":{dur_ns}",
                    dir.as_str()
                ));
            }
            Event::CompressedDma {
                raw_bytes,
                wire_bytes,
                dur_ns,
                decompress_ns,
            } => {
                out.push_str(&format!(
                    ",\"raw_bytes\":{raw_bytes},\"wire_bytes\":{wire_bytes},\
                     \"dur_ns\":{dur_ns},\"decompress_ns\":{decompress_ns}"
                ));
            }
            Event::PrefetchDma {
                chunk,
                bytes,
                dur_ns,
            } => {
                out.push_str(&format!(
                    ",\"chunk\":{chunk},\"bytes\":{bytes},\"dur_ns\":{dur_ns}"
                ));
            }
            Event::Gather { bytes, dur_ns } => {
                out.push_str(&format!(",\"bytes\":{bytes},\"dur_ns\":{dur_ns}"));
            }
            Event::UvmFault { page, dur_ns } => {
                out.push_str(&format!(",\"page\":{page},\"dur_ns\":{dur_ns}"));
            }
            Event::UvmEvict { pages } => {
                out.push_str(&format!(",\"pages\":{pages}"));
            }
            Event::HotSwap { chunks, bytes } => {
                out.push_str(&format!(",\"chunks\":{chunks},\"bytes\":{bytes}"));
            }
            Event::LazyLoad { bytes } => {
                out.push_str(&format!(",\"bytes\":{bytes}"));
            }
            Event::Repartition { iter, static_bytes } => {
                out.push_str(&format!(",\"iter\":{iter},\"static_bytes\":{static_bytes}"));
            }
            Event::Prestore { bytes, dur_ns } => {
                out.push_str(&format!(",\"bytes\":{bytes},\"dur_ns\":{dur_ns}"));
            }
            Event::HighWater { bytes } => {
                out.push_str(&format!(",\"bytes\":{bytes}"));
            }
        }
    }
}

/// An [`Event`] plus its virtual-clock timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// Virtual-clock instant in nanoseconds.
    pub t_ns: u64,
    /// What happened.
    pub event: Event,
}

impl TimedEvent {
    /// Render as one JSON object:
    /// `{"t_ns":N,"kind":"...",...fields}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        self.json_into(&mut out);
        out
    }

    fn json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"t_ns\":{},\"kind\":\"{}\"",
            self.t_ns,
            self.event.kind()
        ));
        self.event.fields_into(out);
        out.push('}');
    }
}

/// A bounded, append-only log of [`TimedEvent`]s.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    capacity: usize,
    events: Vec<TimedEvent>,
    dropped: u64,
    first_drop_at: Option<u64>,
}

impl EventLog {
    /// An empty log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity,
            events: Vec::new(),
            dropped: 0,
            first_drop_at: None,
        }
    }

    /// Append `event` at instant `t_ns`, or count a drop if full.
    pub fn record(&mut self, t_ns: u64, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(TimedEvent { t_ns, event });
        } else {
            if self.dropped == 0 {
                self.first_drop_at = Some(t_ns);
            }
            self.dropped += 1;
        }
    }

    /// Retained events, in record order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Iterate over retained events.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded after the log filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Virtual-clock instant of the *first* dropped event, if any were
    /// dropped. A report that shows `events_dropped > 0` can point at the
    /// moment the log went blind instead of just admitting data loss.
    pub fn first_drop_at(&self) -> Option<u64> {
        self.first_drop_at
    }

    /// Retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Merge another log: events concatenate (then sort by timestamp,
    /// stable so equal stamps keep record order), drops add, and the
    /// larger capacity wins.
    pub fn merge(&mut self, other: &EventLog) {
        self.capacity = self.capacity.max(other.capacity);
        for e in &other.events {
            if self.events.len() < self.capacity {
                self.events.push(e.clone());
            } else {
                if self.dropped == 0 {
                    self.first_drop_at = Some(e.t_ns);
                }
                self.dropped += 1;
            }
        }
        self.dropped += other.dropped;
        self.first_drop_at = match (self.first_drop_at, other.first_drop_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.events.sort_by_key(|e| e.t_ns);
    }

    /// Render the retained events as JSONL, one event object per line
    /// (callers prepend their own meta line and append the snapshot).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for e in &self.events {
            e.json_into(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_capacity_then_counts_drops() {
        let mut log = EventLog::new(2);
        log.record(1, Event::IterStart { iter: 0 });
        log.record(2, Event::IterEnd { iter: 0 });
        assert_eq!(log.first_drop_at(), None);
        log.record(3, Event::IterStart { iter: 1 });
        log.record(7, Event::IterEnd { iter: 1 });
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 2);
        // The clock of the *first* drop is pinned, not the latest.
        assert_eq!(log.first_drop_at(), Some(3));
    }

    #[test]
    fn merge_carries_earliest_first_drop() {
        let mut a = EventLog::new(4);
        a.record(1, Event::IterStart { iter: 0 });
        let mut b = EventLog::new(1);
        b.record(2, Event::IterStart { iter: 1 });
        b.record(5, Event::IterEnd { iter: 1 }); // dropped in b at t=5
        a.merge(&b);
        assert_eq!(a.dropped(), 1);
        assert_eq!(a.first_drop_at(), Some(5));

        // A merge that itself overflows records the overflow instant, and
        // the earliest of the two logs' first drops wins.
        let mut c = EventLog::new(1);
        c.record(1, Event::IterStart { iter: 0 });
        let mut d = EventLog::new(1);
        d.record(3, Event::IterStart { iter: 1 });
        c.merge(&d); // capacity stays 1: d's event drops at t=3
        assert_eq!(c.dropped(), 1);
        assert_eq!(c.first_drop_at(), Some(3));
    }

    #[test]
    fn jsonl_lines_validate_and_roundtrip_kinds() {
        let mut log = EventLog::new(16);
        log.record(
            0,
            Event::Prestore {
                bytes: 10,
                dur_ns: 5,
            },
        );
        log.record(
            5,
            Event::Kernel {
                label: "bfs \"q\"\n".into(),
                edges: 3,
                dur_ns: 7,
            },
        );
        log.record(
            9,
            Event::Dma {
                dir: XferDir::H2d,
                bytes: 4096,
                dur_ns: 11,
            },
        );
        log.record(
            10,
            Event::Repartition {
                iter: 2,
                static_bytes: 99,
            },
        );
        log.record(
            12,
            Event::CompressedDma {
                raw_bytes: 4096,
                wire_bytes: 1024,
                dur_ns: 11,
                decompress_ns: 3,
            },
        );
        log.record(
            14,
            Event::PrefetchDma {
                chunk: 7,
                bytes: 2048,
                dur_ns: 6,
            },
        );
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in &lines {
            crate::json::validate(line).expect("each JSONL line is valid JSON");
        }
        assert!(lines[1].contains("\"kind\":\"kernel\""));
        assert!(lines[1].contains("bfs \\\"q\\\"\\n"));
        assert!(lines[2].contains("\"dir\":\"h2d\""));
        assert!(lines[4].contains("\"kind\":\"compressed_dma\""));
        assert!(lines[4].contains("\"wire_bytes\":1024"));
        assert!(lines[5].contains("\"kind\":\"prefetch_dma\""));
        assert!(lines[5].contains("\"chunk\":7"));
    }

    #[test]
    fn merge_sorts_by_timestamp_and_sums_drops() {
        let mut a = EventLog::new(8);
        a.record(10, Event::IterEnd { iter: 0 });
        let mut b = EventLog::new(8);
        b.record(5, Event::IterStart { iter: 0 });
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.events()[0].t_ns, 5);
        assert_eq!(a.events()[1].t_ns, 10);
    }
}
