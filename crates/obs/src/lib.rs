#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic-obs — unified telemetry
//!
//! The paper's entire argument is observational: Tables 4/5 and Figures 7–10
//! are byte counters and time breakdowns. This crate is the one place those
//! signals are collected, so every system (Ascetic and the baselines) emits
//! a *comparable* stream and every experiment reads the same names:
//!
//! * [`registry`] — a [`Registry`] of named counters, gauges and
//!   log2-bucketed [`Histogram`]s with labels (system/algo/dataset), merge
//!   and diff support, and deterministic (sorted) export ordering.
//! * [`event`] — a structured [`EventLog`] stamped by the **virtual clock**
//!   (iteration boundaries, kernel launches, DMA ops, UVM faults and
//!   evictions, hotness-table replacements, Eq (3) re-partitions, allocator
//!   high-water marks) with bounded capacity and a JSONL sink.
//! * [`trace`] — a hierarchical [`SpanTracer`] over named tracks (one per
//!   copy stream, compute engine, serve job) frozen into an immutable
//!   [`Trace`] with Chrome/Perfetto and JSONL export plus busy/idle/overlap
//!   utilization queries — the Fig-8 breakdown as a first-class artifact.
//! * [`json`] — hand-rolled JSON escaping, number formatting and a small
//!   validating parser (no serde; the whole workspace stays
//!   dependency-free).
//!
//! Determinism: nothing here reads wall-clock time. Timestamps are supplied
//! by the caller from the simulated clock (`ascetic-sim`), so two runs of
//! the same workload produce byte-identical snapshots and event streams.

pub mod event;
pub mod json;
pub mod registry;
pub mod trace;

pub use event::{Event, EventLog, TimedEvent, XferDir, DEFAULT_EVENT_CAPACITY};
pub use registry::{Histogram, MetricValue, MetricsSnapshot, Obs, Registry, NUM_BUCKETS};
pub use trace::{SpanTracer, Trace, TraceError, TracedSpan, TrackId, CAT_WAIT};
