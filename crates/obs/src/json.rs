//! Hand-rolled JSON helpers.
//!
//! The workspace policy is zero runtime dependencies (see `DESIGN.md` §3),
//! so JSON is produced by hand — this module centralizes the escaping the
//! Chrome-trace exporter used to do inline, and adds a small validating
//! parser so tests (and the CLI) can check that emitted documents are
//! well-formed without pulling in serde.

/// Append `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters). Does not write the surrounding quotes.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// JSON-escaped copy of `s` (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

/// Append `"key":` to `out` (escaped key plus colon).
pub fn key_into(key: &str, out: &mut String) {
    out.push('"');
    escape_into(key, out);
    out.push_str("\":");
}

/// Append a quoted, escaped string value.
pub fn string_into(s: &str, out: &mut String) {
    out.push('"');
    escape_into(s, out);
    out.push('"');
}

/// Validate that `s` is exactly one well-formed JSON value (object, array,
/// string, number, boolean or null), with nothing but whitespace around it.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!("bad \\u escape at byte {}", self.pos))
                                    }
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#x} in string at {}", self.pos))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("number without digits at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(format!("fraction without digits at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(format!("exponent without digits at byte {}", self.pos));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{01}"), "\\u0001");
        assert_eq!(escape("ünïcode ✓"), "ünïcode ✓");
    }

    #[test]
    fn validator_accepts_well_formed() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "\"str\\n\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            "  { \"k\" : 0 } ",
        ] {
            assert!(validate(ok).is_ok(), "{ok} should validate");
        }
    }

    #[test]
    fn validator_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01a",
            "{} extra",
            "\"bad\\q\"",
            "1.",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn escaped_strings_validate() {
        for s in ["quote\" backslash\\", "ctrl\u{01}\u{1f}", "multi\nline\r"] {
            let doc = format!("\"{}\"", escape(s));
            assert!(validate(&doc).is_ok(), "escaped {s:?} must validate");
        }
    }
}
